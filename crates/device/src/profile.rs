//! Device profiles and mobile client detection.
//!
//! Profiles model the evaluation devices of the paper (§4.2): the
//! BlackBerry Tour 9630 (528 MHz), a 3rd-generation iPod Touch (600 MHz),
//! the iPhone 4, a 1st-generation iPad (the AJAX evaluation device) and a
//! 2012 desktop. `efficiency` folds browser-engine quality into the
//! clock: the Tour's legacy engine does far less per cycle than mobile
//! WebKit.

use msite_net::{BandwidthClass, LinkModel};
use msite_support::json::{obj, ToJson, Value};

/// A modeled client device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Display name.
    pub name: String,
    /// CPU clock in MHz.
    pub cpu_mhz: f64,
    /// Browser-engine efficiency multiplier (work per cycle relative to
    /// 2012 mobile WebKit = 1.0).
    pub efficiency: f64,
    /// Usable browser viewport in px (the paper: the Tour shows 480×325).
    pub viewport: (u32, u32),
    /// Whether the browser supports XMLHttpRequest (the Tour's does not,
    /// which is what m.Site's AJAX restoration is for).
    pub supports_ajax: bool,
    /// Representative User-Agent string.
    pub user_agent: String,
    /// Typical access bandwidth class for this device — what the
    /// fidelity-tier attribute resolves when asked to pick `auto` and
    /// what the page-load simulator uses as the device's default link.
    pub bandwidth: BandwidthClass,
}

impl DeviceProfile {
    /// Effective compute rate in cycles/second.
    pub fn effective_hz(&self) -> f64 {
        self.cpu_mhz * 1e6 * self.efficiency
    }

    /// The representative link model for this device's typical access
    /// bandwidth — the default link the simulator pairs with the
    /// profile.
    pub fn link_model(&self) -> LinkModel {
        self.bandwidth.link_model()
    }

    /// BlackBerry Tour 9630 — the paper's primary slow device.
    pub fn blackberry_tour() -> DeviceProfile {
        DeviceProfile {
            name: "BlackBerry Tour".to_string(),
            cpu_mhz: 528.0,
            efficiency: 0.70,
            viewport: (480, 325),
            supports_ajax: false,
            user_agent: "BlackBerry9630/5.0.0.419 Profile/MIDP-2.1 Configuration/CLDC-1.1"
                .to_string(),
            bandwidth: BandwidthClass::TwoG,
        }
    }

    /// 3rd-generation iPod Touch (600 MHz, mobile Safari).
    pub fn ipod_touch_3g() -> DeviceProfile {
        DeviceProfile {
            name: "iPod Touch 3G".to_string(),
            cpu_mhz: 600.0,
            efficiency: 1.2,
            viewport: (320, 480),
            supports_ajax: true,
            user_agent: "Mozilla/5.0 (iPod; U; CPU iPhone OS 4_2_1 like Mac OS X) AppleWebKit/533.17.9 Mobile/8C148".to_string(),
            bandwidth: BandwidthClass::Wifi,
        }
    }

    /// iPhone 4 (Apple A4 at 800 MHz).
    pub fn iphone_4() -> DeviceProfile {
        DeviceProfile {
            name: "iPhone 4".to_string(),
            cpu_mhz: 800.0,
            efficiency: 1.0,
            viewport: (320, 480),
            supports_ajax: true,
            user_agent: "Mozilla/5.0 (iPhone; U; CPU iPhone OS 4_0 like Mac OS X) AppleWebKit/532.9 Mobile/8A293".to_string(),
            bandwidth: BandwidthClass::ThreeG,
        }
    }

    /// 1st-generation iPad — the AJAX-evaluation device (§4.5).
    pub fn ipad_1() -> DeviceProfile {
        DeviceProfile {
            name: "iPad 1".to_string(),
            cpu_mhz: 1000.0,
            efficiency: 1.2,
            viewport: (1024, 768),
            supports_ajax: true,
            user_agent: "Mozilla/5.0 (iPad; U; CPU OS 3_2 like Mac OS X) AppleWebKit/531.21.10 Mobile/7B334b".to_string(),
            bandwidth: BandwidthClass::Wifi,
        }
    }

    /// Motorola Droid (Android 2.x) — the paper's "Google Droid phones"
    /// that keep native AJAX support.
    pub fn android_droid() -> DeviceProfile {
        DeviceProfile {
            name: "Motorola Droid".to_string(),
            cpu_mhz: 550.0,
            efficiency: 1.0,
            viewport: (320, 480),
            supports_ajax: true,
            user_agent: "Mozilla/5.0 (Linux; U; Android 2.2; Droid Build/FRG22D) AppleWebKit/533.1 Mobile Safari/533.1".to_string(),
            bandwidth: BandwidthClass::ThreeG,
        }
    }

    /// A 2012 desktop (dual-core 2.4 GHz) running a modern browser.
    pub fn desktop() -> DeviceProfile {
        DeviceProfile {
            name: "Desktop".to_string(),
            cpu_mhz: 2_400.0,
            efficiency: 1.2,
            viewport: (1280, 900),
            supports_ajax: true,
            user_agent: "Mozilla/5.0 (Windows NT 6.0) AppleWebKit/536.5 Chrome/19.0 Safari/536.5"
                .to_string(),
            bandwidth: BandwidthClass::Wifi,
        }
    }

    /// The paper's proxy testbed: commodity dual-core under Windows Vista
    /// (used for server-side rendering cost, not for browsing).
    pub fn server() -> DeviceProfile {
        DeviceProfile {
            name: "Proxy server".to_string(),
            cpu_mhz: 2_400.0,
            efficiency: 1.2,
            viewport: (1024, 8192),
            supports_ajax: true,
            user_agent: "msite-proxy/0.1".to_string(),
            bandwidth: BandwidthClass::Wifi,
        }
    }
}

impl ToJson for DeviceProfile {
    fn to_json_value(&self) -> Value {
        obj([
            ("name", self.name.to_json_value()),
            ("cpu_mhz", self.cpu_mhz.to_json_value()),
            ("efficiency", self.efficiency.to_json_value()),
            (
                "viewport",
                Value::Array(vec![
                    self.viewport.0.to_json_value(),
                    self.viewport.1.to_json_value(),
                ]),
            ),
            ("supports_ajax", self.supports_ajax.to_json_value()),
            ("user_agent", self.user_agent.to_json_value()),
            ("bandwidth", Value::Str(self.bandwidth.name().to_string())),
        ])
    }
}

/// Device classes distinguished by the detection heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Legacy smartphone browsers (BlackBerry, Windows Mobile, ...).
    LegacyMobile,
    /// Modern touch smartphone (iPhone, Android phone).
    Smartphone,
    /// Tablet (iPad, Android tablet).
    Tablet,
    /// Anything else.
    Desktop,
}

impl ToJson for DeviceClass {
    fn to_json_value(&self) -> Value {
        Value::Str(
            match self {
                DeviceClass::LegacyMobile => "legacy-mobile",
                DeviceClass::Smartphone => "smartphone",
                DeviceClass::Tablet => "tablet",
                DeviceClass::Desktop => "desktop",
            }
            .to_string(),
        )
    }
}

impl DeviceClass {
    /// True for any mobile class.
    pub fn is_mobile(&self) -> bool {
        !matches!(self, DeviceClass::Desktop)
    }

    /// The bandwidth class a proxy should assume for this device class
    /// when nothing better (an `x-msite-bandwidth` header) is known:
    /// legacy mobile browsers ride 2G-era radios, smartphones 3G,
    /// tablets and desktops WiFi or better.
    pub fn default_bandwidth(&self) -> BandwidthClass {
        match self {
            DeviceClass::LegacyMobile => BandwidthClass::TwoG,
            DeviceClass::Smartphone => BandwidthClass::ThreeG,
            DeviceClass::Tablet | DeviceClass::Desktop => BandwidthClass::Wifi,
        }
    }
}

/// Detects the device class from a User-Agent string using the
/// substring-heuristic approach the paper references
/// (detectmobilebrowsers.mobi): an ordered rule list, most specific
/// first, kept up to date as new devices ship.
///
/// # Examples
///
/// ```
/// use msite_device::{detect_device, DeviceClass};
///
/// assert_eq!(detect_device("BlackBerry9630/5.0.0.419"), DeviceClass::LegacyMobile);
/// assert_eq!(detect_device("Mozilla/5.0 (iPad; U; CPU OS 3_2...)"), DeviceClass::Tablet);
/// assert_eq!(detect_device("Mozilla/5.0 (Windows NT 6.0)"), DeviceClass::Desktop);
/// ```
pub fn detect_device(user_agent: &str) -> DeviceClass {
    let ua = user_agent.to_ascii_lowercase();
    // Tablets before phones: iPad UAs do not say "iphone" but Android
    // tablets say "android" without "mobile".
    const TABLET: &[&str] = &["ipad", "tablet", "kindle", "silk", "playbook"];
    if TABLET.iter().any(|m| ua.contains(m)) {
        return DeviceClass::Tablet;
    }
    if ua.contains("android") && !ua.contains("mobile") {
        return DeviceClass::Tablet;
    }
    const LEGACY: &[&str] = &[
        "blackberry",
        "windows ce",
        "windows phone",
        "midp",
        "symbian",
        "series60",
        "s60",
        "netfront",
        "up.browser",
        "docomo",
        "palm",
        "avantgo",
    ];
    if LEGACY.iter().any(|m| ua.contains(m)) {
        return DeviceClass::LegacyMobile;
    }
    const SMART: &[&str] = &[
        "iphone",
        "ipod",
        "android",
        "opera mini",
        "opera mobi",
        "mobile safari",
        "webos",
        "fennec",
        "iemobile",
        "mobile",
    ];
    if SMART.iter().any(|m| ua.contains(m)) {
        return DeviceClass::Smartphone;
    }
    DeviceClass::Desktop
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_power() {
        let bb = DeviceProfile::blackberry_tour();
        let ipod = DeviceProfile::ipod_touch_3g();
        let iphone = DeviceProfile::iphone_4();
        let desktop = DeviceProfile::desktop();
        assert!(bb.effective_hz() < ipod.effective_hz());
        assert!(ipod.effective_hz() < iphone.effective_hz());
        assert!(iphone.effective_hz() < desktop.effective_hz());
    }

    #[test]
    fn tour_matches_paper_facts() {
        let bb = DeviceProfile::blackberry_tour();
        assert_eq!(bb.cpu_mhz, 528.0); // "528 MHz processor"
        assert_eq!(bb.viewport, (480, 325)); // "480x325 browser area"
        assert!(!bb.supports_ajax);
    }

    #[test]
    fn detection_of_paper_devices() {
        for (profile, class) in [
            (DeviceProfile::blackberry_tour(), DeviceClass::LegacyMobile),
            (DeviceProfile::ipod_touch_3g(), DeviceClass::Smartphone),
            (DeviceProfile::iphone_4(), DeviceClass::Smartphone),
            (DeviceProfile::android_droid(), DeviceClass::Smartphone),
            (DeviceProfile::ipad_1(), DeviceClass::Tablet),
            (DeviceProfile::desktop(), DeviceClass::Desktop),
        ] {
            assert_eq!(
                detect_device(&profile.user_agent),
                class,
                "{}",
                profile.name
            );
        }
    }

    #[test]
    fn detection_misc_agents() {
        assert_eq!(
            detect_device("Mozilla/5.0 (Linux; U; Android 2.3; Mobile) Safari"),
            DeviceClass::Smartphone
        );
        assert_eq!(
            detect_device("Mozilla/5.0 (Linux; Android 3.0; Xoom) Safari"),
            DeviceClass::Tablet
        );
        assert_eq!(
            detect_device("Opera/9.80 (J2ME/MIDP; Opera Mini/5)"),
            DeviceClass::LegacyMobile
        );
        assert_eq!(detect_device(""), DeviceClass::Desktop);
        assert_eq!(detect_device("curl/7.81"), DeviceClass::Desktop);
    }

    #[test]
    fn bandwidth_defaults_follow_device_class() {
        assert_eq!(
            DeviceClass::LegacyMobile.default_bandwidth(),
            BandwidthClass::TwoG
        );
        assert_eq!(
            DeviceClass::Smartphone.default_bandwidth(),
            BandwidthClass::ThreeG
        );
        assert_eq!(
            DeviceClass::Tablet.default_bandwidth(),
            BandwidthClass::Wifi
        );
        assert_eq!(
            DeviceProfile::blackberry_tour().bandwidth,
            BandwidthClass::TwoG
        );
        assert_eq!(
            DeviceProfile::blackberry_tour().link_model(),
            LinkModel::TWO_G
        );
        assert_eq!(DeviceProfile::desktop().link_model(), LinkModel::WIFI);
    }

    #[test]
    fn mobile_classes() {
        assert!(DeviceClass::LegacyMobile.is_mobile());
        assert!(DeviceClass::Tablet.is_mobile());
        assert!(!DeviceClass::Desktop.is_mobile());
    }
}
