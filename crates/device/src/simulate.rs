//! The analytic page-load simulator behind Table 1.
//!
//! Wall-clock load time is modeled as network time (from
//! [`LinkModel::page_fetch_time`] over the measured [`PageManifest`])
//! plus device processing time: parse, script, style, layout and paint
//! work divided by the device's effective clock.
//!
//! The five work constants below were fitted once against the six
//! observations in the paper's Table 1 (see EXPERIMENTS.md for the
//! fit quality); the *inputs* — byte counts, node counts, image areas —
//! are measured from the actual generated pages, not asserted.

use crate::profile::DeviceProfile;
use msite_net::LinkModel;
use msite_sites::PageManifest;
use msite_support::json::{obj, ToJson, Value};
use std::time::Duration;

/// Work-per-unit constants (cycles). Fitted to Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// HTML tokenizing/tree-building per byte.
    pub parse_cycles_per_byte: f64,
    /// JavaScript parse + execute per byte of script.
    pub script_cycles_per_byte: f64,
    /// Selector matching + cascade per byte of CSS.
    pub style_cycles_per_byte: f64,
    /// Layout per DOM element.
    pub layout_cycles_per_node: f64,
    /// Rasterization/compositing per pixel painted.
    pub paint_cycles_per_pixel: f64,
    /// Painted pixels attributed to each DOM element (text/background).
    pub painted_pixels_per_node: f64,
    /// PNG/JPEG encode or decode per pixel (server snapshot cost; also
    /// used for client-side image decode of snapshot images).
    pub encode_cycles_per_pixel: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            parse_cycles_per_byte: 500.0,
            script_cycles_per_byte: 19_000.0,
            style_cycles_per_byte: 8_000.0,
            layout_cycles_per_node: 500_000.0,
            paint_cycles_per_pixel: 600.0,
            painted_pixels_per_node: 2_000.0,
            encode_cycles_per_pixel: 600.0,
        }
    }
}

impl ToJson for CostModel {
    fn to_json_value(&self) -> Value {
        obj([
            (
                "parse_cycles_per_byte",
                self.parse_cycles_per_byte.to_json_value(),
            ),
            (
                "script_cycles_per_byte",
                self.script_cycles_per_byte.to_json_value(),
            ),
            (
                "style_cycles_per_byte",
                self.style_cycles_per_byte.to_json_value(),
            ),
            (
                "layout_cycles_per_node",
                self.layout_cycles_per_node.to_json_value(),
            ),
            (
                "paint_cycles_per_pixel",
                self.paint_cycles_per_pixel.to_json_value(),
            ),
            (
                "painted_pixels_per_node",
                self.painted_pixels_per_node.to_json_value(),
            ),
            (
                "encode_cycles_per_pixel",
                self.encode_cycles_per_pixel.to_json_value(),
            ),
        ])
    }
}

/// Per-phase breakdown of a simulated page load.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LoadBreakdown {
    /// Network time in seconds.
    pub network_s: f64,
    /// HTML parse time in seconds.
    pub parse_s: f64,
    /// Script time in seconds.
    pub script_s: f64,
    /// Style resolution time in seconds.
    pub style_s: f64,
    /// Layout time in seconds.
    pub layout_s: f64,
    /// Paint + image decode time in seconds.
    pub paint_s: f64,
}

impl LoadBreakdown {
    /// Total wall-clock seconds.
    pub fn total_s(&self) -> f64 {
        self.network_s + self.parse_s + self.script_s + self.style_s + self.layout_s + self.paint_s
    }

    /// Total as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_secs_f64(self.total_s())
    }

    /// Device processing seconds (everything but network).
    pub fn processing_s(&self) -> f64 {
        self.total_s() - self.network_s
    }
}

impl ToJson for LoadBreakdown {
    fn to_json_value(&self) -> Value {
        obj([
            ("network_s", self.network_s.to_json_value()),
            ("parse_s", self.parse_s.to_json_value()),
            ("script_s", self.script_s.to_json_value()),
            ("style_s", self.style_s.to_json_value()),
            ("layout_s", self.layout_s.to_json_value()),
            ("paint_s", self.paint_s.to_json_value()),
            ("total_s", self.total_s().to_json_value()),
        ])
    }
}

/// Simulates loading `manifest` on `device` over `link`.
///
/// # Examples
///
/// ```
/// use msite_device::{simulate_page_load, CostModel, DeviceProfile};
/// use msite_net::LinkModel;
/// use msite_sites::{ForumConfig, ForumSite, PageManifest};
///
/// let site = ForumSite::new(ForumConfig::default());
/// let manifest = PageManifest::fetch(&site, &format!("{}/index.php", site.base_url()));
/// let load = simulate_page_load(
///     &DeviceProfile::blackberry_tour(), &LinkModel::THREE_G, &manifest, &CostModel::default());
/// assert!(load.total_s() > 10.0); // the paper's 20-second experience
/// ```
pub fn simulate_page_load(
    device: &DeviceProfile,
    link: &LinkModel,
    manifest: &PageManifest,
    cost: &CostModel,
) -> LoadBreakdown {
    let hz = device.effective_hz();
    let network = link.page_fetch_time(manifest.html_bytes, &manifest.resource_sizes());
    let painted_pixels =
        manifest.image_pixels as f64 + manifest.dom_nodes as f64 * cost.painted_pixels_per_node;
    LoadBreakdown {
        network_s: network.as_secs_f64(),
        parse_s: manifest.html_bytes as f64 * cost.parse_cycles_per_byte / hz,
        script_s: manifest.script_bytes as f64 * cost.script_cycles_per_byte / hz,
        style_s: manifest.css_bytes as f64 * cost.style_cycles_per_byte / hz,
        layout_s: manifest.dom_nodes as f64 * cost.layout_cycles_per_node / hz,
        paint_s: painted_pixels * cost.paint_cycles_per_pixel / hz,
    }
}

/// Simulates loading `manifest` on `device` over the device's *own*
/// default link (its [`DeviceProfile::bandwidth`] class) — the pairing
/// the fidelity-tier attribute assumes when it picks `auto`.
pub fn simulate_profile_load(
    device: &DeviceProfile,
    manifest: &PageManifest,
    cost: &CostModel,
) -> LoadBreakdown {
    simulate_page_load(device, &device.link_model(), manifest, cost)
}

/// Simulates the *server-side* generation of a pre-rendered snapshot:
/// origin fetch over loopback, browser instantiation, a full render
/// minus script execution (the server renders, it does not run the
/// page's scripts), then encode + fidelity post-processing over the
/// rendered pixels.
pub fn simulate_snapshot_generation(
    server: &DeviceProfile,
    manifest: &PageManifest,
    rendered_pixels: u64,
    browser_startup: Duration,
    cost: &CostModel,
) -> Duration {
    let hz = server.effective_hz();
    let fetch = LinkModel::LOOPBACK
        .page_fetch_time(manifest.html_bytes, &manifest.resource_sizes())
        .as_secs_f64();
    let painted_pixels =
        manifest.image_pixels as f64 + manifest.dom_nodes as f64 * cost.painted_pixels_per_node;
    let render = (manifest.html_bytes as f64 * cost.parse_cycles_per_byte
        + manifest.css_bytes as f64 * cost.style_cycles_per_byte
        + manifest.dom_nodes as f64 * cost.layout_cycles_per_node
        + painted_pixels * cost.paint_cycles_per_pixel)
        / hz;
    // Encode once, post-process (scale + quantize) once.
    let encode = rendered_pixels as f64 * 2.0 * cost.encode_cycles_per_pixel / hz;
    Duration::from_secs_f64(fetch + browser_startup.as_secs_f64() + render + encode)
}

/// Simulates loading a pre-rendered snapshot *page* (tiny HTML + one
/// image) on a device: network plus parse plus image decode.
pub fn simulate_snapshot_view(
    device: &DeviceProfile,
    link: &LinkModel,
    html_bytes: usize,
    image_bytes: usize,
    image_pixels: u64,
    cost: &CostModel,
) -> LoadBreakdown {
    let hz = device.effective_hz();
    let network = link.page_fetch_time(html_bytes, &[image_bytes]);
    LoadBreakdown {
        network_s: network.as_secs_f64(),
        parse_s: html_bytes as f64 * cost.parse_cycles_per_byte / hz,
        script_s: 0.0,
        style_s: 0.0,
        layout_s: 30.0 * cost.layout_cycles_per_node / hz,
        paint_s: image_pixels as f64 * cost.paint_cycles_per_pixel / hz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msite_sites::{ForumConfig, ForumSite};

    fn forum_manifest() -> PageManifest {
        let site = ForumSite::new(ForumConfig::default());
        PageManifest::fetch(&site, &format!("{}/index.php", site.base_url()))
    }

    /// Accept a modeled value within `tol` (fractional) of the paper's.
    fn close(modeled: f64, paper: f64, tol: f64) -> bool {
        (modeled - paper).abs() <= paper * tol
    }

    #[test]
    fn table1_blackberry_full_page() {
        let load = simulate_page_load(
            &DeviceProfile::blackberry_tour(),
            &LinkModel::THREE_G,
            &forum_manifest(),
            &CostModel::default(),
        );
        assert!(
            close(load.total_s(), 20.0, 0.30),
            "modeled {}",
            load.total_s()
        );
    }

    #[test]
    fn table1_iphone4_wifi() {
        let load = simulate_page_load(
            &DeviceProfile::iphone_4(),
            &LinkModel::WIFI,
            &forum_manifest(),
            &CostModel::default(),
        );
        assert!(
            close(load.total_s(), 4.5, 0.30),
            "modeled {}",
            load.total_s()
        );
    }

    #[test]
    fn table1_iphone4_3g() {
        let load = simulate_page_load(
            &DeviceProfile::iphone_4(),
            &LinkModel::THREE_G,
            &forum_manifest(),
            &CostModel::default(),
        );
        assert!(
            close(load.total_s(), 20.0, 0.35),
            "modeled {}",
            load.total_s()
        );
    }

    #[test]
    fn table1_desktop() {
        let load = simulate_page_load(
            &DeviceProfile::desktop(),
            &LinkModel::LAN,
            &forum_manifest(),
            &CostModel::default(),
        );
        assert!(
            close(load.total_s(), 1.5, 0.35),
            "modeled {}",
            load.total_s()
        );
    }

    #[test]
    fn table1_snapshot_generation() {
        let t = simulate_snapshot_generation(
            &DeviceProfile::server(),
            &forum_manifest(),
            1024 * 2800,
            Duration::from_millis(250),
            &CostModel::default(),
        );
        assert!(
            close(t.as_secs_f64(), 2.0, 0.40),
            "modeled {}",
            t.as_secs_f64()
        );
    }

    #[test]
    fn table1_cached_snapshot_to_blackberry() {
        // Snapshot page: ~3 KB HTML + a ~35 KB half-scale image.
        let load = simulate_snapshot_view(
            &DeviceProfile::blackberry_tour(),
            &LinkModel::THREE_G,
            3_000,
            35_000,
            512 * 1400,
            &CostModel::default(),
        );
        assert!(
            close(load.total_s(), 5.0, 0.35),
            "modeled {}",
            load.total_s()
        );
    }

    #[test]
    fn snapshot_view_faster_than_full_page_by_factor_4plus() {
        // The §3.3 claim: pre-rendering cuts wall-clock ~5x on the Tour.
        let full = simulate_page_load(
            &DeviceProfile::blackberry_tour(),
            &LinkModel::THREE_G,
            &forum_manifest(),
            &CostModel::default(),
        );
        let snap = simulate_snapshot_view(
            &DeviceProfile::blackberry_tour(),
            &LinkModel::THREE_G,
            3_000,
            35_000,
            512 * 1400,
            &CostModel::default(),
        );
        let speedup = full.total_s() / snap.total_s();
        assert!(speedup >= 3.5, "speedup {speedup}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let load = simulate_page_load(
            &DeviceProfile::iphone_4(),
            &LinkModel::WIFI,
            &forum_manifest(),
            &CostModel::default(),
        );
        let sum = load.network_s
            + load.parse_s
            + load.script_s
            + load.style_s
            + load.layout_s
            + load.paint_s;
        assert!((sum - load.total_s()).abs() < 1e-12);
        assert!(load.processing_s() > 0.0);
    }

    #[test]
    fn faster_device_loads_faster() {
        let m = forum_manifest();
        let cost = CostModel::default();
        let bb = simulate_page_load(
            &DeviceProfile::blackberry_tour(),
            &LinkModel::WIFI,
            &m,
            &cost,
        );
        let ipod = simulate_page_load(&DeviceProfile::ipod_touch_3g(), &LinkModel::WIFI, &m, &cost);
        let desk = simulate_page_load(&DeviceProfile::desktop(), &LinkModel::WIFI, &m, &cost);
        assert!(bb.total_s() > ipod.total_s());
        assert!(ipod.total_s() > desk.total_s());
    }

    #[test]
    fn profile_default_links_order_two_g_slowest() {
        let m = forum_manifest();
        let cost = CostModel::default();
        // Same device hardware, swept across the three bandwidth
        // classes: 2G must dominate load time, WiFi must be fastest.
        let mut device = DeviceProfile::iphone_4();
        let mut last = f64::MAX;
        for class in msite_net::BandwidthClass::ALL {
            device.bandwidth = class;
            let load = simulate_profile_load(&device, &m, &cost);
            assert!(
                load.network_s < last,
                "{} not faster than the class below it",
                class
            );
            last = load.network_s;
        }
        // The Tour's own profile now defaults to 2G and is slower than
        // its old 3G pairing.
        let tour = simulate_profile_load(&DeviceProfile::blackberry_tour(), &m, &cost);
        let three_g = simulate_page_load(
            &DeviceProfile::blackberry_tour(),
            &LinkModel::THREE_G,
            &m,
            &cost,
        );
        assert!(tour.network_s > three_g.network_s);
    }

    #[test]
    fn link_ordering_holds() {
        let m = forum_manifest();
        let cost = CostModel::default();
        let d = DeviceProfile::iphone_4();
        let three_g = simulate_page_load(&d, &LinkModel::THREE_G, &m, &cost);
        let wifi = simulate_page_load(&d, &LinkModel::WIFI, &m, &cost);
        let lan = simulate_page_load(&d, &LinkModel::LAN, &m, &cost);
        assert!(three_g.network_s > wifi.network_s);
        assert!(wifi.network_s > lan.network_s);
    }
}
