//! # msite-device
//!
//! Mobile device models for the m.Site reproduction: profiles of the
//! paper's evaluation devices, User-Agent detection heuristics, and the
//! analytic page-load simulator that regenerates Table 1.
//!
//! ```
//! use msite_device::{detect_device, DeviceClass, DeviceProfile};
//!
//! let bb = DeviceProfile::blackberry_tour();
//! assert_eq!(detect_device(&bb.user_agent), DeviceClass::LegacyMobile);
//! assert!(!bb.supports_ajax); // why m.Site restores AJAX through the proxy
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod profile;
pub mod simulate;

pub use profile::{detect_device, DeviceClass, DeviceProfile};
pub use simulate::{
    simulate_page_load, simulate_profile_load, simulate_snapshot_generation,
    simulate_snapshot_view, CostModel, LoadBreakdown,
};
