//! Property tests for the page-load simulator: the cost model must be
//! monotone in every input that Table 1's interpretation relies on.

use msite_device::{simulate_page_load, simulate_snapshot_view, CostModel, DeviceProfile};
use msite_net::LinkModel;
use msite_sites::{PageManifest, Resource, ResourceKind};
use proptest::prelude::*;

fn manifest(html: usize, resources: Vec<usize>, nodes: usize, script: usize) -> PageManifest {
    let mut m = PageManifest::synthetic(
        "http://h/",
        html,
        resources
            .into_iter()
            .map(|bytes| Resource {
                url: "http://h/r".into(),
                kind: ResourceKind::Script,
                bytes,
            })
            .collect(),
        nodes,
    );
    m.script_bytes = script;
    m
}

fn arb_manifest() -> impl Strategy<Value = PageManifest> {
    (
        1_000usize..200_000,
        prop::collection::vec(100usize..50_000, 0..20),
        10usize..2_000,
        0usize..150_000,
    )
        .prop_map(|(html, res, nodes, script)| manifest(html, res, nodes, script))
}

fn devices() -> Vec<DeviceProfile> {
    vec![
        DeviceProfile::blackberry_tour(),
        DeviceProfile::ipod_touch_3g(),
        DeviceProfile::iphone_4(),
        DeviceProfile::ipad_1(),
        DeviceProfile::desktop(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// More HTML bytes never load faster.
    #[test]
    fn monotone_in_html_bytes(m in arb_manifest(), extra in 1usize..100_000) {
        let cost = CostModel::default();
        let device = DeviceProfile::iphone_4();
        let base = simulate_page_load(&device, &LinkModel::THREE_G, &m, &cost).total_s();
        let mut bigger = m.clone();
        bigger.html_bytes += extra;
        let more = simulate_page_load(&device, &LinkModel::THREE_G, &bigger, &cost).total_s();
        prop_assert!(more >= base);
    }

    /// More script bytes never load faster.
    #[test]
    fn monotone_in_script(m in arb_manifest(), extra in 1usize..100_000) {
        let cost = CostModel::default();
        let device = DeviceProfile::blackberry_tour();
        let base = simulate_page_load(&device, &LinkModel::WIFI, &m, &cost).total_s();
        let mut bigger = m.clone();
        bigger.script_bytes += extra;
        let more = simulate_page_load(&device, &LinkModel::WIFI, &bigger, &cost).total_s();
        prop_assert!(more > base);
    }

    /// A strictly faster effective clock never loads slower.
    #[test]
    fn monotone_in_cpu(m in arb_manifest()) {
        let cost = CostModel::default();
        let sorted = devices();
        for pair in sorted.windows(2) {
            let slow = simulate_page_load(&pair[0], &LinkModel::WIFI, &m, &cost);
            let fast = simulate_page_load(&pair[1], &LinkModel::WIFI, &m, &cost);
            if pair[0].effective_hz() < pair[1].effective_hz() {
                prop_assert!(slow.processing_s() >= fast.processing_s(),
                    "{} vs {}", pair[0].name, pair[1].name);
            }
        }
    }

    /// 3G is never faster than WiFi, which is never faster than LAN.
    #[test]
    fn monotone_in_link(m in arb_manifest()) {
        let cost = CostModel::default();
        let device = DeviceProfile::ipod_touch_3g();
        let g3 = simulate_page_load(&device, &LinkModel::THREE_G, &m, &cost).network_s;
        let wifi = simulate_page_load(&device, &LinkModel::WIFI, &m, &cost).network_s;
        let lan = simulate_page_load(&device, &LinkModel::LAN, &m, &cost).network_s;
        prop_assert!(g3 >= wifi);
        prop_assert!(wifi >= lan);
    }

    /// Every breakdown component is finite and non-negative, and the
    /// total is their sum.
    #[test]
    fn breakdown_well_formed(m in arb_manifest()) {
        let cost = CostModel::default();
        for device in devices() {
            let b = simulate_page_load(&device, &LinkModel::THREE_G, &m, &cost);
            for part in [b.network_s, b.parse_s, b.script_s, b.style_s, b.layout_s, b.paint_s] {
                prop_assert!(part.is_finite() && part >= 0.0);
            }
            let sum = b.network_s + b.parse_s + b.script_s + b.style_s + b.layout_s + b.paint_s;
            prop_assert!((sum - b.total_s()).abs() < 1e-9);
        }
    }

    /// A snapshot view of any page is cheaper than the full page whenever
    /// the snapshot moves fewer bytes, fewer requests and fewer pixels —
    /// the structural form of the paper's C1/C3 claims.
    #[test]
    fn snapshot_dominates_when_smaller(m in arb_manifest()) {
        let cost = CostModel::default();
        let device = DeviceProfile::blackberry_tour();
        let full = simulate_page_load(&device, &LinkModel::THREE_G, &m, &cost).total_s();
        let snap_bytes = (m.total_bytes() / 10).max(1);
        let snap = simulate_snapshot_view(
            &device,
            &LinkModel::THREE_G,
            (m.html_bytes / 10).max(1),
            snap_bytes,
            10_000,
            &cost,
        )
        .total_s();
        if m.request_count() >= 1 && m.script_bytes > 10_000 {
            prop_assert!(snap < full, "snap {snap} full {full}");
        }
    }
}
