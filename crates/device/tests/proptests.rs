//! Property tests for the page-load simulator: the cost model must be
//! monotone in every input that Table 1's interpretation relies on.

use msite_device::{simulate_page_load, simulate_snapshot_view, CostModel, DeviceProfile};
use msite_net::LinkModel;
use msite_sites::{PageManifest, Resource, ResourceKind};
use msite_support::prop::{self, Gen};

fn manifest(html: usize, resources: Vec<usize>, nodes: usize, script: usize) -> PageManifest {
    let mut m = PageManifest::synthetic(
        "http://h/",
        html,
        resources
            .into_iter()
            .map(|bytes| Resource {
                url: "http://h/r".into(),
                kind: ResourceKind::Script,
                bytes,
            })
            .collect(),
        nodes,
    );
    m.script_bytes = script;
    m
}

fn arb_manifest(g: &mut Gen) -> PageManifest {
    let html = g.range_usize(1_000, 200_000);
    let res = g.vec(0, 19, |g| g.range_usize(100, 50_000));
    let nodes = g.range_usize(10, 2_000);
    let script = g.range_usize(0, 150_000);
    manifest(html, res, nodes, script)
}

fn devices() -> Vec<DeviceProfile> {
    vec![
        DeviceProfile::blackberry_tour(),
        DeviceProfile::ipod_touch_3g(),
        DeviceProfile::iphone_4(),
        DeviceProfile::ipad_1(),
        DeviceProfile::desktop(),
    ]
}

/// More HTML bytes never load faster.
#[test]
fn monotone_in_html_bytes() {
    prop::check("monotone in html bytes", 64, 0x0DE7_1CE0, |g| {
        let m = arb_manifest(g);
        let extra = g.range_usize(1, 100_000);
        let cost = CostModel::default();
        let device = DeviceProfile::iphone_4();
        let base = simulate_page_load(&device, &LinkModel::THREE_G, &m, &cost).total_s();
        let mut bigger = m.clone();
        bigger.html_bytes += extra;
        let more = simulate_page_load(&device, &LinkModel::THREE_G, &bigger, &cost).total_s();
        assert!(more >= base);
    });
}

/// More script bytes never load faster.
#[test]
fn monotone_in_script() {
    prop::check("monotone in script", 64, 0x0DE7_1CE1, |g| {
        let m = arb_manifest(g);
        let extra = g.range_usize(1, 100_000);
        let cost = CostModel::default();
        let device = DeviceProfile::blackberry_tour();
        let base = simulate_page_load(&device, &LinkModel::WIFI, &m, &cost).total_s();
        let mut bigger = m.clone();
        bigger.script_bytes += extra;
        let more = simulate_page_load(&device, &LinkModel::WIFI, &bigger, &cost).total_s();
        assert!(more > base);
    });
}

/// A strictly faster effective clock never loads slower.
#[test]
fn monotone_in_cpu() {
    prop::check("monotone in cpu", 64, 0x0DE7_1CE2, |g| {
        let m = arb_manifest(g);
        let cost = CostModel::default();
        let sorted = devices();
        for pair in sorted.windows(2) {
            let slow = simulate_page_load(&pair[0], &LinkModel::WIFI, &m, &cost);
            let fast = simulate_page_load(&pair[1], &LinkModel::WIFI, &m, &cost);
            if pair[0].effective_hz() < pair[1].effective_hz() {
                assert!(
                    slow.processing_s() >= fast.processing_s(),
                    "{} vs {}",
                    pair[0].name,
                    pair[1].name
                );
            }
        }
    });
}

/// 3G is never faster than WiFi, which is never faster than LAN.
#[test]
fn monotone_in_link() {
    prop::check("monotone in link", 64, 0x0DE7_1CE3, |g| {
        let m = arb_manifest(g);
        let cost = CostModel::default();
        let device = DeviceProfile::ipod_touch_3g();
        let g3 = simulate_page_load(&device, &LinkModel::THREE_G, &m, &cost).network_s;
        let wifi = simulate_page_load(&device, &LinkModel::WIFI, &m, &cost).network_s;
        let lan = simulate_page_load(&device, &LinkModel::LAN, &m, &cost).network_s;
        assert!(g3 >= wifi);
        assert!(wifi >= lan);
    });
}

/// Every breakdown component is finite and non-negative, and the total
/// is their sum.
#[test]
fn breakdown_well_formed() {
    prop::check("breakdown well formed", 64, 0x0DE7_1CE4, |g| {
        let m = arb_manifest(g);
        let cost = CostModel::default();
        for device in devices() {
            let b = simulate_page_load(&device, &LinkModel::THREE_G, &m, &cost);
            for part in [
                b.network_s,
                b.parse_s,
                b.script_s,
                b.style_s,
                b.layout_s,
                b.paint_s,
            ] {
                assert!(part.is_finite() && part >= 0.0);
            }
            let sum = b.network_s + b.parse_s + b.script_s + b.style_s + b.layout_s + b.paint_s;
            assert!((sum - b.total_s()).abs() < 1e-9);
        }
    });
}

/// A snapshot view of any page is cheaper than the full page whenever
/// the snapshot moves fewer bytes, fewer requests and fewer pixels —
/// the structural form of the paper's C1/C3 claims.
#[test]
fn snapshot_dominates_when_smaller() {
    prop::check("snapshot dominates when smaller", 64, 0x0DE7_1CE5, |g| {
        let m = arb_manifest(g);
        let cost = CostModel::default();
        let device = DeviceProfile::blackberry_tour();
        let full = simulate_page_load(&device, &LinkModel::THREE_G, &m, &cost).total_s();
        let snap_bytes = (m.total_bytes() / 10).max(1);
        let snap = simulate_snapshot_view(
            &device,
            &LinkModel::THREE_G,
            (m.html_bytes / 10).max(1),
            snap_bytes,
            10_000,
            &cost,
        )
        .total_s();
        if m.request_count() >= 1 && m.script_bytes > 10_000 {
            assert!(snap < full, "snap {snap} full {full}");
        }
    });
}
