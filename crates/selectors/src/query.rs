//! A server-side jQuery-like manipulation API.
//!
//! The m.Site proxy integrates "a server-side port of the popular jQuery
//! DOM manipulation library"; this module is that port. A [`Query`] holds
//! a set of matched nodes; reading methods borrow the document, mutating
//! methods take `&mut Document` so the borrow checker keeps selection and
//! mutation honest.
//!
//! # Examples
//!
//! ```
//! use msite_html::parse_document;
//! use msite_selectors::Query;
//!
//! let mut doc = parse_document("<ul><li>a</li><li class='x'>b</li></ul>");
//! let items = Query::select(&doc, "li").unwrap();
//! assert_eq!(items.len(), 2);
//! Query::select(&doc, "li.x").unwrap().remove(&mut doc);
//! assert_eq!(doc.to_html(), "<ul><li>a</li></ul>");
//! ```

use crate::css::{ParseSelectorError, SelectorList};
use msite_html::{parse_fragment_into, Document, NodeId};

/// A matched set of DOM nodes, in document order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    ids: Vec<NodeId>,
}

impl Query {
    /// Wraps an explicit node set.
    pub fn from_ids(ids: Vec<NodeId>) -> Self {
        Query { ids }
    }

    /// Selects all elements in `doc` matching the CSS selector.
    ///
    /// # Errors
    ///
    /// Returns the selector parse error.
    pub fn select(doc: &Document, selector: &str) -> Result<Self, ParseSelectorError> {
        let list = SelectorList::parse(selector)?;
        Ok(Query {
            ids: list.select(doc, doc.root()),
        })
    }

    /// The matched node ids.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Number of matched nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing matched.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// First matched node.
    pub fn first(&self) -> Option<NodeId> {
        self.ids.first().copied()
    }

    /// The `n`-th matched node as a new single-node query.
    pub fn eq(&self, n: usize) -> Query {
        Query {
            ids: self.ids.get(n).copied().into_iter().collect(),
        }
    }

    /// Descendants of the matched set matching `selector`.
    ///
    /// # Errors
    ///
    /// Returns the selector parse error.
    pub fn find(&self, doc: &Document, selector: &str) -> Result<Query, ParseSelectorError> {
        let list = SelectorList::parse(selector)?;
        let mut ids: Vec<NodeId> = self
            .ids
            .iter()
            .flat_map(|&id| list.select(doc, id))
            .collect();
        ids.sort();
        ids.dedup();
        Ok(Query { ids })
    }

    /// Subset of the matched set that itself matches `selector`.
    ///
    /// # Errors
    ///
    /// Returns the selector parse error.
    pub fn filter(&self, doc: &Document, selector: &str) -> Result<Query, ParseSelectorError> {
        let list = SelectorList::parse(selector)?;
        Ok(Query {
            ids: self
                .ids
                .iter()
                .copied()
                .filter(|&id| list.matches(doc, id))
                .collect(),
        })
    }

    /// Parents of the matched set (deduplicated, document order).
    pub fn parent(&self, doc: &Document) -> Query {
        let mut ids: Vec<NodeId> = self
            .ids
            .iter()
            .filter_map(|&id| doc.node(id).parent())
            .filter(|&id| doc.data(id).as_element().is_some())
            .collect();
        ids.sort();
        ids.dedup();
        Query { ids }
    }

    /// Element children of the matched set.
    pub fn children(&self, doc: &Document) -> Query {
        let ids: Vec<NodeId> = self
            .ids
            .iter()
            .flat_map(|&id| doc.children(id))
            .filter(|&id| doc.data(id).as_element().is_some())
            .collect();
        Query { ids }
    }

    // -- readers ------------------------------------------------------

    /// Attribute value from the first matched node.
    pub fn attr<'d>(&self, doc: &'d Document, name: &str) -> Option<&'d str> {
        self.first().and_then(|id| doc.attr(id, name))
    }

    /// Concatenated text content of all matched nodes.
    pub fn text(&self, doc: &Document) -> String {
        self.ids
            .iter()
            .map(|&id| doc.text_content(id))
            .collect::<Vec<_>>()
            .join("")
    }

    /// Inner HTML of the first matched node.
    pub fn html(&self, doc: &Document) -> Option<String> {
        self.first().map(|id| doc.inner_html(id))
    }

    /// Outer HTML of every matched node, concatenated.
    pub fn outer_html(&self, doc: &Document) -> String {
        self.ids
            .iter()
            .map(|&id| doc.outer_html(id))
            .collect::<Vec<_>>()
            .join("")
    }

    // -- mutators -----------------------------------------------------

    /// Sets an attribute on every matched node.
    pub fn set_attr(&self, doc: &mut Document, name: &str, value: &str) -> &Self {
        for &id in &self.ids {
            doc.set_attr(id, name, value);
        }
        self
    }

    /// Removes an attribute from every matched node.
    pub fn remove_attr(&self, doc: &mut Document, name: &str) -> &Self {
        for &id in &self.ids {
            doc.remove_attr(id, name);
        }
        self
    }

    /// Adds a class to every matched node.
    pub fn add_class(&self, doc: &mut Document, class: &str) -> &Self {
        for &id in &self.ids {
            if let Some(e) = doc.data_mut(id).as_element_mut() {
                e.add_class(class);
            }
        }
        self
    }

    /// Removes a class from every matched node.
    pub fn remove_class(&self, doc: &mut Document, class: &str) -> &Self {
        for &id in &self.ids {
            if let Some(e) = doc.data_mut(id).as_element_mut() {
                e.remove_class(class);
            }
        }
        self
    }

    /// Merges a CSS declaration into the inline `style` attribute of
    /// every matched node, replacing any previous value for `property`.
    pub fn set_css(&self, doc: &mut Document, property: &str, value: &str) -> &Self {
        for &id in &self.ids {
            let existing = doc.attr(id, "style").unwrap_or("").to_string();
            let mut decls: Vec<(String, String)> = existing
                .split(';')
                .filter_map(|d| {
                    let (k, v) = d.split_once(':')?;
                    Some((k.trim().to_ascii_lowercase(), v.trim().to_string()))
                })
                .filter(|(k, _)| k != &property.to_ascii_lowercase())
                .collect();
            decls.push((property.to_ascii_lowercase(), value.to_string()));
            let style = decls
                .iter()
                .map(|(k, v)| format!("{k}:{v}"))
                .collect::<Vec<_>>()
                .join(";");
            doc.set_attr(id, "style", &style);
        }
        self
    }

    /// Hides every matched node via `display:none` (the paper's "hidden
    /// via CSS style properties" adaptation).
    pub fn hide(&self, doc: &mut Document) -> &Self {
        self.set_css(doc, "display", "none")
    }

    /// Replaces the children of every matched node with parsed `html`.
    pub fn set_html(&self, doc: &mut Document, html: &str) -> &Self {
        for &id in &self.ids {
            let children: Vec<NodeId> = doc.children(id).collect();
            for c in children {
                doc.detach(c);
            }
            parse_fragment_into(doc, id, html);
        }
        self
    }

    /// Replaces the text of every matched node.
    pub fn set_text(&self, doc: &mut Document, text: &str) -> &Self {
        for &id in &self.ids {
            doc.set_text_content(id, text);
        }
        self
    }

    /// Appends parsed `html` inside every matched node.
    pub fn append_html(&self, doc: &mut Document, html: &str) -> &Self {
        for &id in &self.ids {
            parse_fragment_into(doc, id, html);
        }
        self
    }

    /// Prepends parsed `html` inside every matched node.
    pub fn prepend_html(&self, doc: &mut Document, html: &str) -> &Self {
        for &id in &self.ids {
            let first = doc.node(id).first_child();
            let added = parse_fragment_into(doc, id, html);
            if let Some(reference) = first {
                for new in added {
                    doc.detach(new);
                    doc.insert_before(new, reference);
                }
            }
        }
        self
    }

    /// Inserts parsed `html` immediately before every matched node.
    pub fn before_html(&self, doc: &mut Document, html: &str) -> &Self {
        for &id in &self.ids {
            if let Some(parent) = doc.node(id).parent() {
                let added = parse_fragment_into(doc, parent, html);
                for new in added {
                    doc.detach(new);
                    doc.insert_before(new, id);
                }
            }
        }
        self
    }

    /// Inserts parsed `html` immediately after every matched node.
    pub fn after_html(&self, doc: &mut Document, html: &str) -> &Self {
        for &id in &self.ids {
            if let Some(parent) = doc.node(id).parent() {
                let added = parse_fragment_into(doc, parent, html);
                let mut reference = id;
                for new in added {
                    doc.detach(new);
                    doc.insert_after(new, reference);
                    reference = new;
                }
            }
        }
        self
    }

    /// Detaches every matched node from the tree.
    pub fn remove(&self, doc: &mut Document) -> &Self {
        for &id in &self.ids {
            doc.detach(id);
        }
        self
    }

    /// Replaces every matched node with parsed `html`.
    pub fn replace_with_html(&self, doc: &mut Document, html: &str) -> &Self {
        for &id in &self.ids {
            if let Some(parent) = doc.node(id).parent() {
                let added = parse_fragment_into(doc, parent, html);
                let mut reference = id;
                for new in added {
                    doc.detach(new);
                    doc.insert_after(new, reference);
                    reference = new;
                }
                doc.detach(id);
            }
        }
        self
    }
}

impl IntoIterator for Query {
    type Item = NodeId;
    type IntoIter = std::vec::IntoIter<NodeId>;

    fn into_iter(self) -> Self::IntoIter {
        self.ids.into_iter()
    }
}

impl<'a> IntoIterator for &'a Query {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.ids.iter().copied()
    }
}

impl FromIterator<NodeId> for Query {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        Query {
            ids: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msite_html::parse_document;

    fn doc() -> Document {
        parse_document(
            r#"<div id="page"><div id="nav"><a href="a.php">A</a><a href="b.php">B</a></div><table class="forum"><tr><td>one</td><td>two</td></tr></table></div>"#,
        )
    }

    #[test]
    fn select_and_len() {
        let d = doc();
        assert_eq!(Query::select(&d, "a").unwrap().len(), 2);
        assert!(Query::select(&d, "video").unwrap().is_empty());
        assert!(Query::select(&d, "..bad").is_err());
    }

    #[test]
    fn find_scopes_to_matches() {
        let d = doc();
        let nav = Query::select(&d, "#nav").unwrap();
        assert_eq!(nav.find(&d, "a").unwrap().len(), 2);
        assert_eq!(nav.find(&d, "td").unwrap().len(), 0);
    }

    #[test]
    fn filter_and_eq() {
        let d = doc();
        let links = Query::select(&d, "a").unwrap();
        let b_only = links.filter(&d, "[href^=b]").unwrap();
        assert_eq!(b_only.len(), 1);
        assert_eq!(links.eq(1).attr(&d, "href"), Some("b.php"));
        assert!(links.eq(9).is_empty());
    }

    #[test]
    fn parent_and_children() {
        let d = doc();
        let links = Query::select(&d, "a").unwrap();
        let parents = links.parent(&d);
        assert_eq!(parents.len(), 1);
        assert_eq!(d.attr(parents.first().unwrap(), "id"), Some("nav"));
        let kids = parents.children(&d);
        assert_eq!(kids.len(), 2);
    }

    #[test]
    fn readers() {
        let d = doc();
        let tds = Query::select(&d, "td").unwrap();
        assert_eq!(tds.text(&d), "onetwo");
        assert_eq!(tds.html(&d), Some("one".to_string()));
        assert_eq!(tds.outer_html(&d), "<td>one</td><td>two</td>");
    }

    #[test]
    fn set_attr_on_all() {
        let mut d = doc();
        Query::select(&d, "a")
            .unwrap()
            .set_attr(&mut d, "target", "_blank");
        for id in &Query::select(&d, "a").unwrap() {
            assert_eq!(d.attr(id, "target"), Some("_blank"));
        }
    }

    #[test]
    fn css_merge_and_hide() {
        let mut d = doc();
        let nav = Query::select(&d, "#nav").unwrap();
        nav.set_css(&mut d, "color", "red");
        nav.set_css(&mut d, "display", "none");
        nav.set_css(&mut d, "color", "blue");
        let style = nav.attr(&d, "style").unwrap();
        assert_eq!(style, "display:none;color:blue");
        let table = Query::select(&d, "table").unwrap();
        table.hide(&mut d);
        assert_eq!(table.attr(&d, "style"), Some("display:none"));
    }

    #[test]
    fn html_mutations() {
        let mut d = doc();
        let nav = Query::select(&d, "#nav").unwrap();
        nav.set_html(&mut d, "<span>replaced</span>");
        assert_eq!(nav.html(&d), Some("<span>replaced</span>".to_string()));
        nav.append_html(&mut d, "<i>end</i>");
        nav.prepend_html(&mut d, "<i>start</i>");
        assert_eq!(
            nav.html(&d),
            Some("<i>start</i><span>replaced</span><i>end</i>".to_string())
        );
    }

    #[test]
    fn before_after_insertions() {
        let mut d = parse_document("<div><b id=x>mid</b></div>");
        let x = Query::select(&d, "#x").unwrap();
        x.before_html(&mut d, "<i>1</i><i>2</i>");
        x.after_html(&mut d, "<u>3</u><u>4</u>");
        assert_eq!(
            d.to_html(),
            "<div><i>1</i><i>2</i><b id=\"x\">mid</b><u>3</u><u>4</u></div>"
        );
    }

    #[test]
    fn remove_and_replace() {
        let mut d = doc();
        Query::select(&d, "table").unwrap().remove(&mut d);
        assert!(Query::select(&d, "td").unwrap().is_empty());
        let nav = Query::select(&d, "#nav").unwrap();
        nav.replace_with_html(&mut d, "<p>gone</p>");
        assert!(Query::select(&d, "#nav").unwrap().is_empty());
        assert_eq!(Query::select(&d, "p").unwrap().text(&d), "gone");
    }

    #[test]
    fn set_text_escapes() {
        let mut d = doc();
        let td = Query::select(&d, "td").unwrap().eq(0);
        td.set_text(&mut d, "<b>not html</b>");
        assert!(d.outer_html(td.first().unwrap()).contains("&lt;b&gt;"));
    }

    #[test]
    fn collect_from_iterator() {
        let d = doc();
        let q: Query = Query::select(&d, "td").unwrap().into_iter().collect();
        assert_eq!(q.len(), 2);
    }
}
