//! CSS3 selector parsing and matching.
//!
//! Implements the selector subset the m.Site paper relies on for object
//! identification ("objects can be identified using new CSS 3 selector
//! support"): type/universal selectors, `#id`, `.class`, attribute
//! selectors with all CSS3 operators, the structural pseudo-classes
//! (`:first-child`, `:last-child`, `:only-child`, `:nth-child`, `:empty`,
//! `:root`), `:not(...)`, the jQuery `:contains("text")` extension, and
//! the four combinators (descendant, `>`, `+`, `~`). Matching runs
//! right-to-left like production engines.

use msite_html::{Document, NodeId};
use msite_support::swar;
use std::error::Error;
use std::fmt;

/// Error produced when a selector fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSelectorError {
    message: String,
    position: usize,
}

impl ParseSelectorError {
    fn new(message: impl Into<String>, position: usize) -> Self {
        ParseSelectorError {
            message: message.into(),
            position,
        }
    }

    /// Byte offset in the selector source where parsing failed.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for ParseSelectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid selector at byte {}: {}",
            self.position, self.message
        )
    }
}

impl Error for ParseSelectorError {}

/// Attribute matching operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrOp {
    /// `[attr]`
    Exists,
    /// `[attr=v]`
    Equals,
    /// `[attr~=v]` — whitespace-separated word match.
    Includes,
    /// `[attr|=v]` — exact or `v-` prefix.
    DashMatch,
    /// `[attr^=v]`
    Prefix,
    /// `[attr$=v]`
    Suffix,
    /// `[attr*=v]`
    Substring,
}

/// One simple selector within a compound.
#[derive(Debug, Clone, PartialEq)]
pub enum SimpleSelector {
    /// `*`
    Universal,
    /// `div`
    Type(String),
    /// `#id`
    Id(String),
    /// `.class`
    Class(String),
    /// `[attr op value]`
    Attr {
        /// Lowercased attribute name.
        name: String,
        /// Operator; value ignored for [`AttrOp::Exists`].
        op: AttrOp,
        /// Comparison value.
        value: String,
    },
    /// `:first-child`
    FirstChild,
    /// `:last-child`
    LastChild,
    /// `:only-child`
    OnlyChild,
    /// `:root`
    Root,
    /// `:empty`
    Empty,
    /// `:nth-child(an+b)`
    NthChild(i32, i32),
    /// `:nth-of-type(an+b)`
    NthOfType(i32, i32),
    /// `:first-of-type`
    FirstOfType,
    /// `:last-of-type`
    LastOfType,
    /// `:not(compound)`
    Not(Box<Compound>),
    /// jQuery extension `:contains("text")`.
    Contains(String),
}

/// A compound selector: simple selectors with no combinator between them,
/// e.g. `td.alt1[width]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Compound {
    /// The simple selectors, all of which must match.
    pub parts: Vec<SimpleSelector>,
}

/// Relationship between adjacent compounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combinator {
    /// Whitespace.
    Descendant,
    /// `>`
    Child,
    /// `+`
    NextSibling,
    /// `~`
    SubsequentSibling,
}

/// A complex selector: the rightmost (key) compound plus the chain of
/// `(combinator, compound)` pairs leading left from it.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexSelector {
    /// Rightmost compound — matched against the candidate element itself.
    pub key: Compound,
    /// Leftward chain, nearest first.
    pub chain: Vec<(Combinator, Compound)>,
}

/// A comma-separated selector list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectorList {
    /// The alternatives; an element matches when any alternative does.
    pub selectors: Vec<ComplexSelector>,
}

impl fmt::Display for SelectorList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, sel) in self.selectors.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            let mut parts: Vec<String> = Vec::new();
            for (comb, compound) in sel.chain.iter().rev() {
                parts.push(format_compound(compound));
                parts.push(
                    match comb {
                        Combinator::Descendant => " ",
                        Combinator::Child => " > ",
                        Combinator::NextSibling => " + ",
                        Combinator::SubsequentSibling => " ~ ",
                    }
                    .to_string(),
                );
            }
            parts.push(format_compound(&sel.key));
            f.write_str(&parts.concat())?;
        }
        Ok(())
    }
}

fn format_compound(c: &Compound) -> String {
    let mut out = String::new();
    for p in &c.parts {
        match p {
            SimpleSelector::Universal => out.push('*'),
            SimpleSelector::Type(t) => out.push_str(t),
            SimpleSelector::Id(i) => {
                out.push('#');
                out.push_str(i);
            }
            SimpleSelector::Class(c) => {
                out.push('.');
                out.push_str(c);
            }
            SimpleSelector::Attr { name, op, value } => {
                out.push('[');
                out.push_str(name);
                let op_str = match op {
                    AttrOp::Exists => None,
                    AttrOp::Equals => Some("="),
                    AttrOp::Includes => Some("~="),
                    AttrOp::DashMatch => Some("|="),
                    AttrOp::Prefix => Some("^="),
                    AttrOp::Suffix => Some("$="),
                    AttrOp::Substring => Some("*="),
                };
                if let Some(op_str) = op_str {
                    out.push_str(op_str);
                    out.push('"');
                    out.push_str(value);
                    out.push('"');
                }
                out.push(']');
            }
            SimpleSelector::FirstChild => out.push_str(":first-child"),
            SimpleSelector::LastChild => out.push_str(":last-child"),
            SimpleSelector::OnlyChild => out.push_str(":only-child"),
            SimpleSelector::Root => out.push_str(":root"),
            SimpleSelector::Empty => out.push_str(":empty"),
            SimpleSelector::NthChild(a, b) => {
                out.push_str(&format!(":nth-child({a}n+{b})"));
            }
            SimpleSelector::NthOfType(a, b) => {
                out.push_str(&format!(":nth-of-type({a}n+{b})"));
            }
            SimpleSelector::FirstOfType => out.push_str(":first-of-type"),
            SimpleSelector::LastOfType => out.push_str(":last-of-type"),
            SimpleSelector::Not(inner) => {
                out.push_str(":not(");
                out.push_str(&format_compound(inner));
                out.push(')');
            }
            SimpleSelector::Contains(text) => {
                out.push_str(&format!(":contains(\"{text}\")"));
            }
        }
    }
    if out.is_empty() {
        out.push('*');
    }
    out
}

impl SelectorList {
    /// Parses a comma-separated selector list.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSelectorError`] on malformed input (empty selector,
    /// bad attribute operator, unterminated bracket/paren, ...).
    ///
    /// # Examples
    ///
    /// ```
    /// use msite_selectors::css::SelectorList;
    /// let list = SelectorList::parse("table.forum > tr td:first-child, #login").unwrap();
    /// assert_eq!(list.selectors.len(), 2);
    /// ```
    pub fn parse(input: &str) -> Result<SelectorList, ParseSelectorError> {
        Parser::new(input).parse_list()
    }

    /// Highest specificity among the alternatives, as
    /// `(ids, classes/attrs/pseudo, types)`.
    pub fn specificity(&self) -> (u32, u32, u32) {
        self.selectors
            .iter()
            .map(complex_specificity)
            .max()
            .unwrap_or((0, 0, 0))
    }

    /// True when element `node` matches any alternative.
    pub fn matches(&self, doc: &Document, node: NodeId) -> bool {
        self.selectors.iter().any(|s| matches_complex(doc, node, s))
    }

    /// All elements under `scope` (excluding `scope` itself) matching this
    /// list, in document order.
    ///
    /// Candidates pass through a per-alternative bloom prefilter first:
    /// each alternative's key compound contributes its required
    /// type/id/class tokens to a 64-bit signature, each element hashes
    /// its own tokens once, and a subset test rejects most elements
    /// without touching the per-char matching path. False positives
    /// fall through to the full matcher; false negatives are impossible
    /// (a matching element necessarily carries every required token),
    /// so the result is identical to [`SelectorList::select_scalar`] —
    /// pinned by a property gate in `tests/bloom_identity.rs`.
    pub fn select(&self, doc: &Document, scope: NodeId) -> Vec<NodeId> {
        // Hashing an element's tokens only pays off when the signature
        // is consulted more than once: one element hash buys one subset
        // test per alternative, so engage the prefilter for lists with
        // several alternatives and skip it for one or two selectors
        // (whose key-compound match is as cheap as the subset test).
        // Either way the result set is identical — the prefilter only
        // ever skips the full matcher, never changes its answer.
        let use_bloom = self.selectors.len() >= 3;
        let key_blooms: Vec<u64> = if use_bloom {
            self.selectors
                .iter()
                .map(|s| compound_bloom(&s.key))
                .collect()
        } else {
            vec![0; self.selectors.len()]
        };
        doc.descendants(scope)
            .filter(|&id| {
                let Some(element) = doc.data(id).as_element() else {
                    return false;
                };
                let eb = if use_bloom { element_bloom(element) } else { 0 };
                self.selectors
                    .iter()
                    .zip(&key_blooms)
                    .any(|(s, &kb)| kb & eb == kb && matches_complex(doc, id, s))
            })
            .collect()
    }

    /// [`SelectorList::select`] without the bloom prefilter — the
    /// reference twin the identity gate compares against.
    #[doc(hidden)]
    pub fn select_scalar(&self, doc: &Document, scope: NodeId) -> Vec<NodeId> {
        doc.descendants(scope)
            .filter(|&id| doc.data(id).as_element().is_some())
            .filter(|&id| self.matches(doc, id))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Bloom prefilter
// ---------------------------------------------------------------------

/// Token kinds are mixed into the hash so `div` the type and `div` the
/// class produce unrelated signatures.
const TOKEN_TYPE: u64 = 0x9E;
const TOKEN_ID: u64 = 0xB1;
const TOKEN_CLASS: u64 = 0xC7;

/// Two-probe bloom signature of one token. Type tokens are hashed
/// through the branchless SWAR case fold so `DIV` and `div` collide by
/// construction — the exact comparison still runs afterwards, keeping
/// scalar semantics (which are case-sensitive) intact.
fn token_mask(kind: u64, token: &str, fold_case: bool) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ (kind.wrapping_mul(0x100_0000_01B3));
    // Word-at-a-time FNV variant: one multiply per eight bytes (tokens
    // are almost always a single word) instead of one per byte. Both
    // sides of the subset test use this same function, so the lane
    // packing only has to be consistent, not canonical.
    for chunk in token.as_bytes().chunks(8) {
        let mut lane = [0u8; 8];
        lane[..chunk.len()].copy_from_slice(chunk);
        let mut word = u64::from_le_bytes(lane);
        if fold_case {
            word = swar::lower_word(word);
        }
        h = (h ^ word).wrapping_mul(0x100_0000_01B3);
    }
    (1 << (h & 63)) | (1 << ((h >> 8) & 63))
}

/// The required-token signature of a key compound: type, id and class
/// parts only. Negations, attributes and pseudo-classes contribute
/// nothing (they impose no token the element must carry), so an empty
/// signature lets every element through to the full matcher.
fn compound_bloom(compound: &Compound) -> u64 {
    let mut bloom = 0;
    for part in &compound.parts {
        match part {
            SimpleSelector::Type(t) => bloom |= token_mask(TOKEN_TYPE, t, true),
            SimpleSelector::Id(id) => bloom |= token_mask(TOKEN_ID, id, false),
            SimpleSelector::Class(c) => bloom |= token_mask(TOKEN_CLASS, c, false),
            _ => {}
        }
    }
    bloom
}

/// The token signature an element advertises: its case-folded name,
/// its id, and every class token.
fn element_bloom(element: &msite_html::Element) -> u64 {
    let mut bloom = token_mask(TOKEN_TYPE, element.name(), true);
    if let Some(id) = element.attr("id") {
        bloom |= token_mask(TOKEN_ID, id, false);
    }
    if let Some(classes) = element.attr("class") {
        for class in classes.split_ascii_whitespace() {
            bloom |= token_mask(TOKEN_CLASS, class, false);
        }
    }
    bloom
}

fn complex_specificity(sel: &ComplexSelector) -> (u32, u32, u32) {
    let mut spec = compound_specificity(&sel.key);
    for (_, c) in &sel.chain {
        let s = compound_specificity(c);
        spec.0 += s.0;
        spec.1 += s.1;
        spec.2 += s.2;
    }
    spec
}

fn compound_specificity(c: &Compound) -> (u32, u32, u32) {
    let mut spec = (0, 0, 0);
    for p in &c.parts {
        match p {
            SimpleSelector::Id(_) => spec.0 += 1,
            SimpleSelector::Class(_)
            | SimpleSelector::Attr { .. }
            | SimpleSelector::FirstChild
            | SimpleSelector::LastChild
            | SimpleSelector::OnlyChild
            | SimpleSelector::Root
            | SimpleSelector::Empty
            | SimpleSelector::NthChild(..)
            | SimpleSelector::NthOfType(..)
            | SimpleSelector::FirstOfType
            | SimpleSelector::LastOfType
            | SimpleSelector::Contains(_) => spec.1 += 1,
            SimpleSelector::Type(_) => spec.2 += 1,
            SimpleSelector::Universal => {}
            SimpleSelector::Not(inner) => {
                let s = compound_specificity(inner);
                spec.0 += s.0;
                spec.1 += s.1;
                spec.2 += s.2;
            }
        }
    }
    spec
}

// ---------------------------------------------------------------------
// Matching
// ---------------------------------------------------------------------

fn matches_complex(doc: &Document, node: NodeId, sel: &ComplexSelector) -> bool {
    if !matches_compound(doc, node, &sel.key) {
        return false;
    }
    matches_chain(doc, node, &sel.chain)
}

fn matches_chain(doc: &Document, node: NodeId, chain: &[(Combinator, Compound)]) -> bool {
    let Some(((comb, compound), rest)) = chain.split_first() else {
        return true;
    };
    match comb {
        Combinator::Child => match element_parent(doc, node) {
            Some(p) => matches_compound(doc, p, compound) && matches_chain(doc, p, rest),
            None => false,
        },
        Combinator::Descendant => {
            let mut cur = element_parent(doc, node);
            while let Some(p) = cur {
                if matches_compound(doc, p, compound) && matches_chain(doc, p, rest) {
                    return true;
                }
                cur = element_parent(doc, p);
            }
            false
        }
        Combinator::NextSibling => match prev_element_sibling(doc, node) {
            Some(s) => matches_compound(doc, s, compound) && matches_chain(doc, s, rest),
            None => false,
        },
        Combinator::SubsequentSibling => {
            let mut cur = prev_element_sibling(doc, node);
            while let Some(s) = cur {
                if matches_compound(doc, s, compound) && matches_chain(doc, s, rest) {
                    return true;
                }
                cur = prev_element_sibling(doc, s);
            }
            false
        }
    }
}

fn element_parent(doc: &Document, node: NodeId) -> Option<NodeId> {
    let p = doc.node(node).parent()?;
    doc.data(p).as_element().map(|_| p)
}

fn prev_element_sibling(doc: &Document, node: NodeId) -> Option<NodeId> {
    let mut cur = doc.node(node).prev_sibling();
    while let Some(s) = cur {
        if doc.data(s).as_element().is_some() {
            return Some(s);
        }
        cur = doc.node(s).prev_sibling();
    }
    None
}

fn matches_compound(doc: &Document, node: NodeId, compound: &Compound) -> bool {
    let Some(element) = doc.data(node).as_element() else {
        return false;
    };
    compound.parts.iter().all(|part| match part {
        SimpleSelector::Universal => true,
        SimpleSelector::Type(t) => element.name() == t,
        SimpleSelector::Id(id) => element.attr("id") == Some(id.as_str()),
        SimpleSelector::Class(c) => element.has_class(c),
        SimpleSelector::Attr { name, op, value } => match element.attr(name) {
            None => false,
            Some(actual) => match op {
                AttrOp::Exists => true,
                AttrOp::Equals => actual == value,
                AttrOp::Includes => actual.split_ascii_whitespace().any(|w| w == value),
                AttrOp::DashMatch => {
                    actual == value
                        || actual
                            .strip_prefix(value.as_str())
                            .map(|r| r.starts_with('-'))
                            .unwrap_or(false)
                }
                AttrOp::Prefix => !value.is_empty() && actual.starts_with(value.as_str()),
                AttrOp::Suffix => !value.is_empty() && actual.ends_with(value.as_str()),
                AttrOp::Substring => !value.is_empty() && actual.contains(value.as_str()),
            },
        },
        SimpleSelector::FirstChild => doc.element_sibling_index(node) == Some(1),
        SimpleSelector::LastChild => is_last_element_child(doc, node),
        SimpleSelector::OnlyChild => {
            doc.element_sibling_index(node) == Some(1) && is_last_element_child(doc, node)
        }
        SimpleSelector::Root => element.name() == "html",
        SimpleSelector::Empty => doc.children(node).next().is_none(),
        SimpleSelector::NthChild(a, b) => match doc.element_sibling_index(node) {
            Some(index) => nth_matches(*a, *b, index as i32),
            None => false,
        },
        SimpleSelector::NthOfType(a, b) => match type_sibling_index(doc, node) {
            Some(index) => nth_matches(*a, *b, index as i32),
            None => false,
        },
        SimpleSelector::FirstOfType => type_sibling_index(doc, node) == Some(1),
        SimpleSelector::LastOfType => is_last_of_type(doc, node),
        SimpleSelector::Not(inner) => !matches_compound(doc, node, inner),
        SimpleSelector::Contains(text) => doc.text_content(node).contains(text.as_str()),
    })
}

/// 1-based position of `node` among siblings sharing its tag name.
fn type_sibling_index(doc: &Document, node: NodeId) -> Option<usize> {
    let name = doc.tag_name(node)?.to_string();
    let parent = doc.node(node).parent()?;
    let mut index = 0;
    for sibling in doc.children(parent) {
        if doc.tag_name(sibling) == Some(name.as_str()) {
            index += 1;
        }
        if sibling == node {
            return Some(index);
        }
    }
    None
}

fn is_last_of_type(doc: &Document, node: NodeId) -> bool {
    let Some(name) = doc.tag_name(node).map(str::to_string) else {
        return false;
    };
    if doc.node(node).parent().is_none() {
        return false;
    }
    let mut cur = doc.node(node).next_sibling();
    while let Some(s) = cur {
        if doc.tag_name(s) == Some(name.as_str()) {
            return false;
        }
        cur = doc.node(s).next_sibling();
    }
    true
}

fn is_last_element_child(doc: &Document, node: NodeId) -> bool {
    let mut cur = doc.node(node).next_sibling();
    while let Some(s) = cur {
        if doc.data(s).as_element().is_some() {
            return false;
        }
        cur = doc.node(s).next_sibling();
    }
    doc.node(node).parent().is_some()
}

/// True when `index` (1-based) is representable as `a*n + b` for some
/// integer `n >= 0`.
fn nth_matches(a: i32, b: i32, index: i32) -> bool {
    if a == 0 {
        return index == b;
    }
    let diff = index - b;
    diff % a == 0 && diff / a >= 0
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    fn err(&self, msg: impl Into<String>) -> ParseSelectorError {
        ParseSelectorError::new(msg, self.pos)
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.peek()?;
        self.pos += ch.len_utf8();
        Some(ch)
    }

    fn skip_ws(&mut self) -> bool {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
        self.pos != start
    }

    fn parse_list(&mut self) -> Result<SelectorList, ParseSelectorError> {
        let mut selectors = Vec::new();
        loop {
            self.skip_ws();
            selectors.push(self.parse_complex()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                None => break,
                Some(c) => return Err(self.err(format!("unexpected character `{c}`"))),
            }
        }
        Ok(SelectorList { selectors })
    }

    fn parse_complex(&mut self) -> Result<ComplexSelector, ParseSelectorError> {
        // Parse left-to-right, then reverse into key+chain form.
        let mut compounds = vec![self.parse_compound()?];
        let mut combinators: Vec<Combinator> = Vec::new();
        loop {
            let had_ws = self.skip_ws();
            let comb = match self.peek() {
                Some('>') => {
                    self.bump();
                    Combinator::Child
                }
                Some('+') => {
                    self.bump();
                    Combinator::NextSibling
                }
                Some('~') => {
                    self.bump();
                    Combinator::SubsequentSibling
                }
                Some(c) if had_ws && c != ',' => Combinator::Descendant,
                _ => break,
            };
            self.skip_ws();
            compounds.push(self.parse_compound()?);
            combinators.push(comb);
        }
        let key = compounds.pop().expect("at least one compound");
        let mut chain: Vec<(Combinator, Compound)> = Vec::new();
        while let Some(compound) = compounds.pop() {
            let comb = combinators.pop().expect("combinator per extra compound");
            chain.push((comb, compound));
        }
        Ok(ComplexSelector { key, chain })
    }

    fn parse_compound(&mut self) -> Result<Compound, ParseSelectorError> {
        let mut parts = Vec::new();
        loop {
            match self.peek() {
                Some('*') => {
                    self.bump();
                    parts.push(SimpleSelector::Universal);
                }
                Some('#') => {
                    self.bump();
                    let name = self.parse_identifier()?;
                    parts.push(SimpleSelector::Id(name));
                }
                Some('.') => {
                    self.bump();
                    let name = self.parse_identifier()?;
                    parts.push(SimpleSelector::Class(name));
                }
                Some('[') => {
                    self.bump();
                    parts.push(self.parse_attr()?);
                }
                Some(':') => {
                    self.bump();
                    parts.push(self.parse_pseudo()?);
                }
                Some(c) if is_ident_start(c) => {
                    let name = self.parse_identifier()?;
                    parts.push(SimpleSelector::Type(name.to_ascii_lowercase()));
                }
                _ => break,
            }
        }
        if parts.is_empty() {
            return Err(self.err("expected a selector"));
        }
        Ok(Compound { parts })
    }

    fn parse_identifier(&mut self) -> Result<String, ParseSelectorError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if is_ident_char(c)) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_attr(&mut self) -> Result<SimpleSelector, ParseSelectorError> {
        self.skip_ws();
        let name = self.parse_identifier()?.to_ascii_lowercase();
        self.skip_ws();
        let op = match self.peek() {
            Some(']') => {
                self.bump();
                return Ok(SimpleSelector::Attr {
                    name,
                    op: AttrOp::Exists,
                    value: String::new(),
                });
            }
            Some('=') => {
                self.bump();
                AttrOp::Equals
            }
            Some(c @ ('~' | '|' | '^' | '$' | '*')) => {
                self.bump();
                if self.peek() != Some('=') {
                    return Err(self.err("expected `=` after attribute operator"));
                }
                self.bump();
                match c {
                    '~' => AttrOp::Includes,
                    '|' => AttrOp::DashMatch,
                    '^' => AttrOp::Prefix,
                    '$' => AttrOp::Suffix,
                    _ => AttrOp::Substring,
                }
            }
            _ => return Err(self.err("expected attribute operator or `]`")),
        };
        self.skip_ws();
        let value = self.parse_attr_value()?;
        self.skip_ws();
        if self.peek() != Some(']') {
            return Err(self.err("expected `]`"));
        }
        self.bump();
        Ok(SimpleSelector::Attr { name, op, value })
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseSelectorError> {
        match self.peek() {
            Some(q @ ('"' | '\'')) => {
                self.bump();
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == q {
                        let value = self.input[start..self.pos].to_string();
                        self.bump();
                        return Ok(value);
                    }
                    self.bump();
                }
                Err(self.err("unterminated string"))
            }
            _ => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if !c.is_whitespace() && c != ']') {
                    self.bump();
                }
                if self.pos == start {
                    return Err(self.err("expected attribute value"));
                }
                Ok(self.input[start..self.pos].to_string())
            }
        }
    }

    fn parse_pseudo(&mut self) -> Result<SimpleSelector, ParseSelectorError> {
        let name = self.parse_identifier()?.to_ascii_lowercase();
        match name.as_str() {
            "first-child" => Ok(SimpleSelector::FirstChild),
            "last-child" => Ok(SimpleSelector::LastChild),
            "only-child" => Ok(SimpleSelector::OnlyChild),
            "root" => Ok(SimpleSelector::Root),
            "empty" => Ok(SimpleSelector::Empty),
            "nth-child" => {
                self.expect('(')?;
                let arg = self.take_until(')')?;
                let (a, b) = parse_nth(arg.trim())
                    .ok_or_else(|| self.err(format!("bad nth-child argument `{arg}`")))?;
                Ok(SimpleSelector::NthChild(a, b))
            }
            "nth-of-type" => {
                self.expect('(')?;
                let arg = self.take_until(')')?;
                let (a, b) = parse_nth(arg.trim())
                    .ok_or_else(|| self.err(format!("bad nth-of-type argument `{arg}`")))?;
                Ok(SimpleSelector::NthOfType(a, b))
            }
            "first-of-type" => Ok(SimpleSelector::FirstOfType),
            "last-of-type" => Ok(SimpleSelector::LastOfType),
            "not" => {
                self.expect('(')?;
                let arg = self.take_until(')')?;
                let inner = Parser::new(&arg).parse_compound()?;
                Ok(SimpleSelector::Not(Box::new(inner)))
            }
            "contains" => {
                self.expect('(')?;
                let arg = self.take_until(')')?;
                let trimmed = arg.trim();
                let text = trimmed
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .or_else(|| {
                        trimmed
                            .strip_prefix('\'')
                            .and_then(|s| s.strip_suffix('\''))
                    })
                    .unwrap_or(trimmed);
                Ok(SimpleSelector::Contains(text.to_string()))
            }
            other => Err(self.err(format!("unsupported pseudo-class `:{other}`"))),
        }
    }

    fn expect(&mut self, ch: char) -> Result<(), ParseSelectorError> {
        if self.peek() == Some(ch) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{ch}`")))
        }
    }

    fn take_until(&mut self, terminator: char) -> Result<String, ParseSelectorError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == terminator {
                let content = self.input[start..self.pos].to_string();
                self.bump();
                return Ok(content);
            }
            self.bump();
        }
        Err(self.err(format!("expected `{terminator}`")))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '-'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Parses an `an+b` expression: `odd`, `even`, `5`, `2n`, `2n+1`, `-n+3`.
fn parse_nth(s: &str) -> Option<(i32, i32)> {
    match s {
        "odd" => return Some((2, 1)),
        "even" => return Some((2, 0)),
        _ => {}
    }
    let compact: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    if let Some(n_pos) = compact.find(['n', 'N']) {
        let a_part = &compact[..n_pos];
        let a = match a_part {
            "" | "+" => 1,
            "-" => -1,
            _ => a_part.parse().ok()?,
        };
        let b_part = &compact[n_pos + 1..];
        let b = if b_part.is_empty() {
            0
        } else {
            b_part.strip_prefix('+').unwrap_or(b_part).parse().ok()?
        };
        Some((a, b))
    } else {
        Some((0, compact.parse().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msite_html::parse_document;

    fn doc() -> Document {
        parse_document(
            r#"<html><body>
            <div id="main" class="wrap outer">
              <table class="forum" width="100%">
                <tr class="row odd"><td class="alt1">Forum A</td><td class="alt2"><a href="forumdisplay.php?f=1">go</a></td></tr>
                <tr class="row even"><td class="alt1">Forum B</td><td class="alt2"><a href="forumdisplay.php?f=2">go</a></td></tr>
                <tr class="row odd"><td class="alt1">Forum C</td><td class="alt2"><a href="https://other/x.png">img</a></td></tr>
              </table>
              <form id="login" action="login.php"><input type="text" name="user"><input type="password" name="pass"></form>
              <p></p>
            </div>
            </body></html>"#,
        )
    }

    fn select(d: &Document, sel: &str) -> Vec<NodeId> {
        SelectorList::parse(sel).unwrap().select(d, d.root())
    }

    #[test]
    fn type_and_universal() {
        let d = doc();
        assert_eq!(select(&d, "td").len(), 6);
        assert_eq!(select(&d, "TD").len(), 6);
        let all = select(&d, "*").len();
        assert!(all > 10);
    }

    #[test]
    fn id_selector() {
        let d = doc();
        assert_eq!(select(&d, "#login").len(), 1);
        assert_eq!(select(&d, "#missing").len(), 0);
        assert_eq!(select(&d, "form#login").len(), 1);
        assert_eq!(select(&d, "div#login").len(), 0);
    }

    #[test]
    fn class_selectors() {
        let d = doc();
        assert_eq!(select(&d, ".alt1").len(), 3);
        assert_eq!(select(&d, ".row.odd").len(), 2);
        assert_eq!(select(&d, "tr.even").len(), 1);
    }

    #[test]
    fn attribute_operators() {
        let d = doc();
        assert_eq!(select(&d, "[href]").len(), 3);
        assert_eq!(select(&d, "[width=100%]").len(), 1);
        assert_eq!(select(&d, "a[href^=forumdisplay]").len(), 2);
        assert_eq!(select(&d, "a[href$='.png']").len(), 1);
        assert_eq!(select(&d, "a[href*='f=2']").len(), 1);
        assert_eq!(select(&d, "[class~=odd]").len(), 2);
        assert_eq!(select(&d, "input[type=password]").len(), 1);
    }

    #[test]
    fn dash_match() {
        let d = parse_document(r#"<p lang="en">a</p><p lang="en-US">b</p><p lang="enx">c</p>"#);
        assert_eq!(select(&d, "[lang|=en]").len(), 2);
    }

    #[test]
    fn combinators() {
        let d = doc();
        assert_eq!(select(&d, "table td").len(), 6);
        assert_eq!(select(&d, "table > tr > td").len(), 6);
        assert_eq!(select(&d, "div > table").len(), 1);
        assert_eq!(select(&d, "body > table").len(), 0);
        assert_eq!(select(&d, "td.alt1 + td.alt2").len(), 3);
        assert_eq!(select(&d, "tr.odd ~ tr.even").len(), 1);
        assert_eq!(select(&d, "tr ~ tr").len(), 2);
    }

    #[test]
    fn structural_pseudo_classes() {
        let d = doc();
        assert_eq!(select(&d, "td:first-child").len(), 3);
        assert_eq!(select(&d, "td:last-child").len(), 3);
        assert_eq!(select(&d, "tr:nth-child(odd)").len(), 2);
        assert_eq!(select(&d, "tr:nth-child(2)").len(), 1);
        assert_eq!(select(&d, "tr:nth-child(2n)").len(), 1);
        assert_eq!(select(&d, "tr:nth-child(n+2)").len(), 2);
        assert_eq!(select(&d, "p:empty").len(), 1);
        assert_eq!(select(&d, "table:only-child").len(), 0);
    }

    #[test]
    fn of_type_pseudo_classes() {
        let d =
            parse_document("<div><h2>t</h2><p>a</p><p>b</p><p>c</p><span>x</span><p>d</p></div>");
        // p is never :first-child here (h2 is), but is :first-of-type.
        assert_eq!(select(&d, "p:first-child").len(), 0);
        assert_eq!(select(&d, "p:first-of-type").len(), 1);
        assert_eq!(d.text_content(select(&d, "p:first-of-type")[0]), "a");
        assert_eq!(d.text_content(select(&d, "p:last-of-type")[0]), "d");
        assert_eq!(select(&d, "span:last-of-type").len(), 1);
        // nth-of-type counts only same-tag siblings.
        assert_eq!(d.text_content(select(&d, "p:nth-of-type(2)")[0]), "b");
        assert_eq!(select(&d, "p:nth-of-type(odd)").len(), 2); // a, c
        assert_eq!(select(&d, "p:nth-of-type(9)").len(), 0);
    }

    #[test]
    fn negation_and_contains() {
        let d = doc();
        assert_eq!(select(&d, "td:not(.alt1)").len(), 3);
        assert_eq!(select(&d, "td:contains('Forum B')").len(), 1);
        assert_eq!(select(&d, "tr:contains(\"Forum\")").len(), 3);
        assert_eq!(select(&d, "input:not([type=password])").len(), 1);
    }

    #[test]
    fn selector_lists() {
        let d = doc();
        assert_eq!(select(&d, "form, table").len(), 2);
        assert_eq!(select(&d, ".alt1, .alt2, #login").len(), 7);
    }

    #[test]
    fn specificity_ordering() {
        let id = SelectorList::parse("#a").unwrap().specificity();
        let class = SelectorList::parse(".a.b").unwrap().specificity();
        let ty = SelectorList::parse("div span").unwrap().specificity();
        assert!(id > class && class > ty);
        assert_eq!(ty, (0, 0, 2));
        assert_eq!(
            SelectorList::parse("div#x .y[z]:first-child")
                .unwrap()
                .specificity(),
            (1, 3, 1)
        );
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "  ",
            "..x",
            "[",
            "[a=",
            "[a^b]",
            ":bogus",
            "a >",
            "a,,b",
            ":nth-child(x)",
        ] {
            assert!(SelectorList::parse(bad).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn nth_parse_forms() {
        assert_eq!(parse_nth("odd"), Some((2, 1)));
        assert_eq!(parse_nth("even"), Some((2, 0)));
        assert_eq!(parse_nth("3"), Some((0, 3)));
        assert_eq!(parse_nth("2n"), Some((2, 0)));
        assert_eq!(parse_nth("2n+1"), Some((2, 1)));
        assert_eq!(parse_nth("-n+3"), Some((-1, 3)));
        assert_eq!(parse_nth("+n"), Some((1, 0)));
        assert_eq!(parse_nth(" 2n + 1 "), Some((2, 1)));
        assert_eq!(parse_nth("garbage"), None);
    }

    #[test]
    fn nth_semantics() {
        // -n+3 matches the first three children.
        assert!(nth_matches(-1, 3, 1));
        assert!(nth_matches(-1, 3, 3));
        assert!(!nth_matches(-1, 3, 4));
        assert!(nth_matches(0, 2, 2));
        assert!(!nth_matches(0, 2, 4));
        assert!(!nth_matches(2, 1, 0));
    }

    #[test]
    fn display_round_trip() {
        for sel in [
            "div > p.note:first-child",
            "#a .b[c=\"d\"], span + i",
            "td:not(.alt1):contains(\"x\")",
            "tr:nth-child(2n+1)",
        ] {
            let parsed = SelectorList::parse(sel).unwrap();
            let printed = parsed.to_string();
            let reparsed = SelectorList::parse(&printed).unwrap();
            assert_eq!(parsed, reparsed, "{sel} -> {printed}");
        }
    }

    #[test]
    fn whitespace_variants_equivalent() {
        let d = doc();
        assert_eq!(select(&d, "div>table"), select(&d, "div > table"));
        assert_eq!(
            select(&d, "td.alt1+td.alt2"),
            select(&d, "td.alt1 + td.alt2")
        );
    }
}
