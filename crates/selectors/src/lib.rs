//! # msite-selectors
//!
//! Object identification and DOM manipulation for the m.Site
//! reproduction: a CSS3 selector engine, an XPath subset, and a
//! jQuery-like [`Query`] API — the "server-side jQuery port" the paper's
//! proxy uses to locate and rewrite page objects.
//!
//! ```
//! use msite_html::parse_document;
//! use msite_selectors::{Query, xpath};
//!
//! let mut doc = parse_document(
//!     "<table class='forum'><tr><td class='alt1'>Forum A</td></tr></table>");
//!
//! // CSS3 selection (jQuery-style).
//! let cells = Query::select(&doc, "table.forum td.alt1").unwrap();
//! assert_eq!(cells.text(&doc), "Forum A");
//!
//! // XPath selection (PageTailor-style).
//! let same = xpath::evaluate(&doc, doc.root(), "//td[@class='alt1']").unwrap();
//! assert_eq!(same.len(), 1);
//!
//! // Manipulation.
//! cells.set_css(&mut doc, "font-size", "14px");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod css;
pub mod query;
pub mod xpath;

pub use css::{
    AttrOp, Combinator, ComplexSelector, Compound, ParseSelectorError, SelectorList, SimpleSelector,
};
pub use query::Query;
pub use xpath::{ParseXPathError, XPath};
