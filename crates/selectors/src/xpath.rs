//! A pragmatic XPath subset for DOM-based object identification.
//!
//! The m.Site paper (like PageTailor and Greasemonkey scripts it cites)
//! identifies page objects with XPath. This module supports the forms
//! those tools emit:
//!
//! - absolute (`/html/body/div`) and anywhere (`//table`) paths;
//! - name and wildcard node tests (`div`, `*`);
//! - positional predicates (`//tr[2]`);
//! - attribute predicates (`//a[@href]`, `//td[@class='alt1']`);
//! - chained steps mixing `/` and `//`;
//! - `..` parent steps.

use msite_html::{Document, NodeId};
use std::error::Error;
use std::fmt;

/// Error produced for malformed XPath expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseXPathError {
    message: String,
}

impl ParseXPathError {
    fn new(message: impl Into<String>) -> Self {
        ParseXPathError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseXPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid xpath: {}", self.message)
    }
}

impl Error for ParseXPathError {}

/// Which axis a step walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    /// `/name` — direct children.
    Child,
    /// `//name` — all descendants.
    Descendant,
    /// `..` — parent.
    Parent,
}

/// A node test.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NodeTest {
    Name(String),
    Any,
    Parent,
}

/// A predicate within `[...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Predicate {
    /// `[3]` — 1-based position within the step's per-parent matches.
    Position(usize),
    /// `[@attr]`
    HasAttr(String),
    /// `[@attr='value']`
    AttrEquals(String, String),
    /// `[text()='value']`
    TextEquals(String),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Step {
    axis: Axis,
    test: NodeTest,
    predicates: Vec<Predicate>,
}

/// A parsed XPath expression.
///
/// # Examples
///
/// ```
/// use msite_selectors::xpath::XPath;
///
/// let doc = msite_html::parse_document(
///     "<table><tr><td class='alt1'>a</td></tr><tr><td>b</td></tr></table>");
/// let path = XPath::parse("//tr[2]/td").unwrap();
/// let hits = path.evaluate(&doc, doc.root());
/// assert_eq!(hits.len(), 1);
/// assert_eq!(doc.text_content(hits[0]), "b");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPath {
    steps: Vec<Step>,
    absolute: bool,
}

impl XPath {
    /// Parses an XPath expression.
    ///
    /// # Errors
    ///
    /// Returns [`ParseXPathError`] when the expression uses syntax outside
    /// the supported subset or is malformed.
    pub fn parse(input: &str) -> Result<XPath, ParseXPathError> {
        let trimmed = input.trim();
        if trimmed.is_empty() {
            return Err(ParseXPathError::new("empty expression"));
        }
        let mut rest = trimmed;
        let absolute = rest.starts_with('/');
        let mut steps = Vec::new();
        while !rest.is_empty() {
            let axis = if let Some(r) = rest.strip_prefix("//") {
                rest = r;
                Axis::Descendant
            } else if let Some(r) = rest.strip_prefix('/') {
                rest = r;
                Axis::Child
            } else if steps.is_empty() {
                // Relative path start: implicit child axis.
                Axis::Child
            } else {
                return Err(ParseXPathError::new(format!(
                    "expected `/` before `{rest}`"
                )));
            };
            if rest.is_empty() {
                return Err(ParseXPathError::new("trailing slash"));
            }
            let (step, remaining) = parse_step(rest, axis)?;
            steps.push(step);
            rest = remaining;
        }
        if steps.is_empty() {
            return Err(ParseXPathError::new("no steps"));
        }
        Ok(XPath { steps, absolute })
    }

    /// Evaluates the expression against `doc`, starting from `context`.
    ///
    /// Absolute paths (`/...`) restart from the document root regardless
    /// of `context`; `//...` paths search all descendants of `context`.
    /// Results are deduplicated and in document order.
    pub fn evaluate(&self, doc: &Document, context: NodeId) -> Vec<NodeId> {
        let start = if self.absolute && self.steps.first().map(|s| s.axis) == Some(Axis::Child) {
            doc.root()
        } else {
            context
        };
        let mut current = vec![start];
        for step in &self.steps {
            let mut next: Vec<NodeId> = Vec::new();
            for &node in &current {
                let candidates: Vec<NodeId> = match step.axis {
                    Axis::Child => doc.children(node).collect(),
                    Axis::Descendant => doc.descendants(node).collect(),
                    Axis::Parent => doc.node(node).parent().into_iter().collect(),
                };
                let mut matched: Vec<NodeId> = candidates
                    .into_iter()
                    .filter(|&c| test_matches(doc, c, &step.test))
                    .collect();
                for pred in &step.predicates {
                    matched = apply_predicate(doc, matched, pred);
                }
                next.extend(matched);
            }
            // Deduplicate preserving document order.
            next.sort();
            next.dedup();
            current = next;
        }
        current
    }
}

fn test_matches(doc: &Document, node: NodeId, test: &NodeTest) -> bool {
    match test {
        NodeTest::Name(name) => doc.tag_name(node) == Some(name.as_str()),
        NodeTest::Any => doc.data(node).as_element().is_some(),
        NodeTest::Parent => true,
    }
}

fn apply_predicate(doc: &Document, nodes: Vec<NodeId>, pred: &Predicate) -> Vec<NodeId> {
    match pred {
        Predicate::Position(n) => {
            // Position is evaluated per the candidate list from one context
            // node, which is what callers get since predicates run before
            // merging across contexts.
            nodes.into_iter().skip(n - 1).take(1).collect()
        }
        Predicate::HasAttr(name) => nodes
            .into_iter()
            .filter(|&id| doc.attr(id, name).is_some())
            .collect(),
        Predicate::AttrEquals(name, value) => nodes
            .into_iter()
            .filter(|&id| doc.attr(id, name) == Some(value.as_str()))
            .collect(),
        Predicate::TextEquals(value) => nodes
            .into_iter()
            .filter(|&id| doc.text_content(id).trim() == value)
            .collect(),
    }
}

/// Parses one step (node test + predicates), returning the remainder.
fn parse_step(input: &str, axis: Axis) -> Result<(Step, &str), ParseXPathError> {
    if let Some(rest) = input.strip_prefix("..") {
        return Ok((
            Step {
                axis: Axis::Parent,
                test: NodeTest::Parent,
                predicates: Vec::new(),
            },
            rest,
        ));
    }
    let name_len = input
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_' || *c == '*')
        .map(|c| c.len_utf8())
        .sum::<usize>();
    if name_len == 0 {
        return Err(ParseXPathError::new(format!(
            "expected node test at `{input}`"
        )));
    }
    let name = &input[..name_len];
    let test = if name == "*" {
        NodeTest::Any
    } else {
        NodeTest::Name(name.to_ascii_lowercase())
    };
    let mut rest = &input[name_len..];
    let mut predicates = Vec::new();
    while let Some(r) = rest.strip_prefix('[') {
        let close = r
            .find(']')
            .ok_or_else(|| ParseXPathError::new("unterminated predicate"))?;
        let body = &r[..close];
        predicates.push(parse_predicate(body)?);
        rest = &r[close + 1..];
    }
    Ok((
        Step {
            axis,
            test,
            predicates,
        },
        rest,
    ))
}

fn parse_predicate(body: &str) -> Result<Predicate, ParseXPathError> {
    let body = body.trim();
    if let Ok(n) = body.parse::<usize>() {
        if n == 0 {
            return Err(ParseXPathError::new("positions are 1-based"));
        }
        return Ok(Predicate::Position(n));
    }
    if let Some(attr_expr) = body.strip_prefix('@') {
        return match attr_expr.find('=') {
            None => {
                let name = attr_expr.trim().to_ascii_lowercase();
                if name.is_empty() {
                    return Err(ParseXPathError::new("empty attribute name"));
                }
                Ok(Predicate::HasAttr(name))
            }
            Some(eq) => {
                let name = attr_expr[..eq].trim().to_ascii_lowercase();
                if name.is_empty() {
                    return Err(ParseXPathError::new("empty attribute name"));
                }
                let value = unquote(attr_expr[eq + 1..].trim())?;
                Ok(Predicate::AttrEquals(name, value))
            }
        };
    }
    if let Some(text_expr) = body.strip_prefix("text()") {
        let rhs = text_expr
            .trim()
            .strip_prefix('=')
            .ok_or_else(|| ParseXPathError::new("expected `=` after text()"))?;
        return Ok(Predicate::TextEquals(unquote(rhs.trim())?));
    }
    Err(ParseXPathError::new(format!(
        "unsupported predicate `{body}`"
    )))
}

fn unquote(s: &str) -> Result<String, ParseXPathError> {
    let inner = s
        .strip_prefix('\'')
        .and_then(|x| x.strip_suffix('\''))
        .or_else(|| s.strip_prefix('"').and_then(|x| x.strip_suffix('"')))
        .ok_or_else(|| ParseXPathError::new(format!("expected quoted string, got `{s}`")))?;
    Ok(inner.to_string())
}

/// Convenience: parse and evaluate in one call.
///
/// # Errors
///
/// Returns the parse error; evaluation itself cannot fail.
pub fn evaluate(
    doc: &Document,
    context: NodeId,
    expr: &str,
) -> Result<Vec<NodeId>, ParseXPathError> {
    Ok(XPath::parse(expr)?.evaluate(doc, context))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msite_html::parse_document;

    fn doc() -> Document {
        parse_document(
            r#"<html><body>
              <div id="wrap">
                <table id="t1">
                  <tr><td class="alt1">r1c1</td><td>r1c2</td></tr>
                  <tr><td class="alt1">r2c1</td><td>r2c2</td></tr>
                </table>
                <div class="inner"><a href="x.php">link</a><a>anchor</a></div>
              </div>
            </body></html>"#,
        )
    }

    fn texts(doc: &Document, ids: &[NodeId]) -> Vec<String> {
        ids.iter()
            .map(|&id| doc.text_content(id).trim().to_string())
            .collect()
    }

    #[test]
    fn absolute_path() {
        let d = doc();
        let hits = evaluate(&d, d.root(), "/html/body/div/table").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(d.attr(hits[0], "id"), Some("t1"));
    }

    #[test]
    fn descendant_anywhere() {
        let d = doc();
        assert_eq!(evaluate(&d, d.root(), "//td").unwrap().len(), 4);
        assert_eq!(evaluate(&d, d.root(), "//table//td").unwrap().len(), 4);
    }

    #[test]
    fn positional_predicates() {
        let d = doc();
        let hits = evaluate(&d, d.root(), "//tr[2]/td[1]").unwrap();
        assert_eq!(texts(&d, &hits), ["r2c1"]);
        let first_row = evaluate(&d, d.root(), "//tr[1]").unwrap();
        assert_eq!(first_row.len(), 1);
    }

    #[test]
    fn attribute_predicates() {
        let d = doc();
        assert_eq!(evaluate(&d, d.root(), "//a[@href]").unwrap().len(), 1);
        assert_eq!(
            evaluate(&d, d.root(), "//td[@class='alt1']").unwrap().len(),
            2
        );
        assert_eq!(
            evaluate(&d, d.root(), "//td[@class=\"alt1\"][2]")
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn wildcard_and_parent() {
        let d = doc();
        let all_in_table = evaluate(&d, d.root(), "//table/*").unwrap();
        assert_eq!(all_in_table.len(), 2); // two tr
        let parent = evaluate(&d, d.root(), "//table/..").unwrap();
        assert_eq!(d.attr(parent[0], "id"), Some("wrap"));
    }

    #[test]
    fn text_predicate() {
        let d = doc();
        let hits = evaluate(&d, d.root(), "//td[text()='r1c2']").unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn relative_path_from_context() {
        let d = doc();
        let table = evaluate(&d, d.root(), "//table").unwrap()[0];
        let cells = evaluate(&d, table, "tr/td").unwrap();
        assert_eq!(cells.len(), 4);
    }

    #[test]
    fn results_deduplicated_in_order() {
        let d = doc();
        let hits = evaluate(&d, d.root(), "//div//a").unwrap();
        // Both divs contain the anchors; dedup must leave exactly two.
        assert_eq!(hits.len(), 2);
        assert!(hits[0] < hits[1]);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "/",
            "//",
            "//td[",
            "//td[@]",
            "//td[text()]",
            "//td[0]",
            "a b",
        ] {
            assert!(XPath::parse(bad).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn case_insensitive_names() {
        let d = doc();
        assert_eq!(evaluate(&d, d.root(), "//TABLE").unwrap().len(), 1);
    }

    #[test]
    fn no_matches_is_empty_not_error() {
        let d = doc();
        assert!(evaluate(&d, d.root(), "//video").unwrap().is_empty());
    }
}
