//! Property tests: the right-to-left selector matcher must agree with a
//! naive reference implementation, and parsing must be total on printable
//! input.

use msite_html::{parse_document, Document, NodeId};
use msite_selectors::{Query, SelectorList};
use msite_support::prop::{self, Gen};

/// Generates a random document from a fixed vocabulary so selectors have
/// something to hit.
fn arb_doc_source(g: &mut Gen) -> String {
    const TAGS: [&str; 7] = ["div", "span", "p", "td", "a", "ul", "li"];
    const CLASSES: [&str; 4] = ["", " class=\"x\"", " class=\"y\"", " class=\"x y\""];
    let nodes = g.vec(1, 19, |g| {
        let t = g.pick(&TAGS);
        let c = g.pick(&CLASSES);
        format!("<{t}{c}>t</{t}>")
    });
    let mut out = String::from("<body>");
    for (i, n) in nodes.iter().enumerate() {
        if i % 3 == 0 {
            out.push_str("<div class=\"wrap\">");
            out.push_str(n);
            out.push_str("</div>");
        } else {
            out.push_str(n);
        }
    }
    out.push_str("</body>");
    out
}

const SELECTORS: [&str; 16] = [
    "div",
    "span",
    ".x",
    ".y",
    "div.wrap",
    "div.wrap span",
    "div > span",
    "p + p",
    "li ~ li",
    "*",
    "div.wrap > .x",
    "span:first-child",
    "p:last-child",
    "li:nth-child(2n+1)",
    ":not(.x)",
    "div span, p",
];

/// O(n^3) reference matcher: brute force over every (node, alternative)
/// using only first principles.
fn reference_select(doc: &Document, selector: &str) -> Vec<NodeId> {
    let list = SelectorList::parse(selector).unwrap();
    doc.descendants(doc.root())
        .filter(|&id| doc.data(id).as_element().is_some())
        .filter(|&id| list.matches(doc, id))
        .collect()
}

/// An independent slow matcher for the subset used in `SELECTORS`,
/// implementing descendant/child/sibling semantics by enumerating all
/// ancestor/sibling chains.
fn slow_matches(doc: &Document, node: NodeId, selector: &str) -> bool {
    // Split on commas: any alternative may match.
    selector
        .split(',')
        .any(|alt| slow_match_complex(doc, node, alt.trim()))
}

fn slow_match_complex(doc: &Document, node: NodeId, alt: &str) -> bool {
    // Tokenize into compounds and combinators.
    let mut parts: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut depth = 0usize;
    for ch in alt.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            '>' | '+' | '~' if depth > 0 => cur.push(ch),
            c if c.is_whitespace() && depth > 0 => cur.push(c),
            '>' | '+' | '~' => {
                if !cur.trim().is_empty() {
                    parts.push(cur.trim().to_string());
                }
                parts.push(ch.to_string());
                cur.clear();
            }
            c if c.is_whitespace() => {
                if !cur.trim().is_empty() {
                    parts.push(cur.trim().to_string());
                    cur.clear();
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_string());
    }
    // Collapse: [compound, (comb, compound)...] where missing comb = descendant
    let mut compounds: Vec<String> = Vec::new();
    let mut combs: Vec<char> = Vec::new();
    let mut expect_compound = true;
    for p in parts {
        if p == ">" || p == "+" || p == "~" {
            if expect_compound {
                // combinator where compound expected: malformed; bail
                return false;
            }
            combs.push(p.chars().next().unwrap());
            expect_compound = true;
        } else {
            if !expect_compound {
                combs.push(' ');
            }
            compounds.push(p);
            expect_compound = false;
        }
    }
    slow_match_chain(doc, node, &compounds, &combs)
}

fn slow_match_chain(doc: &Document, node: NodeId, compounds: &[String], combs: &[char]) -> bool {
    let Some((key, rest_compounds)) = compounds.split_last() else {
        return true;
    };
    if !slow_match_compound(doc, node, key) {
        return false;
    }
    let Some((comb, rest_combs)) = combs.split_last() else {
        return rest_compounds.is_empty();
    };
    match comb {
        '>' => doc
            .node(node)
            .parent()
            .map(|p| {
                doc.data(p).as_element().is_some()
                    && slow_match_chain(doc, p, rest_compounds, rest_combs)
            })
            .unwrap_or(false),
        ' ' => doc
            .ancestors(node)
            .filter(|&a| doc.data(a).as_element().is_some())
            .any(|a| slow_match_chain(doc, a, rest_compounds, rest_combs)),
        '+' => {
            let mut prev = doc.node(node).prev_sibling();
            while let Some(p) = prev {
                if doc.data(p).as_element().is_some() {
                    return slow_match_chain(doc, p, rest_compounds, rest_combs);
                }
                prev = doc.node(p).prev_sibling();
            }
            false
        }
        '~' => {
            let mut prev = doc.node(node).prev_sibling();
            while let Some(p) = prev {
                if doc.data(p).as_element().is_some()
                    && slow_match_chain(doc, p, rest_compounds, rest_combs)
                {
                    return true;
                }
                prev = doc.node(p).prev_sibling();
            }
            false
        }
        _ => unreachable!(),
    }
}

fn slow_match_compound(doc: &Document, node: NodeId, compound: &str) -> bool {
    let Some(element) = doc.data(node).as_element() else {
        return false;
    };
    // Parse the limited grammar used in `SELECTORS`.
    let mut rest = compound;
    let mut matched_any = false;
    while !rest.is_empty() {
        if let Some(r) = rest.strip_prefix('*') {
            rest = r;
            matched_any = true;
        } else if let Some(r) = rest.strip_prefix('.') {
            let end = r
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-' || c == '_'))
                .unwrap_or(r.len());
            if !element.has_class(&r[..end]) {
                return false;
            }
            rest = &r[end..];
            matched_any = true;
        } else if let Some(r) = rest.strip_prefix(":not(") {
            let close = r.find(')').unwrap();
            if slow_match_compound(doc, node, &r[..close]) {
                return false;
            }
            rest = &r[close + 1..];
            matched_any = true;
        } else if let Some(r) = rest.strip_prefix(":first-child") {
            if doc.element_sibling_index(node) != Some(1) {
                return false;
            }
            rest = r;
            matched_any = true;
        } else if let Some(r) = rest.strip_prefix(":last-child") {
            let mut next = doc.node(node).next_sibling();
            while let Some(n) = next {
                if doc.data(n).as_element().is_some() {
                    return false;
                }
                next = doc.node(n).next_sibling();
            }
            if doc.node(node).parent().is_none() {
                return false;
            }
            rest = r;
            matched_any = true;
        } else if let Some(r) = rest.strip_prefix(":nth-child(") {
            let close = r.find(')').unwrap();
            let arg = &r[..close];
            // Only "2n+1" appears in the vocabulary.
            assert_eq!(arg, "2n+1");
            match doc.element_sibling_index(node) {
                Some(i) => {
                    if i % 2 != 1 {
                        return false;
                    }
                }
                None => return false,
            }
            rest = &r[close + 1..];
            matched_any = true;
        } else {
            let end = rest
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-' || c == '_'))
                .unwrap_or(rest.len());
            if end == 0 {
                return false;
            }
            if element.name() != &rest[..end] {
                return false;
            }
            rest = &rest[end..];
            matched_any = true;
        }
    }
    matched_any
}

/// The production matcher agrees with the naive reference matcher on
/// every generated (document, selector) pair.
#[test]
fn matcher_agrees_with_reference() {
    prop::check("matcher agrees with reference", 256, 0x5E1E_C700, |g| {
        let src = arb_doc_source(g);
        let sel = *g.pick(&SELECTORS);
        let doc = parse_document(&src);
        let fast = reference_select(&doc, sel);
        let slow: Vec<NodeId> = doc
            .descendants(doc.root())
            .filter(|&id| doc.data(id).as_element().is_some())
            .filter(|&id| slow_matches(&doc, id, sel))
            .collect();
        assert_eq!(fast, slow, "selector {sel} on {src}");
    });
}

/// Selector parsing is total (never panics) on arbitrary printable input.
#[test]
fn selector_parse_total() {
    prop::check("selector parse total", 256, 0x5E1E_C701, |g| {
        let input = g.ascii_string(48);
        let _ = SelectorList::parse(&input);
    });
}

/// Query::select equals SelectorList::select on the root.
#[test]
fn query_equals_selectorlist() {
    prop::check("query equals selector list", 256, 0x5E1E_C702, |g| {
        let src = arb_doc_source(g);
        let sel = *g.pick(&SELECTORS);
        let doc = parse_document(&src);
        let via_query = Query::select(&doc, sel).unwrap();
        let via_list = SelectorList::parse(sel).unwrap().select(&doc, doc.root());
        assert_eq!(via_query.ids().to_vec(), via_list);
    });
}

/// Display output reparses to an equivalent selector (same matches).
#[test]
fn display_preserves_semantics() {
    prop::check("display preserves semantics", 256, 0x5E1E_C703, |g| {
        let src = arb_doc_source(g);
        let sel = *g.pick(&SELECTORS);
        let doc = parse_document(&src);
        let parsed = SelectorList::parse(sel).unwrap();
        let printed = parsed.to_string();
        let reparsed = SelectorList::parse(&printed).unwrap();
        assert_eq!(
            parsed.select(&doc, doc.root()),
            reparsed.select(&doc, doc.root()),
            "{sel} vs {printed}"
        );
    });
}
