//! Identity gate for the bloom prefilter in `SelectorList::select`.
//!
//! The prefilter may only produce false positives (extra candidates the
//! full matcher then rejects), never false negatives — so `select` and
//! the prefilter-free `select_scalar` must return the exact same node
//! lists on arbitrary documents and selectors, including uppercase
//! names and id/class tokens engineered to collide across kinds.

use msite_html::parse_document;
use msite_selectors::SelectorList;
use msite_support::prop::{self, Gen};

fn arb_doc_source(g: &mut Gen) -> String {
    const TAGS: [&str; 8] = ["div", "span", "p", "td", "a", "ul", "li", "DIV"];
    // Tokens deliberately shared between tag/id/class namespaces so the
    // kind-tagged hashing is what keeps them apart.
    const IDS: [&str; 5] = ["", "main", "login", "div", "x"];
    const CLASSES: [&str; 6] = ["", "x", "y", "x y", "div", "alt1 ROW"];
    let mut out = String::from("<body>");
    let nodes = g.range_usize(1, 25);
    for _ in 0..nodes {
        let t = *g.pick(&TAGS);
        let id = *g.pick(&IDS);
        let class = *g.pick(&CLASSES);
        let mut open = format!("<{t}");
        if !id.is_empty() && g.bool() {
            open.push_str(&format!(" id=\"{id}\""));
        }
        if !class.is_empty() {
            open.push_str(&format!(" class=\"{class}\""));
        }
        open.push('>');
        if g.bool() {
            out.push_str("<div class=\"wrap\">");
            out.push_str(&open);
            out.push_str(&format!("t</{t}></div>"));
        } else {
            out.push_str(&open);
            out.push_str(&format!("t</{t}>"));
        }
    }
    out.push_str("</body>");
    out
}

const SELECTORS: [&str; 18] = [
    "div",
    "span",
    "#main",
    "#div",
    ".x",
    ".div",
    ".alt1.ROW",
    "div.wrap",
    "div.wrap .x",
    "div > span",
    "p + p",
    "li ~ li",
    "*",
    "td:first-child",
    ":not(.x)",
    "[id]",
    "a, #login, .y",
    "ul li:nth-child(2n+1)",
];

#[test]
fn select_with_and_without_prefilter_agree() {
    prop::check("bloom prefilter identity", 400, 0x0B10_0001, |g| {
        let src = arb_doc_source(g);
        let doc = parse_document(&src);
        let sel = *g.pick(&SELECTORS);
        let list = SelectorList::parse(sel).unwrap();
        assert_eq!(
            list.select(&doc, doc.root()),
            list.select_scalar(&doc, doc.root()),
            "selector {sel} on {src}"
        );
    });
}

#[test]
fn select_agrees_on_random_identifier_soup() {
    prop::check("bloom identity on random idents", 300, 0x0B10_0002, |g| {
        // Fully random idents: selectors that mostly miss, exercising
        // the rejection path.
        let tag = g.ident(6);
        let class = g.ident(6);
        let id = g.ident(6);
        let src = format!(
            "<body><{tag} class=\"{class}\"><p id=\"{id}\">x</p></{tag}><div>y</div></body>"
        );
        let doc = parse_document(&src);
        for sel in [
            tag.clone(),
            format!(".{class}"),
            format!("#{id}"),
            format!("{tag}.{class}"),
            format!("{tag} #{id}"),
            format!(".{id}"),
            format!("#{class}"),
        ] {
            let list = SelectorList::parse(&sel).unwrap();
            assert_eq!(
                list.select(&doc, doc.root()),
                list.select_scalar(&doc, doc.root()),
                "selector {sel} on {src}"
            );
        }
    });
}
