//! Ablation bench: the cost tiers of the adaptation pipeline the paper's
//! design exploits — filter-only (no DOM parse), DOM manipulation, and
//! full snapshot rendering.

use msite::attributes::{AdaptationSpec, Attribute, SnapshotSpec, SourceFilter, Target};
use msite::{adapt, PipelineContext};
use msite_bench::fixtures;
use msite_net::{Origin, Request};
use msite_support::benchkit::Criterion;
use msite_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let site = fixtures::forum();
    let page = site
        .handle(&Request::get(&fixtures::forum_index_url(&site)).unwrap())
        .body_text();
    let ctx = PipelineContext {
        base: "/m/forum".into(),
        browser_config: Default::default(),
        ..Default::default()
    };

    // Tier 1: source filters only — "avoiding a DOM parse altogether".
    let mut filter_spec = AdaptationSpec::new("forum", "http://f/");
    filter_spec.snapshot = None;
    let filter_spec = filter_spec
        .filter(SourceFilter::SetTitle {
            title: "Mobile".into(),
        })
        .filter(SourceFilter::Replace {
            find: "728".into(),
            replace: "320".into(),
        })
        .filter(SourceFilter::StripTag {
            tag: "script".into(),
        });

    // Tier 2: DOM-level attribute application (no rendering).
    let mut dom_spec = AdaptationSpec::new("forum", "http://f/");
    dom_spec.snapshot = None;
    let dom_spec = dom_spec
        .rule(Target::Css("#leaderboard".into()), vec![Attribute::Remove])
        .rule(
            Target::Css("#loginform".into()),
            vec![Attribute::Subpage {
                id: "login".into(),
                title: "Log in".into(),
                ajax: false,
                prerender: false,
            }],
        )
        .rule(
            Target::Css("#navrow".into()),
            vec![Attribute::LinksToColumns { columns: 2 }],
        );

    // Tier 3: full snapshot render.
    let mut snap_spec = dom_spec.clone();
    snap_spec.snapshot = Some(SnapshotSpec::default());

    let mut group = c.benchmark_group("pipeline_tiers");
    group.sample_size(20);
    group.bench_function("tier1_filters_only", |b| {
        b.iter(|| black_box(adapt(&filter_spec, &page, &ctx).unwrap().entry_html.len()))
    });
    group.bench_function("tier2_dom_attributes", |b| {
        b.iter(|| black_box(adapt(&dom_spec, &page, &ctx).unwrap().entry_html.len()))
    });
    group.sample_size(10);
    group.bench_function("tier3_snapshot_render", |b| {
        b.iter(|| black_box(adapt(&snap_spec, &page, &ctx).unwrap().images.len()))
    });
    group.finish();

    // Sanity: tier1 never parses, tier3 always renders.
    let tier1 = adapt(&filter_spec, &page, &ctx).unwrap();
    assert!(!tier1.stats.dom_parsed);
    let tier3 = adapt(&snap_spec, &page, &ctx).unwrap();
    assert!(tier3.stats.browser_used);
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
