//! Ablation bench: the shared render cache on vs. off — the paper's
//! "server-side caching to amortize rendering costs across many client
//! sessions".

use msite::cache::RenderCache;
use msite_bench::fixtures;
use msite_net::{Origin, OriginRef, Request};
use msite_support::benchkit::Criterion;
use msite_support::{criterion_group, criterion_main};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_cache(c: &mut Criterion) {
    let site = fixtures::forum();

    let mut group = c.benchmark_group("cache_amortization");
    group.sample_size(10);

    // Cache ON (normal proxy): entry requests after warmup hit the cache.
    let proxy = fixtures::forum_proxy(&site, Duration::ZERO);
    group.bench_function("entry_with_cache", |b| {
        b.iter(|| {
            black_box(
                proxy
                    .handle(&Request::get("http://p/m/forum/").unwrap())
                    .body
                    .len(),
            )
        })
    });

    // Cache OFF equivalent: a zero-TTL snapshot forces a rebuild per hit.
    let mut uncached_spec = fixtures::forum_spec(&site);
    if let Some(snap) = &mut uncached_spec.snapshot {
        snap.cache_ttl_secs = 0;
    }
    let uncached = Arc::new(msite::proxy::ProxyServer::new(
        uncached_spec,
        Arc::clone(&site) as OriginRef,
        msite::proxy::ProxyConfig::default(),
    ));
    group.measurement_time(Duration::from_secs(10));
    group.bench_function("entry_without_cache", |b| {
        b.iter(|| {
            black_box(
                uncached
                    .handle(&Request::get("http://p/m/forum/").unwrap())
                    .body
                    .len(),
            )
        })
    });
    group.finish();

    // Raw cache micro-costs.
    let mut micro = c.benchmark_group("render_cache_micro");
    micro.sample_size(30);
    let cache = RenderCache::new(256);
    cache.put("k", vec![0u8; 64 * 1024], None, Duration::from_secs(2));
    micro.bench_function("hit", |b| b.iter(|| black_box(cache.get("k").is_some())));
    micro.bench_function("miss", |b| {
        b.iter(|| black_box(cache.get("absent").is_none()))
    });
    micro.finish();

    println!(
        "\namortized rendering saved by the warm proxy so far: {:?} over {} hits",
        proxy.cache().amortized_savings(),
        proxy.cache().stats().hits
    );
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
