//! Render-engine bench: per-phase cost of the server-side browser on the
//! forum entry page (tidy/parse, cascade, layout, paint, encode).

use msite_bench::fixtures;
use msite_net::{Origin, Request};
use msite_render::{compute_styles, layout_document, paint, png, Stylesheet};
use msite_support::benchkit::Criterion;
use msite_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let site = fixtures::forum();
    let page = site
        .handle(&Request::get(&fixtures::forum_index_url(&site)).unwrap())
        .body_text();
    let css = site
        .handle(&Request::get(&format!("{}/clientscript/vbulletin.css", site.base_url())).unwrap())
        .body_text();

    let doc = msite_html::tidy::tidy(&page);
    let sheet = Stylesheet::parse(&css);
    let styles = compute_styles(&doc, &sheet);
    let layout = layout_document(&doc, &styles, 1024.0);
    let canvas = paint(&layout, 8192);

    let mut group = c.benchmark_group("render_engine");
    group.sample_size(20);
    group.bench_function("tidy_parse", |b| {
        b.iter(|| black_box(msite_html::tidy::tidy(&page).arena_len()))
    });
    group.bench_function("css_parse", |b| {
        b.iter(|| black_box(Stylesheet::parse(&css).rules.len()))
    });
    group.bench_function("cascade", |b| {
        b.iter(|| black_box(compute_styles(&doc, &sheet).len()))
    });
    group.bench_function("layout", |b| {
        b.iter(|| black_box(layout_document(&doc, &styles, 1024.0).box_count()))
    });
    group.bench_function("paint", |b| {
        b.iter(|| black_box(paint(&layout, 8192).height()))
    });
    group.sample_size(10);
    group.bench_function("png_encode", |b| {
        b.iter(|| black_box(png::encode(&canvas).len()))
    });
    group.finish();

    println!(
        "\nforum page: {} DOM slots, {} layout boxes, {}x{} canvas, {} B PNG",
        doc.arena_len(),
        layout.box_count(),
        canvas.width(),
        canvas.height(),
        png::encode(&canvas).len()
    );
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
