//! Figure 6 bench: the per-interaction cost of the original full-reload
//! classifieds navigation vs. the adapted proxy-satisfied AJAX flow.

use msite::proxy::{ProxyConfig, ProxyServer};
use msite_bench::{fig6, fixtures};
use msite_net::{Origin, OriginRef, Request};
use msite_support::benchkit::Criterion;
use msite_support::{criterion_group, criterion_main};
use std::hint::black_box;
use std::sync::Arc;

fn bench_fig6(c: &mut Criterion) {
    let site = fixtures::classifieds();
    let search_url = format!("{}/search?cat=tools&page=0", site.base_url());
    let proxy = Arc::new(ProxyServer::new(
        fig6::classifieds_spec(&search_url),
        Arc::clone(&site) as OriginRef,
        ProxyConfig::default(),
    ));
    // Prime: entry page registers the AJAX action and issues a session.
    let entry = proxy.handle(&Request::get("http://p/m/cl/").unwrap());
    let cookie = entry
        .headers
        .get("set-cookie")
        .and_then(|c| c.split(';').next())
        .unwrap()
        .to_string();
    let listing = site.listing_id("tools", 3);

    let mut group = c.benchmark_group("fig6");
    group.sample_size(30);
    group.bench_function("original_full_reload", |b| {
        b.iter(|| {
            let list = site.handle(&Request::get(&search_url).unwrap());
            let detail = site.handle(
                &Request::get(&format!("{}/listing/{listing}.html", site.base_url())).unwrap(),
            );
            black_box(list.body.len() + detail.body.len())
        })
    });
    group.bench_function("adapted_ajax_fragment", |b| {
        b.iter(|| {
            let fragment = proxy.handle(
                &Request::get(&format!("http://p/m/cl/proxy?action=1&p={listing}"))
                    .unwrap()
                    .with_header("cookie", &cookie),
            );
            black_box(fragment.body.len())
        })
    });
    group.finish();

    let result = fig6::run(10);
    println!(
        "\nFigure 6: browsing 10 ads moves {} bytes originally vs {} adapted ({:.0}% saved)",
        result.original_bytes,
        result.adapted_bytes,
        result.bytes_saved() * 100.0
    );
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
