//! Object-identification bench (§3.2 ablation): CSS selectors vs. XPath
//! vs. source-level string filtering on the forum entry page.

use msite_bench::fixtures;
use msite_net::{Origin, Request};
use msite_selectors::{Query, SelectorList, XPath};
use msite_support::benchkit::Criterion;
use msite_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_selectors(c: &mut Criterion) {
    let site = fixtures::forum();
    let page = site
        .handle(&Request::get(&fixtures::forum_index_url(&site)).unwrap())
        .body_text();
    let doc = msite_html::tidy::tidy(&page);

    let css_simple = SelectorList::parse("#loginform").unwrap();
    let css_complex =
        SelectorList::parse("table.navbar td > a, #forumbits tr.forumrow td.alt2 a").unwrap();
    let xpath = XPath::parse("//table[@id='forumbits']//a").unwrap();

    let mut group = c.benchmark_group("object_identification");
    group.sample_size(30);
    group.bench_function("css_id", |b| {
        b.iter(|| black_box(css_simple.select(&doc, doc.root()).len()))
    });
    group.bench_function("css_complex", |b| {
        b.iter(|| black_box(css_complex.select(&doc, doc.root()).len()))
    });
    group.bench_function("xpath_descendant", |b| {
        b.iter(|| black_box(xpath.evaluate(&doc, doc.root()).len()))
    });
    group.bench_function("source_level_find", |b| {
        b.iter(|| black_box(page.match_indices("id=\"loginform\"").count()))
    });
    group.bench_function("query_find_chain", |b| {
        b.iter(|| {
            let q = Query::select(&doc, "#forumbits").unwrap();
            black_box(q.find(&doc, "a").unwrap().len())
        })
    });
    group.finish();

    // Identification agreement sanity.
    assert_eq!(css_simple.select(&doc, doc.root()).len(), 1);
    assert!(!xpath.evaluate(&doc, doc.root()).is_empty());
}

criterion_group!(benches, bench_selectors);
criterion_main!(benches);
