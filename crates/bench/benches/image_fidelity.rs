//! C2 bench: the image-fidelity post-processor across the quality sweep —
//! the time to produce each artifact and (printed once) its wire size.

use msite_bench::fixtures;
use msite_net::{Origin, Request};
use msite_render::browser::{Browser, BrowserConfig};
use msite_render::image::{process, ImageFormat, PostProcess};
use msite_support::benchkit::{BenchmarkId, Criterion};
use msite_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_fidelity(c: &mut Criterion) {
    let site = fixtures::forum();
    let page = site
        .handle(&Request::get(&fixtures::forum_index_url(&site)).unwrap())
        .body_text();
    let browser = Browser::launch(BrowserConfig::default());
    let rendered = browser.render_page(&page, &[]);

    println!(
        "\nC2 artifact sizes for the rendered forum page ({}x{} px):",
        rendered.canvas.width(),
        rendered.canvas.height()
    );
    let hi = process(&rendered.canvas, &PostProcess::default());
    println!("  png hi-fi            : {:>9} wire bytes", hi.wire_bytes());
    for quality in [75u8, 50, 40, 25] {
        for scale in [1.0f32, 0.5] {
            let out = process(
                &rendered.canvas,
                &PostProcess {
                    scale: Some(scale),
                    format: ImageFormat::JpegClass { quality },
                    ..Default::default()
                },
            );
            println!(
                "  jpeg-class q{quality:<3} x{scale:<4}: {:>9} wire bytes",
                out.wire_bytes()
            );
        }
    }

    let mut group = c.benchmark_group("image_fidelity");
    group.sample_size(10);
    group.bench_function("png_encode_full", |b| {
        b.iter(|| {
            black_box(
                process(&rendered.canvas, &PostProcess::default())
                    .encoded
                    .len(),
            )
        })
    });
    for quality in [75u8, 40] {
        group.bench_with_input(
            BenchmarkId::new("jpeg_class_half_scale", quality),
            &quality,
            |b, &q| {
                b.iter(|| {
                    black_box(
                        process(
                            &rendered.canvas,
                            &PostProcess {
                                scale: Some(0.5),
                                format: ImageFormat::JpegClass { quality: q },
                                ..Default::default()
                            },
                        )
                        .wire_bytes(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fidelity);
criterion_main!(benches);
