//! Table 1 bench: the page-load simulation for every device/link row,
//! plus the cost of building the measured manifest it consumes.

use msite_bench::fixtures;
use msite_device::{simulate_page_load, CostModel, DeviceProfile};
use msite_net::LinkModel;
use msite_support::benchkit::Criterion;
use msite_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let site = fixtures::forum();
    let manifest = fixtures::forum_manifest(&site);
    let cost = CostModel::default();

    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    group.bench_function("manifest_fetch", |b| {
        b.iter(|| black_box(fixtures::forum_manifest(&site)))
    });
    for (name, device, link) in [
        (
            "blackberry_3g",
            DeviceProfile::blackberry_tour(),
            LinkModel::THREE_G,
        ),
        ("iphone4_3g", DeviceProfile::iphone_4(), LinkModel::THREE_G),
        ("iphone4_wifi", DeviceProfile::iphone_4(), LinkModel::WIFI),
        ("desktop_lan", DeviceProfile::desktop(), LinkModel::LAN),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(simulate_page_load(&device, &link, &manifest, &cost)))
        });
    }
    group.finish();

    // Print the reproduced table once so `cargo bench` output carries it.
    println!("\nTable 1 (paper vs measured):");
    for row in msite_bench::table1::rows() {
        println!(
            "  {:<38} paper {:>5.1} s  measured {:>5.1} s",
            row.label, row.paper_s, row.measured_s
        );
    }
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
