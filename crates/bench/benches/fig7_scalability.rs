//! Figure 7 bench: the latency asymmetry that produces the throughput
//! curve — a lightweight scripted proxy request vs. a full
//! browser-instance render (the Highlight baseline path).

use msite_bench::{fig7, fixtures};
use msite_net::{Origin, Request};
use msite_support::benchkit::Criterion;
use msite_support::{criterion_group, criterion_main};
use std::hint::black_box;
use std::time::Duration;

fn bench_paths(c: &mut Criterion) {
    let site = fixtures::forum();
    let proxy = fixtures::forum_proxy(&site, fixtures::php_equivalent_overhead());
    let highlight = fixtures::highlight_baseline(&site);

    let mut group = c.benchmark_group("fig7_paths");
    group.sample_size(10);
    group.bench_function("lightweight_proxy_request", |b| {
        b.iter(|| {
            black_box(
                proxy
                    .handle(&Request::get("http://p/m/forum/").unwrap())
                    .status,
            )
        })
    });
    group.measurement_time(Duration::from_secs(8));
    group.bench_function("full_browser_render", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(highlight.render_for(&format!("bench-{i}")).status)
        })
    });
    group.finish();

    // A compressed sweep so `cargo bench` output carries the figure.
    let points = fig7::run_sweep(&fig7::SweepConfig {
        percents: vec![0.0, 10.0, 100.0],
        window: Duration::from_millis(600),
        trials: 1,
        workers: 2,
    });
    println!("\nFigure 7 (compressed sweep):");
    for p in &points {
        println!(
            "  {:>3.0}% full render -> {:>8.0} requests/min",
            p.percent_full_render, p.requests_per_minute
        );
    }
    fig7::check_shape(&points).expect("figure 7 shape");
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);
