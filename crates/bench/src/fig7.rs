//! Figure 7 — satisfied requests per minute vs. the percentage of
//! requests requiring a full browser instance.
//!
//! Methodology mirrors §4.6: "tests are performed three times per data
//! point, each over a one minute measurement window. The interarrival
//! times between full-scale rendering requests are randomly distributed.
//! A U\[0,1\] random number is assigned to each request; if the number
//! exceeds the percentage being tested, the request is marked as not
//! requiring a browser instance." We run on two workers (the paper's
//! dual-core testbed), with windows scaled down by default because the
//! throughput estimate converges long before a minute.

use crate::fixtures;
use msite::baseline::HighlightProxy;
use msite::proxy::ProxyServer;
use msite_net::{Origin, Prng, Request};
use msite_support::json::{obj, ToJson, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One point of the Figure 7 sweep.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    /// Percentage of requests requiring a full browser instance.
    pub percent_full_render: f64,
    /// Mean satisfied requests per minute over the trials.
    pub requests_per_minute: f64,
    /// Per-trial values.
    pub trials: Vec<f64>,
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Percentages to test (the paper's x-axis).
    pub percents: Vec<f64>,
    /// Measurement window per trial.
    pub window: Duration,
    /// Trials per point (paper: 3).
    pub trials: usize,
    /// Worker threads (paper: dual-core).
    pub workers: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            percents: vec![0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 75.0, 100.0],
            window: Duration::from_millis(1_000),
            trials: 3,
            workers: 2,
        }
    }
}

/// Runs the sweep against a warmed m.Site proxy and the Highlight
/// baseline.
pub fn run_sweep(config: &SweepConfig) -> Vec<Fig7Point> {
    let site = fixtures::forum();
    let proxy = fixtures::forum_proxy(&site, fixtures::php_equivalent_overhead());
    let highlight = fixtures::highlight_baseline(&site);
    config
        .percents
        .iter()
        .map(|&percent| {
            let trials: Vec<f64> = (0..config.trials)
                .map(|trial| {
                    measure_window(
                        &proxy,
                        &highlight,
                        percent,
                        config.window,
                        config.workers,
                        trial as u64,
                    )
                })
                .collect();
            Fig7Point {
                percent_full_render: percent,
                requests_per_minute: trials.iter().sum::<f64>() / trials.len() as f64,
                trials,
            }
        })
        .collect()
}

/// One measurement window: workers issue requests back to back; each
/// request draws U\[0,1\] against the percentage to pick its path.
pub fn measure_window(
    proxy: &Arc<ProxyServer>,
    highlight: &Arc<HighlightProxy>,
    percent: f64,
    window: Duration,
    workers: u64,
    trial: u64,
) -> f64 {
    let satisfied = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let (satisfied, stop) = (&satisfied, &stop);
            scope.spawn(move || {
                let mut rng = Prng::new(0x716 + worker * 977 + trial * 31);
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    // Paper wording: number *exceeds* percentage -> no
                    // browser needed.
                    let needs_browser = rng.unit_f64() * 100.0 <= percent && percent > 0.0;
                    let ok = if needs_browser {
                        highlight
                            .render_for(&format!("w{worker}-r{i}"))
                            .status
                            .is_success()
                    } else {
                        proxy
                            .handle(&Request::get("http://p/m/forum/").unwrap())
                            .status
                            .is_success()
                    };
                    if ok {
                        satisfied.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed().as_secs_f64();
    satisfied.load(Ordering::Relaxed) as f64 * 60.0 / elapsed
}

/// Shape assertions on sweep output (used by the experiments binary and
/// the integration tests): monotone non-increasing in the percentage,
/// with at least two orders of magnitude between the endpoints.
pub fn check_shape(points: &[Fig7Point]) -> Result<(), String> {
    if points.len() < 2 {
        return Err("need at least two points".into());
    }
    for pair in points.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if a.percent_full_render < b.percent_full_render
            && a.requests_per_minute < b.requests_per_minute * 0.7
        {
            return Err(format!(
                "throughput not monotone: {}% -> {:.0}/min but {}% -> {:.0}/min",
                a.percent_full_render,
                a.requests_per_minute,
                b.percent_full_render,
                b.requests_per_minute
            ));
        }
    }
    let lowest = points
        .iter()
        .min_by(|a, b| a.percent_full_render.total_cmp(&b.percent_full_render))
        .expect("nonempty");
    let highest = points
        .iter()
        .max_by(|a, b| a.percent_full_render.total_cmp(&b.percent_full_render))
        .expect("nonempty");
    let spread = lowest.requests_per_minute / highest.requests_per_minute.max(1.0);
    if spread < 50.0 {
        return Err(format!(
            "expected ~two orders of magnitude spread, got {spread:.1}x"
        ));
    }
    Ok(())
}

impl ToJson for Fig7Point {
    fn to_json_value(&self) -> Value {
        obj([
            (
                "percent_full_render",
                self.percent_full_render.to_json_value(),
            ),
            (
                "requests_per_minute",
                self.requests_per_minute.to_json_value(),
            ),
            ("trials", self.trials.to_json_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_paper_shape() {
        let config = SweepConfig {
            percents: vec![0.0, 25.0, 100.0],
            window: Duration::from_millis(400),
            trials: 1,
            workers: 2,
        };
        let points = run_sweep(&config);
        assert_eq!(points.len(), 3);
        check_shape(&points).unwrap();
    }

    #[test]
    fn check_shape_rejects_flat_data() {
        let flat: Vec<Fig7Point> = [0.0, 100.0]
            .iter()
            .map(|&p| Fig7Point {
                percent_full_render: p,
                requests_per_minute: 1000.0,
                trials: vec![1000.0],
            })
            .collect();
        assert!(check_shape(&flat).is_err());
    }
}
