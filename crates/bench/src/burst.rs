//! The same-page burst experiment: N clients hit the same *cold* entry
//! page at the same instant. Before the single-flight layer each client
//! paid its own full pipeline run (the cache stampede); with it, one
//! leader renders and every other client coalesces onto that flight.
//! A second probe measures what lock striping buys on disjoint-key
//! churn by comparing a single-shard cache against the striped default.

use crate::fixtures;
use msite::cache::RenderCache;
use msite::proxy::{ProxyConfig, ProxyServer};
use msite_net::{Origin, OriginRef, Request};
use msite_support::thread::fan_out;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Result of one same-page burst.
#[derive(Debug, Clone)]
pub struct BurstResult {
    /// Concurrent clients in the burst.
    pub clients: usize,
    /// Full pipeline renders the burst triggered. The stampede fix
    /// makes this exactly 1 regardless of `clients`.
    pub renders: u64,
    /// Clients that shared the leader's in-flight render
    /// (`clients - 1` when coalescing works).
    pub coalesced: u64,
    /// Slowest client latency inside the burst.
    pub slowest_wait: Duration,
    /// Latency of a lone client against an equally cold proxy — the
    /// no-contention baseline the burst should stay close to.
    pub single_client: Duration,
}

/// A forum proxy that has *not* served its entry page yet, so the first
/// request — or burst of requests — pays the cold render.
fn cold_forum_proxy() -> Arc<ProxyServer> {
    let site = fixtures::forum();
    Arc::new(ProxyServer::new(
        fixtures::forum_spec(&site),
        Arc::clone(&site) as OriginRef,
        ProxyConfig::default(),
    ))
}

/// Runs the burst: one lone cold request for the baseline, then
/// `clients` simultaneous cold requests against a fresh proxy.
pub fn run(clients: usize) -> BurstResult {
    let entry = Request::get("http://p/m/forum/").expect("static url");

    // Baseline: one client, cold proxy.
    let solo = cold_forum_proxy();
    let start = Instant::now();
    let response = solo.handle(&entry);
    let single_client = start.elapsed();
    assert!(response.status.is_success(), "solo request failed");

    // The burst: everyone released by the barrier at once.
    let proxy = cold_forum_proxy();
    let gate = Barrier::new(clients);
    let latencies = fan_out(clients, |_| {
        let request = Request::get("http://p/m/forum/").expect("static url");
        gate.wait();
        let start = Instant::now();
        let response = proxy.handle(&request);
        assert!(response.status.is_success(), "burst request failed");
        start.elapsed()
    });

    BurstResult {
        clients,
        renders: proxy.stats().full_renders,
        coalesced: proxy.cache().stats().coalesced,
        slowest_wait: latencies.iter().copied().max().unwrap_or_default(),
        single_client,
    }
}

/// Result of the lock-striping contention probe.
#[derive(Debug, Clone)]
pub struct ContentionResult {
    /// Worker threads churning the cache.
    pub threads: usize,
    /// `get` operations per thread.
    pub ops: usize,
    /// Shards in the striped cache under test.
    pub shards: usize,
    /// Slowest-thread wall clock on a single-shard cache (the seed's
    /// one-big-mutex design).
    pub single_shard: Duration,
    /// Slowest-thread wall clock on the striped cache.
    pub striped: Duration,
}

impl ContentionResult {
    /// How many times faster the striped cache finished.
    pub fn speedup(&self) -> f64 {
        self.single_shard.as_secs_f64() / self.striped.as_secs_f64().max(1e-9)
    }
}

/// Times `threads` workers doing `ops` disjoint-key lookups each,
/// first against a deliberately single-shard cache, then against the
/// striped default. Reported, not asserted: the delta is machine- and
/// scheduler-dependent.
pub fn shard_contention(threads: usize, ops: usize) -> ContentionResult {
    let run_on = |cache: &RenderCache| -> Duration {
        const KEYS_PER_THREAD: usize = 64;
        for t in 0..threads {
            for k in 0..KEYS_PER_THREAD {
                cache.put(&format!("t{t}-k{k}"), b"v".to_vec(), None, Duration::ZERO);
            }
        }
        let gate = Barrier::new(threads);
        let elapsed = fan_out(threads, |t| {
            let keys: Vec<String> = (0..KEYS_PER_THREAD).map(|k| format!("t{t}-k{k}")).collect();
            gate.wait();
            let start = Instant::now();
            for i in 0..ops {
                std::hint::black_box(cache.get(&keys[i % KEYS_PER_THREAD]));
            }
            start.elapsed()
        });
        elapsed.into_iter().max().unwrap_or_default()
    };

    let single = RenderCache::with_shards(4096, Duration::ZERO, 1);
    let striped = RenderCache::with_stale_window(4096, Duration::ZERO);
    ContentionResult {
        threads,
        ops,
        shards: striped.shard_count(),
        single_shard: run_on(&single),
        striped: run_on(&striped),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_of_eight_renders_once() {
        let result = run(8);
        assert_eq!(result.renders, 1, "stampede: {} renders", result.renders);
        assert_eq!(result.coalesced, 7);
    }

    #[test]
    fn contention_probe_reports_both_arms() {
        let result = shard_contention(4, 2_000);
        assert!(result.shards > 1, "default 4096-entry cache must stripe");
        assert!(result.single_shard > Duration::ZERO);
        assert!(result.striped > Duration::ZERO);
    }
}
