//! The PR-9 SWAR hot-path experiment: every word-at-a-time fast path
//! must actually beat its scalar twin, not just match it byte-for-byte.
//!
//! The identity gates (property suites in `support`, `html`,
//! `selectors`, `render`, and the root `tests/`) prove the fast and
//! scalar paths produce identical output; this experiment prices them.
//! Two hard gates ride in `check_shape`:
//!
//! 1. **Tokenizer + entity codec** combined must run at least
//!    [`TOKENIZER_GATE`]× faster than the per-byte reference on the
//!    forum/classifieds corpus.
//! 2. **CRC32** (slicing-by-8) must run at least [`CRC_GATE`]× faster
//!    than the per-bit reference.
//!
//! The remaining rows (Adler-32, full zlib, selector bloom prefilter,
//! batch `strip_tag`) are reported without hard gates — they are
//! workload-shaped and noisier, but the numbers land in
//! `BENCH_PR10.json` so the trajectory stays visible across PRs.

use crate::fixtures;
use msite::pipeline::soa;
use msite_html::tokenizer::Tokenizer;
use msite_html::{entities, parse_document};
use msite_net::{Origin, Request};
use msite_render::png;
use msite_selectors::SelectorList;
use msite_support::json::{obj, ToJson, Value};
use std::time::{Duration, Instant};

/// Minimum speedup the combined tokenizer + entity codec path must
/// show over the scalar reference.
pub const TOKENIZER_GATE: f64 = 1.5;

/// Minimum speedup slicing-by-8 CRC32 must show over the per-bit
/// reference.
pub const CRC_GATE: f64 = 3.0;

/// Outcome of the SWAR hot-path experiment.
#[derive(Debug, Clone)]
pub struct HotpathResult {
    /// Total corpus size fed to the text-side benchmarks, in bytes.
    pub corpus_bytes: usize,
    /// Best-of iterations per measurement.
    pub iterations: usize,
    /// Combined tokenizer + entity codec speedup (scalar / fast).
    pub tokenizer_entity_speedup: f64,
    /// Fast tokenizer+entity throughput over the corpus, MB/s.
    pub tokenizer_mb_s: f64,
    /// CRC32 slicing-by-8 speedup over the per-bit reference.
    pub crc32_speedup: f64,
    /// Fast CRC32 throughput, MB/s.
    pub crc32_mb_s: f64,
    /// Adler-32 unrolled speedup (no hard gate).
    pub adler32_speedup: f64,
    /// Full zlib compress speedup (word match extension + code table).
    pub zlib_speedup: f64,
    /// Selector matching speedup from the bloom prefilter.
    pub selector_speedup: f64,
    /// Filter-stage `strip_tag` speedup from the batch classifier.
    pub strip_tag_speedup: f64,
    /// The tokenizer gate this run was held to.
    pub tokenizer_gate: f64,
    /// The CRC gate this run was held to.
    pub crc_gate: f64,
}

impl HotpathResult {
    /// Whether both hard gates hold.
    pub fn within_gates(&self) -> bool {
        self.tokenizer_entity_speedup >= self.tokenizer_gate && self.crc32_speedup >= self.crc_gate
    }
}

/// Fetches one page body from an origin fixture.
fn page_body(origin: &dyn Origin, url: &str) -> String {
    let req = Request::get(url).expect("fixture url parses");
    String::from_utf8_lossy(&origin.handle(&req).body).into_owned()
}

/// The benchmark corpus: the forum and classifieds entry pages the
/// paper's figures run over, plus a text-heavy synthetic page so long
/// clean runs (the case SWAR exists for) are represented.
fn corpus() -> Vec<String> {
    let forum = fixtures::forum();
    let classifieds = fixtures::classifieds();
    let mut docs = vec![
        page_body(forum.as_ref(), &fixtures::forum_index_url(&forum)),
        page_body(
            classifieds.as_ref(),
            &format!("{}/", classifieds.base_url()),
        ),
    ];
    let mut article = String::from("<html><body>");
    for i in 0..300 {
        article.push_str(&format!(
            "<p>Paragraph {i}: the quick brown fox jumps over the lazy dog, \
             entirely free of markup or entities for a good long run of text.</p>"
        ));
    }
    article.push_str("</body></html>");
    docs.push(article);
    docs
}

/// Best-of-`iters` wall clock of `body`, with a `sink` accumulator so
/// the work cannot be optimized away.
fn best_of(iters: usize, mut body: impl FnMut() -> usize) -> (Duration, usize) {
    let mut best = Duration::MAX;
    let mut sink = 0usize;
    for _ in 0..iters {
        let start = Instant::now();
        sink = sink.wrapping_add(body());
        best = best.min(start.elapsed());
    }
    (best, sink)
}

fn speedup(scalar: Duration, fast: Duration) -> f64 {
    scalar.as_secs_f64() / fast.as_secs_f64().max(1e-12)
}

/// Runs the experiment: each measurement is best-of-`iterations`, fast
/// and scalar interleaved so thermal/cache drift spreads evenly.
pub fn run(iterations: usize) -> HotpathResult {
    let iterations = iterations.max(3);
    let docs = corpus();
    let corpus_bytes: usize = docs.iter().map(|d| d.len()).sum();

    // Tokenizer + entity codec: tokenize each page, then run the codec
    // over every text token (decode is part of tokenization already;
    // encode_text is the serializer's side of the same coin).
    let texts: Vec<String> = docs
        .iter()
        .flat_map(|d| {
            Tokenizer::new(d).filter_map(|t| match t {
                msite_html::tokenizer::Token::Text(s) => Some(s),
                _ => None,
            })
        })
        .collect();
    let tok_fast = best_of(iterations, || {
        let mut n = 0usize;
        for d in &docs {
            n += Tokenizer::new(d).count() + entities::decode(d).len();
        }
        for t in &texts {
            n += entities::encode_text(t).len() + entities::decode(t).len();
        }
        n
    });
    let tok_scalar = best_of(iterations, || {
        let mut n = 0usize;
        for d in &docs {
            n += Tokenizer::new_scalar(d).count() + entities::decode_scalar(d).len();
        }
        for t in &texts {
            n += entities::encode_text_scalar(t).len() + entities::decode_scalar(t).len();
        }
        n
    });

    // Checksums over the concatenated corpus.
    let blob: Vec<u8> = docs.iter().flat_map(|d| d.bytes()).collect();
    let crc_fast = best_of(iterations, || {
        let mut c = png::Crc32::new();
        c.update(&blob);
        c.finish() as usize
    });
    let crc_scalar = best_of(iterations, || {
        let mut c = png::Crc32::new();
        c.update_bitwise(&blob);
        c.finish() as usize
    });
    let adler_fast = best_of(iterations, || png::adler32(&blob) as usize);
    let adler_scalar = best_of(iterations, || png::adler32_scalar(&blob) as usize);
    let zlib_fast = best_of(iterations, || png::zlib_compress(&blob).len());
    let zlib_scalar = best_of(iterations, || png::zlib_compress_scalar(&blob).len());

    // Selector matching over the parsed forum page: one mixed list
    // where most alternatives miss most elements — the prefilter's
    // home turf, since a single element hash buys eight subset tests.
    let doc = parse_document(&docs[0]);
    let list = SelectorList::parse(
        "div.wrap .x, #nav a, .row .cell, table td, #login, .leaderboard, nav span, form.quick input",
    )
    .expect("bench selector parses");
    let sel_fast = best_of(iterations, || list.select(&doc, doc.root()).len());
    let sel_scalar = best_of(iterations, || list.select_scalar(&doc, doc.root()).len());

    // Filter-stage strip_tag over every corpus page.
    let strip_fast = best_of(iterations, || {
        docs.iter().map(|d| soa::strip_tag(d, "script").len()).sum()
    });
    let strip_scalar = best_of(iterations, || {
        docs.iter()
            .map(|d| soa::strip_tag_scalar(d, "script").len())
            .sum()
    });

    // The sinks must agree between twins — a divergence here means an
    // identity gate has a hole.
    assert_eq!(tok_fast.1, tok_scalar.1, "tokenizer twins diverged");
    assert_eq!(crc_fast.1, crc_scalar.1, "crc twins diverged");
    assert_eq!(adler_fast.1, adler_scalar.1, "adler twins diverged");
    assert_eq!(zlib_fast.1, zlib_scalar.1, "zlib twins diverged");
    assert_eq!(sel_fast.1, sel_scalar.1, "selector twins diverged");
    assert_eq!(strip_fast.1, strip_scalar.1, "strip_tag twins diverged");

    let mb = |bytes: usize, d: Duration| bytes as f64 / 1e6 / d.as_secs_f64().max(1e-12);
    HotpathResult {
        corpus_bytes,
        iterations,
        tokenizer_entity_speedup: speedup(tok_scalar.0, tok_fast.0),
        tokenizer_mb_s: mb(corpus_bytes, tok_fast.0),
        crc32_speedup: speedup(crc_scalar.0, crc_fast.0),
        crc32_mb_s: mb(blob.len(), crc_fast.0),
        adler32_speedup: speedup(adler_scalar.0, adler_fast.0),
        zlib_speedup: speedup(zlib_scalar.0, zlib_fast.0),
        selector_speedup: speedup(sel_scalar.0, sel_fast.0),
        strip_tag_speedup: speedup(strip_scalar.0, strip_fast.0),
        tokenizer_gate: TOKENIZER_GATE,
        crc_gate: CRC_GATE,
    }
}

/// Shape assertions for the experiments binary.
pub fn check_shape(result: &HotpathResult) -> Result<(), String> {
    if result.corpus_bytes == 0 {
        return Err("empty benchmark corpus".into());
    }
    if result.tokenizer_entity_speedup < result.tokenizer_gate {
        return Err(format!(
            "tokenizer+entity speedup {:.2}x below the {:.1}x gate",
            result.tokenizer_entity_speedup, result.tokenizer_gate
        ));
    }
    if result.crc32_speedup < result.crc_gate {
        return Err(format!(
            "crc32 speedup {:.2}x below the {:.1}x gate",
            result.crc32_speedup, result.crc_gate
        ));
    }
    Ok(())
}

impl ToJson for HotpathResult {
    fn to_json_value(&self) -> Value {
        obj([
            ("corpus_bytes", self.corpus_bytes.to_json_value()),
            ("iterations", self.iterations.to_json_value()),
            (
                "tokenizer_entity_speedup",
                self.tokenizer_entity_speedup.to_json_value(),
            ),
            ("tokenizer_mb_s", self.tokenizer_mb_s.to_json_value()),
            ("crc32_speedup", self.crc32_speedup.to_json_value()),
            ("crc32_mb_s", self.crc32_mb_s.to_json_value()),
            ("adler32_speedup", self.adler32_speedup.to_json_value()),
            ("zlib_speedup", self.zlib_speedup.to_json_value()),
            ("selector_speedup", self.selector_speedup.to_json_value()),
            ("strip_tag_speedup", self.strip_tag_speedup.to_json_value()),
            ("tokenizer_gate", self.tokenizer_gate.to_json_value()),
            ("crc_gate", self.crc_gate.to_json_value()),
            ("within_gates", self.within_gates().to_json_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_nontrivial() {
        let docs = corpus();
        assert_eq!(docs.len(), 3);
        assert!(docs.iter().map(|d| d.len()).sum::<usize>() > 50_000);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "perf gate is only meaningful in release; enforced by `experiments -- hotpath`"
    )]
    fn gates_hold() {
        let result = run(3);
        assert!(
            result.within_gates(),
            "tokenizer+entity {:.2}x (gate {:.1}x), crc32 {:.2}x (gate {:.1}x)",
            result.tokenizer_entity_speedup,
            result.tokenizer_gate,
            result.crc32_speedup,
            result.crc_gate
        );
    }
}
