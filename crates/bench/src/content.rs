//! The PR-10 content-adaptation experiment.
//!
//! Two claims are checked against the ad-heavy news fixture, whose
//! blocks carry `data-msite-region` ground-truth labels the scorer
//! never reads (it only sees tags/ids/classes):
//!
//! 1. **Extraction quality.** Readability extraction over a sweep of
//!    differently-seeded and differently-shaped articles must keep the
//!    labeled content regions and drop the labeled boilerplate —
//!    precision and recall both >= 0.9 against the labels.
//! 2. **Fidelity tiers.** Re-encoding the gallery under each bandwidth
//!    tier's caps must order total wire bytes with the link: 2G
//!    strictly below WiFi, and monotone across the tier ladder.

use msite::attributes::{AdaptationSpec, Attribute, Target};
use msite::{adapt_with_report, PipelineContext};
use msite_net::{BandwidthClass, Origin, Request};
use msite_sites::{NewsConfig, NewsSite};
use msite_support::json::{obj, ToJson, Value};

/// Ground-truth label prefix stamped on every fixture block.
const LABEL: &str = "data-msite-region=\"";

/// Extraction quality against the fixture's ground-truth labels.
#[derive(Debug, Clone)]
pub struct ExtractionResult {
    /// Article variants swept (seed + shape both vary).
    pub pages: usize,
    /// Labeled content regions across all originals.
    pub content_total: usize,
    /// Labeled content regions surviving extraction.
    pub content_kept: usize,
    /// All labeled regions surviving extraction (content + boiler).
    pub labels_kept: usize,
}

impl ExtractionResult {
    /// Fraction of kept labeled regions that are content.
    pub fn precision(&self) -> f64 {
        if self.labels_kept == 0 {
            return 0.0;
        }
        self.content_kept as f64 / self.labels_kept as f64
    }

    /// Fraction of content regions that survived.
    pub fn recall(&self) -> f64 {
        if self.content_total == 0 {
            return 0.0;
        }
        self.content_kept as f64 / self.content_total as f64
    }
}

/// Total wire bytes for one bandwidth tier's gallery adaptation.
#[derive(Debug, Clone)]
pub struct TierPoint {
    /// Tier name (`2g`, `3g`, `wifi`).
    pub tier: String,
    /// Entry-page HTML bytes.
    pub entry_bytes: usize,
    /// Summed wire size of the re-encoded images.
    pub image_bytes: usize,
}

impl TierPoint {
    /// Entry plus images — what the link actually carries.
    pub fn total_bytes(&self) -> usize {
        self.entry_bytes + self.image_bytes
    }
}

/// The full PR-10 experiment result.
#[derive(Debug, Clone)]
pub struct ContentResult {
    /// Extraction precision/recall sweep.
    pub extraction: ExtractionResult,
    /// Boilerplate blocks stripped at aggressiveness 2 on the default
    /// article (sanity signal that the strip path does real work).
    pub stripped_blocks: usize,
    /// Gallery wire bytes per tier, slowest link first.
    pub tiers: Vec<TierPoint>,
}

fn context() -> PipelineContext {
    PipelineContext {
        base: "/m/news".into(),
        ..PipelineContext::default()
    }
}

fn news_page(config: NewsConfig, path: &str) -> String {
    let host = config.host.clone();
    let site = NewsSite::new(config);
    site.handle(&Request::get(&format!("http://{host}{path}")).unwrap())
        .body_text()
}

fn spec_with(attributes: Vec<Attribute>) -> AdaptationSpec {
    let mut spec = AdaptationSpec::new("news", "http://news.test/");
    spec.snapshot = None;
    spec.rule(Target::Css("body".into()), attributes)
}

fn count_labels(html: &str) -> usize {
    html.matches(LABEL).count()
}

fn count_content_labels(html: &str) -> usize {
    html.matches(&format!("{LABEL}content\"")).count()
}

/// Sweeps `pages` differently-shaped articles through extraction and
/// scores the survivors against the ground-truth labels.
pub fn run_extraction(pages: usize) -> ExtractionResult {
    let spec = spec_with(vec![Attribute::ExtractMainContent]);
    let ctx = context();
    let mut result = ExtractionResult {
        pages,
        content_total: 0,
        content_kept: 0,
        labels_kept: 0,
    };
    for i in 0..pages {
        let config = NewsConfig {
            seed: 0x9E05 + i as u64 * 7,
            paragraphs: 4 + (i as u32 % 7),
            ad_slots: 1 + (i as u32 % 5),
            comments: 2 + (i as u32 % 6),
            ..NewsConfig::default()
        };
        let page = news_page(config, "/");
        result.content_total += count_content_labels(&page);
        let (bundle, _) = adapt_with_report(&spec, &page, &ctx).expect("news page adapts");
        result.content_kept += count_content_labels(&bundle.entry_html);
        result.labels_kept += count_labels(&bundle.entry_html);
    }
    result
}

/// Counts stripped blocks on the default article at aggressiveness 2.
pub fn run_strip() -> usize {
    let page = news_page(NewsConfig::default(), "/");
    let before = count_labels(&page);
    let spec = spec_with(vec![Attribute::StripBoilerplate { aggressiveness: 2 }]);
    let (bundle, _) = adapt_with_report(&spec, &page, &context()).expect("news page adapts");
    before - count_labels(&bundle.entry_html)
}

/// Adapts the gallery under each tier's caps, slowest link first.
pub fn run_tiers() -> Vec<TierPoint> {
    let page = news_page(NewsConfig::default(), "/gallery");
    BandwidthClass::ALL
        .iter()
        .map(|class| {
            let spec = spec_with(vec![Attribute::FidelityTier { tier: Some(*class) }]);
            let (bundle, _) = adapt_with_report(&spec, &page, &context()).expect("gallery adapts");
            TierPoint {
                tier: class.name().to_string(),
                entry_bytes: bundle.entry_html.len(),
                image_bytes: bundle.images.iter().map(|i| i.wire_size).sum(),
            }
        })
        .collect()
}

/// Runs the full experiment.
pub fn run(pages: usize) -> ContentResult {
    ContentResult {
        extraction: run_extraction(pages),
        stripped_blocks: run_strip(),
        tiers: run_tiers(),
    }
}

/// Shape assertions for the experiments binary.
pub fn check_shape(result: &ContentResult) -> Result<(), String> {
    let e = &result.extraction;
    if e.precision() < 0.9 {
        return Err(format!(
            "extraction precision {:.3} below 0.9 ({} content kept of {} labels kept)",
            e.precision(),
            e.content_kept,
            e.labels_kept
        ));
    }
    if e.recall() < 0.9 {
        return Err(format!(
            "extraction recall {:.3} below 0.9 ({} content kept of {} total)",
            e.recall(),
            e.content_kept,
            e.content_total
        ));
    }
    if result.stripped_blocks == 0 {
        return Err("strip pass removed no labeled blocks".into());
    }
    let slowest = result
        .tiers
        .first()
        .ok_or_else(|| "no tier points".to_string())?;
    let fastest = result
        .tiers
        .last()
        .ok_or_else(|| "no tier points".to_string())?;
    if slowest.total_bytes() >= fastest.total_bytes() {
        return Err(format!(
            "{} wire bytes ({}) not strictly below {} ({})",
            slowest.tier,
            slowest.total_bytes(),
            fastest.tier,
            fastest.total_bytes()
        ));
    }
    for pair in result.tiers.windows(2) {
        if pair[0].total_bytes() > pair[1].total_bytes() {
            return Err(format!(
                "tier ladder not monotone: {} ({}) above {} ({})",
                pair[0].tier,
                pair[0].total_bytes(),
                pair[1].tier,
                pair[1].total_bytes()
            ));
        }
    }
    Ok(())
}

impl ToJson for ExtractionResult {
    fn to_json_value(&self) -> Value {
        obj([
            ("pages", self.pages.to_json_value()),
            ("content_total", self.content_total.to_json_value()),
            ("content_kept", self.content_kept.to_json_value()),
            ("labels_kept", self.labels_kept.to_json_value()),
            ("precision", self.precision().to_json_value()),
            ("recall", self.recall().to_json_value()),
        ])
    }
}

impl ToJson for TierPoint {
    fn to_json_value(&self) -> Value {
        obj([
            ("tier", self.tier.to_json_value()),
            ("entry_bytes", self.entry_bytes.to_json_value()),
            ("image_bytes", self.image_bytes.to_json_value()),
            ("total_bytes", self.total_bytes().to_json_value()),
        ])
    }
}

impl ToJson for ContentResult {
    fn to_json_value(&self) -> Value {
        obj([
            ("extraction", self.extraction.to_json_value()),
            ("stripped_blocks", self.stripped_blocks.to_json_value()),
            ("tiers", self.tiers.to_json_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_sweep_meets_the_gates() {
        let result = run_extraction(6);
        assert!(result.precision() >= 0.9, "{result:?}");
        assert!(result.recall() >= 0.9, "{result:?}");
    }

    #[test]
    fn tier_ladder_orders_wire_bytes() {
        let tiers = run_tiers();
        assert_eq!(tiers.len(), 3);
        assert!(
            tiers[0].total_bytes() < tiers[2].total_bytes(),
            "2g {} vs wifi {}",
            tiers[0].total_bytes(),
            tiers[2].total_bytes()
        );
    }

    #[test]
    fn full_run_passes_its_own_shape_check() {
        let result = run(4);
        check_shape(&result).unwrap();
    }
}
