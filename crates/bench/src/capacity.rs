//! Capacity planning from §4.1 "Anticipated load": the paper motivates
//! m.Site with a site doing 2.2 million hits/day, up to 1200 users
//! online, and traffic doubling every 18 months. This experiment turns
//! the Figure 7 throughput measurements into the operational question
//! the section raises: *how many years of growth does one commodity box
//! absorb under each architecture?*

use crate::fig7;
use msite_support::json::{obj, ToJson, Value};
use std::time::Duration;

/// The paper's §4.1 load facts.
#[derive(Debug, Clone, Copy)]
pub struct LoadModel {
    /// Hits per day today (paper: 2.2 million).
    pub hits_per_day: f64,
    /// Fraction of hits from mobile clients routed through the proxy.
    pub mobile_fraction: f64,
    /// Peak-to-average ratio (busy-hour factor).
    pub peak_factor: f64,
    /// Traffic doubling period in months (paper: 18).
    pub doubling_months: f64,
}

impl Default for LoadModel {
    fn default() -> Self {
        LoadModel {
            hits_per_day: 2_200_000.0,
            mobile_fraction: 0.10,
            peak_factor: 3.0,
            doubling_months: 18.0,
        }
    }
}

impl LoadModel {
    /// Peak mobile requests per minute today.
    pub fn peak_mobile_rpm(&self) -> f64 {
        self.hits_per_day * self.mobile_fraction * self.peak_factor / (24.0 * 60.0)
    }

    /// Months until the given throughput ceiling is exhausted, under
    /// exponential doubling. Negative when already over capacity.
    pub fn months_of_headroom(&self, capacity_rpm: f64) -> f64 {
        let now = self.peak_mobile_rpm();
        (capacity_rpm / now).log2() * self.doubling_months
    }
}

/// One architecture's capacity verdict.
#[derive(Debug, Clone)]
pub struct CapacityRow {
    /// Architecture label.
    pub architecture: String,
    /// Measured requests/min on one dual-core box.
    pub capacity_rpm: f64,
    /// Boxes needed for today's peak mobile load.
    pub boxes_today: f64,
    /// Months of growth one box absorbs (negative = already short).
    pub months_of_headroom: f64,
}

/// Runs the capacity analysis from a quick Figure 7 measurement.
pub fn analyze(load: &LoadModel) -> Vec<CapacityRow> {
    // Measure the two endpoints plus the mixed point the paper's design
    // targets (a snapshot re-render once an hour is far below 1%, so the
    // practical m.Site operating point is ~0% with a 1% safety case).
    let points = fig7::run_sweep(&fig7::SweepConfig {
        percents: vec![0.0, 1.0, 100.0],
        window: Duration::from_millis(800),
        trials: 2,
        workers: 2,
    });
    let rate = |p: f64| {
        points
            .iter()
            .find(|x| (x.percent_full_render - p).abs() < 1e-9)
            .map(|x| x.requests_per_minute)
            .unwrap_or(0.0)
    };
    let peak = load.peak_mobile_rpm();
    let row = |label: &str, capacity: f64| CapacityRow {
        architecture: label.to_string(),
        capacity_rpm: capacity,
        boxes_today: (peak / capacity).max(f64::EPSILON),
        months_of_headroom: load.months_of_headroom(capacity),
    };
    vec![
        row("Highlight (browser per request)", rate(100.0)),
        row("m.Site, 1% full renders", rate(1.0)),
        row("m.Site, cached steady state", rate(0.0)),
    ]
}

impl ToJson for LoadModel {
    fn to_json_value(&self) -> Value {
        obj([
            ("hits_per_day", self.hits_per_day.to_json_value()),
            ("mobile_fraction", self.mobile_fraction.to_json_value()),
            ("peak_factor", self.peak_factor.to_json_value()),
            ("doubling_months", self.doubling_months.to_json_value()),
        ])
    }
}

impl ToJson for CapacityRow {
    fn to_json_value(&self) -> Value {
        obj([
            ("architecture", self.architecture.to_json_value()),
            ("capacity_rpm", self.capacity_rpm.to_json_value()),
            ("boxes_today", self.boxes_today.to_json_value()),
            (
                "months_of_headroom",
                self.months_of_headroom.to_json_value(),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_load_numbers() {
        let load = LoadModel::default();
        // 2.2M hits/day * 10% mobile * 3x peak / 1440 min ~= 458 rpm.
        assert!((load.peak_mobile_rpm() - 458.33).abs() < 1.0);
    }

    #[test]
    fn headroom_math() {
        let load = LoadModel::default();
        let now = load.peak_mobile_rpm();
        // Exactly at capacity: zero months.
        assert!(load.months_of_headroom(now).abs() < 1e-9);
        // Double the capacity: one doubling period.
        assert!((load.months_of_headroom(now * 2.0) - 18.0).abs() < 1e-6);
        // Half the capacity: negative headroom.
        assert!(load.months_of_headroom(now / 2.0) < 0.0);
    }

    #[test]
    fn analysis_shapes() {
        let rows = analyze(&LoadModel::default());
        assert_eq!(rows.len(), 3);
        let highlight = &rows[0];
        let msite = &rows[2];
        // m.Site's steady state absorbs years more growth than the
        // browser-per-request baseline on the same box.
        assert!(msite.capacity_rpm > highlight.capacity_rpm * 20.0);
        assert!(msite.months_of_headroom > highlight.months_of_headroom + 36.0);
        // The baseline cannot even cover today's peak on one box...
        // (224-300 rpm vs ~458 rpm peak mobile load)
        assert!(highlight.boxes_today > 1.0);
        // ...while m.Site covers it dozens of times over.
        assert!(msite.boxes_today < 0.1);
    }
}
