//! Capacity: the §4.1 "Anticipated load" planning analysis plus the
//! million-user multi-tenant load harness that validates the sharded
//! session store under it.
//!
//! Two halves:
//!
//! - [`analyze`] (the `planning` experiment) turns Figure 7 throughput
//!   into the operational question §4.1 raises — 2.2 million hits/day,
//!   doubling every 18 months: *how many years of growth does one
//!   commodity box absorb under each architecture?*
//! - [`run`] (the `capacity` experiment) answers the question the
//!   planning numbers beg: a proxy that survives years of doubling
//!   accumulates *users*, not just requests. It sweeps a Zipf(~1.0)
//!   population of ≥1M distinct users across several tenant forums and
//!   device profiles against loopback proxies sharing one bounded
//!   [`SessionStore`], asserting a hard memory ceiling throughout while
//!   recording sustained req/s and p50/p99 from the live histograms.

use crate::fig7;
use crate::fixtures;
use msite::proxy::{ProxyConfig, ProxyServer};
use msite::{SessionStore, SessionStoreConfig, SESSION_COOKIE};
use msite_device::DeviceProfile;
use msite_net::{Origin, OriginRef, Prng, Request};
use msite_sites::{ForumConfig, ForumSite};
use msite_support::json::{obj, ToJson, Value};
use msite_support::telemetry::{metrics::LATENCY_MICROS_BOUNDS, Telemetry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The paper's §4.1 load facts.
#[derive(Debug, Clone, Copy)]
pub struct LoadModel {
    /// Hits per day today (paper: 2.2 million).
    pub hits_per_day: f64,
    /// Fraction of hits from mobile clients routed through the proxy.
    pub mobile_fraction: f64,
    /// Peak-to-average ratio (busy-hour factor).
    pub peak_factor: f64,
    /// Traffic doubling period in months (paper: 18).
    pub doubling_months: f64,
}

impl Default for LoadModel {
    fn default() -> Self {
        LoadModel {
            hits_per_day: 2_200_000.0,
            mobile_fraction: 0.10,
            peak_factor: 3.0,
            doubling_months: 18.0,
        }
    }
}

impl LoadModel {
    /// Peak mobile requests per minute today.
    pub fn peak_mobile_rpm(&self) -> f64 {
        self.hits_per_day * self.mobile_fraction * self.peak_factor / (24.0 * 60.0)
    }

    /// Months until the given throughput ceiling is exhausted, under
    /// exponential doubling. Negative when already over capacity.
    pub fn months_of_headroom(&self, capacity_rpm: f64) -> f64 {
        let now = self.peak_mobile_rpm();
        (capacity_rpm / now).log2() * self.doubling_months
    }
}

/// One architecture's capacity verdict.
#[derive(Debug, Clone)]
pub struct CapacityRow {
    /// Architecture label.
    pub architecture: String,
    /// Measured requests/min on one dual-core box.
    pub capacity_rpm: f64,
    /// Boxes needed for today's peak mobile load.
    pub boxes_today: f64,
    /// Months of growth one box absorbs (negative = already short).
    pub months_of_headroom: f64,
}

/// Runs the capacity analysis from a quick Figure 7 measurement.
pub fn analyze(load: &LoadModel) -> Vec<CapacityRow> {
    // Measure the two endpoints plus the mixed point the paper's design
    // targets (a snapshot re-render once an hour is far below 1%, so the
    // practical m.Site operating point is ~0% with a 1% safety case).
    let points = fig7::run_sweep(&fig7::SweepConfig {
        percents: vec![0.0, 1.0, 100.0],
        window: Duration::from_millis(800),
        trials: 2,
        workers: 2,
    });
    let rate = |p: f64| {
        points
            .iter()
            .find(|x| (x.percent_full_render - p).abs() < 1e-9)
            .map(|x| x.requests_per_minute)
            .unwrap_or(0.0)
    };
    let peak = load.peak_mobile_rpm();
    let row = |label: &str, capacity: f64| CapacityRow {
        architecture: label.to_string(),
        capacity_rpm: capacity,
        boxes_today: (peak / capacity).max(f64::EPSILON),
        months_of_headroom: load.months_of_headroom(capacity),
    };
    vec![
        row("Highlight (browser per request)", rate(100.0)),
        row("m.Site, 1% full renders", rate(1.0)),
        row("m.Site, cached steady state", rate(0.0)),
    ]
}

impl ToJson for LoadModel {
    fn to_json_value(&self) -> Value {
        obj([
            ("hits_per_day", self.hits_per_day.to_json_value()),
            ("mobile_fraction", self.mobile_fraction.to_json_value()),
            ("peak_factor", self.peak_factor.to_json_value()),
            ("doubling_months", self.doubling_months.to_json_value()),
        ])
    }
}

impl ToJson for CapacityRow {
    fn to_json_value(&self) -> Value {
        obj([
            ("architecture", self.architecture.to_json_value()),
            ("capacity_rpm", self.capacity_rpm.to_json_value()),
            ("boxes_today", self.boxes_today.to_json_value()),
            (
                "months_of_headroom",
                self.months_of_headroom.to_json_value(),
            ),
        ])
    }
}

// ---------------------------------------------------------------------
// The million-user multi-tenant load harness.
// ---------------------------------------------------------------------

/// Configuration of the multi-tenant Zipf sweep.
#[derive(Debug, Clone)]
pub struct CapacityConfig {
    /// Tenant forums, each its own origin host behind its own proxy,
    /// all sharing one [`SessionStore`] (≥3 for the isolation claim).
    pub tenants: usize,
    /// Distinct simulated users (each makes one cookie-less first
    /// contact; the default reproduces the ≥1M acceptance sweep).
    pub users: usize,
    /// Load-generator threads; users are partitioned across them.
    pub workers: usize,
    /// Probability that a user iteration also replays an established
    /// cookie, drawn Zipf(~1.0) from the users seen so far.
    pub revisit_fraction: f64,
    /// Every Nth user also fetches an authenticated subpage, writing
    /// real bytes into its `SessionFs` directory (0 disables).
    pub subpage_stride: usize,
    /// The shared session store under test.
    pub store: SessionStoreConfig,
    /// Hard ceiling on session-subsystem memory (store slots + session
    /// filesystem), asserted *during* the sweep, not just after.
    pub memory_ceiling_bytes: usize,
    /// Deterministic seed for the per-worker Zipf/traffic streams.
    pub seed: u64,
}

impl Default for CapacityConfig {
    fn default() -> Self {
        CapacityConfig {
            tenants: 3,
            users: 1_000_000,
            workers: msite_support::thread::default_parallelism().max(4),
            revisit_fraction: 0.25,
            subpage_stride: 512,
            store: SessionStoreConfig {
                max_sessions: 65_536,
                session_ttl: Some(Duration::from_secs(1800)),
                fs_byte_budget: 16 * 1024 * 1024,
                tenant_share: 0.5,
                ..SessionStoreConfig::default()
            },
            memory_ceiling_bytes: 64 * 1024 * 1024,
            seed: 0xCAB,
        }
    }
}

impl CapacityConfig {
    /// A seconds-scale configuration for tests: same shape, 20k users,
    /// a 2k-session store, and a proportionally tighter ceiling.
    pub fn quick() -> CapacityConfig {
        CapacityConfig {
            users: 20_000,
            workers: 4,
            subpage_stride: 256,
            store: SessionStoreConfig {
                max_sessions: 2_048,
                session_ttl: Some(Duration::from_secs(1800)),
                fs_byte_budget: 2 * 1024 * 1024,
                tenant_share: 0.5,
                ..SessionStoreConfig::default()
            },
            memory_ceiling_bytes: 8 * 1024 * 1024,
            ..CapacityConfig::default()
        }
    }
}

/// Per-tenant occupancy at the end of the sweep.
#[derive(Debug, Clone)]
pub struct TenantLoad {
    /// Tenant key (the origin host).
    pub tenant: String,
    /// Live sessions at close.
    pub live: usize,
    /// Sessions ever created for this tenant.
    pub created: u64,
    /// Sessions evicted from this tenant.
    pub evicted: u64,
}

/// Everything the sweep measured and asserted.
#[derive(Debug, Clone)]
pub struct CapacityResult {
    /// Distinct users targeted (`CapacityConfig::users`).
    pub users_target: u64,
    /// Distinct users actually simulated (first contacts issued).
    pub distinct_users: u64,
    /// Total proxy requests (first contacts + revisits + subpages).
    pub total_requests: u64,
    /// Cookie replays drawn from the Zipf tail.
    pub revisits: u64,
    /// Replays whose session was still live (no fresh cookie issued).
    pub revisit_hits: u64,
    /// Authenticated subpage fetches (the `SessionFs` write path).
    pub subpage_requests: u64,
    /// Non-success responses (must be zero).
    pub errors: u64,
    /// Sweep wall-clock in seconds.
    pub elapsed_s: f64,
    /// Sustained requests/second over the whole sweep.
    pub requests_per_second: f64,
    /// p50 of `msite_proxy_request_micros` (bucket upper bound).
    pub p50_micros: u64,
    /// p99 of `msite_proxy_request_micros` (bucket upper bound).
    pub p99_micros: u64,
    /// Live sessions at close.
    pub live_sessions: usize,
    /// The store's configured bound.
    pub max_sessions: usize,
    /// The per-tenant quota the shared store enforced.
    pub tenant_quota: usize,
    /// Estimated resident bytes of the store's live slots at close.
    pub store_bytes: usize,
    /// Session-filesystem bytes at close.
    pub fs_bytes: usize,
    /// The hard ceiling the sweep was asserted against.
    pub memory_ceiling_bytes: usize,
    /// Mid-sweep observations of store+fs bytes above the ceiling
    /// (must be zero — this is the hard-ceiling assertion).
    pub ceiling_violations: u64,
    /// Total sessions evicted (LRU + quota + expiry + fs budget).
    pub evictions: u64,
    /// Per-tenant occupancy at close.
    pub tenants: Vec<TenantLoad>,
    /// Device profiles rotated through the User-Agent header.
    pub device_profiles: Vec<String>,
}

/// The evaluation devices rotated across requests (§4.2 hardware).
fn device_profiles() -> Vec<DeviceProfile> {
    vec![
        DeviceProfile::blackberry_tour(),
        DeviceProfile::ipod_touch_3g(),
        DeviceProfile::iphone_4(),
        DeviceProfile::ipad_1(),
        DeviceProfile::android_droid(),
    ]
}

/// One tenant forum: a small origin with its own host so the shared
/// store keys its sessions under a distinct tenant.
fn tenant_site(index: usize) -> Arc<ForumSite> {
    Arc::new(ForumSite::new(ForumConfig {
        seed: 2012 + index as u64,
        host: format!("t{index}.forum.test"),
        ..ForumConfig::default()
    }))
}

/// Zipf(~1.0) rank in `1..=n` via the inverse-CDF approximation
/// `k = floor((n+1)^u)`: rank 1 (the hottest user) gets the share the
/// harmonic law predicts, the tail gets the rest.
fn zipf_rank(rng: &mut Prng, n: usize) -> usize {
    let k = ((n as f64 + 1.0).powf(rng.unit_f64())).floor() as usize;
    k.clamp(1, n)
}

/// Bucket-percentile over a histogram: the upper bound of the bucket
/// holding quantile `q` (the last bound for overflow), 0 if empty.
fn bucket_percentile(counts: &[u64], bounds: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = (total as f64 * q).ceil() as u64;
    let mut seen = 0u64;
    for (i, count) in counts.iter().enumerate() {
        seen += count;
        if seen >= target {
            return bounds
                .get(i)
                .copied()
                .unwrap_or_else(|| bounds.last().copied().unwrap_or(u64::MAX));
        }
    }
    bounds.last().copied().unwrap_or(u64::MAX)
}

/// Extracts the session id a response issued, if any (`None` means the
/// replayed cookie was honored — the session is still live).
fn issued_session_id(response: &msite_net::Response) -> Option<String> {
    let prefix = format!("{SESSION_COOKIE}=");
    response
        .headers
        .get_all("set-cookie")
        .iter()
        .find_map(|h| h.strip_prefix(prefix.as_str()))
        .map(|rest| rest.split(';').next().unwrap_or("").to_string())
}

/// Runs the sweep: builds one shared store + telemetry, one proxy per
/// tenant, then partitions the user space across workers that
/// interleave first contacts, Zipf cookie replays, and occasional
/// subpage fetches, checking the memory ceiling as they go.
pub fn run(config: &CapacityConfig) -> CapacityResult {
    assert!(config.tenants >= 1 && config.workers >= 1 && config.users >= config.workers);
    let telemetry = Telemetry::new();
    let store = Arc::new(SessionStore::new(
        config.store.clone(),
        Arc::new(msite::SessionFs::new()),
    ));
    let proxies: Vec<Arc<ProxyServer>> = (0..config.tenants)
        .map(|i| {
            let site = tenant_site(i);
            let proxy = Arc::new(ProxyServer::new(
                fixtures::forum_spec(&site),
                Arc::clone(&site) as OriginRef,
                ProxyConfig {
                    telemetry: Some(telemetry.clone()),
                    session_store: Some(Arc::clone(&store)),
                    ..ProxyConfig::default()
                },
            ));
            let warm = proxy.handle(&Request::get("http://p/m/forum/").unwrap());
            assert!(warm.status.is_success(), "tenant {i} warmup failed");
            proxy
        })
        .collect();
    let profiles = device_profiles();

    let distinct = AtomicU64::new(0);
    let total = AtomicU64::new(0);
    let revisits = AtomicU64::new(0);
    let revisit_hits = AtomicU64::new(0);
    let subpages = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let ceiling_violations = AtomicU64::new(0);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for w in 0..config.workers {
            let proxies = &proxies;
            let profiles = &profiles;
            let store = &store;
            let (distinct, total) = (&distinct, &total);
            let (revisits, revisit_hits) = (&revisits, &revisit_hits);
            let (subpages, errors) = (&subpages, &errors);
            let ceiling_violations = &ceiling_violations;
            scope.spawn(move || {
                let lo = w * config.users / config.workers;
                let hi = (w + 1) * config.users / config.workers;
                let mut rng =
                    Prng::new(config.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                // This worker's established cookies, indexed by local
                // arrival order (ids are 32 hex chars).
                let mut seen: Vec<[u8; 32]> = Vec::with_capacity(hi - lo);
                for (j, user) in (lo..hi).enumerate() {
                    let tenant_idx = user % config.tenants;
                    let ua = &profiles[(w + j) % profiles.len()].user_agent;
                    // First contact: no cookie, a session is minted.
                    let request = Request::get("http://p/m/forum/")
                        .unwrap()
                        .with_header("user-agent", ua);
                    let response = proxies[tenant_idx].handle(&request);
                    total.fetch_add(1, Ordering::Relaxed);
                    distinct.fetch_add(1, Ordering::Relaxed);
                    if !response.status.is_success() {
                        errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let id = issued_session_id(&response).unwrap_or_default();
                    if let Ok(bytes) = <[u8; 32]>::try_from(id.as_bytes()) {
                        seen.push(bytes);
                    } else {
                        errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    // The SessionFs write path: an authenticated
                    // subpage lands real bytes in this session's dir.
                    if config.subpage_stride > 0 && user % config.subpage_stride == 0 {
                        let sub = Request::get("http://p/m/forum/s/forums.html")
                            .unwrap()
                            .with_header("cookie", &format!("{SESSION_COOKIE}={id}"))
                            .with_header("user-agent", ua);
                        let mut response = proxies[tenant_idx].handle(&sub);
                        total.fetch_add(1, Ordering::Relaxed);
                        subpages.fetch_add(1, Ordering::Relaxed);
                        if !response.status.is_success() {
                            // Under eviction pressure the session can be
                            // reclaimed between the bundle write and the
                            // artifact read; the client-visible effect
                            // is a single 404 that a retry (which mints
                            // a fresh session) resolves.
                            response = proxies[tenant_idx].handle(&sub);
                            total.fetch_add(1, Ordering::Relaxed);
                            if !response.status.is_success() {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    // Zipf revisit: replay an established cookie; rank 1
                    // is this worker's oldest (hottest) user, so the hot
                    // set keeps itself resident under LRU while the tail
                    // churns through eviction.
                    if rng.unit_f64() < config.revisit_fraction && !seen.is_empty() {
                        let rank = zipf_rank(&mut rng, seen.len());
                        let cookie = String::from_utf8_lossy(&seen[rank - 1]).into_owned();
                        let revisit_tenant = (lo + rank - 1) % config.tenants;
                        let request = Request::get("http://p/m/forum/")
                            .unwrap()
                            .with_header("cookie", &format!("{SESSION_COOKIE}={cookie}"))
                            .with_header("user-agent", ua);
                        let response = proxies[revisit_tenant].handle(&request);
                        total.fetch_add(1, Ordering::Relaxed);
                        revisits.fetch_add(1, Ordering::Relaxed);
                        if !response.status.is_success() {
                            errors.fetch_add(1, Ordering::Relaxed);
                        } else if let Some(fresh) = issued_session_id(&response) {
                            // The session had been evicted; adopt the
                            // replacement cookie so later replays of
                            // this rank stay coherent.
                            if let Ok(bytes) = <[u8; 32]>::try_from(fresh.as_bytes()) {
                                seen[rank - 1] = bytes;
                            }
                        } else {
                            revisit_hits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // The hard ceiling, asserted *during* the sweep.
                    if j % 1024 == 0 {
                        let resident = store.estimated_bytes() + store.fs().total_bytes();
                        if resident > config.memory_ceiling_bytes {
                            ceiling_violations.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    let elapsed_s = start.elapsed().as_secs_f64();
    let histogram =
        telemetry
            .metrics
            .histogram("msite_proxy_request_micros", &[], LATENCY_MICROS_BOUNDS);
    let counts = histogram.bucket_counts();
    let stats = store.stats();
    let total_requests = total.load(Ordering::Relaxed);
    CapacityResult {
        users_target: config.users as u64,
        distinct_users: distinct.load(Ordering::Relaxed),
        total_requests,
        revisits: revisits.load(Ordering::Relaxed),
        revisit_hits: revisit_hits.load(Ordering::Relaxed),
        subpage_requests: subpages.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed_s,
        requests_per_second: total_requests as f64 / elapsed_s.max(1e-9),
        p50_micros: bucket_percentile(&counts, histogram.bounds(), 0.50),
        p99_micros: bucket_percentile(&counts, histogram.bounds(), 0.99),
        live_sessions: store.len(),
        max_sessions: config.store.max_sessions,
        tenant_quota: store.tenant_quota(),
        store_bytes: store.estimated_bytes(),
        fs_bytes: store.fs().total_bytes(),
        memory_ceiling_bytes: config.memory_ceiling_bytes,
        ceiling_violations: ceiling_violations.load(Ordering::Relaxed),
        evictions: stats.evicted_total(),
        tenants: store
            .tenant_occupancy()
            .into_iter()
            .map(|(tenant, live, created, evicted)| TenantLoad {
                tenant,
                live,
                created,
                evicted,
            })
            .collect(),
        device_profiles: profiles.iter().map(|p| p.name.clone()).collect(),
    }
}

/// Shape assertions on a sweep (used by the experiments binary and the
/// tier-1 test): the acceptance criteria, machine-checked.
pub fn check_shape(r: &CapacityResult) -> Result<(), String> {
    if r.distinct_users < r.users_target {
        return Err(format!(
            "only {} of {} distinct users simulated",
            r.distinct_users, r.users_target
        ));
    }
    if r.errors > 0 {
        return Err(format!("{} requests failed", r.errors));
    }
    if r.ceiling_violations > 0 {
        return Err(format!(
            "memory ceiling breached {} times mid-sweep ({} byte bound)",
            r.ceiling_violations, r.memory_ceiling_bytes
        ));
    }
    if r.live_sessions > r.max_sessions {
        return Err(format!(
            "{} live sessions over the {}-session bound",
            r.live_sessions, r.max_sessions
        ));
    }
    if r.store_bytes + r.fs_bytes > r.memory_ceiling_bytes {
        return Err(format!(
            "resident {} + {} bytes over the {} ceiling at close",
            r.store_bytes, r.fs_bytes, r.memory_ceiling_bytes
        ));
    }
    if r.evictions == 0 {
        return Err("a bounded store this oversubscribed must evict".into());
    }
    if r.tenants.len() < 3 {
        return Err(format!("{} tenants, need >= 3", r.tenants.len()));
    }
    for t in &r.tenants {
        if t.live > r.tenant_quota {
            return Err(format!(
                "tenant {} holds {} live sessions over its {} quota",
                t.tenant, t.live, r.tenant_quota
            ));
        }
        if t.live == 0 {
            return Err(format!("tenant {} starved to zero live sessions", t.tenant));
        }
    }
    if r.revisit_hits == 0 {
        return Err("no Zipf revisit ever found its session live".into());
    }
    if r.p50_micros == 0 || r.p99_micros < r.p50_micros {
        return Err(format!(
            "implausible latency estimate: p50={} p99={}",
            r.p50_micros, r.p99_micros
        ));
    }
    if r.requests_per_second <= 0.0 {
        return Err("no sustained throughput measured".into());
    }
    Ok(())
}

impl ToJson for TenantLoad {
    fn to_json_value(&self) -> Value {
        obj([
            ("tenant", self.tenant.to_json_value()),
            ("live", self.live.to_json_value()),
            ("created", self.created.to_json_value()),
            ("evicted", self.evicted.to_json_value()),
        ])
    }
}

impl ToJson for CapacityResult {
    fn to_json_value(&self) -> Value {
        obj([
            ("users_target", self.users_target.to_json_value()),
            ("distinct_users", self.distinct_users.to_json_value()),
            ("total_requests", self.total_requests.to_json_value()),
            ("revisits", self.revisits.to_json_value()),
            ("revisit_hits", self.revisit_hits.to_json_value()),
            ("subpage_requests", self.subpage_requests.to_json_value()),
            ("errors", self.errors.to_json_value()),
            ("elapsed_s", self.elapsed_s.to_json_value()),
            (
                "requests_per_second",
                self.requests_per_second.to_json_value(),
            ),
            ("p50_micros", self.p50_micros.to_json_value()),
            ("p99_micros", self.p99_micros.to_json_value()),
            ("live_sessions", self.live_sessions.to_json_value()),
            ("max_sessions", self.max_sessions.to_json_value()),
            ("tenant_quota", self.tenant_quota.to_json_value()),
            ("store_bytes", self.store_bytes.to_json_value()),
            ("fs_bytes", self.fs_bytes.to_json_value()),
            (
                "memory_ceiling_bytes",
                self.memory_ceiling_bytes.to_json_value(),
            ),
            (
                "ceiling_violations",
                self.ceiling_violations.to_json_value(),
            ),
            ("evictions", self.evictions.to_json_value()),
            ("tenants", self.tenants.to_json_value()),
            ("device_profiles", self.device_profiles.to_json_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_load_numbers() {
        let load = LoadModel::default();
        // 2.2M hits/day * 10% mobile * 3x peak / 1440 min ~= 458 rpm.
        assert!((load.peak_mobile_rpm() - 458.33).abs() < 1.0);
    }

    #[test]
    fn headroom_math() {
        let load = LoadModel::default();
        let now = load.peak_mobile_rpm();
        // Exactly at capacity: zero months.
        assert!(load.months_of_headroom(now).abs() < 1e-9);
        // Double the capacity: one doubling period.
        assert!((load.months_of_headroom(now * 2.0) - 18.0).abs() < 1e-6);
        // Half the capacity: negative headroom.
        assert!(load.months_of_headroom(now / 2.0) < 0.0);
    }

    #[test]
    fn analysis_shapes() {
        let rows = analyze(&LoadModel::default());
        assert_eq!(rows.len(), 3);
        let highlight = &rows[0];
        let msite = &rows[2];
        // m.Site's steady state absorbs years more growth than the
        // browser-per-request baseline on the same box.
        assert!(msite.capacity_rpm > highlight.capacity_rpm * 20.0);
        assert!(msite.months_of_headroom > highlight.months_of_headroom + 36.0);
        // The baseline cannot even cover today's peak on one box...
        // (224-300 rpm vs ~458 rpm peak mobile load)
        assert!(highlight.boxes_today > 1.0);
        // ...while m.Site covers it dozens of times over.
        assert!(msite.boxes_today < 0.1);
    }

    #[test]
    fn zipf_rank_is_heavy_headed() {
        let mut rng = Prng::new(7);
        let n = 10_000;
        let head = (0..50_000)
            .filter(|_| zipf_rank(&mut rng, n) <= n / 100)
            .count();
        // Under Zipf(1), the top 1% of ranks carries roughly half the
        // draws (ln(101)/ln(10001) ~= 0.50); uniform would give 1%.
        assert!(head > 20_000, "only {head}/50000 draws in the top 1%");
    }

    #[test]
    fn bucket_percentile_picks_the_right_bound() {
        let bounds = [10, 100, 1000];
        assert_eq!(bucket_percentile(&[98, 1, 1, 0], &bounds, 0.50), 10);
        assert_eq!(bucket_percentile(&[98, 1, 1, 0], &bounds, 0.99), 100);
        assert_eq!(bucket_percentile(&[0, 0, 0, 5], &bounds, 0.99), 1000);
        assert_eq!(bucket_percentile(&[0, 0, 0, 0], &bounds, 0.99), 0);
    }

    /// The scaled-down acceptance sweep: same shape as the 1M run —
    /// three tenants, Zipf revisits, device rotation, hard ceiling —
    /// over 20k users so it fits in the tier-1 suite.
    #[test]
    fn quick_sweep_meets_acceptance_shape() {
        let config = CapacityConfig::quick();
        let result = run(&config);
        check_shape(&result).unwrap();
        assert_eq!(result.distinct_users, config.users as u64);
        assert!(result.revisits > 0 && result.subpage_requests > 0);
        // Bounded store: far more users than sessions forces churn.
        assert!(result.evictions as usize >= config.users - config.store.max_sessions);
    }

    #[test]
    fn check_shape_rejects_violations() {
        let mut ok = run(&CapacityConfig {
            users: 2_000,
            workers: 2,
            store: SessionStoreConfig {
                max_sessions: 512,
                tenant_share: 0.5,
                ..SessionStoreConfig::default()
            },
            memory_ceiling_bytes: 8 * 1024 * 1024,
            ..CapacityConfig::quick()
        });
        check_shape(&ok).unwrap();
        ok.ceiling_violations = 1;
        assert!(check_shape(&ok).is_err());
        ok.ceiling_violations = 0;
        ok.live_sessions = ok.max_sessions + 1;
        assert!(check_shape(&ok).is_err());
    }
}
