//! Table 1 — wall-clock time from initial request to browsable page.
//!
//! Inputs are measured (the generated forum page's real byte/node counts,
//! the real snapshot artifact produced by the proxy); the device/link
//! cost model is documented in `msite-device` and DESIGN.md §2.

use crate::fixtures;
use msite_device::{
    simulate_page_load, simulate_snapshot_generation, simulate_snapshot_view, CostModel,
    DeviceProfile,
};
use msite_net::{LinkModel, Origin, Request};
use msite_support::json::{obj, ToJson, Value};
use std::time::Duration;

/// One reproduced Table 1 row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Row label (matches the paper's wording).
    pub label: String,
    /// Paper-reported seconds.
    pub paper_s: f64,
    /// Our modeled/measured seconds.
    pub measured_s: f64,
}

impl Table1Row {
    /// Relative error against the paper.
    pub fn relative_error(&self) -> f64 {
        (self.measured_s - self.paper_s) / self.paper_s
    }
}

/// Snapshot artifact facts measured from the real proxy run.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotFacts {
    /// Entry-page HTML bytes.
    pub entry_html_bytes: usize,
    /// Snapshot image bytes on the wire (JPEG-class model).
    pub snapshot_wire_bytes: usize,
    /// Snapshot pixels.
    pub snapshot_pixels: u64,
}

/// Measures the snapshot the real pipeline produces for the forum page.
pub fn snapshot_facts() -> SnapshotFacts {
    let site = fixtures::forum();
    let spec = fixtures::forum_spec(&site);
    let page = site
        .handle(&Request::get(&fixtures::forum_index_url(&site)).unwrap())
        .body_text();
    let bundle = msite::adapt(
        &spec,
        &page,
        &msite::PipelineContext {
            base: "/m/forum".into(),
            browser_config: Default::default(),
            ..Default::default()
        },
    )
    .expect("forum adaptation succeeds");
    let snap = bundle
        .images
        .iter()
        .find(|i| i.name == "snapshot.png")
        .expect("snapshot produced");
    SnapshotFacts {
        entry_html_bytes: bundle.entry_html.len(),
        snapshot_wire_bytes: snap.wire_size,
        snapshot_pixels: snap.width as u64 * snap.height as u64,
    }
}

/// Computes all six Table 1 rows (plus the two §4.2 iPod Touch data
/// points reported in the text).
pub fn rows() -> Vec<Table1Row> {
    let site = fixtures::forum();
    let manifest = fixtures::forum_manifest(&site);
    let cost = CostModel::default();
    let facts = snapshot_facts();

    let mut rows = Vec::new();
    let mut push = |label: &str, paper_s: f64, measured_s: f64| {
        rows.push(Table1Row {
            label: label.to_string(),
            paper_s,
            measured_s,
        });
    };

    push(
        "BlackBerry Tour browser page load",
        20.0,
        simulate_page_load(
            &DeviceProfile::blackberry_tour(),
            &LinkModel::THREE_G,
            &manifest,
            &cost,
        )
        .total_s(),
    );
    push(
        "Snapshot page generation",
        2.0,
        simulate_snapshot_generation(
            &DeviceProfile::server(),
            &manifest,
            facts.snapshot_pixels * 4, // rendered at full scale before the 0.5x save
            Duration::from_millis(250),
            &cost,
        )
        .as_secs_f64(),
    );
    push(
        "Cached snapshot page to Blackberry",
        5.0,
        simulate_snapshot_view(
            &DeviceProfile::blackberry_tour(),
            &LinkModel::THREE_G,
            facts.entry_html_bytes,
            facts.snapshot_wire_bytes,
            facts.snapshot_pixels,
            &cost,
        )
        .total_s(),
    );
    push(
        "iPhone 4 via 3G",
        20.0,
        simulate_page_load(
            &DeviceProfile::iphone_4(),
            &LinkModel::THREE_G,
            &manifest,
            &cost,
        )
        .total_s(),
    );
    push(
        "iPhone 4 via WiFi",
        4.5,
        simulate_page_load(
            &DeviceProfile::iphone_4(),
            &LinkModel::WIFI,
            &manifest,
            &cost,
        )
        .total_s(),
    );
    push(
        "Desktop browser page load",
        1.5,
        simulate_page_load(&DeviceProfile::desktop(), &LinkModel::LAN, &manifest, &cost).total_s(),
    );
    // Secondary §4.2 text facts (not in the table itself).
    push(
        "(text) iPod Touch 3G via WiFi",
        4.5,
        simulate_page_load(
            &DeviceProfile::ipod_touch_3g(),
            &LinkModel::WIFI,
            &manifest,
            &cost,
        )
        .total_s(),
    );
    push(
        "(text) iPod Touch 3G via 3G",
        9.0,
        simulate_page_load(
            &DeviceProfile::ipod_touch_3g(),
            &LinkModel::THREE_G,
            &manifest,
            &cost,
        )
        .total_s(),
    );
    rows
}

impl ToJson for Table1Row {
    fn to_json_value(&self) -> Value {
        obj([
            ("label", self.label.to_json_value()),
            ("paper_s", self.paper_s.to_json_value()),
            ("measured_s", self.measured_s.to_json_value()),
        ])
    }
}

impl ToJson for SnapshotFacts {
    fn to_json_value(&self) -> Value {
        obj([
            ("entry_html_bytes", self.entry_html_bytes.to_json_value()),
            (
                "snapshot_wire_bytes",
                self.snapshot_wire_bytes.to_json_value(),
            ),
            ("snapshot_pixels", self.snapshot_pixels.to_json_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_table_rows_within_tolerance() {
        // The six actual table rows must land within 40% of the paper;
        // the two text facts are reported but unconstrained (the paper's
        // own table and text disagree about 3G).
        let all = rows();
        for row in all.iter().take(6) {
            assert!(
                row.relative_error().abs() <= 0.40,
                "{}: paper {} vs measured {:.1}",
                row.label,
                row.paper_s,
                row.measured_s
            );
        }
    }

    #[test]
    fn ordering_matches_paper() {
        let all = rows();
        let get = |label: &str| {
            all.iter()
                .find(|r| r.label == label)
                .map(|r| r.measured_s)
                .unwrap()
        };
        let bb_full = get("BlackBerry Tour browser page load");
        let snap_gen = get("Snapshot page generation");
        let bb_snap = get("Cached snapshot page to Blackberry");
        let desktop = get("Desktop browser page load");
        assert!(bb_full > bb_snap);
        assert!(bb_snap > snap_gen);
        assert!(snap_gen > desktop * 0.5);
    }

    #[test]
    fn snapshot_artifact_in_paper_band() {
        // The paper: reduced-fidelity full-page artifact at 25-50 KB.
        let facts = snapshot_facts();
        assert!(
            (15_000..=80_000).contains(&facts.snapshot_wire_bytes),
            "snapshot wire bytes {}",
            facts.snapshot_wire_bytes
        );
    }
}
