//! The experiments binary: regenerates every table and figure of the
//! m.Site paper and prints paper-vs-measured.
//!
//! Usage:
//! ```text
//! cargo run --release -p msite-bench --bin experiments            # everything
//! cargo run --release -p msite-bench --bin experiments -- table1
//! cargo run --release -p msite-bench --bin experiments -- fig7 [--full]
//! cargo run --release -p msite-bench --bin experiments -- fig6
//! cargo run --release -p msite-bench --bin experiments -- claims
//! cargo run --release -p msite-bench --bin experiments -- burst
//! cargo run --release -p msite-bench --bin experiments -- telemetry
//! cargo run --release -p msite-bench --bin experiments -- streaming
//! cargo run --release -p msite-bench --bin experiments -- durability
//! cargo run --release -p msite-bench --bin experiments -- planning
//! cargo run --release -p msite-bench --bin experiments -- capacity
//! cargo run --release -p msite-bench --bin experiments -- hotpath
//! cargo run --release -p msite-bench --bin experiments -- content
//! cargo run --release -p msite-bench --bin experiments -- --json  # JSON dump
//! ```
//!
//! `fig7 --full` uses the paper's full one-minute windows (9 points × 3
//! trials ≈ 27 minutes); the default uses scaled windows that converge to
//! the same rates. `capacity` is the million-user multi-tenant session
//! sweep (three tenant forums, one shared bounded store, Zipf(~1.0)
//! revisits, a hard memory ceiling).

use msite_bench::{
    burst, capacity, claims, content, durability, fig6, fig7, fixtures, hotpath, report, streaming,
    table1, telemetry, throughput,
};
use msite_support::json::{obj, ToJson, Value};
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct AllResults {
    table1: Vec<table1::Table1Row>,
    fig6: fig6::Fig6Result,
    fig7: Vec<fig7::Fig7Point>,
    claims: Vec<claims::ClaimResult>,
    throughput: Option<throughput::ThroughputResult>,
    telemetry: Option<telemetry::TelemetryOverheadResult>,
    streaming: Option<streaming::StreamingResult>,
    durability: Option<durability::DurabilityResult>,
    capacity: Option<capacity::CapacityResult>,
    hotpath: Option<hotpath::HotpathResult>,
    content: Option<content::ContentResult>,
}

impl ToJson for AllResults {
    fn to_json_value(&self) -> Value {
        obj([
            ("table1", self.table1.to_json_value()),
            ("fig6", self.fig6.to_json_value()),
            ("fig7", self.fig7.to_json_value()),
            ("claims", self.claims.to_json_value()),
            ("throughput", self.throughput.to_json_value()),
            ("telemetry", self.telemetry.to_json_value()),
            ("streaming", self.streaming.to_json_value()),
            ("durability", self.durability.to_json_value()),
            ("capacity", self.capacity.to_json_value()),
            ("hotpath", self.hotpath.to_json_value()),
            ("content", self.content.to_json_value()),
        ])
    }
}

/// Wall-clock spent inside each experiment, recorded into
/// `BENCH_PR10.json` so the perf trajectory is comparable across PRs.
struct Timings {
    entries: Vec<(&'static str, Duration)>,
}

impl Timings {
    fn time<T>(&mut self, name: &'static str, run: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let value = run();
        self.entries.push((name, start.elapsed()));
        value
    }
}

impl ToJson for Timings {
    fn to_json_value(&self) -> Value {
        Value::Array(
            self.entries
                .iter()
                .map(|(name, elapsed)| {
                    obj([
                        ("name", name.to_json_value()),
                        ("seconds", elapsed.as_secs_f64().to_json_value()),
                    ])
                })
                .collect(),
        )
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let full = args.iter().any(|a| a == "--full");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.as_str())
        .collect();
    let want = |name: &str| which.is_empty() || which.contains(&name) || which.contains(&"all");

    // Shape assertions accumulate here; any failure turns into a
    // nonzero exit so CI catches regressions in the figures themselves.
    let mut failures: Vec<String> = Vec::new();
    let mut timings = Timings {
        entries: Vec::new(),
    };

    let mut results = AllResults {
        table1: Vec::new(),
        fig6: fig6::Fig6Result {
            ads_browsed: 0,
            original_bytes: 0,
            adapted_bytes: 0,
            original_page_loads: 0,
            adapted_page_loads: 0,
            links_rewritten: 0,
        },
        fig7: Vec::new(),
        claims: Vec::new(),
        throughput: None,
        telemetry: None,
        streaming: None,
        durability: None,
        capacity: None,
        hotpath: None,
        content: None,
    };

    if want("table1") {
        results.table1 = timings.time("table1", table1::rows);
        if !json {
            let rows: Vec<Vec<String>> = results
                .table1
                .iter()
                .map(|r| {
                    vec![
                        r.label.clone(),
                        report::secs(r.paper_s),
                        report::secs(r.measured_s),
                        format!("{:+.0}%", r.relative_error() * 100.0),
                    ]
                })
                .collect();
            report::print_table(
                "Table 1 — wall-clock time from initial request to browsable page",
                &["Device / operation", "paper", "measured", "err"],
                &rows,
            );
            let facts = table1::snapshot_facts();
            println!(
                "snapshot artifact: {} px, {} wire bytes; entry page {} bytes",
                facts.snapshot_pixels,
                report::bytes(facts.snapshot_wire_bytes),
                report::bytes(facts.entry_html_bytes)
            );
        }
    }

    if want("fig6") {
        results.fig6 = timings.time("fig6", || fig6::run(10));
        if !json {
            let r = &results.fig6;
            report::print_table(
                "Figure 6 — CraigsList AJAX adaptation for the iPad (browsing 10 ads)",
                &["flow", "page loads", "bytes"],
                &[
                    vec![
                        "original (full reload per ad)".into(),
                        r.original_page_loads.to_string(),
                        report::bytes(r.original_bytes),
                    ],
                    vec![
                        "adapted (two-pane + proxy AJAX)".into(),
                        r.adapted_page_loads.to_string(),
                        report::bytes(r.adapted_bytes),
                    ],
                ],
            );
            println!(
                "{} listing links rewritten; {:.0}% of navigation bytes saved",
                r.links_rewritten,
                r.bytes_saved() * 100.0
            );
        }
    }

    if want("fig7") {
        let config = fig7::SweepConfig {
            window: if full {
                Duration::from_secs(60)
            } else {
                Duration::from_millis(1_000)
            },
            ..fig7::SweepConfig::default()
        };
        results.fig7 = timings.time("fig7", || fig7::run_sweep(&config));
        if let Err(e) = fig7::check_shape(&results.fig7) {
            failures.push(format!("fig7 shape: {e}"));
        }
        if !json {
            let rows: Vec<Vec<String>> = results
                .fig7
                .iter()
                .map(|p| {
                    vec![
                        format!("{:.0}%", p.percent_full_render),
                        format!("{:.0}", p.requests_per_minute),
                        p.trials
                            .iter()
                            .map(|t| format!("{t:.0}"))
                            .collect::<Vec<_>>()
                            .join(" / "),
                    ]
                })
                .collect();
            report::print_table(
                "Figure 7 — satisfied requests/min vs. % requiring a full browser",
                &["% full render", "req/min (mean)", "trials"],
                &rows,
            );
            println!("paper endpoints: 224/min at 100% -> 29,038/min at 0%");
            match fig7::check_shape(&results.fig7) {
                Ok(()) => println!("shape check: PASS (monotone, >=2 orders of magnitude)"),
                Err(e) => println!("shape check: FAIL ({e})"),
            }
        }
    }

    if want("burst") {
        const BURST_CLIENTS: usize = 8;
        let result = timings.time("burst", || burst::run(BURST_CLIENTS));
        if result.renders != 1 {
            failures.push(format!(
                "burst: {} renders for {BURST_CLIENTS} concurrent clients (want 1)",
                result.renders
            ));
        }
        if result.coalesced != (BURST_CLIENTS - 1) as u64 {
            failures.push(format!(
                "burst: {} coalesced waiters (want {})",
                result.coalesced,
                BURST_CLIENTS - 1
            ));
        }
        let contention = burst::shard_contention(4, 50_000);
        if !json {
            report::print_table(
                "Same-page burst — single-flight coalescing (8 cold clients, one page)",
                &["metric", "value"],
                &[
                    vec!["full renders".into(), result.renders.to_string()],
                    vec!["coalesced waiters".into(), result.coalesced.to_string()],
                    vec![
                        "slowest burst client".into(),
                        report::secs(result.slowest_wait.as_secs_f64()),
                    ],
                    vec![
                        "lone cold client".into(),
                        report::secs(result.single_client.as_secs_f64()),
                    ],
                ],
            );
            println!(
                "lock striping: {} threads x {} gets — 1 shard {:.2} ms vs {} shards {:.2} ms ({:.2}x)",
                contention.threads,
                contention.ops,
                contention.single_shard.as_secs_f64() * 1e3,
                contention.shards,
                contention.striped.as_secs_f64() * 1e3,
                contention.speedup()
            );
        }
    }

    if want("claims") {
        results.claims = timings.time("claims", claims::all);
        if !json {
            let rows: Vec<Vec<String>> = results
                .claims
                .iter()
                .map(|c| {
                    vec![
                        c.id.clone(),
                        c.paper.clone(),
                        c.measured.clone(),
                        if c.holds {
                            "PASS".into()
                        } else {
                            "FAIL".into()
                        },
                    ]
                })
                .collect();
            report::print_table(
                "In-text claims (C1, C2, C3, C5)",
                &["id", "paper", "measured", "holds"],
                &rows,
            );
        }
    }

    if want("throughput") {
        let result = timings.time("throughput", || throughput::run(3));
        if let Err(e) = throughput::check_shape(&result) {
            failures.push(format!("throughput shape: {e}"));
        }
        if !json {
            let rows: Vec<Vec<String>> = result
                .pipeline
                .iter()
                .map(|p| {
                    vec![
                        p.parallelism.to_string(),
                        format!("{:.2} ms", p.wall.as_secs_f64() * 1e3),
                        if p.identical_to_serial {
                            "identical".into()
                        } else {
                            "DIVERGED".into()
                        },
                        p.emit_speedup
                            .map(|s| format!("{s:.2}x"))
                            .unwrap_or_else(|| "serial".into()),
                    ]
                })
                .collect();
            report::print_table(
                &format!(
                    "Throughput — {}-subpage adaptation, serial vs. parallel ({} cores visible)",
                    throughput::SECTIONS,
                    result.cores
                ),
                &["pool width", "wall", "output", "emit speedup"],
                &rows,
            );
            let o = &result.overload;
            println!(
                "overload probe ({} workers, queue {}): accepted {} = served {} + shed {} (headers {})",
                o.workers,
                o.queue_depth,
                o.accepted,
                o.served,
                o.rejected_overload,
                if o.shed_headers_ok { "ok" } else { "MISSING" }
            );
            match throughput::check_shape(&result) {
                Ok(()) => println!("shape check: PASS (byte-identical output, explicit shedding)"),
                Err(e) => println!("shape check: FAIL ({e})"),
            }
        }
        results.throughput = Some(result);
    }

    if want("telemetry") {
        let result = timings.time("telemetry", || telemetry::run(5));
        if let Err(e) = telemetry::check_shape(&result) {
            failures.push(format!("telemetry overhead: {e}"));
        }
        if !json {
            report::print_table(
                "Telemetry overhead — adaptation fixture, registry+tracing off vs. on",
                &["metric", "value"],
                &[
                    vec![
                        "baseline (off)".into(),
                        report::secs(result.baseline.as_secs_f64()),
                    ],
                    vec![
                        "instrumented (on)".into(),
                        report::secs(result.instrumented.as_secs_f64()),
                    ],
                    vec![
                        "overhead".into(),
                        format!(
                            "{:+.1}% (bound {:.0}%)",
                            result.overhead_ratio * 100.0,
                            result.bound * 100.0
                        ),
                    ],
                    vec![
                        "counter.inc".into(),
                        format!("{:.1} ns/op", result.counter_ns),
                    ],
                    vec![
                        "histogram.observe".into(),
                        format!("{:.1} ns/op", result.histogram_ns),
                    ],
                ],
            );
            match telemetry::check_shape(&result) {
                Ok(()) => println!("overhead gate: PASS"),
                Err(e) => println!("overhead gate: FAIL ({e})"),
            }
        }
        results.telemetry = Some(result);
    }

    if want("streaming") {
        let result = timings.time("streaming", || streaming::run(3));
        if let Err(e) = streaming::check_shape(&result) {
            failures.push(format!("streaming shape: {e}"));
        }
        if !json {
            let t = &result.ttfb;
            let i = &result.incremental;
            report::print_table(
                &format!(
                    "Streaming + incremental — {}-subpage fixture, width 4",
                    result.sections
                ),
                &["metric", "value"],
                &[
                    vec![
                        "batch wall (full bundle)".into(),
                        report::secs(t.batch_wall.as_secs_f64()),
                    ],
                    vec![
                        "streaming TTFB (entry chunk)".into(),
                        report::secs(t.ttfb.as_secs_f64()),
                    ],
                    vec!["TTFB speedup".into(), format!("{:.2}x", t.speedup())],
                    vec![
                        "entry bytes".into(),
                        if t.entry_identical {
                            "identical".into()
                        } else {
                            "DIVERGED".into()
                        },
                    ],
                    vec!["cold renders".into(), i.cold_renders.to_string()],
                    vec![
                        "incremental renders (1 edit)".into(),
                        i.incremental_renders.to_string(),
                    ],
                    vec![
                        "subtrees reused / recomputed".into(),
                        format!("{} / {}", i.reused, i.recomputed),
                    ],
                ],
            );
            match streaming::check_shape(&result) {
                Ok(()) => println!("shape check: PASS (TTFB below batch, strict render savings)"),
                Err(e) => println!("shape check: FAIL ({e})"),
            }
        }
        results.streaming = Some(result);
    }

    if want("durability") {
        let result = timings.time("durability", durability::run);
        if let Err(e) = durability::check_shape(&result) {
            failures.push(format!("durability shape: {e}"));
        }
        if !json {
            let r = &result.restart;
            report::print_table(
                "Durability — kill and restart over the persistent tier",
                &["metric", "value"],
                &[
                    vec!["working set (keys)".into(), r.working_set.to_string()],
                    vec![
                        "recovered after restart".into(),
                        format!("{} ({:.0}%)", r.recovered, r.hit_ratio() * 100.0),
                    ],
                    vec![
                        "renders (first life)".into(),
                        r.renders_first_life.to_string(),
                    ],
                    vec![
                        "renders (after restart)".into(),
                        r.renders_after_restart.to_string(),
                    ],
                ],
            );
            let s = &result.surge;
            report::print_table(
                &format!(
                    "Adaptive capacity — {} clients, {} ms window, equal offered load",
                    durability::SURGE_CLIENTS,
                    durability::SURGE_WINDOW.as_millis()
                ),
                &["arm", "served", "shed", "attempts", "workers at close"],
                &[
                    vec![
                        "static (2 workers)".into(),
                        s.static_arm.served.to_string(),
                        s.static_arm.shed.to_string(),
                        s.static_arm.attempts.to_string(),
                        s.static_arm.final_workers.to_string(),
                    ],
                    vec![
                        "adaptive (health loop)".into(),
                        s.adaptive_arm.served.to_string(),
                        s.adaptive_arm.shed.to_string(),
                        s.adaptive_arm.attempts.to_string(),
                        s.adaptive_arm.final_workers.to_string(),
                    ],
                ],
            );
            println!(
                "adaptive served {:.2}x static ({} scale-ups)",
                s.speedup(),
                s.adaptive_arm.scale_ups
            );
            match durability::check_shape(&result) {
                Ok(()) => println!(
                    "shape check: PASS (warm-start >= 90%, zero restart renders, adaptive > static)"
                ),
                Err(e) => println!("shape check: FAIL ({e})"),
            }
        }
        results.durability = Some(result);
    }

    if want("capacity") {
        // The million-user multi-tenant session sweep (request-bound;
        // seconds in release builds).
        let config = capacity::CapacityConfig::default();
        let result = timings.time("capacity", || capacity::run(&config));
        if let Err(e) = capacity::check_shape(&result) {
            failures.push(format!("capacity shape: {e}"));
        }
        if !json {
            report::print_table(
                &format!(
                    "Session capacity — {} distinct users, {} tenants, Zipf(1.0) revisits",
                    result.distinct_users,
                    result.tenants.len()
                ),
                &["metric", "value"],
                &[
                    vec![
                        "sustained throughput".into(),
                        format!("{:.0} req/s", result.requests_per_second),
                    ],
                    vec![
                        "request latency".into(),
                        format!(
                            "p50 <= {} us, p99 <= {} us",
                            result.p50_micros, result.p99_micros
                        ),
                    ],
                    vec![
                        "total requests".into(),
                        format!(
                            "{} ({} revisits, {} hits, {} subpage)",
                            result.total_requests,
                            result.revisits,
                            result.revisit_hits,
                            result.subpage_requests
                        ),
                    ],
                    vec![
                        "live sessions at close".into(),
                        format!("{} / {} bound", result.live_sessions, result.max_sessions),
                    ],
                    vec![
                        "resident bytes".into(),
                        format!(
                            "{} store + {} fs / {} ceiling ({} mid-sweep violations)",
                            report::bytes(result.store_bytes),
                            report::bytes(result.fs_bytes),
                            report::bytes(result.memory_ceiling_bytes),
                            result.ceiling_violations
                        ),
                    ],
                    vec!["evictions".into(), result.evictions.to_string()],
                ],
            );
            let tenant_rows: Vec<Vec<String>> = result
                .tenants
                .iter()
                .map(|t| {
                    vec![
                        t.tenant.clone(),
                        t.live.to_string(),
                        t.created.to_string(),
                        t.evicted.to_string(),
                    ]
                })
                .collect();
            report::print_table(
                &format!(
                    "Per-tenant occupancy (quota {} of {} sessions)",
                    result.tenant_quota, result.max_sessions
                ),
                &["tenant", "live", "created", "evicted"],
                &tenant_rows,
            );
            match capacity::check_shape(&result) {
                Ok(()) => println!(
                    "shape check: PASS (>=1M users, bounded store, ceiling held, quotas held)"
                ),
                Err(e) => println!("shape check: FAIL ({e})"),
            }
        }
        results.capacity = Some(result);
    }

    if want("hotpath") {
        let result = timings.time("hotpath", || hotpath::run(5));
        if let Err(e) = hotpath::check_shape(&result) {
            failures.push(format!("hotpath: {e}"));
        }
        if !json {
            report::print_table(
                "SWAR hot paths — fast vs scalar twins (identity-gated, see DESIGN.md §15)",
                &["path", "speedup", "gate"],
                &[
                    vec![
                        "tokenizer + entity codec".into(),
                        format!(
                            "{:.2}x ({:.0} MB/s)",
                            result.tokenizer_entity_speedup, result.tokenizer_mb_s
                        ),
                        format!(">={:.1}x", result.tokenizer_gate),
                    ],
                    vec![
                        "crc32 (slicing-by-8)".into(),
                        format!(
                            "{:.1}x ({:.0} MB/s)",
                            result.crc32_speedup, result.crc32_mb_s
                        ),
                        format!(">={:.1}x", result.crc_gate),
                    ],
                    vec![
                        "adler32 (unrolled)".into(),
                        format!("{:.2}x", result.adler32_speedup),
                        "-".into(),
                    ],
                    vec![
                        "zlib compress".into(),
                        format!("{:.2}x", result.zlib_speedup),
                        "-".into(),
                    ],
                    vec![
                        "selector bloom prefilter".into(),
                        format!("{:.2}x", result.selector_speedup),
                        "-".into(),
                    ],
                    vec![
                        "strip_tag batch classifier".into(),
                        format!("{:.2}x", result.strip_tag_speedup),
                        "-".into(),
                    ],
                ],
            );
            match hotpath::check_shape(&result) {
                Ok(()) => println!("hotpath gates: PASS"),
                Err(e) => println!("hotpath gates: FAIL ({e})"),
            }
        }
        results.hotpath = Some(result);
    }

    if want("content") {
        let result = timings.time("content", || content::run(8));
        if let Err(e) = content::check_shape(&result) {
            failures.push(format!("content shape: {e}"));
        }
        if !json {
            let e = &result.extraction;
            report::print_table(
                &format!(
                    "Content adaptation — extraction over {} article variants, tiered gallery",
                    e.pages
                ),
                &["metric", "value"],
                &[
                    vec![
                        "extraction precision".into(),
                        format!(
                            "{:.3} ({} content of {} regions kept)",
                            e.precision(),
                            e.content_kept,
                            e.labels_kept
                        ),
                    ],
                    vec![
                        "extraction recall".into(),
                        format!(
                            "{:.3} ({} of {} content regions)",
                            e.recall(),
                            e.content_kept,
                            e.content_total
                        ),
                    ],
                    vec![
                        "blocks stripped (level 2)".into(),
                        result.stripped_blocks.to_string(),
                    ],
                ],
            );
            let tier_rows: Vec<Vec<String>> = result
                .tiers
                .iter()
                .map(|t| {
                    vec![
                        t.tier.clone(),
                        report::bytes(t.entry_bytes),
                        report::bytes(t.image_bytes),
                        report::bytes(t.total_bytes()),
                    ]
                })
                .collect();
            report::print_table(
                "Fidelity tiers — gallery wire bytes per bandwidth class",
                &["tier", "entry", "images", "total"],
                &tier_rows,
            );
            match content::check_shape(&result) {
                Ok(()) => {
                    println!("shape check: PASS (precision/recall >= 0.9, 2G strictly below WiFi)")
                }
                Err(e) => println!("shape check: FAIL ({e})"),
            }
        }
        results.content = Some(result);
    }

    if want("planning") && !json {
        let load = capacity::LoadModel::default();
        let rows_data = capacity::analyze(&load);
        let rows: Vec<Vec<String>> = rows_data
            .iter()
            .map(|r| {
                vec![
                    r.architecture.clone(),
                    format!("{:.0}", r.capacity_rpm),
                    format!("{:.2}", r.boxes_today),
                    format!("{:+.0}", r.months_of_headroom),
                ]
            })
            .collect();
        report::print_table(
            "Capacity planning (S4.1: 2.2M hits/day, 10% mobile, 3x peak, doubling every 18 months)",
            &["architecture", "req/min per box", "boxes for today's peak", "months of headroom"],
            &rows,
        );
        println!(
            "peak mobile load today: {:.0} requests/min",
            load.peak_mobile_rpm()
        );
    }

    if want("workload") && !json {
        let site = fixtures::forum();
        let manifest = fixtures::forum_manifest(&site);
        report::print_table(
            "Workload facts (C4, §4.2)",
            &["fact", "paper", "measured"],
            &[
                vec![
                    "entry page total bytes".into(),
                    "224,477".into(),
                    report::bytes(manifest.total_bytes()),
                ],
                vec![
                    "external scripts".into(),
                    "about 12".into(),
                    manifest
                        .resources
                        .iter()
                        .filter(|r| r.kind == msite_sites::ResourceKind::Script)
                        .count()
                        .to_string(),
                ],
                vec![
                    "forum rows".into(),
                    "about 30".into(),
                    site.config().forum_count.to_string(),
                ],
                vec![
                    "members".into(),
                    "nearly 66,000".into(),
                    report::bytes(site.config().member_count as usize),
                ],
            ],
        );
    }

    if json {
        println!("{}", report::to_json(&results));
    }

    // Machine-readable perf trajectory: per-experiment wall clock plus
    // the throughput sweep and the telemetry-overhead gate, one file
    // per run, overwritten in place.
    let bench_json = obj([
        ("experiments", timings.to_json_value()),
        ("throughput", results.throughput.to_json_value()),
        ("telemetry", results.telemetry.to_json_value()),
        ("streaming", results.streaming.to_json_value()),
        ("durability", results.durability.to_json_value()),
        ("capacity", results.capacity.to_json_value()),
        ("hotpath", results.hotpath.to_json_value()),
        ("content", results.content.to_json_value()),
    ]);
    if let Err(e) = std::fs::write("BENCH_PR10.json", bench_json.to_pretty()) {
        eprintln!("warning: could not write BENCH_PR10.json: {e}");
    } else if !json {
        println!(
            "\nwrote BENCH_PR10.json ({} experiments timed)",
            timings.entries.len()
        );
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("shape assertion failed: {failure}");
        }
        ExitCode::FAILURE
    }
}
