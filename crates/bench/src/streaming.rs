//! The PR-6 streaming + incremental experiment.
//!
//! Two claims are checked on the 12-subpage sectioned fixture:
//!
//! 1. **TTFB.** In streaming mode the entry page is emitted before any
//!    subpage is assembled, so time-to-first-byte must be strictly
//!    below the full-page batch wall time — and the concatenated entry
//!    chunks must equal the batch entry byte for byte.
//! 2. **Incremental re-adaptation.** Re-adapting the page after a
//!    single-section edit, with the fingerprint-keyed subtree cache
//!    warm, must reuse every untouched subtree and invoke strictly
//!    fewer browser renders than the cold run.

use crate::throughput::{sectioned_page, sectioned_spec, SECTIONS};
use msite::{adapt_streaming, adapt_with_report, EmitUnit, PipelineContext, SubtreeCache};
use msite_support::json::{obj, ToJson, Value};
use msite_support::telemetry::MetricsRegistry;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pool width for the sweep — wide enough that subpage work genuinely
/// overlaps, so batching (waiting for all of it) visibly delays the
/// entry bytes.
const PARALLELISM: usize = 4;

/// The streaming-delivery half of the experiment.
#[derive(Debug, Clone)]
pub struct TtfbResult {
    /// Best-of-trials wall time for one full batch adaptation.
    pub batch_wall: Duration,
    /// Best-of-trials time from pipeline start to the entry unit being
    /// handed to the sink in streaming mode.
    pub ttfb: Duration,
    /// Wall time of the streaming run the best TTFB came from.
    pub stream_wall: Duration,
    /// The concatenated entry chunks equal the batch entry page.
    pub entry_identical: bool,
}

impl TtfbResult {
    /// TTFB improvement over waiting for the whole bundle.
    pub fn speedup(&self) -> f64 {
        self.batch_wall.as_secs_f64() / self.ttfb.as_secs_f64().max(1e-9)
    }
}

/// The incremental re-adaptation half of the experiment.
#[derive(Debug, Clone)]
pub struct IncrementalResult {
    /// Browser renders in the cold (empty-cache) run.
    pub cold_renders: usize,
    /// Browser renders re-adapting after a one-section edit.
    pub incremental_renders: usize,
    /// Subtree artifacts reused from the cache in the warm run.
    pub reused: u64,
    /// Subtree artifacts recomputed in the warm run (the edited one).
    pub recomputed: u64,
    /// Wall time of the cold run.
    pub cold_wall: Duration,
    /// Wall time of the warm (incremental) run.
    pub incremental_wall: Duration,
}

/// The full PR-6 experiment result.
#[derive(Debug, Clone)]
pub struct StreamingResult {
    /// Sections (= subpages) in the fixture.
    pub sections: usize,
    /// Streaming-delivery measurements.
    pub ttfb: TtfbResult,
    /// Incremental re-adaptation measurements.
    pub incremental: IncrementalResult,
}

fn context() -> PipelineContext {
    PipelineContext {
        base: "/m/sectioned".into(),
        parallelism: PARALLELISM,
        ..PipelineContext::default()
    }
}

/// Measures batch wall time vs. streaming TTFB, best of `trials`.
pub fn run_ttfb(sections: usize, trials: usize) -> TtfbResult {
    let spec = sectioned_spec(sections);
    let page = sectioned_page(sections);
    let ctx = context();

    let mut batch_wall = Duration::MAX;
    let mut batch_entry = String::new();
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        let (bundle, _) = adapt_with_report(&spec, &page, &ctx).expect("fixture adapts cleanly");
        let wall = start.elapsed();
        if wall < batch_wall {
            batch_wall = wall;
        }
        batch_entry = bundle.entry_html;
    }

    let mut ttfb = Duration::MAX;
    let mut stream_wall = Duration::MAX;
    let mut entry_identical = true;
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        let mut first_unit = None;
        let mut entry_chunks = String::new();
        let mut on_unit = |unit: EmitUnit| {
            if let EmitUnit::Entry(html) = unit {
                first_unit.get_or_insert_with(|| start.elapsed());
                entry_chunks.push_str(&html);
            }
        };
        adapt_streaming(&spec, &page, &ctx, &mut on_unit).expect("fixture adapts cleanly");
        let wall = start.elapsed();
        let first = first_unit.expect("streaming run emits an entry unit");
        entry_identical &= entry_chunks == batch_entry;
        if first < ttfb {
            ttfb = first;
            stream_wall = wall;
        }
    }

    TtfbResult {
        batch_wall,
        ttfb,
        stream_wall,
        entry_identical,
    }
}

/// Measures cold vs. warm re-adaptation after editing one section.
pub fn run_incremental(sections: usize) -> IncrementalResult {
    let spec = sectioned_spec(sections);
    let page = sectioned_page(sections);
    // One-section edit: every other section's subtree serializes to the
    // same bytes, so its fingerprint — and cached artifact — survive.
    let edited = page.replace("item 0.0", "item 0.0 (EDITED)");
    assert_ne!(page, edited, "fixture edit must change the page");

    let cache = Arc::new(SubtreeCache::new(sections * 2));
    let ctx = PipelineContext {
        subtree_cache: Some(Arc::clone(&cache)),
        metrics: Some(Arc::new(MetricsRegistry::new())),
        ..context()
    };

    let start = Instant::now();
    let (cold, _) = adapt_with_report(&spec, &page, &ctx).expect("fixture adapts cleanly");
    let cold_wall = start.elapsed();
    let before = cache.stats();

    let start = Instant::now();
    let (warm, _) = adapt_with_report(&spec, &edited, &ctx).expect("fixture adapts cleanly");
    let incremental_wall = start.elapsed();
    let after = cache.stats();

    IncrementalResult {
        cold_renders: cold.stats.browser_renders,
        incremental_renders: warm.stats.browser_renders,
        reused: after.hits - before.hits,
        recomputed: after.misses - before.misses,
        cold_wall,
        incremental_wall,
    }
}

/// Runs the full experiment.
pub fn run(trials: usize) -> StreamingResult {
    StreamingResult {
        sections: SECTIONS,
        ttfb: run_ttfb(SECTIONS, trials),
        incremental: run_incremental(SECTIONS),
    }
}

/// Shape assertions for the experiments binary.
pub fn check_shape(result: &StreamingResult) -> Result<(), String> {
    let t = &result.ttfb;
    if !t.entry_identical {
        return Err("streamed entry chunks diverged from the batch entry page".into());
    }
    if t.ttfb >= t.batch_wall {
        return Err(format!(
            "streaming TTFB {:?} not below batch wall {:?}",
            t.ttfb, t.batch_wall
        ));
    }
    let i = &result.incremental;
    if i.reused == 0 {
        return Err("warm run reused no subtree artifacts".into());
    }
    if i.reused + i.recomputed != result.sections as u64 {
        return Err(format!(
            "warm run accounted {} + {} subtrees, fixture has {}",
            i.reused, i.recomputed, result.sections
        ));
    }
    if i.incremental_renders >= i.cold_renders {
        return Err(format!(
            "incremental run rendered {} subpages, cold rendered {} — no savings",
            i.incremental_renders, i.cold_renders
        ));
    }
    Ok(())
}

impl ToJson for TtfbResult {
    fn to_json_value(&self) -> Value {
        obj([
            (
                "batch_wall_s",
                self.batch_wall.as_secs_f64().to_json_value(),
            ),
            ("ttfb_s", self.ttfb.as_secs_f64().to_json_value()),
            (
                "stream_wall_s",
                self.stream_wall.as_secs_f64().to_json_value(),
            ),
            ("speedup", self.speedup().to_json_value()),
            ("entry_identical", self.entry_identical.to_json_value()),
        ])
    }
}

impl ToJson for IncrementalResult {
    fn to_json_value(&self) -> Value {
        obj([
            ("cold_renders", self.cold_renders.to_json_value()),
            (
                "incremental_renders",
                self.incremental_renders.to_json_value(),
            ),
            ("reused", self.reused.to_json_value()),
            ("recomputed", self.recomputed.to_json_value()),
            ("cold_wall_s", self.cold_wall.as_secs_f64().to_json_value()),
            (
                "incremental_wall_s",
                self.incremental_wall.as_secs_f64().to_json_value(),
            ),
        ])
    }
}

impl ToJson for StreamingResult {
    fn to_json_value(&self) -> Value {
        obj([
            ("sections", self.sections.to_json_value()),
            ("ttfb", self.ttfb.to_json_value()),
            ("incremental", self.incremental.to_json_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_run_reuses_all_but_the_edited_section() {
        let result = run_incremental(4);
        assert_eq!(result.reused, 3, "{result:?}");
        assert_eq!(result.recomputed, 1, "{result:?}");
        assert!(
            result.incremental_renders < result.cold_renders,
            "{result:?}"
        );
    }

    #[test]
    fn streaming_entry_matches_batch() {
        let result = run_ttfb(4, 1);
        assert!(result.entry_identical, "{result:?}");
        assert!(result.ttfb <= result.stream_wall);
    }
}
