//! Figure 6 — the CraigsList AJAX adaptation for the iPad (§4.5).
//!
//! The reproduced quantity is the navigation cost of browsing N ads:
//! the original site reloads the full list + detail page per click; the
//! adapted two-pane page costs one entry load plus one proxy-satisfied
//! fragment per click.

use crate::fixtures;
use msite::attributes::{AdaptationSpec, Attribute, Target};
use msite::proxy::{ProxyConfig, ProxyServer};
use msite_net::{Origin, OriginRef, Request};
use msite_support::json::{obj, ToJson, Value};
use std::sync::Arc;

/// Results of the Figure 6 comparison.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Ads browsed.
    pub ads_browsed: usize,
    /// Bytes transferred by the original full-reload flow.
    pub original_bytes: usize,
    /// Bytes transferred by the adapted AJAX flow.
    pub adapted_bytes: usize,
    /// Full page loads in the original flow.
    pub original_page_loads: usize,
    /// Full page loads in the adapted flow (the entry page only).
    pub adapted_page_loads: usize,
    /// Listing links rewritten to asynchronous loads.
    pub links_rewritten: usize,
}

impl Fig6Result {
    /// Fraction of bytes saved by the adaptation.
    pub fn bytes_saved(&self) -> f64 {
        1.0 - self.adapted_bytes as f64 / self.original_bytes as f64
    }
}

/// The Figure 6 adaptation spec for the classifieds search page.
pub fn classifieds_spec(search_url: &str) -> AdaptationSpec {
    let mut spec = AdaptationSpec::new("cl", search_url);
    spec.snapshot = None;
    spec.rule(
        Target::Css("#results".into()),
        vec![
            Attribute::SetAttr {
                name: "style".into(),
                value: "float:left;width:44%".into(),
            },
            Attribute::InsertAfter {
                html: "<div id=\"msite-detail\" style=\"float:right;width:54%\"></div>".into(),
            },
            Attribute::LinksToAjax {
                target: "#msite-detail".into(),
            },
        ],
    )
}

/// Runs the comparison for `ads` ad views.
pub fn run(ads: usize) -> Fig6Result {
    let site = fixtures::classifieds();
    let search_url = format!("{}/search?cat=tools&page=0", site.base_url());
    let proxy = ProxyServer::new(
        classifieds_spec(&search_url),
        Arc::clone(&site) as OriginRef,
        ProxyConfig::default(),
    );

    // Original flow: list + detail page per ad.
    let list = site.handle(&Request::get(&search_url).unwrap());
    let mut original_bytes = 0usize;
    for i in 0..ads {
        let id = site.listing_id("tools", i as u32);
        let detail =
            site.handle(&Request::get(&format!("{}/listing/{id}.html", site.base_url())).unwrap());
        original_bytes += list.body.len() + detail.body.len();
    }

    // Adapted flow: one entry page + a fragment per ad.
    let entry = proxy.handle(&Request::get("http://p/m/cl/").unwrap());
    assert!(entry.status.is_success());
    let cookie = entry
        .headers
        .get("set-cookie")
        .and_then(|c| c.split(';').next())
        .expect("session cookie")
        .to_string();
    let links_rewritten = entry.body_text().matches("msiteLoad(").count();
    let mut adapted_bytes = entry.body.len();
    for i in 0..ads {
        let id = site.listing_id("tools", i as u32);
        let fragment = proxy.handle(
            &Request::get(&format!("http://p/m/cl/proxy?action=1&p={id}"))
                .unwrap()
                .with_header("cookie", &cookie),
        );
        assert!(fragment.status.is_success(), "{}", fragment.body_text());
        adapted_bytes += fragment.body.len();
    }

    Fig6Result {
        ads_browsed: ads,
        original_bytes,
        adapted_bytes,
        original_page_loads: ads * 2,
        adapted_page_loads: 1,
        links_rewritten,
    }
}

impl ToJson for Fig6Result {
    fn to_json_value(&self) -> Value {
        obj([
            ("ads_browsed", self.ads_browsed.to_json_value()),
            ("original_bytes", self.original_bytes.to_json_value()),
            ("adapted_bytes", self.adapted_bytes.to_json_value()),
            (
                "original_page_loads",
                self.original_page_loads.to_json_value(),
            ),
            (
                "adapted_page_loads",
                self.adapted_page_loads.to_json_value(),
            ),
            ("links_rewritten", self.links_rewritten.to_json_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapted_flow_saves_bytes_and_reloads() {
        let result = run(10);
        assert_eq!(result.ads_browsed, 10);
        assert!(result.links_rewritten >= 100, "{}", result.links_rewritten);
        assert!(result.adapted_bytes < result.original_bytes);
        assert!(
            result.bytes_saved() > 0.5,
            "saved {:.2}",
            result.bytes_saved()
        );
        assert_eq!(result.adapted_page_loads, 1);
        assert_eq!(result.original_page_loads, 20);
    }
}
