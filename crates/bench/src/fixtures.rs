//! Shared experiment fixtures: the synthetic sites, the paper's
//! adaptation spec for the forum entry page, and deployed proxies.

use msite::attributes::{AdaptationSpec, Attribute, SnapshotSpec, SourceFilter, Target};
use msite::baseline::{HighlightConfig, HighlightProxy};
use msite::proxy::{ProxyConfig, ProxyServer};
use msite_net::{Origin, OriginRef, Request};
use msite_render::browser::BrowserConfig;
use msite_sites::{ClassifiedsConfig, ClassifiedsSite, ForumConfig, ForumSite, PageManifest};
use std::sync::Arc;
use std::time::Duration;

/// The forum origin used by every experiment.
pub fn forum() -> Arc<ForumSite> {
    Arc::new(ForumSite::new(ForumConfig::default()))
}

/// The classifieds origin (Figure 6).
pub fn classifieds() -> Arc<ClassifiedsSite> {
    Arc::new(ClassifiedsSite::new(ClassifiedsConfig::default()))
}

/// The forum entry-page URL.
pub fn forum_index_url(site: &ForumSite) -> String {
    format!("{}/index.php", site.base_url())
}

/// The measured manifest of the forum entry page.
pub fn forum_manifest(site: &ForumSite) -> PageManifest {
    PageManifest::fetch(site, &forum_index_url(site))
}

/// The §4.3 adaptation spec: cached half-scale snapshot, login subpage
/// with dependencies and logo copy, two-column nav loaded via AJAX,
/// leaderboard replaced, forum listing split out.
pub fn forum_spec(site: &ForumSite) -> AdaptationSpec {
    let mut spec = AdaptationSpec::new("forum", &forum_index_url(site));
    spec.snapshot = Some(SnapshotSpec {
        scale: 0.5,
        quality: 40,
        cache_ttl_secs: 3_600,
        viewport_width: 1_024,
    });
    spec.filters.push(SourceFilter::SetTitle {
        title: "Sawmill Creek (mobile)".into(),
    });
    spec.rule(
        Target::Css("#loginform".into()),
        vec![
            Attribute::Subpage {
                id: "login".into(),
                title: "Log in".into(),
                ajax: false,
                prerender: false,
            },
            Attribute::Dependency {
                selector: "head link".into(),
            },
        ],
    )
    .rule(
        Target::Css("#header".into()),
        vec![Attribute::CopyTo {
            subpage: "login".into(),
            position: msite::attributes::Position::Top,
            set_attr: Some(("src".into(), "/images/mobile_logo.gif".into())),
        }],
    )
    .rule(
        Target::Css("#navrow".into()),
        vec![
            Attribute::LinksToColumns { columns: 2 },
            Attribute::Subpage {
                id: "nav".into(),
                title: "Navigate".into(),
                ajax: true,
                prerender: false,
            },
        ],
    )
    .rule(
        Target::Css("#leaderboard".into()),
        vec![Attribute::ReplaceWith {
            html: "<img src=\"/images/mobile_logo.gif\" width=\"300\" height=\"50\">".into(),
        }],
    )
    .rule(
        Target::Css("#forumbits".into()),
        vec![Attribute::Subpage {
            id: "forums".into(),
            title: "Forums".into(),
            ajax: false,
            prerender: false,
        }],
    )
}

/// A deployed m.Site proxy for the forum, with the Figure 7 calibrated
/// scripted overhead (the paper's PHP interpreter cost, ~3.5 ms).
pub fn forum_proxy(site: &Arc<ForumSite>, scripted_overhead: Duration) -> Arc<ProxyServer> {
    let proxy = Arc::new(ProxyServer::new(
        forum_spec(site),
        Arc::clone(site) as OriginRef,
        ProxyConfig {
            scripted_overhead,
            ..ProxyConfig::default()
        },
    ));
    // Warm the shared snapshot so throughput experiments measure the
    // steady state the paper measures (snapshot rebuilt hourly).
    let warm = proxy.handle(&Request::get("http://p/m/forum/").unwrap());
    assert!(warm.status.is_success(), "warmup failed: {}", warm.status);
    proxy
}

/// The Highlight baseline with the paper-testbed browser cost.
pub fn highlight_baseline(site: &Arc<ForumSite>) -> Arc<HighlightProxy> {
    Arc::new(HighlightProxy::new(
        &forum_index_url(site),
        Arc::clone(site) as OriginRef,
        HighlightConfig {
            browser_config: BrowserConfig::paper_testbed(),
            ..HighlightConfig::default()
        },
    ))
}

/// The PHP-equivalent scripted overhead used for absolute Figure 7 scale.
pub fn php_equivalent_overhead() -> Duration {
    Duration::from_micros(3_500)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_dsl() {
        let site = forum();
        let spec = forum_spec(&site);
        let script = msite::dsl::to_script(&spec);
        assert_eq!(msite::dsl::parse_script(&script).unwrap(), spec);
    }

    #[test]
    fn proxy_fixture_warm() {
        let site = forum();
        let proxy = forum_proxy(&site, Duration::ZERO);
        assert_eq!(proxy.stats().full_renders, 1);
    }
}
