//! The PR-7 durability + adaptive-capacity experiments.
//!
//! Two claims are checked:
//!
//! 1. **Warm restart.** A proxy with the persistent cache tier is
//!    killed without a graceful shutdown and restarted over the same
//!    disk; the successor must recover ≥ 90% of the pre-crash working
//!    set from the journal and serve it with **zero** browser renders.
//! 2. **Adaptive capacity beats static.** Under the same surge (same
//!    client count, window, and pacing) a server whose
//!    [`HealthMonitor`] steers the worker pool serves strictly more
//!    requests than the identically-configured static server.

use msite::attributes::{AdaptationSpec, Attribute, SnapshotSpec, Target};
use msite::persist::{DiskBackend, MemDisk};
use msite::proxy::{PersistConfig, ProxyConfig, ProxyServer};
use msite_net::{
    http_get, HealthConfig, HealthMonitor, HttpServer, Origin, OriginRef, Request, Response,
    ServerConfig, Status,
};
use msite_support::json::{obj, ToJson, Value};
use msite_support::telemetry::Telemetry;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrent clients in the surge.
pub const SURGE_CLIENTS: usize = 16;
/// Duration each surge arm runs at full offered load.
pub const SURGE_WINDOW: Duration = Duration::from_millis(800);
/// Simulated origin service time per request.
pub const ORIGIN_DELAY: Duration = Duration::from_millis(4);

/// Outcome of the kill-and-restart probe.
#[derive(Debug, Clone)]
pub struct RestartResult {
    /// Distinct cache keys the first life persisted (its hot set).
    pub working_set: usize,
    /// Keys the second life restored into memory at open.
    pub warm_loaded: u64,
    /// Working-set keys servable from the revived cache.
    pub recovered: usize,
    /// Browser renders the first life spent building the set.
    pub renders_first_life: u64,
    /// Browser renders the second life spent re-serving it (want 0).
    pub renders_after_restart: u64,
}

impl RestartResult {
    /// Fraction of the pre-crash working set served warm after restart.
    pub fn hit_ratio(&self) -> f64 {
        if self.working_set == 0 {
            return 0.0;
        }
        self.recovered as f64 / self.working_set as f64
    }
}

/// One arm of the surge comparison (identical offered load).
#[derive(Debug, Clone)]
pub struct SurgeArm {
    /// Requests the clients attempted during the window.
    pub attempts: u64,
    /// Requests answered by the origin.
    pub served: u64,
    /// Requests shed with `503 overloaded`.
    pub shed: u64,
    /// Health-loop scale-up actuations (0 for the static arm).
    pub scale_ups: u64,
    /// Worker width when the window closed.
    pub final_workers: usize,
}

/// Outcome of the adaptive-vs-static surge.
#[derive(Debug, Clone)]
pub struct SurgeResult {
    /// The fixed-width baseline.
    pub static_arm: SurgeArm,
    /// The health-monitored arm.
    pub adaptive_arm: SurgeArm,
}

impl SurgeResult {
    /// Throughput multiple of adaptive over static.
    pub fn speedup(&self) -> f64 {
        if self.static_arm.served == 0 {
            return f64::INFINITY;
        }
        self.adaptive_arm.served as f64 / self.static_arm.served as f64
    }
}

/// The full durability experiment result.
#[derive(Debug, Clone)]
pub struct DurabilityResult {
    /// Kill-and-restart warm-start probe.
    pub restart: RestartResult,
    /// Adaptive-vs-static surge comparison.
    pub surge: SurgeResult,
}

fn durable_spec() -> AdaptationSpec {
    let mut spec = AdaptationSpec::new("durable", "http://durable.bench/");
    spec.snapshot = Some(SnapshotSpec::default());
    ["a", "b", "c", "d"].iter().fold(spec, |spec, id| {
        spec.rule(
            Target::Css(format!("#{id}")),
            vec![Attribute::PrerenderImage {
                scale: 0.5,
                quality: 60,
                cache_ttl_secs: Some(3_600),
            }],
        )
    })
}

fn durable_proxy(backend: Arc<dyn DiskBackend>) -> Arc<ProxyServer> {
    let origin: OriginRef = Arc::new(|_req: &Request| {
        Response::html(
            "<html><head><title>Durable</title></head><body>\
             <div id=\"a\">alpha</div><div id=\"b\">beta</div>\
             <div id=\"c\">gamma</div><div id=\"d\">delta</div></body></html>",
        )
    });
    Arc::new(ProxyServer::new(
        durable_spec(),
        origin,
        ProxyConfig {
            persist: Some(PersistConfig::with_backend(backend, 4 * 1024 * 1024)),
            ..ProxyConfig::default()
        },
    ))
}

/// Builds a working set through a persisted proxy, crashes it (no
/// graceful flush-on-drop), and measures what the successor recovers.
pub fn run_restart() -> RestartResult {
    let disk = MemDisk::new();
    let proxy = durable_proxy(Arc::new(disk.clone()));
    for _ in 0..5 {
        let entry = proxy.handle(&Request::get("http://p/m/durable/").unwrap());
        assert!(entry.status.is_success(), "{}", entry.status);
    }
    let renders_first_life = proxy.stats().full_renders;
    proxy.cache().flush_disk();
    let working_set = proxy
        .cache()
        .disk()
        .expect("persistent tier attached")
        .hot_keys(64);
    // `forget` models the crash: Drop would flush and join the
    // write-behind thread, which a real kill never does.
    std::mem::forget(proxy);

    let revived = durable_proxy(Arc::new(disk.clone()));
    let warm_loaded = revived.cache().warm_loaded();
    let recovered = working_set
        .iter()
        .filter(|key| revived.cache().get(key).is_some())
        .count();
    let entry = revived.handle(&Request::get("http://p/m/durable/").unwrap());
    assert!(entry.status.is_success(), "{}", entry.status);
    RestartResult {
        working_set: working_set.len(),
        warm_loaded,
        recovered,
        renders_first_life,
        renders_after_restart: revived.stats().full_renders,
    }
}

/// Runs one surge arm: a deliberately narrow server (2 workers, queue 8)
/// against [`SURGE_CLIENTS`] closed-loop clients for [`SURGE_WINDOW`].
/// The adaptive arm attaches a fast-ticking [`HealthMonitor`] that may
/// widen the pool up to 32 workers; the static arm keeps width 2.
fn run_surge_arm(adaptive: bool) -> SurgeArm {
    let origin: OriginRef = Arc::new(|_req: &Request| {
        std::thread::sleep(ORIGIN_DELAY);
        Response::html("<p>served</p>")
    });
    let telemetry = Telemetry::new();
    let server = HttpServer::bind_with_telemetry(
        "127.0.0.1:0",
        origin,
        ServerConfig {
            workers: 2,
            queue_depth: 8,
        },
        telemetry.clone(),
    )
    .expect("ephemeral bind");
    let monitor = adaptive.then(|| {
        let monitor = Arc::new(HealthMonitor::new(
            HealthConfig {
                interval: Duration::from_millis(15),
                min_workers: 2,
                max_workers: 32,
                ..HealthConfig::default()
            },
            Arc::clone(&telemetry.metrics),
            server.pool(),
            server.shed_threshold(),
        ));
        monitor.spawn();
        monitor
    });

    let addr = server.addr();
    let stop_at = Instant::now() + SURGE_WINDOW;
    let clients: Vec<_> = (0..SURGE_CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut attempts = 0u64;
                while Instant::now() < stop_at {
                    attempts += 1;
                    let shed = http_get(&format!("http://{addr}/surge{i}"))
                        .map(|r| r.status == Status::SERVICE_UNAVAILABLE)
                        .unwrap_or(true);
                    if shed {
                        // Back off instead of hammering the shed path,
                        // so both arms offer comparable load.
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                attempts
            })
        })
        .collect();
    let attempts: u64 = clients
        .into_iter()
        .map(|c| c.join().expect("surge client"))
        .sum();
    if let Some(monitor) = &monitor {
        monitor.stop();
    }
    let registry = &telemetry.metrics;
    let arm = SurgeArm {
        attempts,
        served: registry.counter_value("msite_server_served_total", &[]),
        shed: registry.counter_value("msite_server_rejected_overload_total", &[]),
        scale_ups: registry.counter_value("msite_health_scale_ups_total", &[]),
        final_workers: server.pool().workers(),
    };
    server.shutdown();
    arm
}

/// Runs the surge comparison: static first, then adaptive, at equal
/// offered load.
pub fn run_surge() -> SurgeResult {
    SurgeResult {
        static_arm: run_surge_arm(false),
        adaptive_arm: run_surge_arm(true),
    }
}

/// Runs the full durability experiment.
pub fn run() -> DurabilityResult {
    DurabilityResult {
        restart: run_restart(),
        surge: run_surge(),
    }
}

/// Shape assertions for the experiments binary: the warm-start ratio is
/// a hard floor, the restart spends no renders, and adaptive capacity
/// strictly out-serves static under the same surge.
pub fn check_shape(result: &DurabilityResult) -> Result<(), String> {
    let restart = &result.restart;
    if restart.working_set < 2 {
        return Err(format!(
            "restart working set too small to measure: {} keys",
            restart.working_set
        ));
    }
    if restart.hit_ratio() < 0.9 {
        return Err(format!(
            "warm-start hit ratio {:.2} below the 0.9 floor ({}/{} keys)",
            restart.hit_ratio(),
            restart.recovered,
            restart.working_set
        ));
    }
    if restart.renders_after_restart != 0 {
        return Err(format!(
            "restart re-rendered {} times; the working set must come from disk",
            restart.renders_after_restart
        ));
    }
    let surge = &result.surge;
    if surge.adaptive_arm.scale_ups == 0 {
        return Err("adaptive arm never scaled up; the surge did not bite".into());
    }
    if surge.adaptive_arm.served <= surge.static_arm.served {
        return Err(format!(
            "adaptive served {} <= static {} at equal offered load",
            surge.adaptive_arm.served, surge.static_arm.served
        ));
    }
    if surge.static_arm.shed == 0 {
        return Err("static arm shed nothing; the surge never exceeded capacity".into());
    }
    Ok(())
}

impl ToJson for RestartResult {
    fn to_json_value(&self) -> Value {
        obj([
            ("working_set", self.working_set.to_json_value()),
            ("warm_loaded", self.warm_loaded.to_json_value()),
            ("recovered", self.recovered.to_json_value()),
            ("hit_ratio", self.hit_ratio().to_json_value()),
            (
                "renders_first_life",
                self.renders_first_life.to_json_value(),
            ),
            (
                "renders_after_restart",
                self.renders_after_restart.to_json_value(),
            ),
        ])
    }
}

impl ToJson for SurgeArm {
    fn to_json_value(&self) -> Value {
        obj([
            ("attempts", self.attempts.to_json_value()),
            ("served", self.served.to_json_value()),
            ("shed", self.shed.to_json_value()),
            ("scale_ups", self.scale_ups.to_json_value()),
            ("final_workers", self.final_workers.to_json_value()),
        ])
    }
}

impl ToJson for SurgeResult {
    fn to_json_value(&self) -> Value {
        obj([
            ("static", self.static_arm.to_json_value()),
            ("adaptive", self.adaptive_arm.to_json_value()),
            ("speedup", self.speedup().to_json_value()),
        ])
    }
}

impl ToJson for DurabilityResult {
    fn to_json_value(&self) -> Value {
        obj([
            ("restart", self.restart.to_json_value()),
            ("surge", self.surge.to_json_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_recovers_the_working_set() {
        let restart = run_restart();
        assert!(restart.hit_ratio() >= 0.9, "{restart:?}");
        assert_eq!(restart.renders_after_restart, 0, "{restart:?}");
    }

    #[test]
    fn adaptive_surge_out_serves_static() {
        let surge = run_surge();
        assert!(surge.adaptive_arm.scale_ups >= 1, "{surge:?}");
        assert!(
            surge.adaptive_arm.served > surge.static_arm.served,
            "{surge:?}"
        );
    }
}
