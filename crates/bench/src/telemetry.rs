//! The PR-5 telemetry-overhead experiment: the observability layer must
//! be cheap enough to leave on for every request.
//!
//! Two measurements back that claim:
//!
//! 1. **Macro gate.** The throughput fixture is adapted with telemetry
//!    fully disabled (untraced context, no registry publishing) and
//!    fully enabled (per-request trace, per-stage spans, stage
//!    histograms, request counters — exactly what the proxy records per
//!    request). The relative overhead must stay under
//!    [`OVERHEAD_BOUND`]; the measured ratio lands in `BENCH_PR5.json`.
//! 2. **Micro costs.** Raw per-op cost of the two hot-path primitives —
//!    `Counter::inc` and `Histogram::observe` — reported in ns/op so a
//!    regression in the lock-free path is visible even when the macro
//!    gate still passes.

use crate::throughput::{sectioned_page, sectioned_spec};
use msite::{adapt_with_report, PipelineContext};
use msite_support::json::{obj, ToJson, Value};
use msite_support::telemetry::{Telemetry, Trace, TraceIdSeq, LATENCY_MICROS_BOUNDS};
use std::time::{Duration, Instant};

/// Sections in the fixture page (smaller than the throughput sweep's:
/// the gate compares two configurations of the *same* workload, so it
/// needs repetitions more than scale).
pub const SECTIONS: usize = 6;

/// Maximum tolerated relative overhead of full instrumentation on the
/// adaptation fixture (instrumented / baseline - 1).
pub const OVERHEAD_BOUND: f64 = 0.25;

/// Outcome of the telemetry-overhead experiment.
#[derive(Debug, Clone)]
pub struct TelemetryOverheadResult {
    /// Adaptation iterations per configuration.
    pub iterations: usize,
    /// Best-of-iterations wall clock with telemetry disabled.
    pub baseline: Duration,
    /// Best-of-iterations wall clock with full per-request telemetry.
    pub instrumented: Duration,
    /// `instrumented / baseline - 1` (negative = within noise).
    pub overhead_ratio: f64,
    /// The gate this run was held to ([`OVERHEAD_BOUND`]).
    pub bound: f64,
    /// Cost of one `Counter::inc` on an interned handle, in ns.
    pub counter_ns: f64,
    /// Cost of one `Histogram::observe` on an interned handle, in ns.
    pub histogram_ns: f64,
}

impl TelemetryOverheadResult {
    /// Whether the macro gate holds.
    pub fn within_bound(&self) -> bool {
        self.overhead_ratio <= self.bound
    }
}

/// One adaptation of the fixture; when `telemetry` is set, records
/// everything the proxy records per request: a trace with per-stage
/// spans, per-stage latency histograms, and the request counters.
fn run_once(
    spec: &msite::attributes::AdaptationSpec,
    page: &str,
    telemetry: Option<(&Telemetry, &TraceIdSeq)>,
) -> Duration {
    let mut ctx = PipelineContext {
        base: "/m/sectioned".into(),
        parallelism: 1,
        ..PipelineContext::default()
    };
    let trace = telemetry.map(|(t, ids)| {
        let trace = Trace::new(ids.next_id(), std::sync::Arc::clone(&t.trace_log));
        ctx.trace = Some(trace.clone());
        trace
    });
    let start = Instant::now();
    let (_, report) = adapt_with_report(spec, page, &ctx).expect("fixture adapts cleanly");
    if let Some((t, _)) = telemetry {
        for stage in &report.stages {
            t.metrics
                .histogram(
                    "msite_stage_micros",
                    &[("stage", stage.kind.name())],
                    LATENCY_MICROS_BOUNDS,
                )
                .observe(stage.elapsed.as_micros() as u64);
        }
        t.metrics.counter("msite_proxy_requests_total", &[]).inc();
        let elapsed = start.elapsed();
        if let Some(trace) = &trace {
            trace.record(
                "request",
                elapsed,
                vec![("path".to_string(), "/m/sectioned/".to_string())],
            );
        }
        t.metrics
            .histogram("msite_proxy_request_micros", &[], LATENCY_MICROS_BOUNDS)
            .observe(elapsed.as_micros() as u64);
        return elapsed;
    }
    start.elapsed()
}

/// Measures a hot-path primitive: `ops` calls of `op`, in ns per call.
fn ns_per_op(ops: u64, mut op: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..ops {
        op();
    }
    start.elapsed().as_nanos() as f64 / ops as f64
}

/// Runs the experiment: `iterations` adaptations per configuration
/// (interleaved to spread thermal/cache drift evenly), best-of kept.
pub fn run(iterations: usize) -> TelemetryOverheadResult {
    let iterations = iterations.max(3);
    let spec = sectioned_spec(SECTIONS);
    let page = sectioned_page(SECTIONS);
    let telemetry = Telemetry::new();
    let ids = TraceIdSeq::new(0xBE7C);

    // Warm both paths once outside the measurement.
    run_once(&spec, &page, None);
    run_once(&spec, &page, Some((&telemetry, &ids)));

    let mut baseline = Duration::MAX;
    let mut instrumented = Duration::MAX;
    for _ in 0..iterations {
        baseline = baseline.min(run_once(&spec, &page, None));
        instrumented = instrumented.min(run_once(&spec, &page, Some((&telemetry, &ids))));
    }

    const MICRO_OPS: u64 = 1_000_000;
    let counter = telemetry.metrics.counter("bench_micro_total", &[]);
    let histogram = telemetry
        .metrics
        .histogram("bench_micro_micros", &[], LATENCY_MICROS_BOUNDS);
    let counter_ns = ns_per_op(MICRO_OPS, || counter.inc());
    let mut v = 0u64;
    let histogram_ns = ns_per_op(MICRO_OPS, || {
        v = v.wrapping_add(997) % 5_000_000;
        histogram.observe(v);
    });

    TelemetryOverheadResult {
        iterations,
        baseline,
        instrumented,
        overhead_ratio: instrumented.as_secs_f64() / baseline.as_secs_f64() - 1.0,
        bound: OVERHEAD_BOUND,
        counter_ns,
        histogram_ns,
    }
}

/// Shape assertions for the experiments binary.
pub fn check_shape(result: &TelemetryOverheadResult) -> Result<(), String> {
    if result.baseline.is_zero() || result.instrumented.is_zero() {
        return Err("zero wall time measured".into());
    }
    if !result.within_bound() {
        return Err(format!(
            "telemetry overhead {:.1}% exceeds the {:.0}% bound",
            result.overhead_ratio * 100.0,
            result.bound * 100.0
        ));
    }
    // The hot path is one atomic op; even debug builds stay far under a
    // microsecond. A blown budget here means a lock crept in.
    if result.counter_ns > 1_000.0 || result.histogram_ns > 1_000.0 {
        return Err(format!(
            "hot-path primitive too slow: counter {:.0} ns, histogram {:.0} ns",
            result.counter_ns, result.histogram_ns
        ));
    }
    Ok(())
}

impl ToJson for TelemetryOverheadResult {
    fn to_json_value(&self) -> Value {
        obj([
            ("iterations", self.iterations.to_json_value()),
            ("baseline_s", self.baseline.as_secs_f64().to_json_value()),
            (
                "instrumented_s",
                self.instrumented.as_secs_f64().to_json_value(),
            ),
            ("overhead_ratio", self.overhead_ratio.to_json_value()),
            ("bound", self.bound.to_json_value()),
            ("within_bound", self.within_bound().to_json_value()),
            ("counter_ns", self.counter_ns.to_json_value()),
            ("histogram_ns", self.histogram_ns.to_json_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_gate_holds_on_the_fixture() {
        let result = run(3);
        assert!(result.baseline > Duration::ZERO);
        assert!(
            result.within_bound(),
            "telemetry overhead {:.1}% over the {:.0}% bound",
            result.overhead_ratio * 100.0,
            result.bound * 100.0
        );
    }

    #[test]
    fn instrumented_run_populates_registry_and_trace() {
        let spec = sectioned_spec(2);
        let page = sectioned_page(2);
        let telemetry = Telemetry::new();
        let ids = TraceIdSeq::new(7);
        run_once(&spec, &page, Some((&telemetry, &ids)));
        assert_eq!(
            telemetry
                .metrics
                .counter_value("msite_proxy_requests_total", &[]),
            1
        );
        let text = telemetry.metrics.render_text();
        assert!(text.contains("msite_stage_micros_bucket{stage=\"fetch\""));
        assert!(!telemetry.trace_log.is_empty());
    }
}
