//! Table formatting and JSON output for the experiments binary.

use msite_support::json::ToJson;

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Serializes a result set to pretty JSON (for EXPERIMENTS.md appendices).
pub fn to_json<T: ToJson>(value: &T) -> String {
    value.to_json_pretty()
}

/// Formats seconds with one decimal.
pub fn secs(v: f64) -> String {
    format!("{v:.1} s")
}

/// Formats a byte count with thousands separators.
pub fn bytes(v: usize) -> String {
    let digits = v.to_string();
    let mut out = String::new();
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting() {
        assert_eq!(bytes(0), "0");
        assert_eq!(bytes(224_477), "224,477");
        assert_eq!(bytes(1_000), "1,000");
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(4.52), "4.5 s");
    }
}
