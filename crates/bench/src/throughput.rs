//! The PR-4 throughput experiment: serial vs. parallel adaptation of a
//! multi-subpage page (the emit/render fan-out), plus the server's
//! overload behavior under a bounded worker-pool executor.
//!
//! Two claims are checked:
//!
//! 1. **Byte identity.** The parallel pipeline's output is asserted
//!    byte-identical to the serial run at every pool width — hard, on
//!    every machine. On hosts with ≥ 2 cores the sweep additionally
//!    expects the best parallel wall time to beat serial.
//! 2. **Explicit overload.** When the server's bounded queue fills, the
//!    accept loop sheds connections with `503` + `x-msite-error:
//!    overloaded` + `retry-after` instead of spawning unbounded
//!    threads; accepted = served + rejected (no connection vanishes).

use msite::attributes::{AdaptationSpec, Attribute, SnapshotSpec, Target};
use msite::{adapt_with_report, AdaptedBundle, PipelineContext, StageKind};
use msite_net::{
    http_get, HttpServer, OriginRef, Request, Response, ServerConfig, Status, OVERLOAD_HEADER,
    OVERLOAD_REASON,
};
use msite_support::json::{obj, ToJson, Value};
use msite_support::telemetry::Telemetry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sections (= pre-rendered subpages) in the synthetic fixture page.
pub const SECTIONS: usize = 12;

/// Pool widths the pipeline sweep visits (serial first).
pub const WIDTHS: [usize; 3] = [1, 2, 4];

/// One pool width's measurement in the pipeline sweep.
#[derive(Debug, Clone)]
pub struct PipelinePoint {
    /// Worker-crew width ([`PipelineContext::parallelism`]).
    pub parallelism: usize,
    /// Best-of-trials wall-clock for one full adaptation.
    pub wall: Duration,
    /// Whether the bundle matched the serial run byte for byte.
    pub identical_to_serial: bool,
    /// Emit-stage speedup from the [`msite::PipelineReport`] (busy time
    /// over wall time; `None` when the stage ran serially).
    pub emit_speedup: Option<f64>,
}

/// Outcome of the overload probe against a real TCP server.
#[derive(Debug, Clone)]
pub struct OverloadResult {
    /// Executor sizing used for the probe.
    pub workers: usize,
    /// Bounded queue depth used for the probe.
    pub queue_depth: usize,
    /// Connections accepted off the listener.
    pub accepted: u64,
    /// Requests answered by the origin.
    pub served: u64,
    /// Connections shed with `503 overloaded`.
    pub rejected_overload: u64,
    /// Every shed response carried the reason token and `retry-after`.
    pub shed_headers_ok: bool,
}

impl OverloadResult {
    /// No accepted connection vanished: each was served or shed.
    pub fn conserved(&self) -> bool {
        self.accepted == self.served + self.rejected_overload
    }
}

/// The full throughput experiment result.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Host cores visible to the sweep (parallel wall-time expectations
    /// only apply when ≥ 2).
    pub cores: usize,
    /// The pipeline sweep, serial point first.
    pub pipeline: Vec<PipelinePoint>,
    /// The server overload probe.
    pub overload: OverloadResult,
}

/// A synthetic page with `sections` independent content blocks, each
/// heavy enough that pre-rendering it costs real layout work.
pub fn sectioned_page(sections: usize) -> String {
    let mut html = String::from(
        "<!DOCTYPE html><html><head><title>Sectioned</title>\
         <style>.row { border: 1px solid #ccc }</style></head><body>\n\
         <div id=\"masthead\"><h1>Throughput fixture</h1></div>\n",
    );
    for s in 0..sections {
        html.push_str(&format!("<div id=\"sec{s}\"><h2>Section {s}</h2><table>"));
        for row in 0..24 {
            html.push_str(&format!(
                "<tr class=\"row\"><td>item {s}.{row}</td>\
                 <td><a href=\"/view.php?s={s}&amp;r={row}\">open</a></td>\
                 <td>{}</td></tr>",
                "lorem ipsum dolor sit amet ".repeat(3)
            ));
        }
        html.push_str("</table></div>\n");
    }
    html.push_str("</body></html>");
    html
}

/// The adaptation spec for the fixture: a half-scale snapshot entry page
/// plus one *pre-rendered* subpage per section — the embarrassingly
/// parallel emit/render workload.
pub fn sectioned_spec(sections: usize) -> AdaptationSpec {
    let mut spec = AdaptationSpec::new("sectioned", "http://sectioned.example/");
    spec.snapshot = Some(SnapshotSpec {
        scale: 0.5,
        quality: 40,
        cache_ttl_secs: 3_600,
        viewport_width: 1_024,
    });
    for s in 0..sections {
        spec = spec.rule(
            Target::Css(format!("#sec{s}")),
            vec![Attribute::Subpage {
                id: format!("sec{s}"),
                title: format!("Section {s}"),
                ajax: false,
                prerender: true,
            }],
        );
    }
    spec
}

/// A stable fingerprint of everything an [`AdaptedBundle`] would write
/// to disk: entry page, subpages, image bytes and metadata, counters.
/// Two runs with equal fingerprints produced byte-identical bundles.
pub fn fingerprint(bundle: &AdaptedBundle) -> String {
    let mut out = String::new();
    out.push_str(&format!("entry:{}\n", bundle.entry_html.len()));
    out.push_str(&bundle.entry_html);
    for file in &bundle.subpages {
        out.push_str(&format!("\nfile:{}:{}\n", file.name, file.html.len()));
        out.push_str(&file.html);
    }
    for image in &bundle.images {
        out.push_str(&format!(
            "\nimage:{}:{}x{}:wire={}:sum={}\n",
            image.name,
            image.width,
            image.height,
            image.wire_size,
            image
                .bytes
                .iter()
                .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(*b as u64))
        ));
    }
    out.push_str(&format!("\nstats:{:?}", bundle.stats));
    out
}

/// Runs one adaptation at the given pool width and returns the bundle,
/// its report, and the wall-clock spent.
fn run_once(
    spec: &AdaptationSpec,
    page: &str,
    parallelism: usize,
) -> (AdaptedBundle, msite::PipelineReport, Duration) {
    let ctx = PipelineContext {
        base: "/m/sectioned".into(),
        parallelism,
        ..PipelineContext::default()
    };
    let start = Instant::now();
    let (bundle, report) = adapt_with_report(spec, page, &ctx).expect("fixture adapts cleanly");
    (bundle, report, start.elapsed())
}

/// Sweeps the pipeline across [`WIDTHS`], comparing every bundle with
/// the serial reference byte for byte and keeping the best-of-`trials`
/// wall time per width.
pub fn run_pipeline_sweep(sections: usize, trials: usize) -> Vec<PipelinePoint> {
    let spec = sectioned_spec(sections);
    let page = sectioned_page(sections);
    let (reference, _, _) = run_once(&spec, &page, 1);
    let reference_print = fingerprint(&reference);

    WIDTHS
        .iter()
        .map(|&parallelism| {
            let mut best = Duration::MAX;
            let mut identical = true;
            let mut emit_speedup = None;
            for _ in 0..trials.max(1) {
                let (bundle, report, wall) = run_once(&spec, &page, parallelism);
                identical &= fingerprint(&bundle) == reference_print;
                if wall < best {
                    best = wall;
                    emit_speedup = report.parallel_speedup(StageKind::Emit);
                }
            }
            PipelinePoint {
                parallelism,
                wall: best,
                identical_to_serial: identical,
                emit_speedup,
            }
        })
        .collect()
}

/// Drives a real TCP server with a deliberately tiny executor past its
/// queue depth and records how the overflow was handled. The origin
/// blocks until every client has fired, so the queue genuinely fills.
pub fn run_overload_probe() -> OverloadResult {
    const WORKERS: usize = 2;
    const QUEUE_DEPTH: usize = 4;
    const CLIENTS: usize = 16;

    let gate = Arc::new(AtomicBool::new(false));
    let gate2 = Arc::clone(&gate);
    let origin: OriginRef = Arc::new(move |_req: &Request| {
        while !gate2.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(2));
        }
        Response::html("<p>served</p>")
    });
    // The probe reads its counters from the server's telemetry registry
    // — the same `msite_server_*` series a `/metrics` scrape reports —
    // rather than any experiment-private bookkeeping.
    let telemetry = Telemetry::new();
    let server = HttpServer::bind_with_telemetry(
        "127.0.0.1:0",
        origin,
        ServerConfig {
            workers: WORKERS,
            queue_depth: QUEUE_DEPTH,
        },
        telemetry.clone(),
    )
    .expect("ephemeral bind");
    let addr = server.addr();

    // Fire the clients; each either blocks on the gated origin or gets
    // shed immediately. Shed responses must carry the backoff headers.
    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let resp = http_get(&format!("http://{addr}/load{i}")).expect("server reachable");
                let shed = resp.status == Status::SERVICE_UNAVAILABLE;
                let headers_ok = !shed
                    || (resp.headers.get(OVERLOAD_HEADER) == Some(OVERLOAD_REASON)
                        && resp.headers.get("retry-after").is_some());
                (shed, headers_ok)
            })
        })
        .collect();

    // Release the origin once every connection is accounted for (the
    // server either queued or shed it the moment it was accepted).
    let registry = &telemetry.metrics;
    let accepted_so_far = || registry.counter_value("msite_server_accepted_total", &[]);
    let deadline = Instant::now() + Duration::from_secs(10);
    while accepted_so_far() < CLIENTS as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    gate.store(true, Ordering::SeqCst);
    let mut shed_headers_ok = true;
    for client in clients {
        let (_, headers_ok) = client.join().expect("client thread");
        shed_headers_ok &= headers_ok;
    }
    server.shutdown();
    OverloadResult {
        workers: WORKERS,
        queue_depth: QUEUE_DEPTH,
        accepted: accepted_so_far(),
        served: registry.counter_value("msite_server_served_total", &[]),
        rejected_overload: registry.counter_value("msite_server_rejected_overload_total", &[]),
        shed_headers_ok,
    }
}

/// Runs the full experiment.
pub fn run(trials: usize) -> ThroughputResult {
    ThroughputResult {
        cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        pipeline: run_pipeline_sweep(SECTIONS, trials),
        overload: run_overload_probe(),
    }
}

/// Shape assertions for the experiments binary: byte identity always;
/// wall-time improvement only when the host can actually overlap work;
/// overload sheds explicitly and conserves connections.
pub fn check_shape(result: &ThroughputResult) -> Result<(), String> {
    let serial = result
        .pipeline
        .iter()
        .find(|p| p.parallelism == 1)
        .ok_or("sweep must include the serial point")?;
    for point in &result.pipeline {
        if !point.identical_to_serial {
            return Err(format!(
                "parallel output at width {} diverged from serial",
                point.parallelism
            ));
        }
        if point.wall.is_zero() {
            return Err(format!(
                "width {} measured zero wall time",
                point.parallelism
            ));
        }
    }
    if result.cores >= 2 {
        let best_parallel = result
            .pipeline
            .iter()
            .filter(|p| p.parallelism > 1)
            .map(|p| p.wall)
            .min()
            .ok_or("sweep must include a parallel point")?;
        if best_parallel >= serial.wall {
            return Err(format!(
                "no parallel width beat serial on a {}-core host ({:?} vs {:?})",
                result.cores, best_parallel, serial.wall
            ));
        }
    }
    let overload = &result.overload;
    if overload.rejected_overload == 0 {
        return Err("overload probe shed nothing; queue never filled".into());
    }
    if overload.served < overload.workers as u64 {
        return Err(format!(
            "overload probe served {} < workers {}",
            overload.served, overload.workers
        ));
    }
    if !overload.conserved() {
        return Err(format!(
            "connections not conserved: accepted {} != served {} + rejected {}",
            overload.accepted, overload.served, overload.rejected_overload
        ));
    }
    if !overload.shed_headers_ok {
        return Err("a shed response was missing the overloaded reason or retry-after".into());
    }
    Ok(())
}

impl ToJson for PipelinePoint {
    fn to_json_value(&self) -> Value {
        obj([
            ("parallelism", self.parallelism.to_json_value()),
            ("wall_s", self.wall.as_secs_f64().to_json_value()),
            (
                "identical_to_serial",
                self.identical_to_serial.to_json_value(),
            ),
            ("emit_speedup", self.emit_speedup.to_json_value()),
        ])
    }
}

impl ToJson for OverloadResult {
    fn to_json_value(&self) -> Value {
        obj([
            ("workers", self.workers.to_json_value()),
            ("queue_depth", self.queue_depth.to_json_value()),
            ("accepted", self.accepted.to_json_value()),
            ("served", self.served.to_json_value()),
            ("rejected_overload", self.rejected_overload.to_json_value()),
            ("conserved", self.conserved().to_json_value()),
            ("shed_headers_ok", self.shed_headers_ok.to_json_value()),
        ])
    }
}

impl ToJson for ThroughputResult {
    fn to_json_value(&self) -> Value {
        obj([
            ("cores", self.cores.to_json_value()),
            ("pipeline", self.pipeline.to_json_value()),
            ("overload", self.overload.to_json_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_byte_identical_at_every_width() {
        let points = run_pipeline_sweep(6, 1);
        assert_eq!(points.len(), WIDTHS.len());
        for point in &points {
            assert!(point.identical_to_serial, "width {}", point.parallelism);
            assert!(point.wall > Duration::ZERO);
        }
    }

    #[test]
    fn overload_probe_sheds_and_conserves() {
        let overload = run_overload_probe();
        assert!(overload.rejected_overload >= 1, "{overload:?}");
        assert!(overload.conserved(), "{overload:?}");
        assert!(overload.shed_headers_ok, "{overload:?}");
    }

    #[test]
    fn fixture_produces_prerendered_subpages() {
        let spec = sectioned_spec(4);
        let page = sectioned_page(4);
        let ctx = PipelineContext {
            base: "/m/sectioned".into(),
            parallelism: 2,
            ..PipelineContext::default()
        };
        let bundle = msite::adapt(&spec, &page, &ctx).unwrap();
        assert_eq!(bundle.subpages.len(), 4);
        // One snapshot + one pre-render per section.
        assert_eq!(bundle.images.len(), 5);
        assert!(bundle.stats.browser_used);
    }
}
