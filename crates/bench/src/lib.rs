//! # msite-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! m.Site paper. The `experiments` binary prints them; the Criterion
//! benches measure the underlying operations. See DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixtures;
pub mod report;

pub mod burst;
pub mod capacity;
pub mod claims;
pub mod content;
pub mod durability;
pub mod fig6;
pub mod fig7;
pub mod hotpath;
pub mod streaming;
pub mod table1;
pub mod telemetry;
pub mod throughput;
