//! The paper's quantitative in-text claims (C1, C2, C3, C5 in DESIGN.md).

use crate::fixtures;
use crate::table1;
use msite::SearchIndex;
use msite_device::{simulate_page_load, simulate_snapshot_view, CostModel, DeviceProfile};
use msite_net::LinkModel;
use msite_net::{Origin, Request};
use msite_render::browser::{Browser, BrowserConfig};
use msite_render::image::{jpeg_size_model, process, ImageFormat, PostProcess};
use msite_support::json::{obj, ToJson, Value};

/// One verified claim.
#[derive(Debug, Clone)]
pub struct ClaimResult {
    /// Claim id from DESIGN.md.
    pub id: String,
    /// What the paper says.
    pub paper: String,
    /// What we measure.
    pub measured: String,
    /// Whether the measured value preserves the claim's shape.
    pub holds: bool,
}

/// C1 (§3.3): "In the index page of our test site, this technique
/// [pre-rendering] can reduce wall-clock load time by a factor of 5."
pub fn c1_prerender_speedup() -> ClaimResult {
    let site = fixtures::forum();
    let manifest = fixtures::forum_manifest(&site);
    let cost = CostModel::default();
    let facts = table1::snapshot_facts();
    let full = simulate_page_load(
        &DeviceProfile::blackberry_tour(),
        &LinkModel::THREE_G,
        &manifest,
        &cost,
    )
    .total_s();
    let snap = simulate_snapshot_view(
        &DeviceProfile::blackberry_tour(),
        &LinkModel::THREE_G,
        facts.entry_html_bytes,
        facts.snapshot_wire_bytes,
        facts.snapshot_pixels,
        &cost,
    )
    .total_s();
    let speedup = full / snap;
    ClaimResult {
        id: "C1".into(),
        paper: "pre-rendering reduces index load time ~5x".into(),
        measured: format!("{full:.1} s -> {snap:.1} s = {speedup:.1}x"),
        holds: (3.0..=8.0).contains(&speedup),
    }
}

/// C2 (§3.3): "when a full page is rendered into a high-fidelity png, it
/// can consume upwards of 600K ... a post-processor can produce a
/// reduced-fidelity jpg at 25-50k."
pub fn c2_image_fidelity() -> ClaimResult {
    let site = fixtures::forum();
    let page = site
        .handle(&Request::get(&fixtures::forum_index_url(&site)).unwrap())
        .body_text();
    let browser = Browser::launch(BrowserConfig::default());
    let rendered = browser.render_page(&page, &[]);
    // High-fidelity PNG of the full page, and the JPEG-class size of the
    // same pixels at full quality (the paper's numbers are JPEG-era).
    let hi_png = process(&rendered.canvas, &PostProcess::default());
    let hi_jpeg_class = jpeg_size_model(&rendered.canvas, 95);
    let lo = process(
        &rendered.canvas,
        &PostProcess {
            scale: Some(0.5),
            format: ImageFormat::JpegClass { quality: 40 },
            ..Default::default()
        },
    );
    let hi = hi_png.wire_bytes().max(hi_jpeg_class);
    let ratio = hi as f64 / lo.wire_bytes() as f64;
    ClaimResult {
        id: "C2".into(),
        paper: "hi-fi full-page ~600KB -> reduced-fidelity 25-50KB (12-24x)".into(),
        measured: format!(
            "hi-fi {} B -> reduced {} B = {ratio:.1}x",
            hi,
            lo.wire_bytes()
        ),
        holds: ratio >= 4.0 && lo.wire_bytes() < 80_000,
    }
}

/// C3 (§2): "a page of low-fidelity thumbnail links can load an order of
/// magnitude faster than rendering complicated site content on a mobile
/// device."
pub fn c3_thumbnail_order_of_magnitude() -> ClaimResult {
    let site = fixtures::forum();
    let manifest = fixtures::forum_manifest(&site);
    let cost = CostModel::default();
    let full = simulate_page_load(
        &DeviceProfile::blackberry_tour(),
        &LinkModel::THREE_G,
        &manifest,
        &cost,
    )
    .total_s();
    // A thumbnail menu page: ~2 KB of HTML and one ~12 KB thumbnail strip.
    let thumb = simulate_snapshot_view(
        &DeviceProfile::blackberry_tour(),
        &LinkModel::THREE_G,
        2_000,
        12_000,
        240 * 320,
        &cost,
    )
    .total_s();
    let speedup = full / thumb;
    ClaimResult {
        id: "C3".into(),
        paper: "thumbnail menu loads ~an order of magnitude faster".into(),
        measured: format!("{full:.1} s -> {thumb:.1} s = {speedup:.1}x"),
        holds: speedup >= 5.0,
    }
}

/// C5 (§3.3): the searchable attribute builds a server-side sorted word
/// index over the pre-rendered page, queried by binary search.
pub fn c5_search_index() -> ClaimResult {
    let site = fixtures::forum();
    let page = site
        .handle(&Request::get(&fixtures::forum_index_url(&site)).unwrap())
        .body_text();
    let browser = Browser::launch(BrowserConfig::default());
    let rendered = browser.render_page(&page, &[]);
    let index = SearchIndex::build(&rendered.layout, 0.5);
    let statistics_hits = index.find("statistics");
    let forum_hits = index.find("forums");
    let js = index.to_javascript();
    let holds = !statistics_hits.is_empty()
        && !forum_hits.is_empty()
        && js.contains("function msiteSearch")
        && index.len() > 300;
    ClaimResult {
        id: "C5".into(),
        paper: "sorted word index over pre-rendered page, client binary search".into(),
        measured: format!(
            "{} indexed words; 'statistics' at {} spots, 'forums' at {}; {} B of JS",
            index.len(),
            statistics_hits.len(),
            forum_hits.len(),
            js.len()
        ),
        holds,
    }
}

/// All claims.
pub fn all() -> Vec<ClaimResult> {
    vec![
        c1_prerender_speedup(),
        c2_image_fidelity(),
        c3_thumbnail_order_of_magnitude(),
        c5_search_index(),
    ]
}

impl ToJson for ClaimResult {
    fn to_json_value(&self) -> Value {
        obj([
            ("id", self.id.to_json_value()),
            ("paper", self.paper.to_json_value()),
            ("measured", self.measured.to_json_value()),
            ("holds", self.holds.to_json_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_claim_holds() {
        for claim in all() {
            assert!(
                claim.holds,
                "{}: {} (measured {})",
                claim.id, claim.paper, claim.measured
            );
        }
    }
}
