//! HTTP Basic authentication and the base64 codec it needs.
//!
//! The paper: "some areas of the site may be protected with HTTP
//! authentication. If the proxy comes across a page that requires user
//! input, the client is redirected to a lightweight HTTP authentication
//! page. Once authenticated, the proxy stores this information and uses
//! it on behalf of the client."

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as standard base64 with padding.
///
/// # Examples
///
/// ```
/// assert_eq!(msite_net::auth::base64_encode(b"Ma"), "TWE=");
/// assert_eq!(msite_net::auth::base64_encode(b"Man"), "TWFu");
/// ```
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 63] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[triple as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes standard base64 (padding required). Returns `None` on invalid
/// input.
pub fn base64_decode(input: &str) -> Option<Vec<u8>> {
    let input = input.trim();
    if !input.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(input.len() / 4 * 3);
    let decode_char = |c: u8| -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a' + 26) as u32),
            b'0'..=b'9' => Some((c - b'0' + 52) as u32),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    };
    for chunk in input.as_bytes().chunks(4) {
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        // Padding may only appear at the end.
        if pad > 2 || (pad >= 1 && chunk[3] != b'=') || (pad == 2 && chunk[2] != b'=') {
            return None;
        }
        let v0 = decode_char(chunk[0])?;
        let v1 = decode_char(chunk[1])?;
        let v2 = if pad == 2 { 0 } else { decode_char(chunk[2])? };
        let v3 = if pad >= 1 { 0 } else { decode_char(chunk[3])? };
        let triple = (v0 << 18) | (v1 << 12) | (v2 << 6) | v3;
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Some(out)
}

/// Builds an `Authorization: Basic ...` header value.
pub fn basic_auth_header(user: &str, password: &str) -> String {
    format!(
        "Basic {}",
        base64_encode(format!("{user}:{password}").as_bytes())
    )
}

/// Parses an `Authorization: Basic ...` header into `(user, password)`.
pub fn parse_basic_auth(header: &str) -> Option<(String, String)> {
    let encoded = header
        .strip_prefix("Basic ")
        .or_else(|| header.strip_prefix("basic "))?;
    let decoded = base64_decode(encoded)?;
    let text = String::from_utf8(decoded).ok()?;
    let (user, password) = text.split_once(':')?;
    Some((user.to_string(), password.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_round_trip() {
        for data in [
            &b""[..],
            b"a",
            b"ab",
            b"abc",
            b"\x00\xFF\x80",
            b"longer input text!",
        ] {
            assert_eq!(base64_decode(&base64_encode(data)).unwrap(), data);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(base64_decode("abc").is_none()); // bad length
        assert!(base64_decode("ab!=").is_none()); // bad char
        assert!(base64_decode("=abc").is_none()); // padding first
        assert!(base64_decode("a===").is_none()); // too much padding
    }

    #[test]
    fn basic_auth_round_trip() {
        let header = basic_auth_header("aladdin", "open sesame");
        assert_eq!(header, "Basic YWxhZGRpbjpvcGVuIHNlc2FtZQ==");
        let (u, p) = parse_basic_auth(&header).unwrap();
        assert_eq!(u, "aladdin");
        assert_eq!(p, "open sesame");
    }

    #[test]
    fn basic_auth_password_with_colon() {
        let header = basic_auth_header("u", "a:b:c");
        let (u, p) = parse_basic_auth(&header).unwrap();
        assert_eq!(u, "u");
        assert_eq!(p, "a:b:c");
    }

    #[test]
    fn parse_rejects_non_basic() {
        assert!(parse_basic_auth("Bearer xyz").is_none());
        assert!(parse_basic_auth("Basic !!!").is_none());
    }
}
