//! URL parsing, resolution and percent/query encoding.

use std::error::Error;
use std::fmt;

/// Error for malformed URLs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUrlError {
    message: String,
}

impl ParseUrlError {
    fn new(message: impl Into<String>) -> Self {
        ParseUrlError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseUrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid url: {}", self.message)
    }
}

impl Error for ParseUrlError {}

/// A parsed `http`/`https` URL.
///
/// # Examples
///
/// ```
/// use msite_net::Url;
///
/// let url = Url::parse("http://forum.example:8080/index.php?styleid=5#top").unwrap();
/// assert_eq!(url.host(), "forum.example");
/// assert_eq!(url.port(), 8080);
/// assert_eq!(url.path(), "/index.php");
/// assert_eq!(url.query(), Some("styleid=5"));
/// assert_eq!(url.query_param("styleid"), Some("5".to_string()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Url {
    scheme: String,
    host: String,
    port: u16,
    path: String,
    query: Option<String>,
    fragment: Option<String>,
}

impl Url {
    /// Parses an absolute URL.
    ///
    /// # Errors
    ///
    /// Returns [`ParseUrlError`] when the scheme is missing/unsupported or
    /// the host is empty.
    pub fn parse(input: &str) -> Result<Url, ParseUrlError> {
        let input = input.trim();
        let (scheme, rest) = input
            .split_once("://")
            .ok_or_else(|| ParseUrlError::new("missing scheme"))?;
        let scheme = scheme.to_ascii_lowercase();
        if scheme != "http" && scheme != "https" {
            return Err(ParseUrlError::new(format!("unsupported scheme `{scheme}`")));
        }
        let (authority, path_etc) = match rest.find('/') {
            Some(slash) => (&rest[..slash], &rest[slash..]),
            None => (rest, "/"),
        };
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => (
                h,
                p.parse::<u16>()
                    .map_err(|_| ParseUrlError::new(format!("bad port `{p}`")))?,
            ),
            None => (authority, if scheme == "https" { 443 } else { 80 }),
        };
        if host.is_empty() {
            return Err(ParseUrlError::new("empty host"));
        }
        let (without_fragment, fragment) = match path_etc.split_once('#') {
            Some((p, f)) => (p, Some(f.to_string())),
            None => (path_etc, None),
        };
        let (path, query) = match without_fragment.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (without_fragment.to_string(), None),
        };
        Ok(Url {
            scheme,
            host: host.to_ascii_lowercase(),
            port,
            path,
            query,
            fragment,
        })
    }

    /// Scheme, `http` or `https`.
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Lowercased host.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Port (defaulted from the scheme when absent).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Path, always starting with `/`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Raw query string without the `?`, if any.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// Fragment without the `#`, if any.
    pub fn fragment(&self) -> Option<&str> {
        self.fragment.as_deref()
    }

    /// Path plus query string, the request-target form.
    pub fn path_and_query(&self) -> String {
        match &self.query {
            Some(q) => format!("{}?{}", self.path, q),
            None => self.path.clone(),
        }
    }

    /// Decoded value of the query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<String> {
        parse_query(self.query.as_deref()?)
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Resolves a (possibly relative) reference against this URL.
    ///
    /// # Errors
    ///
    /// Returns [`ParseUrlError`] when the reference is absolute and
    /// malformed.
    pub fn join(&self, reference: &str) -> Result<Url, ParseUrlError> {
        if reference.contains("://") {
            return Url::parse(reference);
        }
        let mut out = self.clone();
        out.fragment = None;
        if let Some(rest) = reference.strip_prefix("//") {
            return Url::parse(&format!("{}://{}", self.scheme, rest));
        }
        if reference.starts_with('/') {
            let (without_fragment, fragment) = split_fragment(reference);
            let (path, query) = split_query(without_fragment);
            out.path = path.to_string();
            out.query = query.map(str::to_string);
            out.fragment = fragment.map(str::to_string);
            return Ok(out);
        }
        if reference.starts_with('?') {
            let (without_fragment, fragment) = split_fragment(reference);
            out.query = Some(without_fragment[1..].to_string());
            out.fragment = fragment.map(str::to_string);
            return Ok(out);
        }
        // Relative path: resolve against the parent directory.
        let (without_fragment, fragment) = split_fragment(reference);
        let (rel_path, query) = split_query(without_fragment);
        let base_dir = match self.path.rfind('/') {
            Some(pos) => &self.path[..=pos],
            None => "/",
        };
        let combined = format!("{base_dir}{rel_path}");
        let mut segments: Vec<&str> = Vec::new();
        for seg in combined.split('/') {
            match seg {
                "" | "." => {}
                ".." => {
                    segments.pop();
                }
                s => segments.push(s),
            }
        }
        // Preserve a trailing slash when the reference has one.
        let trailing = rel_path.ends_with('/') || rel_path.is_empty();
        let mut path = String::from("/");
        path.push_str(&segments.join("/"));
        if trailing && !path.ends_with('/') {
            path.push('/');
        }
        out.path = path;
        out.query = query.map(str::to_string);
        out.fragment = fragment.map(str::to_string);
        Ok(out)
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme, self.host)?;
        let default_port = if self.scheme == "https" { 443 } else { 80 };
        if self.port != default_port {
            write!(f, ":{}", self.port)?;
        }
        write!(f, "{}", self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        if let Some(frag) = &self.fragment {
            write!(f, "#{frag}")?;
        }
        Ok(())
    }
}

fn split_fragment(s: &str) -> (&str, Option<&str>) {
    match s.split_once('#') {
        Some((a, b)) => (a, Some(b)),
        None => (s, None),
    }
}

fn split_query(s: &str) -> (&str, Option<&str>) {
    match s.split_once('?') {
        Some((a, b)) => (a, Some(b)),
        None => (s, None),
    }
}

/// Percent-decodes a string (`%41` → `A`, `+` → space).
pub fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes a string for use in a query component.
pub fn percent_encode(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for byte in input.bytes() {
        match byte {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(byte as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{byte:02X}")),
        }
    }
    out
}

/// Parses a query string into decoded `(key, value)` pairs.
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Encodes `(key, value)` pairs into a query string.
pub fn encode_query(params: &[(&str, &str)]) -> String {
    params
        .iter()
        .map(|(k, v)| format!("{}={}", percent_encode(k), percent_encode(v)))
        .collect::<Vec<_>>()
        .join("&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_url() {
        let u = Url::parse("HTTP://Forum.Example.COM:8080/a/b.php?x=1&y=2#frag").unwrap();
        assert_eq!(u.scheme(), "http");
        assert_eq!(u.host(), "forum.example.com");
        assert_eq!(u.port(), 8080);
        assert_eq!(u.path(), "/a/b.php");
        assert_eq!(u.query(), Some("x=1&y=2"));
        assert_eq!(u.fragment(), Some("frag"));
    }

    #[test]
    fn default_ports() {
        assert_eq!(Url::parse("http://h").unwrap().port(), 80);
        assert_eq!(Url::parse("https://h").unwrap().port(), 443);
        assert_eq!(Url::parse("http://h").unwrap().path(), "/");
    }

    #[test]
    fn display_round_trip() {
        for s in [
            "http://h/",
            "http://h:81/x?q=1",
            "https://h/p#f",
            "http://h/a/b?x=1&y=2#z",
        ] {
            let u = Url::parse(s).unwrap();
            assert_eq!(Url::parse(&u.to_string()).unwrap(), u, "{s}");
        }
    }

    #[test]
    fn errors() {
        assert!(Url::parse("ftp://h/").is_err());
        assert!(Url::parse("nourl").is_err());
        assert!(Url::parse("http://").is_err());
        assert!(Url::parse("http://h:notaport/").is_err());
    }

    #[test]
    fn join_absolute_and_scheme_relative() {
        let base = Url::parse("http://a/x/y.php").unwrap();
        assert_eq!(base.join("http://b/z").unwrap().to_string(), "http://b/z");
        assert_eq!(base.join("//c/w").unwrap().host(), "c");
    }

    #[test]
    fn join_root_relative() {
        let base = Url::parse("http://a/x/y.php?q=1").unwrap();
        let joined = base.join("/login.php?do=logout").unwrap();
        assert_eq!(joined.to_string(), "http://a/login.php?do=logout");
    }

    #[test]
    fn join_relative_path() {
        let base = Url::parse("http://a/forum/index.php").unwrap();
        assert_eq!(
            base.join("showthread.php?t=5").unwrap().to_string(),
            "http://a/forum/showthread.php?t=5"
        );
        assert_eq!(
            base.join("../images/logo.gif").unwrap().to_string(),
            "http://a/images/logo.gif"
        );
        assert_eq!(base.join("./a/./b").unwrap().path(), "/forum/a/b");
    }

    #[test]
    fn join_query_only() {
        let base = Url::parse("http://a/p.php?old=1").unwrap();
        assert_eq!(
            base.join("?new=2").unwrap().to_string(),
            "http://a/p.php?new=2"
        );
    }

    #[test]
    fn query_params_decoded() {
        let u = Url::parse("http://h/s?q=a%20b+c&empty=&flag").unwrap();
        assert_eq!(u.query_param("q"), Some("a b c".to_string()));
        assert_eq!(u.query_param("empty"), Some(String::new()));
        assert_eq!(u.query_param("flag"), Some(String::new()));
        assert_eq!(u.query_param("missing"), None);
    }

    #[test]
    fn percent_round_trip() {
        for s in ["hello world", "a=b&c=d", "100% möglich", "safe-chars_.~"] {
            assert_eq!(percent_decode(&percent_encode(s)), s);
        }
    }

    #[test]
    fn percent_decode_malformed() {
        assert_eq!(percent_decode("%"), "%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%4"), "%4");
    }

    #[test]
    fn query_encode_decode() {
        let q = encode_query(&[("do", "showpic"), ("id", "42"), ("t", "a b")]);
        assert_eq!(q, "do=showpic&id=42&t=a+b");
        let parsed = parse_query(&q);
        assert_eq!(parsed[2], ("t".to_string(), "a b".to_string()));
    }
}
