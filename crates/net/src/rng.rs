//! A small deterministic PRNG (SplitMix64) shared by the synthetic sites,
//! the load generators and the evaluation harness.
//!
//! Determinism matters here: the workloads must be reproducible from a
//! seed so that experiment runs are comparable, which rules out
//! OS-entropy generators for content generation.

/// SplitMix64: tiny, fast, and statistically solid for simulation use.
///
/// # Examples
///
/// ```
/// use msite_net::Prng;
///
/// let mut a = Prng::new(42);
/// let mut b = Prng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Prng {
        Prng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (tiny bias acceptable for
        // workload generation).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range inverted");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)` — the paper's U\[0,1\] draw for Figure 7.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Derives an independent generator for a labeled substream.
    pub fn fork(&mut self, label: u64) -> Prng {
        Prng::new(self.next_u64() ^ label.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Prng::new(7);
        let seq: Vec<u64> = (0..5).map(|_| a.next_u64()).collect();
        let mut b = Prng::new(7);
        let seq2: Vec<u64> = (0..5).map(|_| b.next_u64()).collect();
        assert_eq!(seq, seq2);
        let mut c = Prng::new(8);
        assert_ne!(seq[0], c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Prng::new(1);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut rng = Prng::new(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.range(3, 6);
            assert!((3..=6).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn unit_f64_distribution_sane() {
        let mut rng = Prng::new(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.unit_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = Prng::new(4);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn pick_covers_all_items() {
        let mut rng = Prng::new(5);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*rng.pick(&items) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn forks_are_independent() {
        let mut root = Prng::new(9);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn below_zero_panics() {
        Prng::new(0).below(0);
    }
}
