//! The [`Origin`] abstraction: anything that can answer HTTP requests
//! in-process.
//!
//! The m.Site proxy is "colocated on the web server", so origin fetches
//! are function calls here, with the *network* cost modeled separately by
//! [`crate::link`] for the device-side simulation. Synthetic sites, the
//! proxy itself, and test fixtures all implement `Origin`, which lets
//! them be stacked and also served over real TCP by
//! [`crate::server::HttpServer`].

use crate::http::{Request, Response, Status};
use std::sync::Arc;

/// A server that can answer requests. Implementations must be thread-safe:
/// the proxy dispatches from a worker pool.
pub trait Origin: Send + Sync {
    /// Handles one request, always producing a response (origins model
    /// errors as 5xx responses rather than panicking).
    fn handle(&self, request: &Request) -> Response;

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str {
        "origin"
    }
}

impl<F> Origin for F
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    fn handle(&self, request: &Request) -> Response {
        self(request)
    }
}

/// Shared handle to an origin.
pub type OriginRef = Arc<dyn Origin>;

/// Routes requests by host name to different origins — the "multiple
/// pages/sites behind one proxy" deployment.
#[derive(Default)]
pub struct HostRouter {
    routes: Vec<(String, OriginRef)>,
}

impl HostRouter {
    /// Creates an empty router.
    pub fn new() -> HostRouter {
        HostRouter::default()
    }

    /// Adds a host route (exact, case-insensitive match).
    pub fn route(mut self, host: &str, origin: OriginRef) -> HostRouter {
        self.routes.push((host.to_ascii_lowercase(), origin));
        self
    }
}

impl Origin for HostRouter {
    fn handle(&self, request: &Request) -> Response {
        let host = request.url.host();
        match self.routes.iter().find(|(h, _)| h == host) {
            Some((_, origin)) => origin.handle(request),
            None => Response::error(Status::BAD_GATEWAY, &format!("unknown host {host}")),
        }
    }

    fn name(&self) -> &str {
        "host-router"
    }
}

/// Failure-injection wrapper: makes a fraction of requests fail, for
/// testing the proxy's error handling. The decision is deterministic in
/// the request path (hash-based), so tests are reproducible.
pub struct FlakyOrigin {
    inner: OriginRef,
    /// Failure probability in [0, 1].
    failure_rate: f64,
    /// Status returned on injected failures.
    failure_status: Status,
}

impl FlakyOrigin {
    /// Wraps `inner`, failing `failure_rate` of requests with `status`.
    pub fn new(inner: OriginRef, failure_rate: f64, status: Status) -> FlakyOrigin {
        FlakyOrigin {
            inner,
            failure_rate: failure_rate.clamp(0.0, 1.0),
            failure_status: status,
        }
    }
}

impl Origin for FlakyOrigin {
    fn handle(&self, request: &Request) -> Response {
        // FNV over the path+query gives a stable per-URL coin.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in request.url.path_and_query().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // SplitMix finalizer: FNV alone avalanches poorly into high bits
        // on short inputs.
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        let coin = (h >> 11) as f64 / (1u64 << 53) as f64;
        if coin < self.failure_rate {
            Response::error(self.failure_status, "injected failure")
        } else {
            self.inner.handle(request)
        }
    }

    fn name(&self) -> &str {
        "flaky"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed(text: &'static str) -> OriginRef {
        Arc::new(move |_req: &Request| Response::html(text))
    }

    #[test]
    fn closures_are_origins() {
        let origin = fixed("hello");
        let resp = origin.handle(&Request::get("http://h/").unwrap());
        assert_eq!(resp.body_text(), "hello");
    }

    #[test]
    fn host_router_dispatches() {
        let router = HostRouter::new()
            .route("forum.example", fixed("forum"))
            .route("ads.example", fixed("ads"));
        let forum = router.handle(&Request::get("http://forum.example/").unwrap());
        assert_eq!(forum.body_text(), "forum");
        let ads = router.handle(&Request::get("http://ADS.example/x").unwrap());
        assert_eq!(ads.body_text(), "ads");
        let unknown = router.handle(&Request::get("http://other/").unwrap());
        assert_eq!(unknown.status, Status::BAD_GATEWAY);
    }

    #[test]
    fn flaky_origin_fails_deterministically() {
        let flaky = FlakyOrigin::new(fixed("ok"), 0.5, Status::SERVICE_UNAVAILABLE);
        let mut failures = 0;
        let mut outcomes = Vec::new();
        for i in 0..200 {
            let req = Request::get(&format!("http://h/page{i}")).unwrap();
            let resp = flaky.handle(&req);
            if !resp.status.is_success() {
                failures += 1;
            }
            outcomes.push(resp.status);
        }
        assert!((60..140).contains(&failures), "failures {failures}");
        // Determinism: replaying yields identical outcomes.
        for (i, &status) in outcomes.iter().enumerate() {
            let req = Request::get(&format!("http://h/page{i}")).unwrap();
            assert_eq!(flaky.handle(&req).status, status);
        }
    }

    #[test]
    fn flaky_zero_rate_never_fails() {
        let flaky = FlakyOrigin::new(fixed("ok"), 0.0, Status::SERVICE_UNAVAILABLE);
        for i in 0..50 {
            let req = Request::get(&format!("http://h/p{i}")).unwrap();
            assert!(flaky.handle(&req).status.is_success());
        }
    }
}
