//! The [`Origin`] abstraction: anything that can answer HTTP requests
//! in-process.
//!
//! The m.Site proxy is "colocated on the web server", so origin fetches
//! are function calls here, with the *network* cost modeled separately by
//! [`crate::link`] for the device-side simulation. Synthetic sites, the
//! proxy itself, and test fixtures all implement `Origin`, which lets
//! them be stacked and also served over real TCP by
//! [`crate::server::HttpServer`].

use crate::http::{Request, Response, Status};
use msite_support::bytes::Bytes;
use msite_support::sync::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// A server that can answer requests. Implementations must be thread-safe:
/// the proxy dispatches from a worker pool.
pub trait Origin: Send + Sync {
    /// Handles one request, always producing a response (origins model
    /// errors as 5xx responses rather than panicking).
    fn handle(&self, request: &Request) -> Response;

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str {
        "origin"
    }
}

impl<F> Origin for F
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    fn handle(&self, request: &Request) -> Response {
        self(request)
    }
}

/// Shared handle to an origin.
pub type OriginRef = Arc<dyn Origin>;

/// Routes requests by host name to different origins — the "multiple
/// pages/sites behind one proxy" deployment.
#[derive(Default)]
pub struct HostRouter {
    routes: Vec<(String, OriginRef)>,
}

impl HostRouter {
    /// Creates an empty router.
    pub fn new() -> HostRouter {
        HostRouter::default()
    }

    /// Adds a host route (exact, case-insensitive match).
    pub fn route(mut self, host: &str, origin: OriginRef) -> HostRouter {
        self.routes.push((host.to_ascii_lowercase(), origin));
        self
    }
}

impl Origin for HostRouter {
    fn handle(&self, request: &Request) -> Response {
        let host = request.url.host();
        match self.routes.iter().find(|(h, _)| h == host) {
            Some((_, origin)) => origin.handle(request),
            None => Response::error(Status::BAD_GATEWAY, &format!("unknown host {host}")),
        }
    }

    fn name(&self) -> &str {
        "host-router"
    }
}

/// Counters for injected faults, so chaos tests can assert the harness
/// actually exercised each mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Requests handled (faulted or passed through).
    pub requests: u64,
    /// Failures injected by the failure-rate coin.
    pub coin_failures: u64,
    /// Failures injected by an outage window.
    pub outage_failures: u64,
    /// Successful responses whose body was truncated.
    pub truncated: u64,
    /// Successful responses whose body was garbled.
    pub malformed: u64,
    /// Successful responses rewrapped in corrupted chunked framing.
    pub garbled_chunks: u64,
    /// Requests delayed by latency injection.
    pub delayed: u64,
}

/// Fault-injection wrapper around an origin: seeded failure-rate coins,
/// fixed (plus seeded-jitter) latency, request-count outage windows, and
/// truncated/garbled bodies — all deterministic so chaos runs replay.
///
/// The failure coin is a hash of the request path+query mixed with the
/// seed, so a given URL fails identically on every run (and on replay
/// within a run). [`Self::per_attempt`] additionally mixes in a request
/// counter, so retries of the same URL re-flip the coin — the mode the
/// proxy's retry loop is tested against.
pub struct FlakyOrigin {
    inner: OriginRef,
    /// Failure probability in [0, 1].
    failure_rate: f64,
    /// Status returned on injected failures.
    failure_status: Status,
    seed: u64,
    per_attempt: bool,
    latency: Duration,
    latency_jitter: Duration,
    outage: Option<(u64, u64)>,
    truncate_rate: f64,
    malformed_rate: f64,
    garbled_chunk_rate: f64,
    counter: Mutex<u64>,
    stats: Mutex<FaultStats>,
}

impl FlakyOrigin {
    /// Wraps `inner`, failing `failure_rate` of requests with `status`.
    pub fn new(inner: OriginRef, failure_rate: f64, status: Status) -> FlakyOrigin {
        FlakyOrigin {
            inner,
            failure_rate: failure_rate.clamp(0.0, 1.0),
            failure_status: status,
            seed: 0,
            per_attempt: false,
            latency: Duration::ZERO,
            latency_jitter: Duration::ZERO,
            outage: None,
            truncate_rate: 0.0,
            malformed_rate: 0.0,
            garbled_chunk_rate: 0.0,
            counter: Mutex::new(0),
            stats: Mutex::new(FaultStats::default()),
        }
    }

    /// Re-seeds every fault coin; different seeds give different (still
    /// deterministic) fault patterns over the same request stream.
    pub fn with_seed(mut self, seed: u64) -> FlakyOrigin {
        self.seed = seed;
        self
    }

    /// Mixes a request counter into the failure coin so repeated fetches
    /// of the same URL (e.g. retries) draw fresh outcomes. The full
    /// request sequence is still reproducible from the seed.
    pub fn per_attempt(mut self) -> FlakyOrigin {
        self.per_attempt = true;
        self
    }

    /// Injects `base` of latency on every request, plus a seeded uniform
    /// draw in `[0, jitter)`.
    pub fn with_latency(mut self, base: Duration, jitter: Duration) -> FlakyOrigin {
        self.latency = base;
        self.latency_jitter = jitter;
        self
    }

    /// Fails every request whose (0-based) arrival index falls in
    /// `[from, to)` — a hard outage window in request-count time, which
    /// keeps outage tests clock-free.
    pub fn with_outage_window(mut self, from: u64, to: u64) -> FlakyOrigin {
        self.outage = Some((from, to));
        self
    }

    /// Truncates the body of `rate` of successful responses at half
    /// length (a mid-transfer disconnect).
    pub fn with_truncated_bodies(mut self, rate: f64) -> FlakyOrigin {
        self.truncate_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Garbles the body of `rate` of successful responses (unterminated
    /// markup spliced over the tail — a corrupted transfer).
    pub fn with_malformed_bodies(mut self, rate: f64) -> FlakyOrigin {
        self.malformed_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Rewraps the body of `rate` of successful responses in *corrupted*
    /// chunked transfer framing — the response is tagged with an
    /// `x-flaky-garbled-chunk` header naming the corruption sub-mode, and
    /// the body becomes a chunked encoding that [`crate::decode_chunked`]
    /// must reject with a typed error (truncated terminator, non-hex
    /// size, oversized size, or missing CRLF — chosen by a seeded coin).
    pub fn with_garbled_chunks(mut self, rate: f64) -> FlakyOrigin {
        self.garbled_chunk_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Injection counters so far.
    pub fn fault_stats(&self) -> FaultStats {
        *self.stats.lock()
    }

    /// A seeded per-request coin in `[0, 1)`. `salt` decorrelates the
    /// coins of independent fault modes on the same request.
    fn coin(&self, request: &Request, sequence: u64, salt: u64) -> f64 {
        // FNV over the path+query gives a stable per-URL base.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed ^ salt.wrapping_mul(0x9E37_79B9);
        for b in request.url.path_and_query().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        if self.per_attempt {
            h ^= sequence.wrapping_mul(0xA24B_AED4_963E_E407);
        }
        // SplitMix finalizer: FNV alone avalanches poorly into high bits
        // on short inputs.
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Origin for FlakyOrigin {
    fn handle(&self, request: &Request) -> Response {
        let sequence = {
            let mut counter = self.counter.lock();
            let seq = *counter;
            *counter += 1;
            seq
        };
        self.stats.lock().requests += 1;
        if !self.latency.is_zero() || !self.latency_jitter.is_zero() {
            let jitter = Duration::from_secs_f64(
                self.latency_jitter.as_secs_f64() * self.coin(request, sequence, 3),
            );
            self.stats.lock().delayed += 1;
            std::thread::sleep(self.latency + jitter);
        }
        if let Some((from, to)) = self.outage {
            if (from..to).contains(&sequence) {
                self.stats.lock().outage_failures += 1;
                return Response::error(self.failure_status, "injected outage");
            }
        }
        if self.coin(request, sequence, 0) < self.failure_rate {
            self.stats.lock().coin_failures += 1;
            return Response::error(self.failure_status, "injected failure");
        }
        let mut response = self.inner.handle(request);
        if response.status.is_success() && !response.body.is_empty() {
            if self.coin(request, sequence, 1) < self.truncate_rate {
                self.stats.lock().truncated += 1;
                let keep = response.body.len() / 2;
                response.body = Bytes::from(response.body[..keep].to_vec());
            } else if self.coin(request, sequence, 2) < self.malformed_rate {
                self.stats.lock().malformed += 1;
                let keep = response.body.len() * 3 / 4;
                let mut garbled = response.body[..keep].to_vec();
                garbled.extend_from_slice(b"<div <p <<table><tr//\xff\xfe<span");
                response.body = Bytes::from(garbled);
            } else if self.coin(request, sequence, 4) < self.garbled_chunk_rate {
                self.stats.lock().garbled_chunks += 1;
                let mode = (self.coin(request, sequence, 5) * 4.0) as usize % 4;
                response
                    .headers
                    .set("x-flaky-garbled-chunk", GARBLED_CHUNK_MODES[mode]);
                response.body = Bytes::from(garble_chunked(&response.body, mode));
            }
        }
        response
    }

    fn name(&self) -> &str {
        "flaky"
    }
}

/// Sub-mode names reported in the `x-flaky-garbled-chunk` header, in
/// coin order.
pub const GARBLED_CHUNK_MODES: [&str; 4] = [
    "truncated-terminator",
    "non-hex-size",
    "oversized-size",
    "missing-crlf",
];

/// Wraps `body` in chunked framing corrupted per `mode` (an index into
/// [`GARBLED_CHUNK_MODES`]). Every mode yields bytes that
/// [`crate::decode_chunked`] rejects with the corresponding typed
/// [`crate::ChunkedError`] — never a panic, hang, or silent success.
pub fn garble_chunked(body: &[u8], mode: usize) -> Vec<u8> {
    use crate::http::encode_chunk;
    match mode % 4 {
        // Data chunk intact, but the stream dies mid-terminator.
        0 => {
            let mut wire = encode_chunk(body);
            wire.extend_from_slice(b"0\r\n");
            wire
        }
        // Size line that is not hex at all.
        1 => {
            let mut wire = b"xZx\r\n".to_vec();
            wire.extend_from_slice(body);
            wire.extend_from_slice(b"\r\n0\r\n\r\n");
            wire
        }
        // Size line declaring an absurd chunk the data never backs.
        2 => {
            let mut wire = b"ffffffffffffffff\r\n".to_vec();
            wire.extend_from_slice(body);
            wire
        }
        // Data present but its CRLF terminator replaced with junk.
        _ => {
            let mut wire = format!("{:x}\r\n", body.len()).into_bytes();
            wire.extend_from_slice(body);
            wire.extend_from_slice(b"XX0\r\n\r\n");
            wire
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed(text: &'static str) -> OriginRef {
        Arc::new(move |_req: &Request| Response::html(text))
    }

    #[test]
    fn closures_are_origins() {
        let origin = fixed("hello");
        let resp = origin.handle(&Request::get("http://h/").unwrap());
        assert_eq!(resp.body_text(), "hello");
    }

    #[test]
    fn host_router_dispatches() {
        let router = HostRouter::new()
            .route("forum.example", fixed("forum"))
            .route("ads.example", fixed("ads"));
        let forum = router.handle(&Request::get("http://forum.example/").unwrap());
        assert_eq!(forum.body_text(), "forum");
        let ads = router.handle(&Request::get("http://ADS.example/x").unwrap());
        assert_eq!(ads.body_text(), "ads");
        let unknown = router.handle(&Request::get("http://other/").unwrap());
        assert_eq!(unknown.status, Status::BAD_GATEWAY);
    }

    #[test]
    fn flaky_origin_fails_deterministically() {
        let flaky = FlakyOrigin::new(fixed("ok"), 0.5, Status::SERVICE_UNAVAILABLE);
        let mut failures = 0;
        let mut outcomes = Vec::new();
        for i in 0..200 {
            let req = Request::get(&format!("http://h/page{i}")).unwrap();
            let resp = flaky.handle(&req);
            if !resp.status.is_success() {
                failures += 1;
            }
            outcomes.push(resp.status);
        }
        assert!((60..140).contains(&failures), "failures {failures}");
        // Determinism: replaying yields identical outcomes.
        for (i, &status) in outcomes.iter().enumerate() {
            let req = Request::get(&format!("http://h/page{i}")).unwrap();
            assert_eq!(flaky.handle(&req).status, status);
        }
    }

    #[test]
    fn flaky_zero_rate_never_fails() {
        let flaky = FlakyOrigin::new(fixed("ok"), 0.0, Status::SERVICE_UNAVAILABLE);
        for i in 0..50 {
            let req = Request::get(&format!("http://h/p{i}")).unwrap();
            assert!(flaky.handle(&req).status.is_success());
        }
    }
}
