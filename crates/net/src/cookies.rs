//! Cookies and per-user cookie jars.
//!
//! The m.Site proxy "handles user session authentication, cookie jars,
//! and high-level session administration, such as deletion of cookies":
//! each mobile session owns a [`CookieJar`] that the proxy loads before
//! fetching origin pages on the user's behalf.

use crate::http::{Request, Response};
use crate::url::Url;

/// A single cookie with the attributes the proxy honors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// Domain scope (empty = host-only, set from the response URL).
    pub domain: String,
    /// Path scope.
    pub path: String,
    /// Expiry in seconds since an arbitrary epoch; `None` = session cookie.
    pub expires_at: Option<u64>,
    /// HttpOnly flag (informational).
    pub http_only: bool,
    /// True when the `Set-Cookie` carried no `Domain` attribute and the
    /// domain above was copied from the response URL: RFC 6265 host-only
    /// cookies match the exact host, never its subdomains.
    pub host_only: bool,
}

impl Cookie {
    /// Creates a session cookie scoped to `/`.
    pub fn new(name: &str, value: &str) -> Cookie {
        Cookie {
            name: name.to_string(),
            value: value.to_string(),
            domain: String::new(),
            path: "/".to_string(),
            expires_at: None,
            http_only: false,
            host_only: false,
        }
    }

    /// Parses a `Set-Cookie` header value.
    ///
    /// Returns `None` when no `name=value` part is present. `Max-Age` is
    /// interpreted against `now` (seconds).
    pub fn parse_set_cookie(header: &str, now: u64) -> Option<Cookie> {
        let mut parts = header.split(';');
        let (name, value) = parts.next()?.split_once('=')?;
        let mut cookie = Cookie::new(name.trim(), value.trim());
        for attr in parts {
            let (k, v) = match attr.split_once('=') {
                Some((k, v)) => (k.trim().to_ascii_lowercase(), v.trim()),
                None => (attr.trim().to_ascii_lowercase(), ""),
            };
            match k.as_str() {
                "domain" => cookie.domain = v.trim_start_matches('.').to_ascii_lowercase(),
                "path" => cookie.path = if v.is_empty() { "/".into() } else { v.into() },
                "max-age" => {
                    if let Ok(secs) = v.parse::<i64>() {
                        cookie.expires_at = Some(if secs <= 0 { 0 } else { now + secs as u64 });
                    }
                }
                "httponly" => cookie.http_only = true,
                _ => {}
            }
        }
        Some(cookie)
    }

    /// Serializes as a `Set-Cookie` header value, relative to time 0
    /// (the convention across the in-process stack). See
    /// [`Cookie::to_header_value_at`].
    pub fn to_header_value(&self) -> String {
        self.to_header_value_at(0)
    }

    /// Serializes as a `Set-Cookie` header value as sent at time `now`:
    /// an absolute `expires_at` becomes a relative `Max-Age`, so the
    /// expiry survives a serialize/re-parse round trip instead of
    /// silently turning the cookie into a session cookie. An expiry at
    /// or before `now` serializes as `Max-Age=0` (the delete idiom).
    /// A host-only cookie omits `Domain` — per RFC 6265 the absent
    /// attribute *is* the host-only signal.
    pub fn to_header_value_at(&self, now: u64) -> String {
        let mut out = format!("{}={}", self.name, self.value);
        if !self.domain.is_empty() && !self.host_only {
            out.push_str("; Domain=");
            out.push_str(&self.domain);
        }
        out.push_str("; Path=");
        out.push_str(&self.path);
        if let Some(expiry) = self.expires_at {
            out.push_str("; Max-Age=");
            out.push_str(&expiry.saturating_sub(now).to_string());
        }
        if self.http_only {
            out.push_str("; HttpOnly");
        }
        out
    }

    /// Estimated heap bytes this cookie occupies (string contents plus
    /// per-field overhead) — feeds session memory accounting.
    pub fn approx_bytes(&self) -> usize {
        self.name.len() + self.value.len() + self.domain.len() + self.path.len() + 48
    }

    /// True when this cookie should be sent to `url` at time `now`.
    pub fn matches(&self, url: &Url, now: u64) -> bool {
        if let Some(expiry) = self.expires_at {
            if now >= expiry {
                return false;
            }
        }
        let domain_ok = if self.domain.is_empty() {
            true // unscoped cookies are stored per-jar, jar is per-site
        } else if self.host_only {
            // Host-only: exact host, never subdomains.
            url.host() == self.domain
        } else {
            url.host() == self.domain || url.host().ends_with(&format!(".{}", self.domain))
        };
        // RFC 6265 §5.1.4 path-match: identical, or a prefix that ends
        // at a `/` boundary — `Path=/private` must not match
        // `/privateer`. (Plus the stack's long-standing lenience that
        // `Path=/private/` matches `/private` itself.)
        let request_path = url.path();
        let cookie_path = self.path.as_str();
        let path_ok = request_path == cookie_path
            || (cookie_path.ends_with('/')
                && (request_path.starts_with(cookie_path)
                    || request_path == &cookie_path[..cookie_path.len() - 1]))
            || (!cookie_path.ends_with('/')
                && request_path.starts_with(cookie_path)
                && request_path.as_bytes()[cookie_path.len()] == b'/');
        domain_ok && path_ok
    }
}

/// Parses a request `Cookie:` header into `(name, value)` pairs.
pub fn parse_cookie_header(header: &str) -> Vec<(String, String)> {
    header
        .split(';')
        .filter_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            Some((k.trim().to_string(), v.trim().to_string()))
        })
        .collect()
}

/// A per-user cookie store.
///
/// # Examples
///
/// ```
/// use msite_net::{Cookie, CookieJar, Url};
///
/// let mut jar = CookieJar::new();
/// jar.store(Cookie::new("bbsessionhash", "abc123"), 0);
/// let url = Url::parse("http://forum/private/index.php").unwrap();
/// assert_eq!(jar.cookie_header(&url, 0), Some("bbsessionhash=abc123".to_string()));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CookieJar {
    cookies: Vec<Cookie>,
}

impl CookieJar {
    /// Creates an empty jar.
    pub fn new() -> CookieJar {
        CookieJar::default()
    }

    /// Stores a cookie, replacing any with the same (name, domain, path).
    /// A cookie whose expiry is in the past deletes the entry.
    pub fn store(&mut self, cookie: Cookie, now: u64) {
        self.cookies.retain(|c| {
            !(c.name == cookie.name && c.domain == cookie.domain && c.path == cookie.path)
        });
        let expired = cookie.expires_at.map(|e| now >= e).unwrap_or(false);
        if !expired {
            self.cookies.push(cookie);
        }
    }

    /// Ingests every `Set-Cookie` header of `response`.
    pub fn store_from_response(&mut self, response: &Response, url: &Url, now: u64) {
        for header in response.headers.get_all("set-cookie") {
            if let Some(mut cookie) = Cookie::parse_set_cookie(header, now) {
                if cookie.domain.is_empty() {
                    // No Domain attribute: RFC 6265 host-only — scoped
                    // to exactly this host, not its subdomains.
                    cookie.domain = url.host().to_string();
                    cookie.host_only = true;
                }
                self.store(cookie, now);
            }
        }
    }

    /// Builds the `Cookie:` header value for a request to `url`, or
    /// `None` when no cookie matches.
    pub fn cookie_header(&self, url: &Url, now: u64) -> Option<String> {
        let matching: Vec<String> = self
            .cookies
            .iter()
            .filter(|c| c.matches(url, now))
            .map(|c| format!("{}={}", c.name, c.value))
            .collect();
        if matching.is_empty() {
            None
        } else {
            Some(matching.join("; "))
        }
    }

    /// Attaches matching cookies to `request`.
    pub fn apply(&self, request: &mut Request, now: u64) {
        if let Some(header) = self.cookie_header(&request.url, now) {
            request.headers.set("cookie", &header);
        }
    }

    /// Value of the cookie named `name`, if stored and unexpired.
    pub fn get(&self, name: &str, now: u64) -> Option<&str> {
        self.cookies
            .iter()
            .find(|c| c.name == name && c.expires_at.map(|e| now < e).unwrap_or(true))
            .map(|c| c.value.as_str())
    }

    /// Removes every cookie (the paper's "deletion of cookies" admin op /
    /// logout-button replacement).
    pub fn clear(&mut self) {
        self.cookies.clear();
    }

    /// Number of stored cookies.
    pub fn len(&self) -> usize {
        self.cookies.len()
    }

    /// True when the jar is empty.
    pub fn is_empty(&self) -> bool {
        self.cookies.is_empty()
    }

    /// Estimated heap bytes this jar occupies — feeds the session
    /// store's memory accounting.
    pub fn approx_bytes(&self) -> usize {
        24 + self.cookies.iter().map(Cookie::approx_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Response;

    #[test]
    fn parse_set_cookie_attrs() {
        let c = Cookie::parse_set_cookie(
            "bbsessionhash=f00; Path=/forum; Domain=.example.com; Max-Age=3600; HttpOnly",
            100,
        )
        .unwrap();
        assert_eq!(c.name, "bbsessionhash");
        assert_eq!(c.value, "f00");
        assert_eq!(c.path, "/forum");
        assert_eq!(c.domain, "example.com");
        assert_eq!(c.expires_at, Some(3700));
        assert!(c.http_only);
    }

    #[test]
    fn parse_rejects_nameless() {
        assert!(Cookie::parse_set_cookie("; Path=/", 0).is_none());
    }

    #[test]
    fn header_value_round_trip() {
        let c = Cookie::parse_set_cookie("a=1; Path=/x; HttpOnly", 0).unwrap();
        let reparsed = Cookie::parse_set_cookie(&c.to_header_value(), 0).unwrap();
        assert_eq!(c, reparsed);
    }

    #[test]
    fn header_value_round_trip_preserves_expiry() {
        // The seed dropped `expires_at` on serialization, so one
        // serialize/re-parse turned an expiring cookie into a session
        // cookie (and a delete cookie into a keep-forever cookie).
        let c = Cookie::parse_set_cookie("a=1; Path=/x; Max-Age=3600; HttpOnly", 0).unwrap();
        assert_eq!(c.expires_at, Some(3600));
        let reparsed = Cookie::parse_set_cookie(&c.to_header_value(), 0).unwrap();
        assert_eq!(c, reparsed);

        // Serialized later, the remaining lifetime shrinks with `now`.
        let later = Cookie::parse_set_cookie(&c.to_header_value_at(1000), 1000).unwrap();
        assert_eq!(later.expires_at, Some(3600));

        // The delete idiom survives: expiry in the past -> Max-Age=0.
        let mut kill = Cookie::new("a", "");
        kill.expires_at = Some(0);
        assert!(kill.to_header_value_at(50).contains("Max-Age=0"));
        let reparsed = Cookie::parse_set_cookie(&kill.to_header_value_at(50), 50).unwrap();
        assert_eq!(reparsed.expires_at, Some(0));
    }

    #[test]
    fn path_match_requires_segment_boundary() {
        let mut jar = CookieJar::new();
        let mut c = Cookie::new("p", "1");
        c.path = "/private".to_string();
        jar.store(c, 0);
        // Exact path and true sub-paths match...
        assert!(jar
            .cookie_header(&Url::parse("http://h/private").unwrap(), 0)
            .is_some());
        assert!(jar
            .cookie_header(&Url::parse("http://h/private/x.php").unwrap(), 0)
            .is_some());
        // ...but a sibling path sharing the prefix must not.
        assert!(jar
            .cookie_header(&Url::parse("http://h/privateer").unwrap(), 0)
            .is_none());
        assert!(jar
            .cookie_header(&Url::parse("http://h/private.bak/x").unwrap(), 0)
            .is_none());
    }

    #[test]
    fn host_only_cookie_does_not_leak_to_subdomains() {
        let mut jar = CookieJar::new();
        let url = Url::parse("http://example.com/").unwrap();
        let resp = Response::html("ok").with_cookie(&Cookie::new("sid", "1"));
        jar.store_from_response(&resp, &url, 0);
        // Host-only: exact host matches, subdomains must not.
        assert!(jar.cookie_header(&url, 0).is_some());
        assert!(jar
            .cookie_header(&Url::parse("http://forum.example.com/").unwrap(), 0)
            .is_none());

        // An explicit Domain attribute still covers subdomains.
        let mut scoped = Cookie::new("d", "1");
        scoped.domain = "example.com".to_string();
        jar.store(scoped, 0);
        assert!(jar
            .cookie_header(&Url::parse("http://forum.example.com/").unwrap(), 0)
            .unwrap()
            .contains("d=1"));
    }

    #[test]
    fn jar_approx_bytes_grows_with_contents() {
        let mut jar = CookieJar::new();
        let empty = jar.approx_bytes();
        jar.store(Cookie::new("session", &"v".repeat(100)), 0);
        assert!(jar.approx_bytes() >= empty + 100);
    }

    #[test]
    fn jar_replaces_same_cookie() {
        let mut jar = CookieJar::new();
        jar.store(Cookie::new("s", "old"), 0);
        jar.store(Cookie::new("s", "new"), 0);
        assert_eq!(jar.len(), 1);
        assert_eq!(jar.get("s", 0), Some("new"));
    }

    #[test]
    fn expired_cookie_deletes() {
        let mut jar = CookieJar::new();
        jar.store(Cookie::new("s", "v"), 0);
        let mut kill = Cookie::new("s", "");
        kill.expires_at = Some(0);
        jar.store(kill, 10);
        assert!(jar.is_empty());
    }

    #[test]
    fn expiry_honored_on_send() {
        let mut jar = CookieJar::new();
        let mut c = Cookie::new("s", "v");
        c.expires_at = Some(100);
        jar.store(c, 0);
        let url = Url::parse("http://h/").unwrap();
        assert!(jar.cookie_header(&url, 50).is_some());
        assert!(jar.cookie_header(&url, 100).is_none());
    }

    #[test]
    fn path_scoping() {
        let mut jar = CookieJar::new();
        let mut c = Cookie::new("p", "1");
        c.path = "/private/".to_string();
        jar.store(c, 0);
        assert!(jar
            .cookie_header(&Url::parse("http://h/private/x.php").unwrap(), 0)
            .is_some());
        assert!(jar
            .cookie_header(&Url::parse("http://h/private").unwrap(), 0)
            .is_some());
        assert!(jar
            .cookie_header(&Url::parse("http://h/public/x.php").unwrap(), 0)
            .is_none());
    }

    #[test]
    fn domain_scoping() {
        let mut jar = CookieJar::new();
        let mut c = Cookie::new("d", "1");
        c.domain = "example.com".to_string();
        jar.store(c, 0);
        assert!(jar
            .cookie_header(&Url::parse("http://example.com/").unwrap(), 0)
            .is_some());
        assert!(jar
            .cookie_header(&Url::parse("http://forum.example.com/").unwrap(), 0)
            .is_some());
        assert!(jar
            .cookie_header(&Url::parse("http://evil.com/").unwrap(), 0)
            .is_none());
        assert!(jar
            .cookie_header(&Url::parse("http://notexample.com/").unwrap(), 0)
            .is_none());
    }

    #[test]
    fn store_from_response_sets_host() {
        let mut jar = CookieJar::new();
        let url = Url::parse("http://forum.host/login.php").unwrap();
        let resp = Response::html("ok")
            .with_cookie(&Cookie::new("bbuserid", "42"))
            .with_cookie(&Cookie::new("bbpassword", "hash"));
        jar.store_from_response(&resp, &url, 0);
        assert_eq!(jar.len(), 2);
        assert!(jar
            .cookie_header(&Url::parse("http://forum.host/x").unwrap(), 0)
            .unwrap()
            .contains("bbuserid=42"));
    }

    #[test]
    fn apply_sets_request_header() {
        let mut jar = CookieJar::new();
        jar.store(Cookie::new("a", "1"), 0);
        let mut req = Request::get("http://h/p").unwrap();
        jar.apply(&mut req, 0);
        assert_eq!(req.cookie("a"), Some("1".to_string()));
    }

    #[test]
    fn clear_empties_jar() {
        let mut jar = CookieJar::new();
        jar.store(Cookie::new("a", "1"), 0);
        jar.clear();
        assert!(jar.is_empty());
    }

    #[test]
    fn cookie_header_parsing() {
        let pairs = parse_cookie_header("a=1; b=2;c=3");
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[2], ("c".to_string(), "3".to_string()));
    }
}
