//! # msite-net
//!
//! Networking substrate for the m.Site reproduction: HTTP message types,
//! URLs, cookies and per-user cookie jars, HTTP Basic auth, the
//! [`Origin`] abstraction for in-process origin servers, modeled access
//! links (3G / WiFi / LAN) for the device-side simulation, a
//! deterministic PRNG for workload generation, and a real threaded
//! HTTP/1.1 server + client for live demos.
//!
//! ```
//! use msite_net::{CookieJar, Cookie, LinkModel, Request, Url};
//!
//! // The proxy's view of a user: a cookie jar applied to origin fetches.
//! let mut jar = CookieJar::new();
//! jar.store(Cookie::new("bbsessionhash", "abc"), 0);
//! let mut req = Request::get("http://forum.example/private/index.php").unwrap();
//! jar.apply(&mut req, 0);
//! assert!(req.headers.get("cookie").unwrap().contains("bbsessionhash"));
//!
//! // The device's view of the network: modeled fetch times.
//! let t = LinkModel::THREE_G.page_fetch_time(224_477, &[10_000; 12]);
//! assert!(t.as_secs_f64() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod cookies;
pub mod health;
pub mod http;
pub mod link;
pub mod origin;
pub mod resilience;
pub mod rng;
pub mod server;
pub mod url;

pub use cookies::{Cookie, CookieJar};
pub use health::{HealthConfig, HealthDecision, HealthMonitor, HealthState, StaleHook};
pub use http::{
    decode_chunked, encode_chunk, ChunkProducer, ChunkSink, ChunkStream, ChunkedError, Headers,
    Method, Request, Response, Status, CHUNK_TERMINATOR, MAX_CHUNK_BYTES, MAX_TRAILER_LINES,
};
pub use link::{BandwidthClass, LinkModel, SimClock, Transport};
pub use origin::{
    garble_chunked, FaultStats, FlakyOrigin, HostRouter, Origin, OriginRef, GARBLED_CHUNK_MODES,
};
pub use resilience::{
    BreakerConfig, BreakerState, BreakerStats, CircuitBreaker, Deadline, DeadlineBudget,
    ResiliencePolicy, ResilienceStats, ResilientOrigin, RetryPolicy, BREAKER_TRANSITIONS_METRIC,
};
pub use rng::Prng;
pub use server::{
    http_get, http_request, HttpServer, ServerConfig, ServerStats, OVERLOAD_HEADER, OVERLOAD_REASON,
};
pub use url::{ParseUrlError, Url};
