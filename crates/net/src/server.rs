//! A real threaded HTTP/1.1 server and a matching tiny client, so any
//! [`Origin`](crate::origin::Origin) (including the m.Site proxy itself) can be exercised over
//! actual TCP from the examples.
//!
//! Connections are executed on a fixed-size [`WorkerPool`] with a
//! bounded submission queue instead of a thread per connection. When
//! the queue is full the accept loop *sheds* the connection: it writes
//! `503 Service Unavailable` with `x-msite-error: overloaded` and
//! `retry-after: 1` and closes, so overload is an explicit, counted,
//! client-visible signal rather than unbounded thread growth.

use crate::http::{Headers, Method, Request, Response, Status};
use crate::origin::OriginRef;
use crate::url::Url;
use msite_support::bytes::Bytes;
use msite_support::sync::Mutex;
use msite_support::telemetry::{
    metrics::LATENCY_MICROS_BOUNDS, Counter, Gauge, Histogram, Telemetry, Trace, TraceLog,
    TRACE_HEADER,
};
use msite_support::thread::{PoolConfig, WorkerPool};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Response header carrying the machine-readable failure reason on a
/// shed connection (same header the proxy's error taxonomy uses).
pub const OVERLOAD_HEADER: &str = "x-msite-error";

/// The reason token a shed connection carries in [`OVERLOAD_HEADER`].
pub const OVERLOAD_REASON: &str = "overloaded";

/// Sizing knobs for the server's connection executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads executing connections.
    pub workers: usize,
    /// Connections allowed to wait for a worker before the accept loop
    /// starts shedding with `503` + `retry-after`.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            queue_depth: 64,
        }
    }
}

/// Connection-level counters for one [`HttpServer`]. Since the
/// telemetry refactor this is a *view*: every field is read back from
/// the server's metrics registry (`msite_server_*` series), so the
/// numbers an embedder folds into its own stats and the numbers a
/// `/metrics` scrape reports are the same counters — worker panics and
/// overload sheds included, with no per-embedder folding required.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted off the listener.
    pub accepted: u64,
    /// Requests answered by the origin handler.
    pub served: u64,
    /// Connections shed with `503` because the executor queue was full.
    pub rejected_overload: u64,
    /// Connection handlers that panicked (isolated by the pool; the
    /// worker survives).
    pub worker_panics: u64,
}

/// A running HTTP server bound to a local port.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use msite_net::{http_get, HttpServer, Request, Response};
///
/// let origin = Arc::new(|_req: &Request| Response::html("<p>live</p>"));
/// let server = HttpServer::bind("127.0.0.1:0", origin).unwrap();
/// let url = format!("http://{}/", server.addr());
/// let resp = http_get(&url).unwrap();
/// assert_eq!(resp.body_text(), "<p>live</p>");
/// server.shutdown();
/// ```
pub struct HttpServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    pool: Arc<WorkerPool>,
    telemetry: Telemetry,
    handle: Mutex<Option<JoinHandle<()>>>,
}

/// State the accept loop and the server handle both touch. All counters
/// are pre-interned registry handles: the accept loop and workers only
/// ever touch atomics.
struct ServerShared {
    stop: AtomicBool,
    /// Queue length at which the accept loop starts shedding. Starts at
    /// the pool's queue depth (its hard bound) and can be tightened at
    /// runtime by a health monitor; always clamped to the hard bound.
    shed_threshold: Arc<AtomicUsize>,
    accepted: Arc<Counter>,
    served: Arc<Counter>,
    rejected_overload: Arc<Counter>,
    worker_panics: Arc<Counter>,
    queue_len: Arc<Gauge>,
    queue_wait: Arc<Histogram>,
    trace_log: Arc<TraceLog>,
}

/// Counts a worker panic on drop unless disarmed: moved into each
/// connection job, it unwinds with the panic (the pool isolates the
/// panic, so the worker itself survives) and increments the registry
/// counter eagerly — no embedder-side folding needed.
struct PanicProbe {
    counter: Arc<Counter>,
    armed: bool,
}

impl PanicProbe {
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for PanicProbe {
    fn drop(&mut self) {
        if self.armed {
            self.counter.inc();
        }
    }
}

impl HttpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread with the default
    /// [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn bind(addr: &str, origin: OriginRef) -> std::io::Result<HttpServer> {
        HttpServer::bind_with(addr, origin, ServerConfig::default())
    }

    /// Binds with explicit executor sizing and a private
    /// [`Telemetry`]. Embedders that want the server's counters in the
    /// same registry the application scrapes (the proxy does) should
    /// use [`HttpServer::bind_with_telemetry`].
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn bind_with(
        addr: &str,
        origin: OriginRef,
        config: ServerConfig,
    ) -> std::io::Result<HttpServer> {
        HttpServer::bind_with_telemetry(addr, origin, config, Telemetry::new())
    }

    /// Binds with explicit executor sizing, publishing connection
    /// counters (`msite_server_*`), queue gauges, and the queue-wait
    /// histogram into `telemetry.metrics`, and per-connection worker
    /// spans into `telemetry.trace_log` (matched to the request's
    /// trace via the response's `x-msite-trace` header).
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn bind_with_telemetry(
        addr: &str,
        origin: OriginRef,
        config: ServerConfig,
        telemetry: Telemetry,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let registry = &telemetry.metrics;
        registry
            .gauge("msite_server_queue_depth", &[])
            .set(config.queue_depth.max(1) as i64);
        registry
            .gauge("msite_server_workers", &[])
            .set(config.workers.max(1) as i64);
        let shared = Arc::new(ServerShared {
            stop: AtomicBool::new(false),
            shed_threshold: Arc::new(AtomicUsize::new(config.queue_depth.max(1))),
            accepted: registry.counter("msite_server_accepted_total", &[]),
            served: registry.counter("msite_server_served_total", &[]),
            rejected_overload: registry.counter("msite_server_rejected_overload_total", &[]),
            worker_panics: registry.counter("msite_server_worker_panics_total", &[]),
            queue_len: registry.gauge("msite_server_queue_len", &[]),
            queue_wait: registry.histogram(
                "msite_server_queue_wait_micros",
                &[],
                LATENCY_MICROS_BOUNDS,
            ),
            trace_log: Arc::clone(&telemetry.trace_log),
        });
        let pool = Arc::new(WorkerPool::new(PoolConfig {
            workers: config.workers.max(1),
            queue_depth: config.queue_depth.max(1),
            name: "msite-http".to_string(),
        }));
        let shared2 = Arc::clone(&shared);
        let pool2 = Arc::clone(&pool);
        let handle = std::thread::spawn(move || {
            accept_loop(listener, origin, shared2, pool2);
        });
        Ok(HttpServer {
            addr: local,
            shared,
            pool,
            telemetry,
            handle: Mutex::new(Some(handle)),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The telemetry handle this server publishes into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The connection executor — shared so a health monitor can resize
    /// its worker width at runtime.
    pub fn pool(&self) -> Arc<WorkerPool> {
        Arc::clone(&self.pool)
    }

    /// The shed-threshold knob: queue length at which the accept loop
    /// sheds with `503`. Shared so a health monitor can tighten it
    /// under duress; the accept loop clamps it to the pool's hard
    /// queue bound.
    pub fn shed_threshold(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.shared.shed_threshold)
    }

    /// Requests handled so far.
    pub fn requests_served(&self) -> u64 {
        self.shared.served.get()
    }

    /// Connection-level counters so far — a view over the registry.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            accepted: self.shared.accepted.get(),
            served: self.shared.served.get(),
            rejected_overload: self.shared.rejected_overload.get(),
            worker_panics: self.shared.worker_panics.get(),
        }
    }

    /// Stops the accept loop, drains in-flight connections, and joins
    /// the server thread and its worker pool.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.lock().take() {
            let _ = handle.join();
        }
        self.pool.shutdown();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Non-blocking accept loop notices within its poll interval; do
        // not join in drop to keep destructors non-blocking (C-DTOR-BLOCK:
        // call `shutdown` for a clean join).
    }
}

fn accept_loop(
    listener: TcpListener,
    origin: OriginRef,
    shared: Arc<ServerShared>,
    pool: Arc<WorkerPool>,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.accepted.inc();
                // This loop is the pool's only submitter and workers only
                // ever drain the queue, so the check below cannot race:
                // a connection admitted here is guaranteed a queue slot.
                let threshold = shared
                    .shed_threshold
                    .load(Ordering::Relaxed)
                    .clamp(1, pool.queue_depth());
                if pool.queued() >= threshold {
                    shed(&stream, &shared);
                    shared.queue_len.set(pool.queued() as i64);
                    continue;
                }
                let origin = Arc::clone(&origin);
                let job_shared = Arc::clone(&shared);
                let job_pool = Arc::clone(&pool);
                let submitted = Instant::now();
                if pool
                    .try_execute(move || {
                        let queue_wait = submitted.elapsed();
                        job_shared.queue_wait.observe(queue_wait.as_micros() as u64);
                        job_shared.queue_len.set(job_pool.queued() as i64);
                        let probe = PanicProbe {
                            counter: Arc::clone(&job_shared.worker_panics),
                            armed: true,
                        };
                        let _ = handle_connection(stream, &origin, &job_shared, queue_wait);
                        probe.disarm();
                    })
                    .is_err()
                {
                    // Only reachable when the pool is already shutting
                    // down; the connection is dropped unanswered.
                    shared.rejected_overload.inc();
                }
                shared.queue_len.set(pool.queued() as i64);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    // Draining shutdown: queued connections are still answered.
    pool.shutdown();
}

/// Sheds one connection under overload: `503` + reason token +
/// `retry-after`, written from the accept loop without reading the
/// request (the client sees it as soon as it looks for a response).
fn shed(stream: &TcpStream, shared: &ServerShared) {
    shared.rejected_overload.inc();
    let mut response = Response::error(
        Status::SERVICE_UNAVAILABLE,
        "server overloaded, retry later",
    );
    response.headers.set(OVERLOAD_HEADER, OVERLOAD_REASON);
    response.headers.set("retry-after", "1");
    let _ = write_response(stream, &response);
}

fn handle_connection(
    stream: TcpStream,
    origin: &OriginRef,
    shared: &ServerShared,
    queue_wait: Duration,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_nodelay(true)?;
    let peer = stream.peer_addr()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let request = match read_request(&mut reader, peer) {
        Ok(r) => r,
        Err(_) => {
            write_response(
                &stream,
                &Response::error(Status::BAD_REQUEST, "malformed request"),
            )?;
            return Ok(());
        }
    };
    let started = Instant::now();
    let response = origin.handle(&request);
    // Count before writing: a client that has seen the full response must
    // also see the incremented counter.
    shared.served.inc();
    let result = write_response(&stream, &response);
    // The worker-pool hop span: if the origin tagged the response with a
    // trace id, attach the server-side timing to that trace.
    if let Some(id) = response.headers.get(TRACE_HEADER).and_then(Trace::parse_id) {
        shared.trace_log.record_raw(
            id,
            "server.worker",
            started,
            started.elapsed(),
            vec![
                ("path".to_string(), request.url.path().to_string()),
                ("status".to_string(), response.status.0.to_string()),
                (
                    "queue_wait_micros".to_string(),
                    queue_wait.as_micros().to_string(),
                ),
            ],
        );
    }
    result
}

fn read_request(reader: &mut BufReader<TcpStream>, peer: SocketAddr) -> std::io::Result<Request> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| bad("bad method"))?;
    let target = parts.next().ok_or_else(|| bad("missing target"))?;
    let mut headers = Headers::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.append(name.trim(), value.trim());
        }
    }
    let host = headers
        .get("host")
        .map(str::to_string)
        .unwrap_or_else(|| peer.to_string());
    let url = Url::parse(&format!("http://{host}{target}")).map_err(|_| bad("bad target"))?;
    let body = match headers
        .get("content-length")
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(len) if len > 0 => {
            let mut buf = vec![0u8; len.min(16 * 1024 * 1024)];
            reader.read_exact(&mut buf)?;
            Bytes::from(buf)
        }
        _ => Bytes::new(),
    };
    Ok(Request {
        method,
        url,
        headers,
        body,
    })
}

fn write_response(stream: &TcpStream, response: &Response) -> std::io::Result<()> {
    // A pending streamed body goes out with chunked framing; anything
    // else (including an already-drained stream) is a batch write.
    match response
        .stream
        .as_ref()
        .and_then(crate::http::ChunkStream::take)
    {
        Some(producer) => write_chunked(stream, response, producer),
        None => write_batch(stream, response),
    }
}

fn write_batch(mut stream: &TcpStream, response: &Response) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {}\r\n", response.status);
    for (name, value) in response.headers.iter() {
        // Framing headers are owned by this writer: a body buffered
        // here is delivered with content-length, never chunked.
        if name == "content-length" || name == "transfer-encoding" {
            continue;
        }
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n", response.body.len()));
    head.push_str("connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Writes a streamed response with chunked transfer-encoding: the
/// producer runs on this (worker) thread and every chunk it emits is
/// framed and flushed to the socket immediately, so the client's
/// time-to-first-byte is the time to the *first* chunk, not the whole
/// body. Chunked bodies never carry `content-length`.
fn write_chunked(
    mut stream: &TcpStream,
    response: &Response,
    producer: crate::http::ChunkProducer,
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {}\r\n", response.status);
    for (name, value) in response.headers.iter() {
        if name == "content-length" || name == "transfer-encoding" {
            continue;
        }
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("transfer-encoding: chunked\r\nconnection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()?;

    struct TcpChunkSink<'a> {
        stream: &'a TcpStream,
        error: Option<std::io::Error>,
    }
    impl crate::http::ChunkSink for TcpChunkSink<'_> {
        fn chunk(&mut self, bytes: &[u8]) {
            if bytes.is_empty() || self.error.is_some() {
                return;
            }
            let write = || -> std::io::Result<()> {
                let mut s = self.stream;
                s.write_all(&crate::http::encode_chunk(bytes))?;
                s.flush()
            };
            if let Err(e) = write() {
                // Remember the first failure; the producer keeps
                // running (its side effects — cache/file stores — must
                // complete even when the client hangs up).
                self.error = Some(e);
            }
        }
    }
    let mut sink = TcpChunkSink {
        stream,
        error: None,
    };
    producer(&mut sink);
    if let Some(e) = sink.error {
        return Err(e);
    }
    stream.write_all(crate::http::CHUNK_TERMINATOR)?;
    stream.flush()
}

/// Performs a real HTTP GET over TCP (HTTP/1.1, `Connection: close`).
///
/// # Errors
///
/// Returns IO errors and malformed-response errors.
pub fn http_get(url: &str) -> std::io::Result<Response> {
    http_request(
        &Request::get(url)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?,
    )
}

/// Sends any [`Request`] over real TCP.
///
/// # Errors
///
/// Returns IO errors and malformed-response errors.
pub fn http_request(request: &Request) -> std::io::Result<Response> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let addr = format!("{}:{}", request.url.host(), request.url.port());
    let mut stream = TcpStream::connect(&addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut head = format!(
        "{} {} HTTP/1.1\r\nhost: {}\r\n",
        request.method,
        request.url.path_and_query(),
        request.url.host()
    );
    for (name, value) in request.headers.iter() {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if !request.body.is_empty() {
        head.push_str(&format!("content-length: {}\r\n", request.body.len()));
    }
    head.push_str("connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&request.body)?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status_code = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Headers::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.append(name.trim(), value.trim());
        }
    }
    let chunked = headers
        .get("transfer-encoding")
        .map(|v| v.eq_ignore_ascii_case("chunked"))
        .unwrap_or(false);
    let mut body = Vec::new();
    if chunked {
        body = crate::http::decode_chunked(&mut reader)?;
    } else {
        match headers
            .get("content-length")
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(len) => {
                body.resize(len, 0);
                reader.read_exact(&mut body)?;
            }
            None => {
                reader.read_to_end(&mut body)?;
            }
        }
    }
    Ok(Response {
        status: Status(status_code),
        headers,
        body: Bytes::from(body),
        stream: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_origin() -> OriginRef {
        Arc::new(|req: &Request| {
            Response::html(format!(
                "method={} path={} q={} cookie={} body={}",
                req.method,
                req.url.path(),
                req.url.query().unwrap_or(""),
                req.headers.get("cookie").unwrap_or(""),
                String::from_utf8_lossy(&req.body),
            ))
        })
    }

    #[test]
    fn get_round_trip() {
        let server = HttpServer::bind("127.0.0.1:0", echo_origin()).unwrap();
        let resp = http_get(&format!(
            "http://{}/forum/index.php?styleid=5",
            server.addr()
        ))
        .unwrap();
        assert!(resp.status.is_success());
        let text = resp.body_text();
        assert!(text.contains("method=GET"));
        assert!(text.contains("path=/forum/index.php"));
        assert!(text.contains("q=styleid=5"));
        server.shutdown();
    }

    #[test]
    fn post_body_and_headers_forwarded() {
        let server = HttpServer::bind("127.0.0.1:0", echo_origin()).unwrap();
        let req = Request::post_form(
            &format!("http://{}/login.php", server.addr()),
            &[("user", "alice"), ("pass", "secret")],
        )
        .unwrap()
        .with_header("cookie", "msid=42");
        let resp = http_request(&req).unwrap();
        let text = resp.body_text();
        assert!(text.contains("method=POST"));
        assert!(text.contains("body=user=alice&pass=secret"));
        assert!(text.contains("cookie=msid=42"));
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_served() {
        let server = HttpServer::bind("127.0.0.1:0", echo_origin()).unwrap();
        let addr = server.addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || http_get(&format!("http://{addr}/p{i}")).unwrap().status)
            })
            .collect();
        for t in threads {
            assert!(t.join().unwrap().is_success());
        }
        assert!(server.requests_served() >= 8);
        server.shutdown();
    }

    #[test]
    fn overload_sheds_with_503_and_retry_after() {
        // One worker, one queue slot, and an origin that blocks until
        // released: the first connection occupies the worker, the second
        // fills the queue, and every further connection must be shed.
        let gate = Arc::new(AtomicBool::new(false));
        let gate2 = Arc::clone(&gate);
        let origin: OriginRef = Arc::new(move |_req: &Request| {
            while !gate2.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(2));
            }
            Response::html("<p>slow</p>")
        });
        let server = HttpServer::bind_with(
            "127.0.0.1:0",
            origin,
            ServerConfig {
                workers: 1,
                queue_depth: 1,
            },
        )
        .unwrap();
        let addr = server.addr();
        // Occupy the worker, then the queue slot, with blocked requests.
        // Sequenced so the first is guaranteed on the worker (not in the
        // queue) before the second arrives.
        let wait_accepted = |n: u64| {
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while server.stats().accepted < n && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            // Accepted ⇒ submitted; give the idle worker a beat to pop it.
            std::thread::sleep(Duration::from_millis(50));
        };
        let busy0 = std::thread::spawn(move || http_get(&format!("http://{addr}/busy0")).unwrap());
        wait_accepted(1);
        let busy1 = std::thread::spawn(move || http_get(&format!("http://{addr}/busy1")).unwrap());
        wait_accepted(2);
        // Worker busy + queue full: the next connection must be shed.
        let resp = http_get(&format!("http://{addr}/extra")).unwrap();
        assert_eq!(resp.status, Status::SERVICE_UNAVAILABLE);
        assert_eq!(resp.headers.get(OVERLOAD_HEADER), Some(OVERLOAD_REASON));
        assert_eq!(resp.headers.get("retry-after"), Some("1"));
        assert!(server.stats().rejected_overload >= 1);
        // Release the gate; the blocked requests complete normally.
        gate.store(true, Ordering::SeqCst);
        assert!(busy0.join().unwrap().status.is_success());
        assert!(busy1.join().unwrap().status.is_success());
        server.shutdown();
        let stats = server.stats();
        assert!(stats.served >= 2, "blocked requests served: {stats:?}");
        assert!(stats.accepted >= stats.served + stats.rejected_overload);
    }

    #[test]
    fn worker_panic_is_isolated_and_counted() {
        let origin: OriginRef = Arc::new(|req: &Request| {
            if req.url.path() == "/boom" {
                panic!("handler exploded");
            }
            Response::html("<p>ok</p>")
        });
        let server = HttpServer::bind("127.0.0.1:0", origin).unwrap();
        let addr = server.addr();
        // The panicking connection yields no response bytes (client sees
        // a closed/empty reply), but the server survives it.
        let _ = http_get(&format!("http://{addr}/boom"));
        let resp = http_get(&format!("http://{addr}/fine")).unwrap();
        assert!(resp.status.is_success());
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.stats().worker_panics < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(server.stats().worker_panics, 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_connections() {
        let origin: OriginRef = Arc::new(|_req: &Request| {
            std::thread::sleep(Duration::from_millis(30));
            Response::html("<p>drained</p>")
        });
        let server = HttpServer::bind_with(
            "127.0.0.1:0",
            origin,
            ServerConfig {
                workers: 2,
                queue_depth: 16,
            },
        )
        .unwrap();
        let addr = server.addr();
        let clients: Vec<_> = (0..6)
            .map(|i| std::thread::spawn(move || http_get(&format!("http://{addr}/d{i}")).unwrap()))
            .collect();
        // Wait until every connection is inside the server, then shut
        // down: each accepted connection must still get its answer.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.stats().accepted < 6 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        server.shutdown();
        for t in clients {
            assert!(t.join().unwrap().status.is_success());
        }
        assert_eq!(server.stats().served, 6);
        server.shutdown(); // idempotent
    }

    #[test]
    fn error_statuses_pass_through() {
        let origin: OriginRef =
            Arc::new(|_req: &Request| Response::error(Status::NOT_FOUND, "nope"));
        let server = HttpServer::bind("127.0.0.1:0", origin).unwrap();
        let resp = http_get(&format!("http://{}/missing", server.addr())).unwrap();
        assert_eq!(resp.status, Status::NOT_FOUND);
        server.shutdown();
    }
}
