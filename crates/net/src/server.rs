//! A real threaded HTTP/1.1 server and a matching tiny client, so any
//! [`Origin`](crate::origin::Origin) (including the m.Site proxy itself) can be exercised over
//! actual TCP from the examples.

use crate::http::{Headers, Method, Request, Response, Status};
use crate::origin::OriginRef;
use crate::url::Url;
use msite_support::bytes::Bytes;
use msite_support::sync::Mutex;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running HTTP server bound to a local port.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use msite_net::{http_get, HttpServer, Request, Response};
///
/// let origin = Arc::new(|_req: &Request| Response::html("<p>live</p>"));
/// let server = HttpServer::bind("127.0.0.1:0", origin).unwrap();
/// let url = format!("http://{}/", server.addr());
/// let resp = http_get(&url).unwrap();
/// assert_eq!(resp.body_text(), "<p>live</p>");
/// server.shutdown();
/// ```
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Mutex<Option<JoinHandle<()>>>,
    requests_served: Arc<AtomicU64>,
}

impl HttpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn bind(addr: &str, origin: OriginRef) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let served2 = Arc::clone(&served);
        let handle = std::thread::spawn(move || {
            accept_loop(listener, origin, stop2, served2);
        });
        Ok(HttpServer {
            addr: local,
            stop,
            handle: Mutex::new(Some(handle)),
            requests_served: served,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests handled so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Non-blocking accept loop notices within its poll interval; do
        // not join in drop to keep destructors non-blocking (C-DTOR-BLOCK:
        // call `shutdown` for a clean join).
    }
}

fn accept_loop(
    listener: TcpListener,
    origin: OriginRef,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let origin = Arc::clone(&origin);
                let served = Arc::clone(&served);
                workers.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, &origin, &served);
                }));
                workers.retain(|w| !w.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for w in workers {
        let _ = w.join();
    }
}

fn handle_connection(
    stream: TcpStream,
    origin: &OriginRef,
    served: &AtomicU64,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_nodelay(true)?;
    let peer = stream.peer_addr()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let request = match read_request(&mut reader, peer) {
        Ok(r) => r,
        Err(_) => {
            write_response(
                &stream,
                &Response::error(Status::BAD_REQUEST, "malformed request"),
            )?;
            return Ok(());
        }
    };
    let response = origin.handle(&request);
    // Count before writing: a client that has seen the full response must
    // also see the incremented counter.
    served.fetch_add(1, Ordering::Relaxed);
    write_response(&stream, &response)
}

fn read_request(reader: &mut BufReader<TcpStream>, peer: SocketAddr) -> std::io::Result<Request> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| bad("bad method"))?;
    let target = parts.next().ok_or_else(|| bad("missing target"))?;
    let mut headers = Headers::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.append(name.trim(), value.trim());
        }
    }
    let host = headers
        .get("host")
        .map(str::to_string)
        .unwrap_or_else(|| peer.to_string());
    let url = Url::parse(&format!("http://{host}{target}")).map_err(|_| bad("bad target"))?;
    let body = match headers
        .get("content-length")
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(len) if len > 0 => {
            let mut buf = vec![0u8; len.min(16 * 1024 * 1024)];
            reader.read_exact(&mut buf)?;
            Bytes::from(buf)
        }
        _ => Bytes::new(),
    };
    Ok(Request {
        method,
        url,
        headers,
        body,
    })
}

fn write_response(mut stream: &TcpStream, response: &Response) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {}\r\n", response.status);
    for (name, value) in response.headers.iter() {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n", response.body.len()));
    head.push_str("connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Performs a real HTTP GET over TCP (HTTP/1.1, `Connection: close`).
///
/// # Errors
///
/// Returns IO errors and malformed-response errors.
pub fn http_get(url: &str) -> std::io::Result<Response> {
    http_request(
        &Request::get(url)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?,
    )
}

/// Sends any [`Request`] over real TCP.
///
/// # Errors
///
/// Returns IO errors and malformed-response errors.
pub fn http_request(request: &Request) -> std::io::Result<Response> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let addr = format!("{}:{}", request.url.host(), request.url.port());
    let mut stream = TcpStream::connect(&addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut head = format!(
        "{} {} HTTP/1.1\r\nhost: {}\r\n",
        request.method,
        request.url.path_and_query(),
        request.url.host()
    );
    for (name, value) in request.headers.iter() {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    if !request.body.is_empty() {
        head.push_str(&format!("content-length: {}\r\n", request.body.len()));
    }
    head.push_str("connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&request.body)?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status_code = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Headers::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.append(name.trim(), value.trim());
        }
    }
    let mut body = Vec::new();
    match headers
        .get("content-length")
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(len) => {
            body.resize(len, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    Ok(Response {
        status: Status(status_code),
        headers,
        body: Bytes::from(body),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_origin() -> OriginRef {
        Arc::new(|req: &Request| {
            Response::html(format!(
                "method={} path={} q={} cookie={} body={}",
                req.method,
                req.url.path(),
                req.url.query().unwrap_or(""),
                req.headers.get("cookie").unwrap_or(""),
                String::from_utf8_lossy(&req.body),
            ))
        })
    }

    #[test]
    fn get_round_trip() {
        let server = HttpServer::bind("127.0.0.1:0", echo_origin()).unwrap();
        let resp = http_get(&format!(
            "http://{}/forum/index.php?styleid=5",
            server.addr()
        ))
        .unwrap();
        assert!(resp.status.is_success());
        let text = resp.body_text();
        assert!(text.contains("method=GET"));
        assert!(text.contains("path=/forum/index.php"));
        assert!(text.contains("q=styleid=5"));
        server.shutdown();
    }

    #[test]
    fn post_body_and_headers_forwarded() {
        let server = HttpServer::bind("127.0.0.1:0", echo_origin()).unwrap();
        let req = Request::post_form(
            &format!("http://{}/login.php", server.addr()),
            &[("user", "alice"), ("pass", "secret")],
        )
        .unwrap()
        .with_header("cookie", "msid=42");
        let resp = http_request(&req).unwrap();
        let text = resp.body_text();
        assert!(text.contains("method=POST"));
        assert!(text.contains("body=user=alice&pass=secret"));
        assert!(text.contains("cookie=msid=42"));
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_served() {
        let server = HttpServer::bind("127.0.0.1:0", echo_origin()).unwrap();
        let addr = server.addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || http_get(&format!("http://{addr}/p{i}")).unwrap().status)
            })
            .collect();
        for t in threads {
            assert!(t.join().unwrap().is_success());
        }
        assert!(server.requests_served() >= 8);
        server.shutdown();
    }

    #[test]
    fn error_statuses_pass_through() {
        let origin: OriginRef =
            Arc::new(|_req: &Request| Response::error(Status::NOT_FOUND, "nope"));
        let server = HttpServer::bind("127.0.0.1:0", origin).unwrap();
        let resp = http_get(&format!("http://{}/missing", server.addr())).unwrap();
        assert_eq!(resp.status, Status::NOT_FOUND);
        server.shutdown();
    }
}
