//! Health-driven adaptive capacity: a control loop that samples the
//! telemetry registry and steers the serving substrate at runtime.
//!
//! A statically sized worker pool faces a surge with two bad options:
//! shed blindly or drown. The [`HealthMonitor`] samples the signals
//! every server already publishes — executor queue length, queue-wait
//! p99, overload-shed rate, circuit-breaker churn — on a deterministic,
//! test-controllable clock ([`HealthMonitor::tick`] is explicit; the
//! optional [`HealthMonitor::spawn`] driver just calls it on an
//! interval) and actuates three knobs within configured bounds:
//!
//! - **Worker width**: [`WorkerPool::resize`] between `min_workers` and
//!   `max_workers` — grow one step per unhealthy tick, shrink one step
//!   after `hysteresis` consecutive healthy ticks (asymmetric on
//!   purpose: reacting fast and relaxing slowly avoids oscillation).
//! - **Shed threshold**: the accept loop's queue cutoff tightens while
//!   overloaded (shed early, keep latency bounded) and relaxes back.
//! - **Stale-serve aggressiveness**: a registered hook receives a
//!   multiplier; the proxy widens its render cache's stale window under
//!   duress so degraded-but-instant answers replace renders.
//!
//! Every decision is published as `msite_health_*` series so `/metrics`
//! and `/healthz` tell the same story the controller acted on.

use crate::resilience::BREAKER_TRANSITIONS_METRIC;
use msite_support::sync::Mutex;
use msite_support::telemetry::metrics::MetricsRegistry;
use msite_support::thread::WorkerPool;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bounds and setpoints for the [`HealthMonitor`] control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Sampling period of the background driver ([`HealthMonitor::spawn`]).
    pub interval: Duration,
    /// Lower bound for the worker width.
    pub min_workers: usize,
    /// Upper bound for the worker width.
    pub max_workers: usize,
    /// Queue occupancy (fraction of the shed threshold) above which a
    /// tick counts as overloaded.
    pub queue_high: f64,
    /// Queue occupancy below which a tick counts as healthy.
    pub queue_low: f64,
    /// Queue-wait p99 (microseconds) above which a tick counts as
    /// overloaded even with a shallow queue.
    pub p99_high_micros: u64,
    /// Consecutive healthy ticks required before stepping capacity back
    /// down (scale-up needs only one unhealthy tick).
    pub hysteresis: u32,
    /// Stale-window multiplier applied while overloaded (1 = disabled).
    pub stale_boost: u32,
    /// Fraction of the hard queue bound the shed threshold tightens to
    /// while overloaded.
    pub shed_tighten: f64,
    /// Session-store occupancy (`msite_session_live` over
    /// `msite_session_max`) at or above which a tick is at least
    /// degraded: the store still serves (evicting LRU per admission),
    /// but long-idle users are losing their jars. Session pressure
    /// never scales workers — the store is bounded by design, more
    /// threads would not help — it only taints the health verdict.
    pub session_high: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            interval: Duration::from_millis(250),
            min_workers: 2,
            max_workers: 32,
            queue_high: 0.75,
            queue_low: 0.25,
            p99_high_micros: 250_000,
            hysteresis: 3,
            stale_boost: 4,
            shed_tighten: 0.5,
            session_high: 0.9,
        }
    }
}

/// The controller's verdict for one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// All signals below their low-water marks.
    Healthy,
    /// Between the low and high marks — hold the current capacity.
    Degraded,
    /// A signal crossed its high mark — scale up and defend.
    Overloaded,
}

impl HealthState {
    /// Stable token for metrics/JSON.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Overloaded => "overloaded",
        }
    }

    fn code(self) -> i64 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Overloaded => 2,
        }
    }
}

/// What one [`HealthMonitor::tick`] observed and did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthDecision {
    /// Verdict for this tick.
    pub state: HealthState,
    /// Queue occupancy sampled, as a fraction of the shed threshold.
    pub queue_fraction: f64,
    /// Queue-wait p99 estimate in microseconds.
    pub p99_micros: u64,
    /// Overload sheds since the previous tick.
    pub shed_delta: u64,
    /// Breaker transitions since the previous tick.
    pub breaker_delta: u64,
    /// Session-store occupancy sampled (live / max), 0 when no store
    /// publishes the `msite_session_*` gauges into this registry.
    pub session_fraction: f64,
    /// Worker width after actuation.
    pub workers: usize,
    /// Shed threshold after actuation.
    pub shed_threshold: usize,
    /// Stale-window multiplier after actuation.
    pub stale_factor: u32,
}

struct ControlState {
    healthy_streak: u32,
    last_shed: u64,
    last_breaker: u64,
    stale_factor: u32,
    baseline_shed_threshold: usize,
}

/// Hook invoked with the stale-window multiplier whenever it changes
/// (the proxy maps it onto its render cache).
pub type StaleHook = Arc<dyn Fn(u32) + Send + Sync>;

/// The adaptive-capacity controller. See the module docs for the loop.
///
/// Construction wires the actuators; [`tick`](HealthMonitor::tick) is
/// the whole control loop, deterministic and directly callable from
/// tests. [`spawn`](HealthMonitor::spawn) runs it on a wall-clock
/// interval for real deployments.
pub struct HealthMonitor {
    config: HealthConfig,
    registry: Arc<MetricsRegistry>,
    pool: Arc<WorkerPool>,
    shed_threshold: Arc<AtomicUsize>,
    stale_hook: Option<StaleHook>,
    state: Mutex<ControlState>,
    stop: Arc<AtomicBool>,
    driver: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl HealthMonitor {
    /// Wires a monitor to a server's executor (`pool`,
    /// `shed_threshold` — see [`crate::server::HttpServer::pool`] and
    /// [`crate::server::HttpServer::shed_threshold`]) and the registry
    /// it samples from and publishes to.
    pub fn new(
        config: HealthConfig,
        registry: Arc<MetricsRegistry>,
        pool: Arc<WorkerPool>,
        shed_threshold: Arc<AtomicUsize>,
    ) -> HealthMonitor {
        let baseline = shed_threshold.load(Ordering::Relaxed).max(1);
        let monitor = HealthMonitor {
            config,
            registry,
            pool,
            shed_threshold,
            stale_hook: None,
            state: Mutex::new(ControlState {
                healthy_streak: 0,
                last_shed: 0,
                last_breaker: 0,
                stale_factor: 1,
                baseline_shed_threshold: baseline,
            }),
            stop: Arc::new(AtomicBool::new(false)),
            driver: Mutex::new(None),
        };
        monitor.publish_gauges(monitor.pool.workers(), baseline, 1, HealthState::Healthy);
        monitor
    }

    /// Registers the stale-aggressiveness hook (called with the current
    /// multiplier on every change; the proxy widens its cache's stale
    /// window by it).
    #[must_use]
    pub fn with_stale_hook(mut self, hook: StaleHook) -> HealthMonitor {
        self.stale_hook = Some(hook);
        self
    }

    /// The config this monitor enforces.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Queue-wait p99 estimate (microseconds) from the non-cumulative
    /// bucket counts of `msite_server_queue_wait_micros`. Returns the
    /// upper bound of the bucket holding the 99th percentile (the last
    /// bound for overflow), 0 with no observations.
    fn queue_wait_p99(&self) -> u64 {
        let histogram = self.registry.histogram(
            "msite_server_queue_wait_micros",
            &[],
            msite_support::telemetry::metrics::LATENCY_MICROS_BOUNDS,
        );
        let counts = histogram.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let bounds = histogram.bounds();
        let target = (total as f64 * 0.99).ceil() as u64;
        let mut seen = 0u64;
        for (i, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                return bounds
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| bounds.last().copied().unwrap_or(u64::MAX));
            }
        }
        bounds.last().copied().unwrap_or(u64::MAX)
    }

    /// Runs one deliberation of the control loop: sample, classify,
    /// actuate, publish. Deterministic — tests drive it directly.
    pub fn tick(&self) -> HealthDecision {
        let queue_len = self
            .registry
            .gauge_value("msite_server_queue_len", &[])
            .max(0) as u64;
        let shed_total = self
            .registry
            .counter_value("msite_server_rejected_overload_total", &[]);
        let breaker_total = self.registry.counter_sum(BREAKER_TRANSITIONS_METRIC);
        let p99 = self.queue_wait_p99();
        // Session pressure: occupancy of the bounded session store, as
        // published by a proxy sharing this registry.
        let session_live = self.registry.gauge_value("msite_session_live", &[]).max(0);
        let session_max = self.registry.gauge_value("msite_session_max", &[]).max(0);
        let session_fraction = if session_max > 0 {
            session_live as f64 / session_max as f64
        } else {
            0.0
        };

        let mut state = self.state.lock();
        let shed_delta = shed_total.saturating_sub(state.last_shed);
        state.last_shed = shed_total;
        let breaker_delta = breaker_total.saturating_sub(state.last_breaker);
        state.last_breaker = breaker_total;

        let threshold = self.shed_threshold.load(Ordering::Relaxed).max(1);
        let queue_fraction = queue_len as f64 / threshold as f64;

        let overloaded = queue_fraction >= self.config.queue_high
            || p99 >= self.config.p99_high_micros
            || shed_delta > 0
            || breaker_delta > 0;
        let session_pressure = session_fraction >= self.config.session_high;
        let healthy = !overloaded
            && queue_fraction <= self.config.queue_low
            && p99 < self.config.p99_high_micros
            && !session_pressure;
        let verdict = if overloaded {
            HealthState::Overloaded
        } else if healthy {
            HealthState::Healthy
        } else {
            HealthState::Degraded
        };

        let workers = self.pool.workers();
        let (new_workers, scale) = match verdict {
            HealthState::Overloaded => {
                state.healthy_streak = 0;
                // One multiplicative step up per unhealthy tick.
                let grown = (workers + workers.div_ceil(2))
                    .clamp(self.config.min_workers, self.config.max_workers);
                (grown, i64::from(grown > workers))
            }
            HealthState::Degraded => {
                state.healthy_streak = 0;
                (
                    workers.clamp(self.config.min_workers, self.config.max_workers),
                    0,
                )
            }
            HealthState::Healthy => {
                state.healthy_streak = state.healthy_streak.saturating_add(1);
                if state.healthy_streak >= self.config.hysteresis {
                    state.healthy_streak = 0;
                    let shrunk = (workers.saturating_sub(workers.div_ceil(4).max(1)))
                        .clamp(self.config.min_workers, self.config.max_workers);
                    (shrunk, -i64::from(shrunk < workers))
                } else {
                    (
                        workers.clamp(self.config.min_workers, self.config.max_workers),
                        0,
                    )
                }
            }
        };
        if new_workers != workers {
            self.pool.resize(new_workers);
        }

        // Shed threshold: tighten while overloaded, restore otherwise.
        let baseline = state.baseline_shed_threshold;
        let new_threshold = if verdict == HealthState::Overloaded {
            ((baseline as f64 * self.config.shed_tighten) as usize).max(1)
        } else {
            baseline
        };
        self.shed_threshold.store(new_threshold, Ordering::Relaxed);

        // Stale aggressiveness: boost while overloaded, restore when
        // fully healthy (degraded keeps the last setting).
        let new_factor = match verdict {
            HealthState::Overloaded => self.config.stale_boost.max(1),
            HealthState::Healthy => 1,
            HealthState::Degraded => state.stale_factor,
        };
        if new_factor != state.stale_factor {
            state.stale_factor = new_factor;
            if let Some(hook) = &self.stale_hook {
                hook(new_factor);
            }
        }
        drop(state);

        self.registry.counter("msite_health_ticks_total", &[]).inc();
        if scale > 0 {
            self.registry
                .counter("msite_health_scale_ups_total", &[])
                .inc();
        } else if scale < 0 {
            self.registry
                .counter("msite_health_scale_downs_total", &[])
                .inc();
        }
        self.publish_gauges(new_workers, new_threshold, new_factor, verdict);
        self.registry
            .gauge("msite_health_session_permille", &[])
            .set((session_fraction * 1000.0) as i64);

        HealthDecision {
            state: verdict,
            queue_fraction,
            p99_micros: p99,
            shed_delta,
            breaker_delta,
            session_fraction,
            workers: new_workers,
            shed_threshold: new_threshold,
            stale_factor: new_factor,
        }
    }

    fn publish_gauges(
        &self,
        workers: usize,
        threshold: usize,
        stale_factor: u32,
        state: HealthState,
    ) {
        self.registry
            .gauge("msite_health_workers_target", &[])
            .set(workers as i64);
        self.registry
            .gauge("msite_server_workers", &[])
            .set(workers as i64);
        self.registry
            .gauge("msite_health_shed_threshold", &[])
            .set(threshold as i64);
        self.registry
            .gauge("msite_health_stale_factor", &[])
            .set(i64::from(stale_factor));
        self.registry
            .gauge("msite_health_state", &[])
            .set(state.code());
    }

    /// Starts a background driver calling [`tick`](HealthMonitor::tick)
    /// every `config.interval`. Idempotent; stopped by
    /// [`stop`](HealthMonitor::stop) or drop.
    pub fn spawn(self: &Arc<Self>) {
        let mut driver = self.driver.lock();
        if driver.is_some() {
            return;
        }
        let monitor = Arc::clone(self);
        let stop = Arc::clone(&self.stop);
        let interval = self.config.interval.max(Duration::from_millis(10));
        *driver = Some(
            std::thread::Builder::new()
                .name("msite-health".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        monitor.tick();
                        std::thread::sleep(interval);
                    }
                })
                .expect("spawn health driver"),
        );
    }

    /// Stops the background driver (if running) and joins it.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.driver.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HealthMonitor {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for HealthMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthMonitor")
            .field("config", &self.config)
            .field("workers", &self.pool.workers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msite_support::thread::PoolConfig;

    fn harness(config: HealthConfig) -> (Arc<MetricsRegistry>, HealthMonitor) {
        let registry = Arc::new(MetricsRegistry::new());
        let pool = Arc::new(WorkerPool::new(PoolConfig {
            workers: config.min_workers,
            queue_depth: 16,
            name: "health-test".into(),
        }));
        let threshold = Arc::new(AtomicUsize::new(16));
        let monitor = HealthMonitor::new(config, Arc::clone(&registry), pool, threshold);
        (registry, monitor)
    }

    fn test_config() -> HealthConfig {
        HealthConfig {
            min_workers: 2,
            max_workers: 8,
            hysteresis: 2,
            ..HealthConfig::default()
        }
    }

    #[test]
    fn quiet_system_stays_at_minimum() {
        let (_registry, monitor) = harness(test_config());
        for _ in 0..5 {
            let decision = monitor.tick();
            assert_eq!(decision.state, HealthState::Healthy);
            assert_eq!(decision.workers, 2);
            assert_eq!(decision.stale_factor, 1);
        }
    }

    #[test]
    fn deep_queue_scales_up_and_tightens_shed() {
        let (registry, monitor) = harness(test_config());
        registry.gauge("msite_server_queue_len", &[]).set(14);
        let decision = monitor.tick();
        assert_eq!(decision.state, HealthState::Overloaded);
        assert!(decision.workers > 2, "grew: {decision:?}");
        assert!(decision.shed_threshold < 16, "tightened: {decision:?}");
        assert_eq!(decision.stale_factor, 4);
        assert_eq!(
            registry.counter_value("msite_health_scale_ups_total", &[]),
            1
        );
        assert_eq!(registry.gauge_value("msite_health_state", &[]), 2);
    }

    #[test]
    fn shed_burst_alone_triggers_overload() {
        let (registry, monitor) = harness(test_config());
        monitor.tick(); // baseline
        registry
            .counter("msite_server_rejected_overload_total", &[])
            .add(5);
        let decision = monitor.tick();
        assert_eq!(decision.state, HealthState::Overloaded);
        assert_eq!(decision.shed_delta, 5);
    }

    #[test]
    fn recovery_steps_down_only_after_hysteresis() {
        let (registry, monitor) = harness(test_config());
        registry.gauge("msite_server_queue_len", &[]).set(14);
        let grown = monitor.tick().workers;
        assert!(grown > 2);
        registry.gauge("msite_server_queue_len", &[]).set(0);
        // First healthy tick: hold (streak 1 < hysteresis 2).
        let hold = monitor.tick();
        assert_eq!(hold.state, HealthState::Healthy);
        assert_eq!(hold.workers, grown);
        assert_eq!(hold.shed_threshold, 16, "shed threshold restored");
        assert_eq!(hold.stale_factor, 1, "stale boost lifted");
        // Second healthy tick: step down.
        let shrunk = monitor.tick();
        assert!(shrunk.workers < grown, "stepped down: {shrunk:?}");
        assert_eq!(
            registry.counter_value("msite_health_scale_downs_total", &[]),
            1
        );
    }

    #[test]
    fn stale_hook_sees_boost_and_restore() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let (registry, monitor) = harness(test_config());
        let monitor = monitor.with_stale_hook(Arc::new(move |factor| {
            seen2.lock().push(factor);
        }));
        registry.gauge("msite_server_queue_len", &[]).set(14);
        monitor.tick();
        registry.gauge("msite_server_queue_len", &[]).set(0);
        monitor.tick();
        assert_eq!(*seen.lock(), vec![4, 1]);
    }

    #[test]
    fn session_pressure_degrades_without_scaling() {
        let (registry, monitor) = harness(test_config());
        registry.gauge("msite_session_live", &[]).set(95);
        registry.gauge("msite_session_max", &[]).set(100);
        let decision = monitor.tick();
        // Session pressure taints health but never grows workers (the
        // store is bounded by design; threads would not help).
        assert_eq!(decision.state, HealthState::Degraded);
        assert!(decision.session_fraction > 0.9);
        assert_eq!(decision.workers, 2);
        assert_eq!(
            registry.gauge_value("msite_health_session_permille", &[]),
            950
        );
        // Pressure released: healthy again.
        registry.gauge("msite_session_live", &[]).set(10);
        let decision = monitor.tick();
        assert_eq!(decision.state, HealthState::Healthy);
    }

    #[test]
    fn absent_session_gauges_read_as_no_pressure() {
        let (registry, monitor) = harness(test_config());
        let decision = monitor.tick();
        assert_eq!(decision.state, HealthState::Healthy);
        assert_eq!(decision.session_fraction, 0.0);
        assert_eq!(
            registry.gauge_value("msite_health_session_permille", &[]),
            0
        );
    }

    #[test]
    fn breaker_churn_counts_as_duress() {
        let (registry, monitor) = harness(test_config());
        monitor.tick();
        registry
            .counter(BREAKER_TRANSITIONS_METRIC, &[("host", "x"), ("to", "open")])
            .inc();
        let decision = monitor.tick();
        assert_eq!(decision.state, HealthState::Overloaded);
        assert_eq!(decision.breaker_delta, 1);
    }
}
