//! Network link models for the device-side page-load simulation.
//!
//! Table 1 of the paper compares wall-clock load times over real 3G and
//! WiFi radios; we model a link as bandwidth + round-trip latency +
//! per-connection overhead, with a bounded number of concurrent
//! connections (browsers of the era opened 2–6 per host). The simulated
//! clock lives here too so the device crate and benches share it.

use std::time::Duration;

/// A modeled access link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Downstream bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Round-trip time per request.
    pub rtt: Duration,
    /// Extra per-connection setup cost (DNS+TCP+radio ramp), paid once per
    /// concurrent connection slot.
    pub connection_setup: Duration,
    /// Concurrent connections the client uses against one host.
    pub parallel_connections: u32,
}

impl LinkModel {
    /// 2012-era 2G/EDGE as experienced in the developing-regions
    /// setting the fidelity tiers target: ~40 kbit/s effective goodput,
    /// long RTT, a very long radio ramp, one useful connection.
    pub const TWO_G: LinkModel = LinkModel {
        bandwidth_bps: 40_000.0,
        rtt: Duration::from_millis(700),
        connection_setup: Duration::from_millis(2_500),
        parallel_connections: 1,
    };

    /// 2012-era 3G (HSPA) as experienced by a page load: ~250 kbit/s
    /// *effective* goodput (TCP slow start + radio state promotions eat
    /// most of the nominal rate), 400 ms RTT, a long radio ramp-up, and
    /// only two useful concurrent connections.
    pub const THREE_G: LinkModel = LinkModel {
        bandwidth_bps: 250_000.0,
        rtt: Duration::from_millis(400),
        connection_setup: Duration::from_millis(1_500),
        parallel_connections: 2,
    };

    /// Home WiFi behind cable: ~8 Mbit/s effective, modest RTT.
    pub const WIFI: LinkModel = LinkModel {
        bandwidth_bps: 8_000_000.0,
        rtt: Duration::from_millis(40),
        connection_setup: Duration::from_millis(60),
        parallel_connections: 6,
    };

    /// Wired desktop LAN/broadband.
    pub const LAN: LinkModel = LinkModel {
        bandwidth_bps: 20_000_000.0,
        rtt: Duration::from_millis(15),
        connection_setup: Duration::from_millis(20),
        parallel_connections: 6,
    };

    /// Proxy colocated with the origin: effectively free.
    pub const LOOPBACK: LinkModel = LinkModel {
        bandwidth_bps: 1_000_000_000.0,
        rtt: Duration::from_micros(200),
        connection_setup: Duration::from_micros(100),
        parallel_connections: 16,
    };

    /// Time to transfer `bytes` once a connection is up.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }

    /// Models fetching a page: one HTML resource followed by `resources`
    /// subresource fetches of the given sizes, using
    /// `parallel_connections` pipelines.
    ///
    /// Each fetch costs one RTT plus transfer time; bandwidth is shared,
    /// so the total transfer time is serialized while RTTs on distinct
    /// connections overlap.
    pub fn page_fetch_time(&self, html_bytes: usize, resources: &[usize]) -> Duration {
        // HTML first (blocking), then subresources in waves.
        let mut total = self.connection_setup + self.rtt + self.transfer_time(html_bytes);
        if resources.is_empty() {
            return total;
        }
        let lanes = self.parallel_connections.max(1) as usize;
        // RTTs overlap across lanes: each wave of `lanes` fetches costs one
        // RTT; transfers share the pipe and therefore serialize.
        let waves = resources.len().div_ceil(lanes) as u32;
        total += self.rtt * waves;
        let body_bytes: usize = resources.iter().sum();
        total += self.transfer_time(body_bytes);
        total
    }
}

/// Coarse access-bandwidth classes the adaptation layer keys fidelity
/// tiers on. Each class maps to a representative [`LinkModel`]; device
/// profiles carry one, and a proxy can resolve one per request from the
/// `x-msite-bandwidth` header or the User-Agent's device class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BandwidthClass {
    /// 2G/EDGE-era links (~40 kbit/s effective) — the lowest tier.
    TwoG,
    /// 3G/HSPA links (~250 kbit/s effective).
    ThreeG,
    /// WiFi and better.
    Wifi,
}

impl BandwidthClass {
    /// Every class, slowest first.
    pub const ALL: [BandwidthClass; 3] = [
        BandwidthClass::TwoG,
        BandwidthClass::ThreeG,
        BandwidthClass::Wifi,
    ];

    /// The canonical lowercase token — used as metric label, cache-key
    /// suffix, and DSL/JSON spelling.
    pub const fn name(self) -> &'static str {
        match self {
            BandwidthClass::TwoG => "2g",
            BandwidthClass::ThreeG => "3g",
            BandwidthClass::Wifi => "wifi",
        }
    }

    /// Parses the canonical token (as found in `x-msite-bandwidth`
    /// headers and specs); `None` for anything else.
    pub fn parse(token: &str) -> Option<BandwidthClass> {
        match token.trim().to_ascii_lowercase().as_str() {
            "2g" | "edge" | "gprs" => Some(BandwidthClass::TwoG),
            "3g" | "hspa" => Some(BandwidthClass::ThreeG),
            "wifi" | "4g" | "lan" => Some(BandwidthClass::Wifi),
            _ => None,
        }
    }

    /// The representative link model for this class.
    pub const fn link_model(self) -> LinkModel {
        match self {
            BandwidthClass::TwoG => LinkModel::TWO_G,
            BandwidthClass::ThreeG => LinkModel::THREE_G,
            BandwidthClass::Wifi => LinkModel::WIFI,
        }
    }
}

impl std::fmt::Display for BandwidthClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A simulated transport: an [`Origin`](crate::origin::Origin) reached
/// across a modeled [`LinkModel`], advancing a [`SimClock`] by the time
/// the transfer would take. This is how device-side simulations fetch
/// through the same code path the proxy uses.
pub struct Transport {
    origin: crate::origin::OriginRef,
    link: LinkModel,
}

impl Transport {
    /// Creates a transport over `origin` across `link`.
    pub fn new(origin: crate::origin::OriginRef, link: LinkModel) -> Transport {
        Transport { origin, link }
    }

    /// The link model in use.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Performs the request, advancing `clock` by connection setup, one
    /// round trip, the request upload and the response download.
    pub fn fetch(
        &self,
        request: &crate::http::Request,
        clock: &mut SimClock,
    ) -> crate::http::Response {
        let response = self.origin.handle(request);
        clock.advance(self.link.connection_setup);
        clock.advance(self.link.rtt);
        clock.advance(self.link.transfer_time(request.body.len() + 256));
        clock.advance(self.link.transfer_time(response.transfer_size()));
        response
    }
}

/// A simulated clock measured in microseconds. Purely logical — nothing
/// sleeps; the device simulator adds durations to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SimClock {
    micros: u64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Advances by `duration`.
    pub fn advance(&mut self, duration: Duration) {
        self.micros += duration.as_micros() as u64;
    }

    /// Elapsed simulated time.
    pub fn elapsed(&self) -> Duration {
        Duration::from_micros(self.micros)
    }

    /// Elapsed simulated seconds.
    pub fn seconds(&self) -> f64 {
        self.micros as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_linear_in_bytes() {
        let link = LinkModel::THREE_G;
        let t1 = link.transfer_time(31_250); // 250 kbit
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-9);
        let t2 = link.transfer_time(62_500);
        assert!((t2.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn page_fetch_faster_on_wifi_than_3g() {
        let sizes: Vec<usize> = vec![8_000; 20];
        let slow = LinkModel::THREE_G.page_fetch_time(60_000, &sizes);
        let fast = LinkModel::WIFI.page_fetch_time(60_000, &sizes);
        assert!(slow > fast * 3);
    }

    #[test]
    fn fewer_requests_fewer_rtts() {
        let one = LinkModel::THREE_G.page_fetch_time(50_000, &[50_000]);
        let many = LinkModel::THREE_G.page_fetch_time(50_000, &vec![2_500; 40]);
        // Same total bytes, but 40 requests pay more RTT waves.
        assert!(many > one);
    }

    #[test]
    fn loopback_negligible() {
        let t = LinkModel::LOOPBACK.page_fetch_time(224_477, &[10_000; 12]);
        assert!(t < Duration::from_millis(20), "{t:?}");
    }

    #[test]
    fn transport_advances_clock_by_transfer() {
        use crate::http::{Request, Response};
        use std::sync::Arc;
        let origin: crate::origin::OriginRef =
            Arc::new(|_req: &Request| Response::bytes("text/plain", vec![0u8; 31_250]));
        let transport = Transport::new(origin, LinkModel::THREE_G);
        let mut clock = SimClock::new();
        let response = transport.fetch(&Request::get("http://h/big").unwrap(), &mut clock);
        assert!(response.status.is_success());
        // 31,250 B body = 1 s on the 250 kbit/s link, plus setup + rtt.
        assert!(
            clock.seconds() > 1.0 + 1.5 + 0.4 - 0.1,
            "{}",
            clock.seconds()
        );
        // A second fetch keeps accumulating.
        let before = clock.seconds();
        let _ = transport.fetch(&Request::get("http://h/big").unwrap(), &mut clock);
        assert!(clock.seconds() > before + 1.0);
    }

    #[test]
    fn transport_faster_on_faster_links() {
        use crate::http::{Request, Response};
        use std::sync::Arc;
        let origin: crate::origin::OriginRef =
            Arc::new(|_req: &Request| Response::bytes("text/plain", vec![0u8; 100_000]));
        let mut slow_clock = SimClock::new();
        let mut fast_clock = SimClock::new();
        Transport::new(Arc::clone(&origin), LinkModel::THREE_G)
            .fetch(&Request::get("http://h/").unwrap(), &mut slow_clock);
        Transport::new(origin, LinkModel::LAN)
            .fetch(&Request::get("http://h/").unwrap(), &mut fast_clock);
        assert!(slow_clock.seconds() > fast_clock.seconds() * 5.0);
    }

    #[test]
    fn bandwidth_classes_order_and_round_trip() {
        let sizes: Vec<usize> = vec![8_000; 10];
        let mut last = Duration::ZERO;
        for class in BandwidthClass::ALL.iter().rev() {
            let t = class.link_model().page_fetch_time(40_000, &sizes);
            assert!(t > last, "{class} not slower than the class above it");
            last = t;
        }
        for class in BandwidthClass::ALL {
            assert_eq!(BandwidthClass::parse(class.name()), Some(class));
        }
        assert_eq!(BandwidthClass::parse("EDGE"), Some(BandwidthClass::TwoG));
        assert_eq!(BandwidthClass::parse("dsl"), None);
        assert_eq!(BandwidthClass::parse(""), None);
    }

    #[test]
    fn sim_clock_accumulates() {
        let mut clock = SimClock::new();
        clock.advance(Duration::from_millis(1500));
        clock.advance(Duration::from_micros(500));
        assert_eq!(clock.elapsed(), Duration::from_micros(1_500_500));
        assert!((clock.seconds() - 1.5005).abs() < 1e-9);
    }
}
