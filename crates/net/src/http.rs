//! HTTP message types: methods, statuses, headers, requests, responses,
//! and the chunked transfer-encoding codec used for progressive
//! (streamed) response bodies.

use crate::url::Url;
use msite_support::bytes::Bytes;
use msite_support::sync::Mutex;
use std::fmt;
use std::io::BufRead;
use std::sync::Arc;

/// Request methods the proxy and origins understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
    /// HEAD
    Head,
}

impl Method {
    /// Parses a method token (case-insensitive).
    pub fn parse(s: &str) -> Option<Method> {
        match s.to_ascii_uppercase().as_str() {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "HEAD" => Some(Method::Head),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        })
    }
}

/// Response status codes used in this system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Status(pub u16);

impl Status {
    /// 200
    pub const OK: Status = Status(200);
    /// 302
    pub const FOUND: Status = Status(302);
    /// 304
    pub const NOT_MODIFIED: Status = Status(304);
    /// 400
    pub const BAD_REQUEST: Status = Status(400);
    /// 401
    pub const UNAUTHORIZED: Status = Status(401);
    /// 403
    pub const FORBIDDEN: Status = Status(403);
    /// 404
    pub const NOT_FOUND: Status = Status(404);
    /// 500
    pub const INTERNAL_SERVER_ERROR: Status = Status(500);
    /// 502
    pub const BAD_GATEWAY: Status = Status(502);
    /// 503
    pub const SERVICE_UNAVAILABLE: Status = Status(503);
    /// 504
    pub const GATEWAY_TIMEOUT: Status = Status(504);

    /// True for 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.0)
    }

    /// True for 3xx.
    pub fn is_redirect(&self) -> bool {
        (300..400).contains(&self.0)
    }

    /// Canonical reason phrase.
    pub fn reason(&self) -> &'static str {
        match self.0 {
            200 => "OK",
            302 => "Found",
            304 => "Not Modified",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// An ordered, case-insensitive header multimap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Creates an empty header map.
    pub fn new() -> Self {
        Headers::default()
    }

    /// Appends a header (duplicates allowed, e.g. `Set-Cookie`).
    pub fn append(&mut self, name: &str, value: &str) {
        self.entries
            .push((name.to_ascii_lowercase(), value.to_string()));
    }

    /// Sets a header, replacing all previous values.
    pub fn set(&mut self, name: &str, value: &str) {
        let name = name.to_ascii_lowercase();
        self.entries.retain(|(k, _)| *k != name);
        self.entries.push((name, value.to_string()));
    }

    /// First value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.entries
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// All values of `name`.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        let name = name.to_ascii_lowercase();
        self.entries
            .iter()
            .filter(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Removes all values of `name`.
    pub fn remove(&mut self, name: &str) {
        let name = name.to_ascii_lowercase();
        self.entries.retain(|(k, _)| *k != name);
    }

    /// Iterates `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Absolute target URL.
    pub url: Url,
    /// Headers.
    pub headers: Headers,
    /// Body (form data for POST).
    pub body: Bytes,
}

impl Request {
    /// Builds a GET request for `url`.
    ///
    /// # Errors
    ///
    /// Returns the URL parse error.
    ///
    /// # Examples
    ///
    /// ```
    /// let req = msite_net::Request::get("http://forum/index.php").unwrap();
    /// assert_eq!(req.url.path(), "/index.php");
    /// ```
    pub fn get(url: &str) -> Result<Request, crate::url::ParseUrlError> {
        Ok(Request {
            method: Method::Get,
            url: Url::parse(url)?,
            headers: Headers::new(),
            body: Bytes::new(),
        })
    }

    /// Builds a POST request with a form-encoded body.
    ///
    /// # Errors
    ///
    /// Returns the URL parse error.
    pub fn post_form(
        url: &str,
        params: &[(&str, &str)],
    ) -> Result<Request, crate::url::ParseUrlError> {
        let mut headers = Headers::new();
        headers.set("content-type", "application/x-www-form-urlencoded");
        Ok(Request {
            method: Method::Post,
            url: Url::parse(url)?,
            headers,
            body: Bytes::from(crate::url::encode_query(params)),
        })
    }

    /// Sets a header and returns the request (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> Request {
        self.headers.set(name, value);
        self
    }

    /// The `Cookie` header parsed into `(name, value)` pairs.
    pub fn cookies(&self) -> Vec<(String, String)> {
        self.headers
            .get("cookie")
            .map(crate::cookies::parse_cookie_header)
            .unwrap_or_default()
    }

    /// Value of the cookie `name` sent with this request.
    pub fn cookie(&self, name: &str) -> Option<String> {
        self.cookies()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Form parameters from the body (POST) or the query string (GET).
    pub fn form_params(&self) -> Vec<(String, String)> {
        match self.method {
            Method::Post => crate::url::parse_query(&String::from_utf8_lossy(&self.body)),
            _ => self
                .url
                .query()
                .map(crate::url::parse_query)
                .unwrap_or_default(),
        }
    }

    /// First form/query parameter named `name`.
    pub fn param(&self, name: &str) -> Option<String> {
        // Query parameters are always visible, body parameters for POST.
        if let Some(v) = self.url.query_param(name) {
            return Some(v);
        }
        self.form_params()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

/// Destination for the chunks of a progressively produced response
/// body. The server hands the producer a sink that frames and flushes
/// each chunk straight to the TCP stream; in-process consumers collect
/// into a buffer instead. `Send` so producers can flush from parallel
/// pipeline workers.
pub trait ChunkSink: Send {
    /// Delivers one body chunk. Empty chunks are ignored by transports
    /// (an empty chunk would terminate the chunked framing).
    fn chunk(&mut self, bytes: &[u8]);
}

impl ChunkSink for Vec<u8> {
    fn chunk(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

/// The deferred producer of a streamed body: runs on the transport's
/// writer thread, pushing chunks into the sink as they become ready.
pub type ChunkProducer = Box<dyn FnOnce(&mut dyn ChunkSink) + Send>;

/// A streamed response body: a one-shot [`ChunkProducer`] behind a
/// shared handle (so [`Response`] stays `Clone`; the first consumer
/// takes the producer, clones see an already-drained stream).
#[derive(Clone)]
pub struct ChunkStream {
    producer: Arc<Mutex<Option<ChunkProducer>>>,
}

impl ChunkStream {
    /// Wraps a producer.
    pub fn new(producer: ChunkProducer) -> ChunkStream {
        ChunkStream {
            producer: Arc::new(Mutex::new(Some(producer))),
        }
    }

    /// Takes the producer; `None` when already consumed (or consumed
    /// through a clone).
    pub fn take(&self) -> Option<ChunkProducer> {
        self.producer.lock().take()
    }
}

impl fmt::Debug for ChunkStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pending = self.producer.lock().is_some();
        f.debug_struct("ChunkStream")
            .field("pending", &pending)
            .finish()
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Headers.
    pub headers: Headers,
    /// Body bytes. For a streamed response this is empty until the
    /// stream is drained (see [`Response::into_collected`]).
    pub body: Bytes,
    /// Deferred chunked body, produced while the transport writes.
    /// `None` for ordinary (batch) responses. Transports that cannot
    /// stream — and in-process consumers — drain it into `body` via
    /// [`Response::into_collected`]; the concatenation of all chunks
    /// is byte-identical to the batch body.
    pub stream: Option<ChunkStream>,
}

impl Response {
    /// 200 response with an HTML body.
    pub fn html(body: impl Into<String>) -> Response {
        let mut headers = Headers::new();
        headers.set("content-type", "text/html; charset=utf-8");
        Response {
            status: Status::OK,
            headers,
            body: Bytes::from(body.into()),
            stream: None,
        }
    }

    /// 200 response with arbitrary bytes and content type.
    pub fn bytes(content_type: &str, body: impl Into<Bytes>) -> Response {
        let mut headers = Headers::new();
        headers.set("content-type", content_type);
        Response {
            status: Status::OK,
            headers,
            body: body.into(),
            stream: None,
        }
    }

    /// 302 redirect to `location`.
    pub fn redirect(location: &str) -> Response {
        let mut headers = Headers::new();
        headers.set("location", location);
        Response {
            status: Status::FOUND,
            headers,
            body: Bytes::new(),
            stream: None,
        }
    }

    /// An error response with a small HTML body.
    pub fn error(status: Status, message: &str) -> Response {
        let mut headers = Headers::new();
        headers.set("content-type", "text/html; charset=utf-8");
        Response {
            status,
            headers,
            body: Bytes::from(format!(
                "<html><body><h1>{status}</h1><p>{message}</p></body></html>"
            )),
            stream: None,
        }
    }

    /// Appends a `Set-Cookie` header and returns the response.
    pub fn with_cookie(mut self, cookie: &crate::cookies::Cookie) -> Response {
        self.headers.append("set-cookie", &cookie.to_header_value());
        self
    }

    /// Body interpreted as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Total transfer size: body plus a serialized-header estimate.
    pub fn transfer_size(&self) -> usize {
        let header_bytes: usize = self
            .headers
            .iter()
            .map(|(k, v)| k.len() + v.len() + 4)
            .sum();
        self.body.len() + header_bytes + 32
    }

    /// 200 response whose body is produced progressively: `producer`
    /// runs on the transport's writer thread and pushes chunks into
    /// the sink as they become ready. A TCP server delivers them with
    /// chunked transfer-encoding (no `content-length`); in-process
    /// consumers drain with [`Response::into_collected`]. Either way
    /// the byte-concatenation of the chunks is the full body.
    pub fn streaming(
        content_type: &str,
        producer: impl FnOnce(&mut dyn ChunkSink) + Send + 'static,
    ) -> Response {
        let mut headers = Headers::new();
        headers.set("content-type", content_type);
        Response {
            status: Status::OK,
            headers,
            body: Bytes::new(),
            stream: Some(ChunkStream::new(Box::new(producer))),
        }
    }

    /// True when this response carries an undrained streamed body.
    pub fn is_streaming(&self) -> bool {
        self.stream.as_ref().is_some_and(|s| {
            // A drained/taken stream behaves like a batch response.
            let pending = s.producer.lock().is_some();
            pending
        })
    }

    /// Drains a streamed body into `body` (a no-op for batch
    /// responses): runs the producer to completion, concatenating the
    /// chunks. This is what non-streaming transports and in-process
    /// consumers use; the result is byte-identical to what a chunked
    /// transport would deliver.
    pub fn into_collected(mut self) -> Response {
        if let Some(producer) = self.stream.as_ref().and_then(ChunkStream::take) {
            let mut buffer: Vec<u8> = Vec::new();
            producer(&mut buffer);
            self.body = Bytes::from(buffer);
        }
        self.stream = None;
        self
    }
}

/// Frames one non-empty chunk for the wire: `<hex len>\r\n<data>\r\n`.
pub fn encode_chunk(data: &[u8]) -> Vec<u8> {
    let mut framed = format!("{:x}\r\n", data.len()).into_bytes();
    framed.extend_from_slice(data);
    framed.extend_from_slice(b"\r\n");
    framed
}

/// The terminal frame of a chunked body: `0\r\n\r\n`.
pub const CHUNK_TERMINATOR: &[u8] = b"0\r\n\r\n";

/// Largest chunk size the decoder will buffer. A peer declaring a
/// bigger chunk is rejected before any allocation happens, so a
/// garbled (or hostile) size line cannot force an OOM.
pub const MAX_CHUNK_BYTES: u64 = 16 * 1024 * 1024;

/// Most trailer lines the decoder will drain after the final chunk.
/// Bounds the work a peer can demand by streaming endless trailers.
pub const MAX_TRAILER_LINES: usize = 128;

/// A malformed or truncated chunked transfer encoding.
///
/// Every way a chunked body can go wrong maps to a distinct variant,
/// so callers can log or classify failures without string matching.
/// Converts losslessly into [`std::io::Error`] (`InvalidData` for
/// framing faults, `UnexpectedEof` for truncation).
#[derive(Debug)]
pub enum ChunkedError {
    /// The stream ended before the chunked body did: mid chunk-size
    /// line, mid chunk data, or before the terminating trailer CRLF.
    Truncated {
        /// Which part of the framing was cut short.
        context: &'static str,
    },
    /// A chunk-size line was not valid hex (after stripping extensions).
    BadSizeLine(String),
    /// A chunk declared more bytes than [`MAX_CHUNK_BYTES`].
    OversizedChunk {
        /// The declared chunk size.
        size: u64,
        /// The decoder's cap ([`MAX_CHUNK_BYTES`]).
        limit: u64,
    },
    /// Chunk data was not followed by CRLF.
    MissingCrlf,
    /// The trailer section exceeded [`MAX_TRAILER_LINES`] lines.
    TrailerOverflow,
    /// A transport error from the underlying reader.
    Io(std::io::Error),
}

impl std::fmt::Display for ChunkedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkedError::Truncated { context } => {
                write!(f, "chunked body truncated ({context})")
            }
            ChunkedError::BadSizeLine(line) => write!(f, "bad chunk size line {line:?}"),
            ChunkedError::OversizedChunk { size, limit } => {
                write!(f, "chunk of {size} bytes exceeds limit of {limit}")
            }
            ChunkedError::MissingCrlf => write!(f, "chunk data not terminated by CRLF"),
            ChunkedError::TrailerOverflow => write!(f, "too many trailer lines"),
            ChunkedError::Io(err) => write!(f, "chunked transport error: {err}"),
        }
    }
}

impl std::error::Error for ChunkedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChunkedError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ChunkedError {
    fn from(err: std::io::Error) -> Self {
        if err.kind() == std::io::ErrorKind::UnexpectedEof {
            ChunkedError::Truncated {
                context: "transport eof",
            }
        } else {
            ChunkedError::Io(err)
        }
    }
}

impl From<ChunkedError> for std::io::Error {
    fn from(err: ChunkedError) -> Self {
        let kind = match &err {
            ChunkedError::Truncated { .. } => std::io::ErrorKind::UnexpectedEof,
            ChunkedError::Io(io) => io.kind(),
            _ => std::io::ErrorKind::InvalidData,
        };
        std::io::Error::new(kind, err.to_string())
    }
}

/// Decodes a chunked transfer-encoded body from `reader`, returning
/// the concatenated chunk payloads. Trailers are read and discarded.
///
/// # Errors
///
/// Returns a typed [`ChunkedError`] on malformed framing — truncated
/// terminators, non-hex or oversized chunk sizes, missing CRLFs — and
/// on transport IO errors. Never panics and never allocates more than
/// [`MAX_CHUNK_BYTES`] for a single declared chunk.
pub fn decode_chunked(reader: &mut impl BufRead) -> Result<Vec<u8>, ChunkedError> {
    let mut body = Vec::new();
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line)? == 0 {
            return Err(ChunkedError::Truncated {
                context: "chunk size line",
            });
        }
        // Chunk extensions (";ext=val") are allowed and ignored.
        let size_token = size_line
            .trim_end()
            .split(';')
            .next()
            .unwrap_or_default()
            .trim();
        let size = u64::from_str_radix(size_token, 16)
            .map_err(|_| ChunkedError::BadSizeLine(size_token.to_string()))?;
        if size > MAX_CHUNK_BYTES {
            return Err(ChunkedError::OversizedChunk {
                size,
                limit: MAX_CHUNK_BYTES,
            });
        }
        if size == 0 {
            // Trailer section: zero or more header lines, then CRLF.
            for _ in 0..MAX_TRAILER_LINES {
                let mut trailer = String::new();
                if reader.read_line(&mut trailer)? == 0 {
                    return Err(ChunkedError::Truncated {
                        context: "trailer section",
                    });
                }
                if trailer.trim_end().is_empty() {
                    return Ok(body);
                }
            }
            return Err(ChunkedError::TrailerOverflow);
        }
        let start = body.len();
        body.resize(start + size as usize, 0);
        reader
            .read_exact(&mut body[start..])
            .map_err(|err| truncated_as(err, "chunk data"))?;
        let mut crlf = [0u8; 2];
        reader
            .read_exact(&mut crlf)
            .map_err(|err| truncated_as(err, "chunk terminator"))?;
        if &crlf != b"\r\n" {
            return Err(ChunkedError::MissingCrlf);
        }
    }
}

fn truncated_as(err: std::io::Error, context: &'static str) -> ChunkedError {
    if err.kind() == std::io::ErrorKind::UnexpectedEof {
        ChunkedError::Truncated { context }
    } else {
        ChunkedError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_parse_and_display() {
        assert_eq!(Method::parse("get"), Some(Method::Get));
        assert_eq!(Method::parse("POST"), Some(Method::Post));
        assert_eq!(Method::parse("BREW"), None);
        assert_eq!(Method::Get.to_string(), "GET");
    }

    #[test]
    fn status_predicates() {
        assert!(Status::OK.is_success());
        assert!(Status::FOUND.is_redirect());
        assert!(!Status::NOT_FOUND.is_success());
        assert_eq!(Status::NOT_FOUND.to_string(), "404 Not Found");
    }

    #[test]
    fn headers_case_insensitive() {
        let mut h = Headers::new();
        h.set("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        h.set("content-type", "text/plain");
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn headers_multi_value() {
        let mut h = Headers::new();
        h.append("set-cookie", "a=1");
        h.append("Set-Cookie", "b=2");
        assert_eq!(h.get_all("set-cookie"), vec!["a=1", "b=2"]);
        assert_eq!(h.get("set-cookie"), Some("a=1"));
        h.remove("set-cookie");
        assert!(h.is_empty());
    }

    #[test]
    fn get_request_builder() {
        let r = Request::get("http://h/p?x=1")
            .unwrap()
            .with_header("user-agent", "BlackBerry9630");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.param("x"), Some("1".to_string()));
        assert_eq!(r.headers.get("user-agent"), Some("BlackBerry9630"));
    }

    #[test]
    fn post_form_encodes_body() {
        let r =
            Request::post_form("http://h/login.php", &[("user", "al b"), ("pass", "x&y")]).unwrap();
        assert_eq!(&r.body[..], b"user=al+b&pass=x%26y");
        let params = r.form_params();
        assert_eq!(params[1], ("pass".to_string(), "x&y".to_string()));
        assert_eq!(r.param("pass"), Some("x&y".to_string()));
    }

    #[test]
    fn request_cookies_parsed() {
        let r = Request::get("http://h/")
            .unwrap()
            .with_header("cookie", "msite_session=abc; other=1");
        assert_eq!(r.cookie("msite_session"), Some("abc".to_string()));
        assert_eq!(r.cookie("missing"), None);
    }

    #[test]
    fn response_constructors() {
        let ok = Response::html("<p>x</p>");
        assert!(ok.status.is_success());
        assert_eq!(ok.body_text(), "<p>x</p>");
        let redirect = Response::redirect("/login.php");
        assert_eq!(redirect.headers.get("location"), Some("/login.php"));
        let err = Response::error(Status::NOT_FOUND, "no such page");
        assert!(err.body_text().contains("404"));
    }

    #[test]
    fn transfer_size_includes_headers() {
        let r = Response::html("x");
        assert!(r.transfer_size() > 1);
    }

    fn decode(bytes: &[u8]) -> Result<Vec<u8>, ChunkedError> {
        let mut reader = std::io::BufReader::new(bytes);
        decode_chunked(&mut reader)
    }

    #[test]
    fn decode_chunked_roundtrip_with_extensions_and_trailers() {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"5;ext=1\r\nhello\r\n");
        wire.extend_from_slice(&encode_chunk(b" world"));
        wire.extend_from_slice(b"0\r\nx-trailer: 1\r\n\r\n");
        assert_eq!(decode(&wire).unwrap(), b"hello world");
    }

    #[test]
    fn decode_chunked_truncated_size_line_is_typed() {
        assert!(matches!(
            decode(b""),
            Err(ChunkedError::Truncated {
                context: "chunk size line"
            })
        ));
    }

    #[test]
    fn decode_chunked_truncated_data_is_typed() {
        assert!(matches!(
            decode(b"a\r\nonly4"),
            Err(ChunkedError::Truncated {
                context: "chunk data"
            })
        ));
    }

    #[test]
    fn decode_chunked_truncated_terminator_is_typed() {
        // Data arrives in full but the stream dies before the CRLF.
        assert!(matches!(
            decode(b"5\r\nhello"),
            Err(ChunkedError::Truncated {
                context: "chunk terminator"
            })
        ));
        // The final `0` chunk arrives but the trailer CRLF never does.
        assert!(matches!(
            decode(b"5\r\nhello\r\n0\r\n"),
            Err(ChunkedError::Truncated {
                context: "trailer section"
            })
        ));
    }

    #[test]
    fn decode_chunked_non_hex_size_is_typed() {
        match decode(b"zz\r\nhello\r\n0\r\n\r\n") {
            Err(ChunkedError::BadSizeLine(line)) => assert_eq!(line, "zz"),
            other => panic!("expected BadSizeLine, got {other:?}"),
        }
    }

    #[test]
    fn decode_chunked_oversized_size_rejected_without_allocating() {
        // ffffffffffffffff = u64::MAX: must be refused, not buffered.
        match decode(b"ffffffffffffffff\r\n") {
            Err(ChunkedError::OversizedChunk { size, limit }) => {
                assert_eq!(size, u64::MAX);
                assert_eq!(limit, MAX_CHUNK_BYTES);
            }
            other => panic!("expected OversizedChunk, got {other:?}"),
        }
        // A size that doesn't even fit in u64 is a bad size line.
        assert!(matches!(
            decode(b"10000000000000000\r\n"),
            Err(ChunkedError::BadSizeLine(_))
        ));
    }

    #[test]
    fn decode_chunked_missing_crlf_is_typed() {
        assert!(matches!(
            decode(b"5\r\nhelloXX0\r\n\r\n"),
            Err(ChunkedError::MissingCrlf)
        ));
    }

    #[test]
    fn decode_chunked_trailer_flood_is_bounded() {
        let mut wire = b"0\r\n".to_vec();
        for i in 0..(MAX_TRAILER_LINES + 8) {
            wire.extend_from_slice(format!("x-{i}: v\r\n").as_bytes());
        }
        wire.extend_from_slice(b"\r\n");
        assert!(matches!(decode(&wire), Err(ChunkedError::TrailerOverflow)));
    }

    #[test]
    fn chunked_error_maps_to_io_kinds() {
        let eof: std::io::Error = ChunkedError::Truncated {
            context: "chunk data",
        }
        .into();
        assert_eq!(eof.kind(), std::io::ErrorKind::UnexpectedEof);
        let framing: std::io::Error = ChunkedError::MissingCrlf.into();
        assert_eq!(framing.kind(), std::io::ErrorKind::InvalidData);
    }
}
