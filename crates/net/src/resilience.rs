//! Fault-tolerance primitives for origin fetches: bounded retries with
//! deterministic jittered backoff, per-request deadline budgets, and a
//! per-host circuit breaker — composed into [`ResilientOrigin`], an
//! [`Origin`] wrapper the proxy puts in front of every upstream.
//!
//! The paper's proxy "handles ... any error handling should the page be
//! unavailable"; at production scale that means an origin hiccup must
//! cost a bounded amount of work (retry budget), a misbehaving origin
//! must be cut off instead of hammered (breaker), and no single request
//! may stall forever (deadline). Everything random here is seeded
//! through [`Prng`] so failure runs replay exactly.
//!
//! ```
//! use msite_net::{Origin, Request, ResiliencePolicy, ResilientOrigin, Response, Status};
//! use std::sync::Arc;
//!
//! let dead: msite_net::OriginRef =
//!     Arc::new(|_req: &Request| Response::error(Status::SERVICE_UNAVAILABLE, "down"));
//! let resilient = ResilientOrigin::new(dead, ResiliencePolicy::default());
//! let resp = resilient.handle(&Request::get("http://h/").unwrap());
//! assert_eq!(resp.status, Status::SERVICE_UNAVAILABLE);
//! assert!(resilient.stats().retries > 0); // it tried more than once
//! ```

use crate::http::{Request, Response, Status};
use crate::origin::{Origin, OriginRef};
use crate::rng::Prng;
use msite_support::sync::Mutex;
use msite_support::telemetry::{Counter, MetricsRegistry, Trace};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Marker header set on responses synthesized by an open circuit
/// breaker, so callers can distinguish "breaker refused" from "origin
/// answered 5xx" and degrade accordingly (e.g. serve a stale snapshot).
pub const BREAKER_HEADER: &str = "x-msite-breaker";

/// Marker header set when the retry budget was cut short by the
/// per-request deadline.
pub const DEADLINE_HEADER: &str = "x-msite-deadline";

/// Registry series counting breaker state transitions (labels `host`,
/// `to`) — sampled by the health monitor as a duress signal.
pub const BREAKER_TRANSITIONS_METRIC: &str = "msite_breaker_transitions_total";

// ---------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------

/// Bounded-retry policy with exponential, deterministically jittered
/// backoff.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further attempt.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// Backoff to sleep before retry number `retry` (1-based), drawn
    /// with equal jitter: half the exponential step is kept, half is
    /// rescaled by a seeded uniform draw, so concurrent retriers spread
    /// out while staying reproducible.
    pub fn backoff(&self, retry: u32, rng: &mut Prng) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << retry.saturating_sub(1).min(16));
        let capped = exp.min(self.max_backoff);
        let half = capped / 2;
        half + Duration::from_secs_f64(half.as_secs_f64() * rng.unit_f64())
    }
}

// ---------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------

/// A per-request time budget that retry loops and pipeline stages
/// consume from. Copies share the same fixed expiry instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Deadline {
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// A deadline at an explicit instant (for harnesses).
    pub fn at(at: Instant) -> Deadline {
        Deadline { at }
    }

    /// Budget left; zero once expired.
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// True once the budget is gone.
    pub fn expired(&self) -> bool {
        self.remaining().is_zero()
    }
}

// ---------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------

/// Circuit-breaker thresholds.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive upstream failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before allowing probes.
    pub cooldown: Duration,
    /// Consecutive half-open probe successes required to close again.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(200),
            probe_successes: 2,
        }
    }
}

/// Breaker state as seen by observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are counted.
    Closed,
    /// Requests are rejected until the cooldown elapses.
    Open,
    /// One probe request at a time is let through.
    HalfOpen,
}

impl BreakerState {
    /// Stable lower-case name for logs and counters.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

#[derive(Debug)]
enum State {
    Closed {
        failures: u32,
    },
    Open {
        until: Instant,
    },
    HalfOpen {
        successes: u32,
        probe_in_flight: bool,
    },
}

/// Per-breaker counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Times the breaker transitioned closed/half-open → open.
    pub opened: u64,
    /// Times the breaker closed again after successful probes.
    pub closed: u64,
    /// Requests rejected while open (or while a probe was in flight).
    pub rejected: u64,
}

/// A closed → open → half-open circuit breaker.
///
/// All transitions take an explicit `now` so harnesses can drive the
/// state machine deterministically; the `_at`-less convenience wrappers
/// use [`Instant::now`].
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<State>,
    stats: Mutex<BreakerStats>,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: Mutex::new(State::Closed { failures: 0 }),
            stats: Mutex::new(BreakerStats::default()),
        }
    }

    /// Whether a request may proceed at `now`. An open breaker flips to
    /// half-open once its cooldown has elapsed and then admits a single
    /// probe at a time.
    pub fn allow_at(&self, now: Instant) -> bool {
        let mut state = self.state.lock();
        match &mut *state {
            State::Closed { .. } => true,
            State::Open { until } => {
                if now >= *until {
                    *state = State::HalfOpen {
                        successes: 0,
                        probe_in_flight: true,
                    };
                    true
                } else {
                    self.stats.lock().rejected += 1;
                    false
                }
            }
            State::HalfOpen {
                probe_in_flight, ..
            } => {
                if *probe_in_flight {
                    self.stats.lock().rejected += 1;
                    false
                } else {
                    *probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Records a successful upstream exchange observed at `now`.
    pub fn record_success_at(&self, _now: Instant) {
        let mut state = self.state.lock();
        match &mut *state {
            State::Closed { failures } => *failures = 0,
            State::Open { .. } => {} // stale result from before the trip
            State::HalfOpen {
                successes,
                probe_in_flight,
            } => {
                *successes += 1;
                *probe_in_flight = false;
                if *successes >= self.config.probe_successes {
                    *state = State::Closed { failures: 0 };
                    self.stats.lock().closed += 1;
                }
            }
        }
    }

    /// Records a failed upstream exchange observed at `now`.
    pub fn record_failure_at(&self, now: Instant) {
        let mut state = self.state.lock();
        match &mut *state {
            State::Closed { failures } => {
                *failures += 1;
                if *failures >= self.config.failure_threshold {
                    *state = State::Open {
                        until: now + self.config.cooldown,
                    };
                    self.stats.lock().opened += 1;
                }
            }
            State::Open { .. } => {}
            State::HalfOpen { .. } => {
                // A failed probe re-opens for a full cooldown.
                *state = State::Open {
                    until: now + self.config.cooldown,
                };
                self.stats.lock().opened += 1;
            }
        }
    }

    /// [`Self::allow_at`] at the current instant.
    pub fn allow(&self) -> bool {
        self.allow_at(Instant::now())
    }

    /// [`Self::record_success_at`] at the current instant.
    pub fn record_success(&self) {
        self.record_success_at(Instant::now());
    }

    /// [`Self::record_failure_at`] at the current instant.
    pub fn record_failure(&self) {
        self.record_failure_at(Instant::now());
    }

    /// Current state (open breakers report open until probed).
    pub fn state(&self) -> BreakerState {
        match &*self.state.lock() {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> BreakerStats {
        *self.stats.lock()
    }
}

// ---------------------------------------------------------------------
// ResilientOrigin
// ---------------------------------------------------------------------

/// The full per-upstream fault-tolerance policy.
#[derive(Debug, Clone, Default)]
pub struct ResiliencePolicy {
    /// Retry budget and backoff shape.
    pub retry: RetryPolicy,
    /// Per-request wall-clock budget consumed by attempts and backoff
    /// sleeps. [`ResilientOrigin::handle_within`] lets callers share one
    /// budget across fetch and post-processing stages.
    pub deadline: DeadlineBudget,
    /// Per-host breaker thresholds.
    pub breaker: BreakerConfig,
    /// Seed for backoff jitter.
    pub seed: u64,
}

/// Newtype default for the per-request budget (10 s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineBudget(pub Duration);

impl Default for DeadlineBudget {
    fn default() -> Self {
        DeadlineBudget(Duration::from_secs(10))
    }
}

/// Counters aggregated across all requests through a
/// [`ResilientOrigin`]. Since the telemetry refactor this is a *view*:
/// it is reconstructed on demand from the metrics registry
/// (`msite_resilience_*_total` series), so scraping `/metrics` and
/// calling [`ResilientOrigin::stats`] can never disagree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Individual upstream attempts issued.
    pub attempts: u64,
    /// Attempts beyond the first (i.e. retries performed).
    pub retries: u64,
    /// Requests that ended with a non-5xx upstream answer.
    pub successes: u64,
    /// Requests that exhausted their retry budget on 5xx answers.
    pub failures: u64,
    /// Requests rejected up front by an open breaker.
    pub breaker_rejections: u64,
    /// Requests whose retry loop was cut short by the deadline.
    pub deadline_exhausted: u64,
}

/// Pre-interned registry handles for the resilience hot path: every
/// update below is a single relaxed atomic op.
struct ResilienceMetrics {
    registry: Arc<MetricsRegistry>,
    attempts: Arc<Counter>,
    retries: Arc<Counter>,
    successes: Arc<Counter>,
    failures: Arc<Counter>,
    breaker_rejections: Arc<Counter>,
    deadline_exhausted: Arc<Counter>,
}

impl ResilienceMetrics {
    fn new(registry: Arc<MetricsRegistry>) -> ResilienceMetrics {
        ResilienceMetrics {
            attempts: registry.counter("msite_resilience_attempts_total", &[]),
            retries: registry.counter("msite_resilience_retries_total", &[]),
            successes: registry.counter("msite_resilience_successes_total", &[]),
            failures: registry.counter("msite_resilience_failures_total", &[]),
            breaker_rejections: registry.counter("msite_resilience_breaker_rejections_total", &[]),
            deadline_exhausted: registry.counter("msite_resilience_deadline_exhausted_total", &[]),
            registry,
        }
    }

    /// Count a breaker state transition (cold path: transitions are
    /// rare, so the per-host series lookup is acceptable here).
    fn transition(&self, host: &str, from: BreakerState, to: BreakerState) {
        self.registry
            .counter(
                BREAKER_TRANSITIONS_METRIC,
                &[("host", host), ("to", to.name())],
            )
            .inc();
        if let Some(trace) = Trace::current() {
            trace.record(
                "resilience.breaker",
                Duration::ZERO,
                vec![
                    ("host".to_string(), host.to_string()),
                    ("from".to_string(), from.name().to_string()),
                    ("to".to_string(), to.name().to_string()),
                ],
            );
        }
    }
}

/// An [`Origin`] wrapper adding retries, deadlines, and per-host
/// circuit breaking around an inner origin.
pub struct ResilientOrigin {
    inner: OriginRef,
    policy: ResiliencePolicy,
    breakers: Mutex<HashMap<String, Arc<CircuitBreaker>>>,
    rng: Mutex<Prng>,
    metrics: ResilienceMetrics,
}

impl ResilientOrigin {
    /// Wraps `inner` with `policy`, publishing into a private registry.
    /// Embedders that scrape should use [`ResilientOrigin::with_metrics`]
    /// to share the serving stack's registry instead.
    pub fn new(inner: OriginRef, policy: ResiliencePolicy) -> ResilientOrigin {
        ResilientOrigin::with_metrics(inner, policy, Arc::new(MetricsRegistry::new()))
    }

    /// Wraps `inner` with `policy`, publishing counters
    /// (`msite_resilience_*_total`, `msite_breaker_transitions_total`)
    /// into `registry`.
    pub fn with_metrics(
        inner: OriginRef,
        policy: ResiliencePolicy,
        registry: Arc<MetricsRegistry>,
    ) -> ResilientOrigin {
        ResilientOrigin {
            rng: Mutex::new(Prng::new(policy.seed ^ 0x7265_7369_6c69_656e)),
            inner,
            policy,
            breakers: Mutex::new(HashMap::new()),
            metrics: ResilienceMetrics::new(registry),
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> &ResiliencePolicy {
        &self.policy
    }

    /// Counters so far — a view reconstructed from the registry.
    pub fn stats(&self) -> ResilienceStats {
        ResilienceStats {
            attempts: self.metrics.attempts.get(),
            retries: self.metrics.retries.get(),
            successes: self.metrics.successes.get(),
            failures: self.metrics.failures.get(),
            breaker_rejections: self.metrics.breaker_rejections.get(),
            deadline_exhausted: self.metrics.deadline_exhausted.get(),
        }
    }

    /// State of the breaker guarding `host` (closed when the host has
    /// never been fetched).
    pub fn breaker_state(&self, host: &str) -> BreakerState {
        self.breakers
            .lock()
            .get(host)
            .map(|b| b.state())
            .unwrap_or(BreakerState::Closed)
    }

    /// Stats of the breaker guarding `host`.
    pub fn breaker_stats(&self, host: &str) -> BreakerStats {
        self.breakers
            .lock()
            .get(host)
            .map(|b| b.stats())
            .unwrap_or_default()
    }

    fn breaker_for(&self, host: &str) -> Arc<CircuitBreaker> {
        Arc::clone(
            self.breakers
                .lock()
                .entry(host.to_string())
                .or_insert_with(|| Arc::new(CircuitBreaker::new(self.policy.breaker.clone()))),
        )
    }

    /// Run `op` against the breaker, publishing any state transition it
    /// causes (trip, re-open, probe admission, close).
    fn with_transition<T>(
        &self,
        host: &str,
        breaker: &CircuitBreaker,
        op: impl FnOnce() -> T,
    ) -> T {
        let before = breaker.state();
        let out = op();
        let after = breaker.state();
        if before != after {
            self.metrics.transition(host, before, after);
        }
        out
    }

    /// Handles a request while consuming from an externally owned
    /// deadline, so a caller can share one budget between the fetch and
    /// its own downstream work (the proxy threads its per-request
    /// deadline through here).
    pub fn handle_within(&self, request: &Request, deadline: Deadline) -> Response {
        let started = Instant::now();
        let mut attempts = 0u32;
        let response = self.handle_within_inner(request, deadline, &mut attempts);
        if let Some(trace) = Trace::current() {
            trace.log().record_raw(
                trace.id(),
                "resilience.fetch",
                started,
                started.elapsed(),
                vec![
                    ("host".to_string(), request.url.host().to_string()),
                    ("status".to_string(), response.status.0.to_string()),
                    ("attempts".to_string(), attempts.to_string()),
                ],
            );
        }
        response
    }

    fn handle_within_inner(
        &self,
        request: &Request,
        deadline: Deadline,
        attempts_out: &mut u32,
    ) -> Response {
        let host = request.url.host();
        let breaker = self.breaker_for(host);
        if deadline.expired() {
            self.metrics.deadline_exhausted.inc();
            let mut resp = Response::error(Status::GATEWAY_TIMEOUT, "deadline exhausted");
            resp.headers.set(DEADLINE_HEADER, "exhausted");
            return resp;
        }
        if !self.with_transition(host, &breaker, || breaker.allow()) {
            self.metrics.breaker_rejections.inc();
            let mut resp = Response::error(
                Status::SERVICE_UNAVAILABLE,
                &format!("circuit breaker open for {host}"),
            );
            resp.headers.set(BREAKER_HEADER, "open");
            return resp;
        }
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            *attempts_out = attempt;
            self.metrics.attempts.inc();
            let response = self.inner.handle(request);
            if !is_retryable_failure(&response) {
                self.with_transition(host, &breaker, || breaker.record_success());
                self.metrics.successes.inc();
                return response;
            }
            self.with_transition(host, &breaker, || breaker.record_failure());
            if attempt >= self.policy.retry.max_attempts {
                self.metrics.failures.inc();
                return response;
            }
            let backoff = self.policy.retry.backoff(attempt, &mut self.rng.lock());
            if deadline.remaining() <= backoff {
                self.metrics.deadline_exhausted.inc();
                self.metrics.failures.inc();
                let mut response = response;
                response.headers.set(DEADLINE_HEADER, "exhausted");
                return response;
            }
            std::thread::sleep(backoff);
            self.metrics.retries.inc();
            if let Some(trace) = Trace::current() {
                trace.record(
                    "resilience.retry",
                    backoff,
                    vec![
                        ("host".to_string(), host.to_string()),
                        ("attempt".to_string(), attempt.to_string()),
                        ("status".to_string(), response.status.0.to_string()),
                    ],
                );
            }
            // The breaker may have tripped from our own failed attempts
            // (or a concurrent request's); stop retrying if so.
            if !self.with_transition(host, &breaker, || breaker.allow()) {
                self.metrics.failures.inc();
                return response;
            }
        }
    }
}

impl Origin for ResilientOrigin {
    fn handle(&self, request: &Request) -> Response {
        self.handle_within(request, Deadline::within(self.policy.deadline.0))
    }

    fn name(&self) -> &str {
        "resilient"
    }
}

/// 5xx answers are transient-by-assumption and retried; everything else
/// (including 4xx) proves the origin is alive and passes through.
fn is_retryable_failure(response: &Response) -> bool {
    response.status.0 >= 500
}

/// True when `response` was synthesized by an open breaker rather than
/// answered by the origin.
pub fn is_breaker_rejection(response: &Response) -> bool {
    response.headers.get(BREAKER_HEADER).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_origin() -> OriginRef {
        Arc::new(|_req: &Request| Response::html("ok"))
    }

    fn failing_origin() -> OriginRef {
        Arc::new(|_req: &Request| Response::error(Status::INTERNAL_SERVER_ERROR, "boom"))
    }

    fn policy_fast() -> ResiliencePolicy {
        ResiliencePolicy {
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_micros(100),
                max_backoff: Duration::from_millis(1),
            },
            deadline: DeadlineBudget(Duration::from_secs(5)),
            breaker: BreakerConfig {
                failure_threshold: 4,
                cooldown: Duration::from_millis(30),
                probe_successes: 1,
            },
            seed: 7,
        }
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        let mut a = Prng::new(1);
        let mut b = Prng::new(1);
        for retry in 1..6 {
            let ba = policy.backoff(retry, &mut a);
            let bb = policy.backoff(retry, &mut b);
            assert_eq!(ba, bb);
            assert!(ba <= policy.max_backoff);
            assert!(ba >= policy.base_backoff / 2);
        }
    }

    #[test]
    fn deadline_expires() {
        let d = Deadline::within(Duration::from_millis(5));
        assert!(!d.expired());
        std::thread::sleep(Duration::from_millis(10));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn breaker_full_cycle() {
        let base = Instant::now();
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(10),
            probe_successes: 2,
        });
        assert_eq!(breaker.state(), BreakerState::Closed);
        for _ in 0..3 {
            assert!(breaker.allow_at(base));
            breaker.record_failure_at(base);
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.allow_at(base + Duration::from_secs(1)));
        // Cooldown elapsed: one probe admitted, concurrent ones refused.
        let t = base + Duration::from_secs(11);
        assert!(breaker.allow_at(t));
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(!breaker.allow_at(t));
        breaker.record_success_at(t);
        // One success is not enough with probe_successes = 2.
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(breaker.allow_at(t));
        breaker.record_success_at(t);
        assert_eq!(breaker.state(), BreakerState::Closed);
        let stats = breaker.stats();
        assert_eq!((stats.opened, stats.closed), (1, 1));
        assert!(stats.rejected >= 2);
    }

    #[test]
    fn failed_probe_reopens() {
        let base = Instant::now();
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(10),
            probe_successes: 1,
        });
        breaker.record_failure_at(base);
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(breaker.allow_at(base + Duration::from_secs(11)));
        breaker.record_failure_at(base + Duration::from_secs(11));
        assert_eq!(breaker.state(), BreakerState::Open);
        // A fresh cooldown applies from the failed probe.
        assert!(!breaker.allow_at(base + Duration::from_secs(20)));
        assert!(breaker.allow_at(base + Duration::from_secs(22)));
    }

    #[test]
    fn retries_then_gives_up() {
        let resilient = ResilientOrigin::new(failing_origin(), policy_fast());
        let resp = resilient.handle(&Request::get("http://h/x").unwrap());
        assert_eq!(resp.status, Status::INTERNAL_SERVER_ERROR);
        let stats = resilient.stats();
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.failures, 1);
    }

    #[test]
    fn success_passes_straight_through() {
        let resilient = ResilientOrigin::new(ok_origin(), policy_fast());
        let resp = resilient.handle(&Request::get("http://h/").unwrap());
        assert!(resp.status.is_success());
        let stats = resilient.stats();
        assert_eq!((stats.attempts, stats.retries), (1, 0));
    }

    #[test]
    fn breaker_opens_and_recovers_via_probe() {
        use msite_support::sync::Mutex as SMutex;
        let healthy = Arc::new(SMutex::new(false));
        let healthy2 = Arc::clone(&healthy);
        let switchable: OriginRef = Arc::new(move |_req: &Request| {
            if *healthy2.lock() {
                Response::html("back")
            } else {
                Response::error(Status::SERVICE_UNAVAILABLE, "down")
            }
        });
        let resilient = ResilientOrigin::new(switchable, policy_fast());
        let req = Request::get("http://flap.test/").unwrap();
        // Two failing requests × 3 attempts ≥ threshold 4 → open.
        for _ in 0..2 {
            let _ = resilient.handle(&req);
        }
        assert_eq!(resilient.breaker_state("flap.test"), BreakerState::Open);
        // While open, rejections are synthesized and marked.
        let rejected = resilient.handle(&req);
        assert!(is_breaker_rejection(&rejected));
        assert_eq!(rejected.status, Status::SERVICE_UNAVAILABLE);
        assert!(resilient.stats().breaker_rejections >= 1);
        // Origin recovers; after the cooldown one probe closes it.
        *healthy.lock() = true;
        std::thread::sleep(Duration::from_millis(40));
        let probe = resilient.handle(&req);
        assert!(probe.status.is_success());
        assert_eq!(resilient.breaker_state("flap.test"), BreakerState::Closed);
    }

    #[test]
    fn deadline_cuts_retry_loop_short() {
        let policy = ResiliencePolicy {
            retry: RetryPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_millis(20),
                max_backoff: Duration::from_millis(20),
            },
            deadline: DeadlineBudget(Duration::from_millis(5)),
            ..policy_fast()
        };
        let resilient = ResilientOrigin::new(failing_origin(), policy);
        let resp = resilient.handle(&Request::get("http://h/").unwrap());
        assert_eq!(resp.headers.get(DEADLINE_HEADER), Some("exhausted"));
        let stats = resilient.stats();
        assert_eq!(stats.deadline_exhausted, 1);
        assert!(stats.attempts < 10);
    }

    #[test]
    fn per_host_breakers_are_independent() {
        let mixed: OriginRef = Arc::new(|req: &Request| {
            if req.url.host() == "bad.test" {
                Response::error(Status::INTERNAL_SERVER_ERROR, "bad")
            } else {
                Response::html("good")
            }
        });
        let resilient = ResilientOrigin::new(mixed, policy_fast());
        for _ in 0..3 {
            let _ = resilient.handle(&Request::get("http://bad.test/").unwrap());
            let _ = resilient.handle(&Request::get("http://good.test/").unwrap());
        }
        assert_eq!(resilient.breaker_state("bad.test"), BreakerState::Open);
        assert_eq!(resilient.breaker_state("good.test"), BreakerState::Closed);
    }
}
