//! Property suite for [`CookieJar`]: arbitrary store/replace/expiry
//! sequences checked against a naive reference model, and the RFC 6265
//! matching rules (path segment boundary, host-only scope, domain
//! suffix) checked against a from-the-spec reimplementation.
//!
//! The jar is the proxy's per-user credential store — the paper's
//! "cookie jars ... the proxy itself must be authenticated on behalf of
//! the user" — so a jar that leaks a cookie across a path or subdomain
//! boundary leaks one user's forum credentials to another origin.

use msite_net::{Cookie, CookieJar, Url};
use msite_support::prop;

/// The reference model: a flat list with the same (name, domain, path)
/// replacement key, expiry-at-store deletion, and a literal RFC 6265
/// reading of the match rules.
#[derive(Default)]
struct ModelJar {
    cookies: Vec<Cookie>,
}

impl ModelJar {
    fn store(&mut self, cookie: Cookie, now: u64) {
        self.cookies.retain(|c| {
            !(c.name == cookie.name && c.domain == cookie.domain && c.path == cookie.path)
        });
        if !cookie.expires_at.map(|e| now >= e).unwrap_or(false) {
            self.cookies.push(cookie);
        }
    }

    fn matching(&self, url: &Url, now: u64) -> Vec<(String, String)> {
        self.cookies
            .iter()
            .filter(|c| {
                if c.expires_at.map(|e| now >= e).unwrap_or(false) {
                    return false;
                }
                let domain_ok = if c.domain.is_empty() {
                    true
                } else if c.host_only {
                    url.host() == c.domain
                } else {
                    url.host() == c.domain || url.host().ends_with(&format!(".{}", c.domain))
                };
                // RFC 6265 §5.1.4 path-match (plus the stack's lenience
                // that "/p/" also matches "/p" exactly).
                let p = url.path();
                let cp = c.path.as_str();
                let path_ok = p == cp
                    || (cp.ends_with('/') && (p.starts_with(cp) || p == &cp[..cp.len() - 1]))
                    || (!cp.ends_with('/')
                        && p.starts_with(cp)
                        && p.as_bytes().get(cp.len()) == Some(&b'/'));
                domain_ok && path_ok
            })
            .map(|c| (c.name.clone(), c.value.clone()))
            .collect()
    }
}

fn gen_cookie(g: &mut prop::Gen, now: u64) -> Cookie {
    // Identifier-shaped values: attribute separators (`;`, `=`) and
    // padding whitespace are Set-Cookie syntax, not value bytes.
    let mut c = Cookie::new(
        ["sid", "bbuserid", "bbpassword", "theme", "lang"][g.range_usize(0, 5)],
        &g.ident(8),
    );
    c.path = ["/", "/forum", "/forum/", "/private", "/a/b"][g.range_usize(0, 5)].to_string();
    if g.bool() {
        c.domain = ["example.com", "forum.example.com", "other.test"][g.range_usize(0, 3)].into();
        c.host_only = g.bool();
    }
    if g.bool() {
        // Mix of already-expired, soon, and far-future expiries.
        c.expires_at = Some(now.saturating_sub(5) + g.range_u64(0, 40));
    }
    c
}

/// After any interleaving of stores (with replacement and expiry
/// deletes) and queries at a moving clock, the jar agrees with the
/// naive model on exactly which cookies match every probe URL.
#[test]
fn jar_agrees_with_naive_model() {
    let urls: Vec<Url> = [
        "http://example.com/",
        "http://example.com/forum",
        "http://example.com/forum/post.php",
        "http://example.com/forumbits",
        "http://example.com/private/x",
        "http://example.com/privateer",
        "http://forum.example.com/forum",
        "http://deep.forum.example.com/",
        "http://other.test/a/b/c",
        "http://other.test/a/bc",
    ]
    .iter()
    .map(|u| Url::parse(u).unwrap())
    .collect();

    prop::check("jar vs naive model", 150, 0xC00C1E, |g| {
        let mut jar = CookieJar::new();
        let mut model = ModelJar::default();
        let mut now = 0u64;
        for _ in 0..g.range_usize(5, 60) {
            now += g.range_u64(0, 8);
            if g.bool() {
                let cookie = gen_cookie(g, now);
                jar.store(cookie.clone(), now);
                model.store(cookie, now);
            } else {
                let url = &urls[g.range_usize(0, urls.len())];
                let expected = model.matching(url, now);
                let got = jar.cookie_header(url, now);
                let want = if expected.is_empty() {
                    None
                } else {
                    Some(
                        expected
                            .iter()
                            .map(|(k, v)| format!("{k}={v}"))
                            .collect::<Vec<_>>()
                            .join("; "),
                    )
                };
                assert_eq!(got, want, "probe {} at t={now} diverged", url.path());
            }
            assert_eq!(jar.len(), model.cookies.len(), "live set diverged");
        }
    });
}

/// Serialize/re-parse round trip preserves every attribute the stack
/// honors — including expiry (as `Max-Age`) — for non-host-only
/// cookies; host-only cookies come back host-only when re-ingested
/// through a response from the same host.
#[test]
fn header_round_trip_is_lossless() {
    prop::check("set-cookie round trip", 150, 0x5E7C0, |g| {
        let now = g.range_u64(0, 100);
        let mut c = gen_cookie(g, now);
        c.host_only = false; // the Domain attribute carries scope
        if c.expires_at.map(|e| e <= now).unwrap_or(false) {
            // Already expired: the wire form collapses to the
            // `Max-Age=0` delete idiom, which must re-parse expired.
            let reparsed = Cookie::parse_set_cookie(&c.to_header_value_at(now), now)
                .expect("serialized cookie re-parses");
            assert!(
                reparsed.expires_at.map(|e| e <= now).unwrap_or(false),
                "expired cookie must stay expired across the wire"
            );
            return;
        }
        let reparsed = Cookie::parse_set_cookie(&c.to_header_value_at(now), now)
            .expect("serialized cookie re-parses");
        assert_eq!(c, reparsed, "round trip changed the cookie");
    });
}

/// A cookie must never match a URL outside its path segment or host
/// scope, for arbitrary paths: the `/private` vs `/privateer` class of
/// leak, generalized.
#[test]
fn no_cross_boundary_matches() {
    prop::check("path boundary", 200, 0xB0B0, |g| {
        let seg = g.ident(6);
        let mut c = Cookie::new("s", "v");
        c.path = format!("/{seg}");
        let mut jar = CookieJar::new();
        jar.store(c, 0);

        let sub = Url::parse(&format!("http://h/{seg}/sub")).unwrap();
        assert!(jar.cookie_header(&sub, 0).is_some(), "sub-path must match");
        let exact = Url::parse(&format!("http://h/{seg}")).unwrap();
        assert!(jar.cookie_header(&exact, 0).is_some(), "exact must match");
        // Sibling path extending the last segment must not match.
        let sibling = Url::parse(&format!("http://h/{seg}{}", g.ident(4))).unwrap();
        if sibling.path() != exact.path() {
            assert!(
                jar.cookie_header(&sibling, 0).is_none(),
                "{} leaked to {}",
                exact.path(),
                sibling.path()
            );
        }
    });
}
