//! Property tests for the circuit-breaker state machine: random event
//! sequences driven against a reference model, under pinned seeds.

use msite_net::resilience::{BreakerConfig, BreakerState, CircuitBreaker};
use msite_support::prop;
use std::time::{Duration, Instant};

/// A straightforward re-statement of the breaker contract, advanced in
/// lockstep with the real implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Model {
    Closed { failures: u32 },
    Open { until_tick: u64 },
    HalfOpen { successes: u32, probing: bool },
}

impl Model {
    fn state(&self) -> BreakerState {
        match self {
            Model::Closed { .. } => BreakerState::Closed,
            Model::Open { .. } => BreakerState::Open,
            Model::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }
}

#[test]
fn breaker_matches_reference_model_under_random_events() {
    prop::check("breaker vs model", 200, 0x0B4E_A4E4, |g| {
        let config = BreakerConfig {
            failure_threshold: g.range_u32(1, 6),
            cooldown: Duration::from_millis(g.range_u64(1, 50)),
            probe_successes: g.range_u32(1, 4),
        };
        let cooldown_ticks = config.cooldown.as_millis() as u64;
        let breaker = CircuitBreaker::new(config.clone());
        let mut model = Model::Closed { failures: 0 };
        let epoch = Instant::now();
        let mut tick = 0u64;

        for _ in 0..g.range_usize(10, 80) {
            tick += g.range_u64(0, 10);
            let now = epoch + Duration::from_millis(tick);
            match g.range_u32(0, 3) {
                0 => {
                    let allowed = breaker.allow_at(now);
                    let expected = match model {
                        Model::Closed { .. } => true,
                        Model::Open { until_tick } => {
                            if tick >= until_tick {
                                model = Model::HalfOpen {
                                    successes: 0,
                                    probing: true,
                                };
                                true
                            } else {
                                false
                            }
                        }
                        Model::HalfOpen {
                            successes,
                            probing: false,
                        } => {
                            model = Model::HalfOpen {
                                successes,
                                probing: true,
                            };
                            true
                        }
                        Model::HalfOpen { probing: true, .. } => false,
                    };
                    assert_eq!(allowed, expected, "allow at tick {tick}: {model:?}");
                }
                1 => {
                    breaker.record_success_at(now);
                    model = match model {
                        Model::Closed { .. } => Model::Closed { failures: 0 },
                        open @ Model::Open { .. } => open,
                        Model::HalfOpen { successes, .. } => {
                            if successes + 1 >= config.probe_successes {
                                Model::Closed { failures: 0 }
                            } else {
                                Model::HalfOpen {
                                    successes: successes + 1,
                                    probing: false,
                                }
                            }
                        }
                    };
                }
                _ => {
                    breaker.record_failure_at(now);
                    model = match model {
                        Model::Closed { failures } => {
                            if failures + 1 >= config.failure_threshold {
                                Model::Open {
                                    until_tick: tick + cooldown_ticks,
                                }
                            } else {
                                Model::Closed {
                                    failures: failures + 1,
                                }
                            }
                        }
                        open @ Model::Open { .. } => open,
                        Model::HalfOpen { .. } => Model::Open {
                            until_tick: tick + cooldown_ticks,
                        },
                    };
                }
            }
            assert_eq!(breaker.state(), model.state(), "state at tick {tick}");
        }
    });
}

#[test]
fn breaker_counters_are_consistent() {
    prop::check("breaker counters", 100, 0xC0_47E5, |g| {
        let config = BreakerConfig {
            failure_threshold: g.range_u32(1, 5),
            cooldown: Duration::from_millis(5),
            probe_successes: g.range_u32(1, 3),
        };
        let breaker = CircuitBreaker::new(config);
        let epoch = Instant::now();
        let mut tick = 0u64;
        let mut denied = 0u64;
        for _ in 0..g.range_usize(5, 60) {
            tick += g.range_u64(0, 3);
            let now = epoch + Duration::from_millis(tick);
            match g.range_u32(0, 3) {
                0 => {
                    if !breaker.allow_at(now) {
                        denied += 1;
                    }
                }
                1 => breaker.record_success_at(now),
                _ => breaker.record_failure_at(now),
            }
        }
        let stats = breaker.stats();
        assert_eq!(stats.rejected, denied);
        // Every close must follow an open (failed probes may re-open
        // many times per close, so `opened` is only bounded below).
        assert!(stats.closed <= stats.opened);
        // A breaker that tripped and is closed again must have closed
        // through a successful probe.
        if stats.opened > 0 && breaker.state() == BreakerState::Closed {
            assert!(stats.closed >= 1);
        }
    });
}

#[test]
fn open_breaker_always_rejects_within_cooldown() {
    prop::check("open rejects until cooldown", 100, 0x0FE4, |g| {
        let cooldown = Duration::from_millis(g.range_u64(2, 40));
        let threshold = g.range_u32(1, 5);
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown,
            probe_successes: 1,
        });
        let epoch = Instant::now();
        for _ in 0..threshold {
            breaker.record_failure_at(epoch);
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        // Any probe strictly inside the cooldown is rejected...
        let inside = epoch + cooldown - Duration::from_millis(1);
        assert!(!breaker.allow_at(inside));
        assert_eq!(breaker.state(), BreakerState::Open);
        // ...and the first probe at/after the boundary is admitted.
        let after = epoch + cooldown + Duration::from_millis(g.range_u64(0, 10));
        assert!(breaker.allow_at(after));
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        // A single configured probe success closes it again.
        breaker.record_success_at(after);
        assert_eq!(breaker.state(), BreakerState::Closed);
    });
}
