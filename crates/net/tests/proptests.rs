//! Property tests for the networking substrate.

use msite_net::{auth, url, Cookie, CookieJar, Prng, Url};
use msite_support::prop::{self, Gen};
use std::collections::HashSet;

fn arb_host(g: &mut Gen) -> String {
    let mut host = g.string_from("abcdefghijklmnopqrstuvwxyz", 1, 8);
    for _ in 0..g.range_usize(0, 3) {
        host.push('.');
        host.push_str(&g.string_from("abcdefghijklmnopqrstuvwxyz", 1, 6));
    }
    host
}

fn arb_segment(g: &mut Gen) -> String {
    loop {
        let s = g.string_from("abcdefghijklmnopqrstuvwxyz0123456789._-", 1, 8);
        // Dot-only segments are path-normalization-significant; keep them
        // out of the generator like the shrunken proptest corpus did.
        if !s.chars().all(|c| c == '.') {
            return s;
        }
    }
}

fn arb_path(g: &mut Gen) -> String {
    let mut path = String::new();
    for _ in 0..g.range_usize(0, 5) {
        path.push('/');
        path.push_str(&arb_segment(g));
    }
    if path.is_empty() || g.bool() {
        path.push('/');
    }
    path
}

/// Display(parse(x)) re-parses to the same URL.
#[test]
fn url_display_round_trip() {
    prop::check("url display round-trip", 256, 0x0ED7_0A10, |g| {
        let host = arb_host(g);
        let port = g.option(|g| g.range_u64(1, 65_536) as u16);
        let path = arb_path(g);
        let query =
            g.option(|g| g.string_from("abcdefghijklmnopqrstuvwxyz0123456789=&+%._-", 0, 20));
        let mut s = format!("http://{host}");
        if let Some(p) = port {
            s.push_str(&format!(":{p}"));
        }
        s.push_str(&path);
        if let Some(q) = &query {
            s.push('?');
            s.push_str(q);
        }
        let parsed = Url::parse(&s).unwrap();
        let reparsed = Url::parse(&parsed.to_string()).unwrap();
        assert_eq!(parsed, reparsed);
    });
}

/// URL parsing is total on arbitrary printable input.
#[test]
fn url_parse_total() {
    prop::check("url parse total", 256, 0x0ED7_0A11, |g| {
        let input = g.ascii_string(64);
        let _ = Url::parse(&input);
    });
}

/// join() always yields a URL on the same scheme set, and absolute
/// path references land exactly.
#[test]
fn url_join_root_relative() {
    prop::check("url join root-relative", 256, 0x0ED7_0A12, |g| {
        let host = arb_host(g);
        let base_path = arb_path(g);
        let target = arb_path(g);
        let base = Url::parse(&format!("http://{host}{base_path}")).unwrap();
        let joined = base.join(&target).unwrap();
        assert_eq!(joined.host(), base.host());
        assert_eq!(joined.path(), target.as_str());
    });
}

/// Relative joins never escape above the root and never produce `..`
/// segments.
#[test]
fn url_join_relative_normalized() {
    prop::check("url join relative normalized", 256, 0x0ED7_0A13, |g| {
        let host = arb_host(g);
        let base_path = arb_path(g);
        let mut rel = String::new();
        for _ in 0..g.range_usize(0, 5) {
            if g.bool() {
                rel.push_str("../");
            } else {
                rel.push_str(&g.string_from("abcdefghijklmnopqrstuvwxyz", 1, 4));
                rel.push('/');
            }
        }
        rel.push_str(&g.string_from("abcdefghijklmnopqrstuvwxyz", 0, 4));
        let base = Url::parse(&format!("http://{host}{base_path}")).unwrap();
        let joined = base.join(&rel).unwrap();
        assert!(joined.path().starts_with('/'));
        assert!(joined.path().split('/').all(|segment| segment != ".."));
        assert!(!joined.path().contains("//"));
    });
}

/// Percent coding round-trips arbitrary unicode.
#[test]
fn percent_round_trip() {
    prop::check("percent round-trip", 256, 0x0ED7_0A14, |g| {
        let s = g.unicode_string(32);
        assert_eq!(url::percent_decode(&url::percent_encode(&s)), s);
    });
}

/// Query encode/parse round-trips arbitrary key/value pairs.
#[test]
fn query_round_trip() {
    prop::check("query round-trip", 256, 0x0ED7_0A15, |g| {
        let pairs = g.vec(0, 4, |g| {
            (
                g.string_from(
                    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ",
                    1,
                    8,
                ),
                g.ascii_string(12),
            )
        });
        let borrowed: Vec<(&str, &str)> = pairs
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let encoded = url::encode_query(&borrowed);
        let decoded = url::parse_query(&encoded);
        assert_eq!(decoded, pairs);
    });
}

/// base64 round-trips arbitrary bytes; decode rejects length % 4 != 0.
#[test]
fn base64_round_trip() {
    prop::check("base64 round-trip", 256, 0x0ED7_0A16, |g| {
        let data = g.vec(0, 63, Gen::u8);
        let encoded = auth::base64_encode(&data);
        assert_eq!(encoded.len() % 4, 0);
        assert_eq!(auth::base64_decode(&encoded).unwrap(), data);
    });
}

/// Set-Cookie serialization round-trips the attributes we honor.
#[test]
fn cookie_round_trip() {
    prop::check("cookie round-trip", 256, 0x0ED7_0A17, |g| {
        let name = g.string_from(
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_",
            1,
            12,
        );
        let value = g.string_from(
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-",
            0,
            16,
        );
        let http_only = g.bool();
        let mut cookie = Cookie::new(&name, &value);
        cookie.http_only = http_only;
        let reparsed = Cookie::parse_set_cookie(&cookie.to_header_value(), 0).unwrap();
        assert_eq!(cookie, reparsed);
    });
}

/// Jar invariant: storing N distinct names yields N cookies, and the
/// header contains each name exactly once.
#[test]
fn jar_distinct_names() {
    prop::check("jar distinct names", 256, 0x0ED7_0A18, |g| {
        let target = g.range_usize(1, 8);
        let mut names = HashSet::new();
        while names.len() < target {
            names.insert(g.string_from("abcdefghijklmnopqrstuvwxyz", 1, 8));
        }
        let mut jar = CookieJar::new();
        for (i, name) in names.iter().enumerate() {
            jar.store(Cookie::new(name, &i.to_string()), 0);
        }
        assert_eq!(jar.len(), names.len());
        let url = Url::parse("http://h/").unwrap();
        let header = jar.cookie_header(&url, 0).unwrap();
        for name in &names {
            let occurrences = header.matches(&format!("{name}=")).count();
            // A name may prefix another (e.g. `ab` and `abc`), so count
            // boundary-accurate occurrences.
            let exact = header
                .split("; ")
                .filter(|part| part.split('=').next() == Some(name.as_str()))
                .count();
            assert_eq!(exact, 1, "{name} in {header} ({occurrences} raw)");
        }
    });
}

/// The PRNG's unit_f64 stays in [0,1) and below(n) stays below n.
#[test]
fn prng_bounds() {
    prop::check("prng bounds", 256, 0x0ED7_0A19, |g| {
        let seed = g.u64();
        let bound = g.range_u64(1, 10_000);
        let mut rng = Prng::new(seed);
        for _ in 0..100 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
            assert!(rng.below(bound) < bound);
        }
    });
}
