//! Property tests for the networking substrate.

use msite_net::{auth, url, Cookie, CookieJar, Prng, Url};
use proptest::prelude::*;

fn arb_host() -> impl Strategy<Value = String> {
    "[a-z]{1,8}(\\.[a-z]{1,6}){0,2}"
}

fn arb_path() -> impl Strategy<Value = String> {
    "(/[a-z0-9._-]{1,8}){0,4}/?".prop_map(|p| if p.is_empty() { "/".to_string() } else { p })
}

proptest! {
    /// Display(parse(x)) re-parses to the same URL.
    #[test]
    fn url_display_round_trip(
        host in arb_host(),
        port in proptest::option::of(1u16..,),
        path in arb_path(),
        query in proptest::option::of("[a-z0-9=&+%._-]{0,20}"),
    ) {
        let mut s = format!("http://{host}");
        if let Some(p) = port {
            s.push_str(&format!(":{p}"));
        }
        s.push_str(&path);
        if let Some(q) = &query {
            s.push('?');
            s.push_str(q);
        }
        let parsed = Url::parse(&s).unwrap();
        let reparsed = Url::parse(&parsed.to_string()).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    /// URL parsing is total on arbitrary printable input.
    #[test]
    fn url_parse_total(input in "[ -~]{0,64}") {
        let _ = Url::parse(&input);
    }

    /// join() always yields a URL on the same scheme set, and absolute
    /// path references land exactly.
    #[test]
    fn url_join_root_relative(host in arb_host(), base_path in arb_path(), target in arb_path()) {
        let base = Url::parse(&format!("http://{host}{base_path}")).unwrap();
        let joined = base.join(&target).unwrap();
        prop_assert_eq!(joined.host(), base.host());
        prop_assert_eq!(joined.path(), target.as_str());
    }

    /// Relative joins never escape above the root and never produce `..`
    /// segments.
    #[test]
    fn url_join_relative_normalized(
        host in arb_host(),
        base_path in arb_path(),
        rel in "(\\.\\./|[a-z]{1,4}/){0,4}[a-z]{0,4}",
    ) {
        let base = Url::parse(&format!("http://{host}{base_path}")).unwrap();
        let joined = base.join(&rel).unwrap();
        prop_assert!(joined.path().starts_with('/'));
        prop_assert!(joined.path().split('/').all(|segment| segment != ".."));
        prop_assert!(!joined.path().contains("//"));
    }

    /// Percent coding round-trips arbitrary unicode.
    #[test]
    fn percent_round_trip(s in "\\PC{0,32}") {
        prop_assert_eq!(url::percent_decode(&url::percent_encode(&s)), s);
    }

    /// Query encode/parse round-trips arbitrary key/value pairs.
    #[test]
    fn query_round_trip(pairs in prop::collection::vec(("[a-zA-Z0-9 ]{1,8}", "[ -~]{0,12}"), 0..5)) {
        let borrowed: Vec<(&str, &str)> =
            pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let encoded = url::encode_query(&borrowed);
        let decoded = url::parse_query(&encoded);
        prop_assert_eq!(decoded, pairs);
    }

    /// base64 round-trips arbitrary bytes; decode rejects length % 4 != 0.
    #[test]
    fn base64_round_trip(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let encoded = auth::base64_encode(&data);
        prop_assert_eq!(encoded.len() % 4, 0);
        prop_assert_eq!(auth::base64_decode(&encoded).unwrap(), data);
    }

    /// Set-Cookie serialization round-trips the attributes we honor.
    #[test]
    fn cookie_round_trip(name in "[a-zA-Z0-9_]{1,12}", value in "[a-zA-Z0-9_-]{0,16}", http_only in any::<bool>()) {
        let mut cookie = Cookie::new(&name, &value);
        cookie.http_only = http_only;
        let reparsed = Cookie::parse_set_cookie(&cookie.to_header_value(), 0).unwrap();
        prop_assert_eq!(cookie, reparsed);
    }

    /// Jar invariant: storing N distinct names yields N cookies, and the
    /// header contains each name exactly once.
    #[test]
    fn jar_distinct_names(names in prop::collection::hash_set("[a-z]{1,8}", 1..8)) {
        let mut jar = CookieJar::new();
        for (i, name) in names.iter().enumerate() {
            jar.store(Cookie::new(name, &i.to_string()), 0);
        }
        prop_assert_eq!(jar.len(), names.len());
        let url = Url::parse("http://h/").unwrap();
        let header = jar.cookie_header(&url, 0).unwrap();
        for name in &names {
            let occurrences = header.matches(&format!("{name}=")).count();
            // A name may prefix another (e.g. `ab` and `abc`), so count
            // boundary-accurate occurrences.
            let exact = header
                .split("; ")
                .filter(|part| part.split('=').next() == Some(name.as_str()))
                .count();
            prop_assert_eq!(exact, 1, "{} in {} ({} raw)", name, header, occurrences);
        }
    }

    /// The PRNG's unit_f64 stays in [0,1) and below(n) stays below n.
    #[test]
    fn prng_bounds(seed in any::<u64>(), bound in 1u64..10_000) {
        let mut rng = Prng::new(seed);
        for _ in 0..100 {
            let u = rng.unit_f64();
            prop_assert!((0.0..1.0).contains(&u));
            prop_assert!(rng.below(bound) < bound);
        }
    }
}
