//! Byte-determinism gate for every synthetic origin: the same seed
//! must produce byte-identical pages across independently constructed
//! sites (the workloads are the reproduction's ground truth — any
//! nondeterminism would poison benchmark comparisons), and a different
//! seed must actually change the generated content.

use msite_net::{Origin, Request};
use msite_sites::{
    ClassifiedsConfig, ClassifiedsSite, ForumConfig, ForumSite, NewsConfig, NewsSite,
};

fn body(site: &dyn Origin, host: &str, path: &str) -> Vec<u8> {
    let response = site.handle(&Request::get(&format!("http://{host}{path}")).unwrap());
    assert!(response.status.is_success(), "{path}: {}", response.status);
    response.body.to_vec()
}

fn assert_identical(a: &dyn Origin, b: &dyn Origin, host: &str, paths: &[&str]) {
    for path in paths {
        assert_eq!(
            body(a, host, path),
            body(b, host, path),
            "same seed diverged on {path}"
        );
    }
}

const FORUM_PATHS: [&str; 3] = ["/index.php", "/login.php", "/memberlist.php"];
const CLASSIFIEDS_PATHS: [&str; 3] = ["/", "/search?cat=tools&page=0", "/listing/1000005.html"];
const NEWS_PATHS: [&str; 2] = ["/", "/gallery"];

#[test]
fn forum_pages_are_byte_identical_per_seed() {
    let a = ForumSite::new(ForumConfig::default());
    let b = ForumSite::new(ForumConfig::default());
    let host = ForumConfig::default().host;
    assert_identical(&a, &b, &host, &FORUM_PATHS);

    let other = ForumSite::new(ForumConfig {
        seed: 99,
        ..ForumConfig::default()
    });
    assert_ne!(
        body(&a, &host, "/index.php"),
        body(&other, &host, "/index.php"),
        "seed must steer forum content"
    );
}

#[test]
fn classifieds_pages_are_byte_identical_per_seed() {
    let a = ClassifiedsSite::new(ClassifiedsConfig::default());
    let b = ClassifiedsSite::new(ClassifiedsConfig::default());
    let host = ClassifiedsConfig::default().host;
    assert_identical(&a, &b, &host, &CLASSIFIEDS_PATHS);

    let other = ClassifiedsSite::new(ClassifiedsConfig {
        seed: 99,
        ..ClassifiedsConfig::default()
    });
    assert_ne!(
        body(&a, &host, "/search?cat=tools&page=0"),
        body(&other, &host, "/search?cat=tools&page=0"),
        "seed must steer listing titles"
    );
}

#[test]
fn news_pages_are_byte_identical_per_seed() {
    let a = NewsSite::new(NewsConfig::default());
    let b = NewsSite::new(NewsConfig::default());
    let host = NewsConfig::default().host;
    assert_identical(&a, &b, &host, &NEWS_PATHS);

    let other = NewsSite::new(NewsConfig {
        seed: 99,
        ..NewsConfig::default()
    });
    assert_ne!(
        body(&a, &host, "/"),
        body(&other, &host, "/"),
        "seed must steer article copy"
    );
}

#[test]
fn repeated_requests_to_one_site_are_stable() {
    // Determinism also holds within one instance: no hidden per-request
    // state leaks into the bytes.
    let news = NewsSite::new(NewsConfig::default());
    let host = NewsConfig::default().host;
    for path in NEWS_PATHS {
        assert_eq!(body(&news, &host, path), body(&news, &host, path));
    }
}
