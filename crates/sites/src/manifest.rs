//! Page manifests: the resource-level description of a page that the
//! device-side load simulator consumes.
//!
//! A manifest is built by actually fetching the page from an [`Origin`],
//! parsing it, and fetching every referenced subresource — so the byte
//! counts entering Table 1 are measured, not asserted.

use msite_html::parse_document;
use msite_net::{Origin, Request, Url};

/// Kind of a subresource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// External script.
    Script,
    /// External stylesheet.
    Stylesheet,
    /// Image.
    Image,
}

/// One subresource of a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// Resolved URL.
    pub url: String,
    /// Kind.
    pub kind: ResourceKind,
    /// Transfer size in bytes.
    pub bytes: usize,
}

/// The complete load profile of one page.
#[derive(Debug, Clone, PartialEq)]
pub struct PageManifest {
    /// Page URL.
    pub url: String,
    /// HTML bytes.
    pub html_bytes: usize,
    /// Subresources in reference order (deduplicated).
    pub resources: Vec<Resource>,
    /// Number of DOM element nodes (parse/style cost driver).
    pub dom_nodes: usize,
    /// Total bytes of external + inline script (JS cost driver).
    pub script_bytes: usize,
    /// Total bytes of external + inline CSS (style cost driver).
    pub css_bytes: usize,
    /// Sum of declared image areas in px² (paint cost driver).
    pub image_pixels: u64,
}

impl PageManifest {
    /// Fetches `url` from `origin` and builds its manifest.
    ///
    /// Subresources that fail to fetch are recorded with zero bytes (the
    /// simulator then charges only their round trip, mirroring a 404).
    ///
    /// # Panics
    ///
    /// Panics when `url` cannot be parsed.
    pub fn fetch(origin: &dyn Origin, url: &str) -> PageManifest {
        let base = Url::parse(url).expect("manifest url must be absolute");
        let page = origin.handle(&Request {
            method: msite_net::Method::Get,
            url: base.clone(),
            headers: msite_net::Headers::new(),
            body: msite_support::bytes::Bytes::new(),
        });
        let html = page.body_text();
        let doc = parse_document(&html);
        let root = doc.root();

        let mut resources: Vec<Resource> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut script_bytes = 0usize;
        let mut css_bytes = 0usize;
        let mut image_pixels = 0u64;

        let mut push = |url: String, kind: ResourceKind, origin: &dyn Origin| -> usize {
            if !seen.insert(url.clone()) {
                return 0;
            }
            let bytes = Url::parse(&url)
                .ok()
                .map(|u| {
                    let resp = origin.handle(&Request {
                        method: msite_net::Method::Get,
                        url: u,
                        headers: msite_net::Headers::new(),
                        body: msite_support::bytes::Bytes::new(),
                    });
                    if resp.status.is_success() {
                        resp.body.len()
                    } else {
                        0
                    }
                })
                .unwrap_or(0);
            resources.push(Resource { url, kind, bytes });
            bytes
        };

        for script in doc.elements_by_tag(root, "script") {
            match doc.attr(script, "src") {
                Some(src) => {
                    if let Ok(resolved) = base.join(src) {
                        script_bytes += push(resolved.to_string(), ResourceKind::Script, origin);
                    }
                }
                None => script_bytes += doc.text_content(script).len(),
            }
        }
        for link in doc.elements_by_tag(root, "link") {
            let is_css = doc
                .attr(link, "rel")
                .map(|r| r.eq_ignore_ascii_case("stylesheet"))
                .unwrap_or(false);
            if is_css {
                if let Some(href) = doc.attr(link, "href") {
                    if let Ok(resolved) = base.join(href) {
                        css_bytes += push(resolved.to_string(), ResourceKind::Stylesheet, origin);
                    }
                }
            }
        }
        for style in doc.elements_by_tag(root, "style") {
            css_bytes += doc.text_content(style).len();
        }
        for img in doc.elements_by_tag(root, "img") {
            let w: u64 = doc
                .attr(img, "width")
                .and_then(|v| v.parse().ok())
                .unwrap_or(32);
            let h: u64 = doc
                .attr(img, "height")
                .and_then(|v| v.parse().ok())
                .unwrap_or(32);
            image_pixels += w * h;
            if let Some(src) = doc.attr(img, "src") {
                if let Ok(resolved) = base.join(src) {
                    push(resolved.to_string(), ResourceKind::Image, origin);
                }
            }
        }

        PageManifest {
            url: url.to_string(),
            html_bytes: html.len(),
            resources,
            dom_nodes: doc.element_count(),
            script_bytes,
            css_bytes,
            image_pixels,
        }
    }

    /// Builds a manifest directly from known numbers (for snapshot pages
    /// the proxy constructs in memory).
    pub fn synthetic(
        url: &str,
        html_bytes: usize,
        resources: Vec<Resource>,
        dom_nodes: usize,
    ) -> PageManifest {
        let script_bytes = 0;
        let css_bytes = 0;
        let image_pixels = resources
            .iter()
            .filter(|r| r.kind == ResourceKind::Image)
            .map(|r| r.bytes as u64)
            .sum();
        PageManifest {
            url: url.to_string(),
            html_bytes,
            resources,
            dom_nodes,
            script_bytes,
            css_bytes,
            image_pixels,
        }
    }

    /// Total transfer: HTML plus all subresources.
    pub fn total_bytes(&self) -> usize {
        self.html_bytes + self.resources.iter().map(|r| r.bytes).sum::<usize>()
    }

    /// Sizes of the subresources, for [`msite_net::LinkModel::page_fetch_time`].
    pub fn resource_sizes(&self) -> Vec<usize> {
        self.resources.iter().map(|r| r.bytes).collect()
    }

    /// Number of subresource requests.
    pub fn request_count(&self) -> usize {
        self.resources.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forum::{ForumConfig, ForumSite};

    #[test]
    fn forum_index_manifest_matches_calibration() {
        let site = ForumSite::new(ForumConfig::default());
        let manifest = PageManifest::fetch(&site, &format!("{}/index.php", site.base_url()));
        assert_eq!(manifest.total_bytes(), 224_477);
        // 12 scripts + 1 css + images.
        let scripts = manifest
            .resources
            .iter()
            .filter(|r| r.kind == ResourceKind::Script)
            .count();
        assert_eq!(scripts, 12);
        let css = manifest
            .resources
            .iter()
            .filter(|r| r.kind == ResourceKind::Stylesheet)
            .count();
        assert_eq!(css, 1);
        assert!(manifest.dom_nodes > 150, "dom nodes {}", manifest.dom_nodes);
        assert!(manifest.script_bytes > 80_000);
        assert!(manifest.image_pixels > 728 * 90);
    }

    #[test]
    fn duplicate_resources_counted_once() {
        let origin = |_req: &msite_net::Request| {
            msite_net::Response::html(
                "<img src=\"/a.gif\"><img src=\"/a.gif\"><script src=\"/s.js\"></script>",
            )
        };
        // Sub-fetches 404 -> zero bytes but still one entry each.
        let manifest = PageManifest::fetch(&origin, "http://h/page");
        assert_eq!(manifest.request_count(), 2);
    }

    #[test]
    fn inline_script_and_style_counted() {
        let origin = |_req: &msite_net::Request| {
            msite_net::Response::html(
                "<html><head><style>body { color: red }</style>\
                 <script>var xyz = 1;</script></head><body></body></html>",
            )
        };
        let manifest = PageManifest::fetch(&origin, "http://h/");
        assert!(manifest.script_bytes >= 12);
        assert!(manifest.css_bytes >= 18);
        assert_eq!(manifest.request_count(), 0);
    }

    #[test]
    fn synthetic_manifest_totals() {
        let m = PageManifest::synthetic(
            "http://proxy/snapshot",
            2_000,
            vec![Resource {
                url: "http://proxy/snap.png".into(),
                kind: ResourceKind::Image,
                bytes: 40_000,
            }],
            25,
        );
        assert_eq!(m.total_bytes(), 42_000);
        assert_eq!(m.request_count(), 1);
    }
}
