//! # msite-sites
//!
//! Deterministic synthetic origin sites used as evaluation workloads for
//! the m.Site reproduction:
//!
//! - [`forum`]: a vBulletin-style community calibrated to the paper's
//!   SawmillCreek.org measurements (66k members, ~30 forums, a 224,477-
//!   byte entry page with ~12 external scripts);
//! - [`classifieds`]: a CraigsList-style listing site for the AJAX
//!   adaptation study (Figure 6);
//! - [`news`]: an ad-heavy article site with ground-truth region labels
//!   for the content-aware adaptation evaluation;
//! - [`template`]: the tiny template engine both are rendered with;
//! - [`manifest`]: measured page-load manifests for the device simulator.
//!
//! ```
//! use msite_net::{Origin, Request};
//! use msite_sites::{ForumConfig, ForumSite};
//!
//! let site = ForumSite::new(ForumConfig::default());
//! assert_eq!(site.total_index_weight(), 224_477); // §4.2 of the paper
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifieds;
pub mod forum;
pub mod lorem;
pub mod manifest;
pub mod news;
pub mod template;

pub use classifieds::{ClassifiedsConfig, ClassifiedsSite, CATEGORIES};
pub use forum::{ForumConfig, ForumSite};
pub use manifest::{PageManifest, Resource, ResourceKind};
pub use news::{NewsConfig, NewsSite};
