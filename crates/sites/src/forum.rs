//! A synthetic vBulletin-style online community — the reproduction's
//! stand-in for SawmillCreek.org, the paper's 66,000-member test site.
//!
//! Faithfulness targets (§4.2 of the paper):
//! - the entry page carries the same sections in the same order: logo +
//!   728×90 leaderboard ad, navigation links + login form, a transient
//!   announcements box, ~30 forum rows with latest-post links, who's
//!   online, statistics, birthdays, calendar, footer links;
//! - total entry-page weight (HTML + ~12 external scripts + CSS + images)
//!   is calibrated to exactly **224,477 bytes**;
//! - private areas require an authenticated session (cookie-based, like
//!   vBulletin's `bbsessionhash`), exercising the proxy's cookie jars;
//! - an AJAX endpoint (`site.php?do=showpic&id=N`) validates the session
//!   and returns a fragment, exercising the proxy's AJAX rewriting.

use crate::lorem;
use crate::template::{render, Scope};
use msite_net::{Cookie, Method, Origin, Prng, Request, Response, Status};
use msite_support::sync::Mutex;
use std::collections::HashMap;

/// Forum generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ForumConfig {
    /// Seed for all generated content.
    pub seed: u64,
    /// Registered members ("nearly 66,000" in the paper).
    pub member_count: u32,
    /// Forum rows on the entry page (~30 in the paper).
    pub forum_count: u32,
    /// Members shown online (up to 1200 in the paper).
    pub online_count: u32,
    /// Host this site answers as.
    pub host: String,
    /// Calibrated total entry-page weight in bytes (224,477 = the paper's
    /// measured SawmillCreek.org entry page).
    pub target_page_weight: usize,
}

impl Default for ForumConfig {
    fn default() -> Self {
        ForumConfig {
            seed: 2012,
            member_count: 65_947,
            forum_count: 30,
            online_count: 1187,
            host: "forum.sawmillcreek.test".to_string(),
            target_page_weight: 224_477,
        }
    }
}

#[derive(Debug, Clone)]
struct Forum {
    id: u32,
    name: String,
    description: String,
    last_post_title: String,
    last_post_author: String,
    last_thread_id: u32,
    private: bool,
}

/// The synthetic forum origin.
///
/// # Examples
///
/// ```
/// use msite_net::{Origin, Request};
/// use msite_sites::forum::{ForumConfig, ForumSite};
///
/// let site = ForumSite::new(ForumConfig::default());
/// let resp = site.handle(&Request::get("http://forum.sawmillcreek.test/index.php").unwrap());
/// assert!(resp.status.is_success());
/// assert!(resp.body_text().contains("forumbits"));
/// assert_eq!(site.total_index_weight(), 224_477);
/// ```
pub struct ForumSite {
    config: ForumConfig,
    forums: Vec<Forum>,
    online: Vec<String>,
    birthdays: Vec<String>,
    newest_member: String,
    thread_count: u64,
    post_count: u64,
    js_assets: Vec<(&'static str, usize)>,
    image_assets: Vec<(&'static str, usize)>,
    css_bytes: usize,
    /// Live sessions: hash -> username.
    sessions: Mutex<HashMap<String, String>>,
    session_seq: Mutex<Prng>,
}

/// The twelve external scripts the entry page references (name, bytes) —
/// mirroring vBulletin's clientscript bundle.
const JS_ASSETS: [(&str, usize); 12] = [
    ("vbulletin_global.js", 27_801),
    ("vbulletin_menu.js", 15_204),
    ("vbulletin_md5.js", 8_322),
    ("yui_utilities.js", 12_118),
    ("ajax_login.js", 4_866),
    ("vbulletin_ajax_suggest.js", 5_410),
    ("statistics.js", 2_204),
    ("funcs.js", 6_032),
    ("ncode_imageresizer.js", 3_388),
    ("vbulletin_post_loader.js", 4_145),
    ("promo.js", 1_918),
    ("tracker.js", 2_511),
];

/// Entry-page images (name, bytes).
const IMAGE_ASSETS: [(&str, usize); 5] = [
    ("logo.gif", 7_411),
    ("banner_ad.gif", 19_985),
    ("forum_new.gif", 742),
    ("forum_old.gif", 738),
    ("mobile_logo.gif", 2_048),
];

impl ForumSite {
    /// Builds the site, generating all content from the seed and
    /// calibrating CSS padding so the entry page weighs exactly
    /// `target_page_weight` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `target_page_weight` is too small to fit the generated
    /// HTML plus scripts and images (the default is always sufficient).
    pub fn new(config: ForumConfig) -> ForumSite {
        let mut rng = Prng::new(config.seed);
        let mut forums = Vec::new();
        let mut names = std::collections::HashSet::new();
        for id in 1..=config.forum_count {
            let mut name = lorem::forum_name(&mut rng);
            if !names.insert(name.clone()) {
                // Collision: qualify with the forum id, which is unique.
                name = format!("{} {}", lorem::forum_name(&mut rng), id);
                names.insert(name.clone());
            }
            forums.push(Forum {
                id,
                name,
                description: lorem::sentence(&mut rng, 22),
                last_post_title: lorem::thread_title(&mut rng),
                last_post_author: lorem::username(&mut rng),
                last_thread_id: rng.range(1000, 99_999) as u32,
                private: id > config.forum_count - 3, // last few are private
            });
        }
        let online = (0..config.online_count.min(40))
            .map(|_| lorem::username(&mut rng))
            .collect();
        let birthdays = (0..6).map(|_| lorem::username(&mut rng)).collect();
        let newest_member = lorem::username(&mut rng);
        let thread_count = config.member_count as u64 / 3;
        let post_count = thread_count * 9;

        let mut site = ForumSite {
            config,
            forums,
            online,
            birthdays,
            newest_member,
            thread_count,
            post_count,
            js_assets: JS_ASSETS.to_vec(),
            image_assets: IMAGE_ASSETS.to_vec(),
            css_bytes: 0,
            sessions: Mutex::new(HashMap::new()),
            session_seq: Mutex::new(Prng::new(rng.next_u64())),
        };
        // Calibrate: html + js + css + referenced images == target.
        let html_len = site.index_html(None).len();
        let js_total: usize = site.js_assets.iter().map(|(_, s)| s).sum();
        let referenced_images: usize = site
            .image_assets
            .iter()
            .filter(|(n, _)| *n != "mobile_logo.gif")
            .map(|(_, s)| s)
            .sum();
        let fixed = html_len + js_total + referenced_images;
        assert!(
            site.config.target_page_weight > fixed + 1_024,
            "target weight {} cannot fit page ({} + css)",
            site.config.target_page_weight,
            fixed
        );
        site.css_bytes = site.config.target_page_weight - fixed;
        site
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ForumConfig {
        &self.config
    }

    /// Demo credentials accepted by `/login.php`.
    pub fn demo_credentials() -> (&'static str, &'static str) {
        ("OakHands1", "pw:OakHands1")
    }

    /// Entry-page subresources as `(path, bytes)` pairs: 12 scripts, the
    /// stylesheet and the images the index references.
    pub fn index_resources(&self) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = self
            .js_assets
            .iter()
            .map(|(name, size)| (format!("/clientscript/{name}"), *size))
            .collect();
        out.push(("/clientscript/vbulletin.css".to_string(), self.css_bytes));
        for (name, size) in &self.image_assets {
            if *name != "mobile_logo.gif" {
                out.push((format!("/images/{name}"), *size));
            }
        }
        out
    }

    /// Total entry-page weight: HTML plus every subresource. Calibrated
    /// to `config.target_page_weight`.
    pub fn total_index_weight(&self) -> usize {
        self.index_html(None).len() + self.index_resources().iter().map(|(_, s)| s).sum::<usize>()
    }

    /// Base URL of the site.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.config.host)
    }

    fn session_user(&self, request: &Request) -> Option<String> {
        let hash = request.cookie("bbsessionhash")?;
        self.sessions.lock().get(&hash).cloned()
    }

    fn index_html(&self, user: Option<&str>) -> String {
        let forums: Vec<Scope> = self
            .forums
            .iter()
            .map(|f| {
                Scope::new()
                    .set("id", f.id.to_string())
                    .set("name", f.name.clone())
                    .set("description", f.description.clone())
                    .set("last_title", f.last_post_title.clone())
                    .set("last_author", f.last_post_author.clone())
                    .set("tid", f.last_thread_id.to_string())
                    .set(
                        "icon",
                        if f.id % 2 == 0 {
                            "forum_new.gif"
                        } else {
                            "forum_old.gif"
                        },
                    )
                    .set("lock", if f.private { " (private)" } else { "" })
            })
            .collect();
        let online: Vec<Scope> = self
            .online
            .iter()
            .map(|name| Scope::new().set("name", name.clone()))
            .collect();
        let birthdays = self.birthdays.join(", ");
        let scope = Scope::new()
            .set("title", "Sawmill Creek Woodworking Community")
            .set("forums", forums)
            .set("online", online)
            .set("online_count", self.config.online_count as usize)
            .set("members", format_thousands(self.config.member_count as u64))
            .set("threads", format_thousands(self.thread_count))
            .set("posts", format_thousands(self.post_count))
            .set("newest", self.newest_member.clone())
            .set("birthdays", birthdays)
            .set("welcome", user.unwrap_or(""))
            .set(
                "scripts",
                self.js_assets
                    .iter()
                    .map(|(name, _)| {
                        format!("<script type=\"text/javascript\" src=\"/clientscript/{name}\"></script>")
                    })
                    .collect::<Vec<_>>()
                    .join("\n"),
            );
        // {{{scripts}}} is a raw fragment.
        render(INDEX_TEMPLATE, &scope).expect("index template is well-formed")
    }

    fn login_page(&self, message: &str) -> Response {
        let scope = Scope::new().set("message", message);
        Response::html(render(LOGIN_TEMPLATE, &scope).expect("login template is well-formed"))
    }

    fn handle_login(&self, request: &Request) -> Response {
        let user = request.param("vb_login_username").unwrap_or_default();
        let pass = request.param("vb_login_password").unwrap_or_default();
        if user.is_empty() || pass != format!("pw:{user}") {
            return self.login_page("Invalid username or password.");
        }
        let hash = format!("{:032x}", self.session_seq.lock().next_u64() as u128);
        self.sessions.lock().insert(hash.clone(), user.clone());
        let mut cookie = Cookie::new("bbsessionhash", &hash);
        cookie.http_only = true;
        Response::redirect("/index.php").with_cookie(&cookie)
    }

    fn forumdisplay(&self, request: &Request) -> Response {
        let id: u32 = match request.param("f").and_then(|f| f.parse().ok()) {
            Some(id) => id,
            None => return Response::error(Status::BAD_REQUEST, "missing forum id"),
        };
        let Some(forum) = self.forums.iter().find(|f| f.id == id) else {
            return Response::error(Status::NOT_FOUND, "no such forum");
        };
        if forum.private && self.session_user(request).is_none() {
            return Response::redirect("/login.php");
        }
        let mut rng = Prng::new(self.config.seed ^ (0xF0 + id as u64));
        let threads: Vec<Scope> = (0..25)
            .map(|i| {
                Scope::new()
                    .set("tid", format!("{}", forum.last_thread_id as u64 + i))
                    .set("title", lorem::thread_title(&mut rng))
                    .set("author", lorem::username(&mut rng))
                    .set("replies", rng.range(0, 120).to_string())
            })
            .collect();
        let scope = Scope::new()
            .set("forum", forum.name.clone())
            .set("threads", threads);
        Response::html(render(FORUMDISPLAY_TEMPLATE, &scope).expect("template well-formed"))
    }

    fn showthread(&self, request: &Request) -> Response {
        let id: u64 = match request.param("t").and_then(|t| t.parse().ok()) {
            Some(id) => id,
            None => return Response::error(Status::BAD_REQUEST, "missing thread id"),
        };
        let mut rng = Prng::new(self.config.seed ^ (0xBEEF + id));
        let title = lorem::thread_title(&mut rng);
        let posts: Vec<Scope> = (0..10)
            .map(|i| {
                Scope::new()
                    .set("n", (i + 1).to_string())
                    .set("author", lorem::username(&mut rng))
                    .set("body", lorem::sentence(&mut rng, 60))
                    .set("picid", rng.range(1, 500).to_string())
            })
            .collect();
        let scope = Scope::new().set("title", title).set("posts", posts);
        Response::html(render(SHOWTHREAD_TEMPLATE, &scope).expect("template well-formed"))
    }

    fn showpic(&self, request: &Request) -> Response {
        if self.session_user(request).is_none() {
            return Response::error(Status::FORBIDDEN, "session required");
        }
        let id: u64 = match request.param("id").and_then(|v| v.parse().ok()) {
            Some(id) => id,
            None => return Response::error(Status::BAD_REQUEST, "missing picture id"),
        };
        Response::html(format!(
            "<div class=\"picframe\"><img src=\"/images/pic{id}.jpg\" width=\"640\" \
             height=\"480\" alt=\"attachment {id}\"></div>"
        ))
    }

    fn asset(&self, path: &str) -> Option<Response> {
        if let Some(name) = path.strip_prefix("/clientscript/") {
            if name == "vbulletin.css" {
                return Some(Response::bytes("text/css", css_of_len(self.css_bytes)));
            }
            if let Some((_, size)) = self.js_assets.iter().find(|(n, _)| *n == name) {
                return Some(Response::bytes(
                    "application/javascript",
                    js_of_len(name, *size),
                ));
            }
        }
        if let Some(name) = path.strip_prefix("/images/") {
            if let Some((_, size)) = self.image_assets.iter().find(|(n, _)| *n == name) {
                return Some(Response::bytes("image/gif", filler_bytes(*size)));
            }
            if let Some(rest) = name.strip_prefix("pic") {
                if rest.ends_with(".jpg") {
                    return Some(Response::bytes("image/jpeg", filler_bytes(45_000)));
                }
            }
        }
        None
    }
}

impl Origin for ForumSite {
    fn handle(&self, request: &Request) -> Response {
        let path = request.url.path();
        match (request.method, path) {
            (Method::Get, "/" | "/index.php" | "/forum/index.php") => {
                let user = self.session_user(request);
                Response::html(self.index_html(user.as_deref()))
            }
            (Method::Get, "/login.php") => self.login_page(""),
            (Method::Post, "/login.php") => self.handle_login(request),
            (Method::Get, "/logout.php") => {
                if let Some(hash) = request.cookie("bbsessionhash") {
                    self.sessions.lock().remove(&hash);
                }
                let mut kill = Cookie::new("bbsessionhash", "");
                kill.expires_at = Some(0);
                Response::redirect("/index.php").with_cookie(&kill)
            }
            (
                Method::Get,
                "/search.php" | "/memberlist.php" | "/calendar.php" | "/faq.php"
                | "/showgroups.php" | "/register.php" | "/archive/index.php" | "/sendmessage.php",
            ) => {
                let title = path.trim_start_matches('/').trim_end_matches(".php");
                Response::html(format!(
                    "<!DOCTYPE html><html><head><title>{title}</title>\
                     <link rel=\"stylesheet\" type=\"text/css\" href=\"/clientscript/vbulletin.css\"></head>\
                     <body><div class=\"page\"><h2>{title}</h2>\
                     <p class=\"smallfont\">This area of the community is under light use in the \
                     synthetic workload; it exists so every navigation link resolves.</p>\
                     <p><a href=\"/index.php\">Back to the forums</a></p></div></body></html>"
                ))
            }
            (Method::Get, "/member.php") => {
                let who = request.param("u").unwrap_or_else(|| "member".to_string());
                Response::html(format!(
                    "<!DOCTYPE html><html><head><title>Profile</title></head><body>\
                     <div class=\"page\"><h2>Profile: {}</h2>\
                     <p class=\"smallfont\">Member of the community.</p></div></body></html>",
                    msite_html::entities::encode_text(&who)
                ))
            }
            (Method::Get, "/forumdisplay.php") => self.forumdisplay(request),
            (Method::Get, "/showthread.php") => self.showthread(request),
            (Method::Get, "/private/index.php") => {
                if self.session_user(request).is_none() {
                    return Response::redirect("/login.php");
                }
                Response::html(render(PRIVATE_TEMPLATE, &Scope::new()).expect("template"))
            }
            (Method::Get, "/site.php") => match request.param("do").as_deref() {
                Some("showpic") => self.showpic(request),
                _ => Response::error(Status::BAD_REQUEST, "unknown action"),
            },
            (Method::Get, _) => self
                .asset(path)
                .unwrap_or_else(|| Response::error(Status::NOT_FOUND, "no such page")),
            _ => Response::error(Status::BAD_REQUEST, "unsupported method"),
        }
    }

    fn name(&self) -> &str {
        "forum"
    }
}

fn format_thousands(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::new();
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Deterministic CSS asset of exactly `len` bytes: real skin rules first,
/// then a padding comment (vBulletin skins carry enormous rule sets; the
/// padding models the rules our CSS-lite subset does not express).
fn css_of_len(len: usize) -> String {
    let mut css = String::from(CSS_SKIN);
    if css.len() + 16 < len {
        css.push_str("/* ");
        while css.len() + 3 < len {
            css.push('x');
        }
        css.push_str(" */");
    }
    css.truncate(len);
    while css.len() < len {
        css.push(' ');
    }
    css
}

/// Deterministic JS asset of exactly `size` bytes.
fn js_of_len(name: &str, size: usize) -> String {
    let mut js =
        format!("/* {name} */\nfunction vb_init() {{ var loaded = true; return loaded; }}\n");
    let mut i = 0;
    while js.len() + 64 < size {
        js.push_str(&format!(
            "function helper_{i}(a, b) {{ return (a || 0) + (b || 0) + {i}; }}\n"
        ));
        i += 1;
    }
    while js.len() < size {
        js.push(' ');
    }
    js.truncate(size);
    js
}

/// Deterministic binary filler of exactly `size` bytes.
fn filler_bytes(size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    let mut rng = Prng::new(size as u64);
    for _ in 0..size {
        out.push(rng.next_u64() as u8);
    }
    out
}

const CSS_SKIN: &str = r#"
body { background: #E9E9E9; color: #000000; font-size: 13px; margin: 8px; }
.page { background: #FFFFFF; width: 100%; }
td.alt1 { background: #F5F5FF; color: #000000; padding: 6px; }
td.alt2 { background: #E1E4F2; color: #000000; padding: 6px; }
.tcat { background: #5C7099; color: #FFFFFF; font-weight: bold; padding: 6px; }
.thead { background: #8A95B5; color: #FFFFFF; font-size: 11px; padding: 4px; }
.navbar { font-size: 11px; }
.smallfont { font-size: 11px; }
.bigusername { font-size: 14px; font-weight: bold; }
a { color: #22229C; }
#announcements { background: #FFF6BF; border: 1px solid #CCAA44; padding: 8px; }
.footer { color: #666666; font-size: 11px; text-align: center; }
"#;

const INDEX_TEMPLATE: &str = r##"<!DOCTYPE html PUBLIC "-//W3C//DTD XHTML 1.0 Transitional//EN" "http://www.w3.org/TR/xhtml1/DTD/xhtml1-transitional.dtd">
<html><head>
<title>{{title}}</title>
<meta http-equiv="Content-Type" content="text/html; charset=ISO-8859-1">
<link rel="stylesheet" type="text/css" href="/clientscript/vbulletin.css">
{{{scripts}}}
</head>
<body>
<div class="page" id="page">
<div id="header" align="center">
<table width="100%" border="0"><tr>
<td width="320"><img src="/images/logo.gif" width="300" height="80" alt="{{title}}"></td>
<td align="right"><img src="/images/banner_ad.gif" width="728" height="90" alt="advertisement" id="leaderboard"></td>
</tr></table>
</div>
<table id="navrow" width="100%" border="0" class="navbar"><tr>
<td><a href="/index.php">Home</a> | <a href="/search.php">Search</a> | <a href="/memberlist.php">Members</a> | <a href="/calendar.php">Calendar</a> | <a href="/faq.php">FAQ</a> | <a href="/private/index.php">Private Forums</a> | <a href="/showgroups.php">Staff</a> | <a href="/register.php">Register</a></td>
<td align="right">
<form id="loginform" action="/login.php" method="post">
<span class="smallfont">User Name</span> <input type="text" name="vb_login_username" size="10">
<span class="smallfont">Password</span> <input type="password" name="vb_login_password" size="10">
<input type="submit" value="Log in">
</form>
</td>
</tr></table>
{{#if welcome}}<div id="welcomebox" class="smallfont">Welcome back, {{welcome}}.</div>{{/if}}
<div id="announcements">Annual shop tour photo contest now open &mdash; post entries in Project Showcase before the end of the month!</div>
<table id="forumbits" width="100%" border="0">
<tr><td class="tcat" colspan="3">Forums</td></tr>
{{#each forums}}
<tr class="forumrow">
<td class="alt1" width="36"><img src="/images/{{icon}}" width="28" height="28" alt=""></td>
<td class="alt1"><a class="forumtitle" href="/forumdisplay.php?f={{id}}">{{name}}{{lock}}</a><div class="smallfont forumdesc">{{description}}</div></td>
<td class="alt2" width="220"><span class="smallfont">Last post: <a href="/showthread.php?t={{tid}}">{{last_title}}</a><br>by {{last_author}}</span></td>
</tr>
{{/each}}
</table>
<table id="whosonline" width="100%"><tr><td class="tcat">Currently Active Users: {{online_count}}</td></tr>
<tr><td class="alt1 smallfont">{{#each online}}<a href="/member.php?u={{name}}">{{name}}</a>, {{/each}}and many more.</td></tr></table>
<table id="stats" width="100%"><tr><td class="tcat">Sawmill Creek Statistics</td></tr>
<tr><td class="alt1 smallfont">Threads: {{threads}}, Posts: {{posts}}, Members: {{members}}. Welcome to our newest member, <a href="/member.php?u={{newest}}">{{newest}}</a>.</td></tr></table>
<table id="birthdays" width="100%"><tr><td class="tcat">Today's Birthdays</td></tr>
<tr><td class="alt1 smallfont">{{birthdays}}</td></tr></table>
<table id="calendar" width="100%"><tr><td class="tcat">Calendar</td></tr>
<tr><td class="alt1 smallfont"><a href="/calendar.php?do=getinfo&e=31">Hand Tool Swap Meet</a> &middot; <a href="/calendar.php?do=getinfo&e=32">Turning Club Meeting</a> &middot; <a href="/calendar.php?do=getinfo&e=33">Finishing Workshop</a></td></tr></table>
<div id="footerlinks" class="footer"><a href="/archive/index.php">Archive</a> - <a href="/sendmessage.php">Contact Us</a> - <a href="/index.php">Home</a> - <a href="#top">Top</a></div>
</div>
</body></html>"##;

const LOGIN_TEMPLATE: &str = r#"<!DOCTYPE html><html><head><title>Log In</title>
<link rel="stylesheet" type="text/css" href="/clientscript/vbulletin.css"></head>
<body><div class="page">
<h2>Log In</h2>
{{#if message}}<div id="loginerror" class="smallfont">{{message}}</div>{{/if}}
<form id="loginform" action="/login.php" method="post">
<table><tr><td class="alt1">User Name</td><td class="alt1"><input type="text" name="vb_login_username"></td></tr>
<tr><td class="alt1">Password</td><td class="alt1"><input type="password" name="vb_login_password"></td></tr>
<tr><td class="alt2" colspan="2"><input type="submit" value="Log in"></td></tr></table>
</form>
</div></body></html>"#;

const FORUMDISPLAY_TEMPLATE: &str = r#"<!DOCTYPE html><html><head><title>{{forum}}</title>
<link rel="stylesheet" type="text/css" href="/clientscript/vbulletin.css"></head>
<body><div class="page">
<h2>{{forum}}</h2>
<table id="threadbits" width="100%">
<tr><td class="tcat" colspan="3">Threads in Forum</td></tr>
{{#each threads}}
<tr><td class="alt1"><a href="/showthread.php?t={{tid}}">{{title}}</a></td>
<td class="alt2 smallfont">{{author}}</td><td class="alt1 smallfont">{{replies}} replies</td></tr>
{{/each}}
</table>
</div></body></html>"#;

const SHOWTHREAD_TEMPLATE: &str = r##"<!DOCTYPE html><html><head><title>{{title}}</title>
<link rel="stylesheet" type="text/css" href="/clientscript/vbulletin.css">
<script type="text/javascript" src="/clientscript/vbulletin_post_loader.js"></script>
</head>
<body><div class="page">
<h2>{{title}}</h2>
<table id="posts" width="100%">
{{#each posts}}
<tr class="post"><td class="alt2" width="160"><span class="bigusername">{{author}}</span></td>
<td class="alt1">{{body}}
<div class="smallfont"><a href="#" id="thumb{{n}}" onclick="$('#picframe').load('site.php?do=showpic&amp;id={{picid}}')">Show Picture</a></div>
</td></tr>
{{/each}}
</table>
<div id="picframe"></div>
</div></body></html>"##;

const PRIVATE_TEMPLATE: &str = r#"<!DOCTYPE html><html><head><title>Private Forums</title>
<link rel="stylesheet" type="text/css" href="/clientscript/vbulletin.css"></head>
<body><div class="page"><h2>Private Forums</h2>
<table id="privatebits" width="100%">
<tr><td class="alt1"><a href="/forumdisplay.php?f=28">Moderator Lounge</a></td></tr>
<tr><td class="alt1"><a href="/forumdisplay.php?f=29">Classifieds Review</a></td></tr>
<tr><td class="alt1"><a href="/forumdisplay.php?f=30">Site Feedback (members)</a></td></tr>
</table>
</div></body></html>"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> ForumSite {
        ForumSite::new(ForumConfig::default())
    }

    fn get(site: &ForumSite, path: &str) -> Response {
        site.handle(&Request::get(&format!("http://{}{path}", site.config.host)).unwrap())
    }

    #[test]
    fn index_has_all_paper_sections() {
        let body = get(&site(), "/index.php").body_text();
        for id in [
            "header",
            "leaderboard",
            "navrow",
            "loginform",
            "announcements",
            "forumbits",
            "whosonline",
            "stats",
            "birthdays",
            "calendar",
            "footerlinks",
        ] {
            assert!(body.contains(&format!("id=\"{id}\"")), "missing #{id}");
        }
    }

    #[test]
    fn index_lists_thirty_forums() {
        let body = get(&site(), "/index.php").body_text();
        assert_eq!(body.matches("class=\"forumrow\"").count(), 30);
        assert!(body.contains("65,947"));
    }

    #[test]
    fn page_weight_calibrated_exactly() {
        let s = site();
        assert_eq!(s.total_index_weight(), 224_477);
        // Twelve external scripts, as the paper counts.
        assert_eq!(s.js_assets.len(), 12);
    }

    #[test]
    fn assets_served_with_exact_sizes() {
        let s = site();
        for (path, size) in s.index_resources() {
            let resp = get(&s, &path);
            assert!(resp.status.is_success(), "{path}");
            assert_eq!(resp.body.len(), size, "{path}");
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = get(&site(), "/index.php").body_text();
        let b = get(&site(), "/index.php").body_text();
        assert_eq!(a, b);
    }

    #[test]
    fn login_flow_and_private_access() {
        let s = site();
        // Private area redirects anonymous users to login.
        let anon = get(&s, "/private/index.php");
        assert_eq!(anon.status, Status::FOUND);
        // Bad credentials rejected.
        let bad = s.handle(
            &Request::post_form(
                &format!("http://{}/login.php", s.config.host),
                &[
                    ("vb_login_username", "OakHands1"),
                    ("vb_login_password", "wrong"),
                ],
            )
            .unwrap(),
        );
        assert!(bad.body_text().contains("Invalid"));
        // Good credentials set a session cookie.
        let (user, pass) = ForumSite::demo_credentials();
        let good = s.handle(
            &Request::post_form(
                &format!("http://{}/login.php", s.config.host),
                &[("vb_login_username", user), ("vb_login_password", pass)],
            )
            .unwrap(),
        );
        assert_eq!(good.status, Status::FOUND);
        let cookie = good.headers.get("set-cookie").unwrap().to_string();
        assert!(cookie.starts_with("bbsessionhash="));
        // The session unlocks the private area.
        let hash = cookie.split(';').next().unwrap().to_string();
        let private = s.handle(
            &Request::get(&format!("http://{}/private/index.php", s.config.host))
                .unwrap()
                .with_header("cookie", &hash),
        );
        assert!(private.status.is_success());
        assert!(private.body_text().contains("Moderator Lounge"));
    }

    #[test]
    fn logout_clears_session() {
        let s = site();
        let (user, pass) = ForumSite::demo_credentials();
        let login = s.handle(
            &Request::post_form(
                &format!("http://{}/login.php", s.config.host),
                &[("vb_login_username", user), ("vb_login_password", pass)],
            )
            .unwrap(),
        );
        let cookie = login
            .headers
            .get("set-cookie")
            .unwrap()
            .split(';')
            .next()
            .unwrap()
            .to_string();
        let _ = s.handle(
            &Request::get(&format!("http://{}/logout.php", s.config.host))
                .unwrap()
                .with_header("cookie", &cookie),
        );
        let private = s.handle(
            &Request::get(&format!("http://{}/private/index.php", s.config.host))
                .unwrap()
                .with_header("cookie", &cookie),
        );
        assert_eq!(private.status, Status::FOUND);
    }

    #[test]
    fn forumdisplay_and_showthread() {
        let s = site();
        let listing = get(&s, "/forumdisplay.php?f=1");
        assert!(listing.status.is_success());
        assert!(listing.body_text().contains("threadbits"));
        let thread = get(&s, "/showthread.php?t=5555");
        assert!(thread.status.is_success());
        assert!(thread.body_text().contains("showpic"));
        assert!(get(&s, "/forumdisplay.php?f=999").status == Status::NOT_FOUND);
        assert!(get(&s, "/forumdisplay.php").status == Status::BAD_REQUEST);
    }

    #[test]
    fn private_forum_listing_requires_session() {
        let s = site();
        let f = s.forums.iter().find(|f| f.private).unwrap();
        let resp = get(&s, &format!("/forumdisplay.php?f={}", f.id));
        assert_eq!(resp.status, Status::FOUND);
    }

    #[test]
    fn showpic_requires_session_and_returns_fragment() {
        let s = site();
        let anon = get(&s, "/site.php?do=showpic&id=7");
        assert_eq!(anon.status, Status::FORBIDDEN);
        let (user, pass) = ForumSite::demo_credentials();
        let login = s.handle(
            &Request::post_form(
                &format!("http://{}/login.php", s.config.host),
                &[("vb_login_username", user), ("vb_login_password", pass)],
            )
            .unwrap(),
        );
        let cookie = login
            .headers
            .get("set-cookie")
            .unwrap()
            .split(';')
            .next()
            .unwrap()
            .to_string();
        let frag = s.handle(
            &Request::get(&format!(
                "http://{}/site.php?do=showpic&id=7",
                s.config.host
            ))
            .unwrap()
            .with_header("cookie", &cookie),
        );
        assert!(frag.status.is_success());
        assert!(frag.body_text().contains("/images/pic7.jpg"));
        // The picture itself is servable.
        let pic = get(&s, "/images/pic7.jpg");
        assert!(pic.status.is_success());
        assert_eq!(pic.body.len(), 45_000);
    }

    #[test]
    fn every_nav_link_resolves() {
        let s = site();
        let body = get(&s, "/index.php").body_text();
        let doc = msite_html::parse_document(&body);
        let nav = doc.element_by_id("navrow").unwrap();
        for a in doc.elements_by_tag(nav, "a") {
            let href = doc.attr(a, "href").unwrap();
            let resp = get(&s, href);
            assert!(
                resp.status.is_success() || resp.status.is_redirect(),
                "{href} -> {}",
                resp.status
            );
        }
        // Member profile links from who's-online resolve too.
        let resp = get(&s, "/member.php?u=OakHands1");
        assert!(resp.status.is_success());
        assert!(resp.body_text().contains("OakHands1"));
    }

    #[test]
    fn unknown_paths_404() {
        assert_eq!(get(&site(), "/nonexistent.php").status, Status::NOT_FOUND);
        assert_eq!(
            get(&site(), "/images/unknown.gif").status,
            Status::NOT_FOUND
        );
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(format_thousands(0), "0");
        assert_eq!(format_thousands(999), "999");
        assert_eq!(format_thousands(65_947), "65,947");
        assert_eq!(format_thousands(1_234_567), "1,234,567");
    }

    #[test]
    fn css_and_js_fillers_exact() {
        assert_eq!(css_of_len(5_000).len(), 5_000);
        assert_eq!(js_of_len("x.js", 4_321).len(), 4_321);
        assert_eq!(filler_bytes(100).len(), 100);
        // Deterministic.
        assert_eq!(filler_bytes(64), filler_bytes(64));
    }

    #[test]
    fn index_parses_cleanly() {
        let body = get(&site(), "/index.php").body_text();
        let doc = msite_html::parse_document(&body);
        assert_eq!(doc.elements_by_tag(doc.root(), "script").len(), 12);
        assert!(doc.element_by_id("loginform").is_some());
        assert!(doc.element_by_id("forumbits").is_some());
        let text = msite_html::text::visible_text(&doc, doc.root());
        assert!(text.contains("Currently Active Users"));
    }
}
