//! A CraigsList-style classified listing origin for the paper's AJAX
//! evaluation (§4.5, Figure 6).
//!
//! Users browse date-sorted pages of listings by category; clicking a
//! link loads a whole new detail page. The site uses **no AJAX of its
//! own** — exactly the property that makes the m.Site two-pane adaptation
//! worthwhile on an iPad.

use crate::lorem;
use crate::template::{render, Scope};
use msite_net::{Method, Origin, Prng, Request, Response, Status};

/// Classifieds generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifiedsConfig {
    /// Seed for generated listings.
    pub seed: u64,
    /// Listings per category.
    pub listings_per_category: u32,
    /// Listings per page.
    pub page_size: u32,
    /// Host this site answers as.
    pub host: String,
}

impl Default for ClassifiedsConfig {
    fn default() -> Self {
        ClassifiedsConfig {
            seed: 411,
            listings_per_category: 400,
            page_size: 100,
            host: "classifieds.test".to_string(),
        }
    }
}

/// Category slugs offered by the site.
pub const CATEGORIES: [&str; 4] = ["tools", "furniture", "materials", "free"];

/// The classifieds origin.
///
/// # Examples
///
/// ```
/// use msite_net::{Origin, Request};
/// use msite_sites::classifieds::{ClassifiedsConfig, ClassifiedsSite};
///
/// let site = ClassifiedsSite::new(ClassifiedsConfig::default());
/// let page = site.handle(&Request::get("http://classifieds.test/search?cat=tools&page=0").unwrap());
/// assert!(page.body_text().contains("listing/"));
/// ```
pub struct ClassifiedsSite {
    config: ClassifiedsConfig,
}

impl ClassifiedsSite {
    /// Creates the site.
    pub fn new(config: ClassifiedsConfig) -> ClassifiedsSite {
        ClassifiedsSite { config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ClassifiedsConfig {
        &self.config
    }

    /// Base URL of the site.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.config.host)
    }

    /// Stable listing id for `(category, index)`.
    pub fn listing_id(&self, category: &str, index: u32) -> u64 {
        let cat_code = CATEGORIES.iter().position(|c| *c == category).unwrap_or(0) as u64;
        (cat_code + 1) * 1_000_000 + index as u64
    }

    fn listing_title(&self, id: u64) -> String {
        let mut rng = Prng::new(self.config.seed ^ id);
        lorem::listing_title(&mut rng)
    }

    fn front_page(&self) -> Response {
        let cats: Vec<Scope> = CATEGORIES
            .iter()
            .map(|c| Scope::new().set("slug", *c))
            .collect();
        let scope = Scope::new().set("categories", cats);
        Response::html(render(FRONT_TEMPLATE, &scope).expect("front template"))
    }

    fn search(&self, request: &Request) -> Response {
        let category = request.param("cat").unwrap_or_else(|| "tools".to_string());
        if !CATEGORIES.contains(&category.as_str()) {
            return Response::error(Status::NOT_FOUND, "no such category");
        }
        let page: u32 = request
            .param("page")
            .and_then(|p| p.parse().ok())
            .unwrap_or(0);
        let start = page * self.config.page_size;
        if start >= self.config.listings_per_category {
            return Response::error(Status::NOT_FOUND, "no such page");
        }
        let end = (start + self.config.page_size).min(self.config.listings_per_category);
        let rows: Vec<Scope> = (start..end)
            .map(|i| {
                let id = self.listing_id(&category, i);
                // Newest first: day index descends with i.
                let day = 30 - (i * 30 / self.config.listings_per_category.max(1)).min(29);
                Scope::new()
                    .set("id", id.to_string())
                    .set("title", self.listing_title(id))
                    .set("date", format!("2012-06-{day:02}"))
            })
            .collect();
        let scope = Scope::new()
            .set("category", category.clone())
            .set("rows", rows)
            .set("next_page", (page + 1).to_string())
            .set(
                "has_next",
                if end < self.config.listings_per_category {
                    "y"
                } else {
                    ""
                },
            );
        Response::html(render(SEARCH_TEMPLATE, &scope).expect("search template"))
    }

    fn listing(&self, id: u64) -> Response {
        let mut rng = Prng::new(self.config.seed ^ id ^ 0xD7);
        let scope = Scope::new()
            .set("id", id.to_string())
            .set("title", self.listing_title(id))
            .set("body", lorem::sentence(&mut rng, 120))
            .set("contact", lorem::username(&mut rng));
        Response::html(render(LISTING_TEMPLATE, &scope).expect("listing template"))
    }
}

impl Origin for ClassifiedsSite {
    fn handle(&self, request: &Request) -> Response {
        if request.method != Method::Get {
            return Response::error(Status::BAD_REQUEST, "unsupported method");
        }
        let path = request.url.path();
        if path == "/" {
            return self.front_page();
        }
        if path == "/search" {
            return self.search(request);
        }
        if let Some(rest) = path.strip_prefix("/listing/") {
            if let Some(id) = rest.strip_suffix(".html").and_then(|s| s.parse().ok()) {
                return self.listing(id);
            }
        }
        Response::error(Status::NOT_FOUND, "no such page")
    }

    fn name(&self) -> &str {
        "classifieds"
    }
}

const FRONT_TEMPLATE: &str = r#"<!DOCTYPE html><html><head><title>classifieds</title></head>
<body><h1>community classifieds</h1>
<ul id="categories">
{{#each categories}}<li><a href="/search?cat={{slug}}&page=0">{{slug}}</a></li>{{/each}}
</ul></body></html>"#;

const SEARCH_TEMPLATE: &str = r#"<!DOCTYPE html><html><head><title>{{category}} classifieds</title></head>
<body>
<h1 id="cathead">{{category}}</h1>
<ul id="results">
{{#each rows}}<li class="row"><span class="date">{{date}}</span> <a class="listinglink" href="/listing/{{id}}.html">{{title}}</a></li>
{{/each}}
</ul>
{{#if has_next}}<a id="nextpage" href="/search?cat={{category}}&page={{next_page}}">next 100 postings</a>{{/if}}
</body></html>"#;

const LISTING_TEMPLATE: &str = r#"<!DOCTYPE html><html><head><title>{{title}}</title></head>
<body>
<h1 class="postingtitle">{{title}}</h1>
<section id="postingbody">{{body}}</section>
<div class="contact">reply to: {{contact}}</div>
<div class="postinginfo">posting id: {{id}}</div>
</body></html>"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> ClassifiedsSite {
        ClassifiedsSite::new(ClassifiedsConfig::default())
    }

    fn get(s: &ClassifiedsSite, path: &str) -> Response {
        s.handle(&Request::get(&format!("http://{}{path}", s.config.host)).unwrap())
    }

    #[test]
    fn front_page_lists_categories() {
        let body = get(&site(), "/").body_text();
        for cat in CATEGORIES {
            assert!(body.contains(&format!("cat={cat}")));
        }
    }

    #[test]
    fn search_page_has_hundred_rows() {
        let body = get(&site(), "/search?cat=tools&page=0").body_text();
        assert_eq!(body.matches("class=\"listinglink\"").count(), 100);
        assert!(body.contains("next 100 postings"));
    }

    #[test]
    fn dates_descend() {
        let body = get(&site(), "/search?cat=tools&page=0").body_text();
        let dates: Vec<&str> = body
            .match_indices("2012-06-")
            .map(|(i, _)| &body[i..i + 10])
            .collect();
        assert!(!dates.is_empty());
        for pair in dates.windows(2) {
            assert!(pair[0] >= pair[1], "{} then {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn last_page_has_no_next() {
        let body = get(&site(), "/search?cat=tools&page=3").body_text();
        assert!(!body.contains("nextpage"));
        assert_eq!(
            get(&site(), "/search?cat=tools&page=4").status,
            Status::NOT_FOUND
        );
    }

    #[test]
    fn listing_pages_resolve_from_search() {
        let s = site();
        let body = get(&s, "/search?cat=furniture&page=0").body_text();
        let start = body.find("/listing/").unwrap();
        let end = body[start..].find(".html").unwrap() + start;
        let path = format!("{}.html", &body[..end].split_at(start).1);
        let listing = get(&s, &path);
        assert!(listing.status.is_success());
        assert!(listing.body_text().contains("postingbody"));
    }

    #[test]
    fn listings_deterministic() {
        let s = site();
        let id = s.listing_id("tools", 5);
        let a = get(&s, &format!("/listing/{id}.html")).body_text();
        let b = get(&s, &format!("/listing/{id}.html")).body_text();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_category_404() {
        assert_eq!(
            get(&site(), "/search?cat=boats&page=0").status,
            Status::NOT_FOUND
        );
        assert_eq!(
            get(&site(), "/listing/notanid.html").status,
            Status::NOT_FOUND
        );
    }

    #[test]
    fn listing_ids_unique_across_categories() {
        let s = site();
        let a = s.listing_id("tools", 3);
        let b = s.listing_id("furniture", 3);
        assert_ne!(a, b);
    }
}
