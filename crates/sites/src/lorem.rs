//! Deterministic content generation: usernames, thread titles, forum
//! descriptions and body text, all seeded so workloads reproduce exactly.

use msite_net::Prng;

const FIRST_WORDS: &[&str] = &[
    "Sharpening",
    "Finishing",
    "Restoring",
    "Building",
    "Turning",
    "Carving",
    "Joining",
    "Sanding",
    "Gluing",
    "Routing",
    "Planing",
    "Sawing",
    "Designing",
    "Repairing",
    "Installing",
];

const TOPICS: &[&str] = &[
    "a walnut dresser",
    "the shop bandsaw",
    "cherry end tables",
    "a maple workbench",
    "dovetail joints",
    "hand planes",
    "a cedar chest",
    "the dust collector",
    "oak flooring",
    "a jewelry box",
    "the lathe chuck",
    "pine bookshelves",
    "a crosscut sled",
    "mortise jigs",
    "the table saw fence",
];

const LOREM: &[&str] = &[
    "the",
    "grain",
    "runs",
    "true",
    "along",
    "this",
    "board",
    "and",
    "finish",
    "coats",
    "cure",
    "hard",
    "after",
    "light",
    "sanding",
    "between",
    "layers",
    "with",
    "fresh",
    "shellac",
    "while",
    "clamps",
    "hold",
    "joints",
    "square",
    "until",
    "glue",
    "sets",
    "overnight",
    "then",
    "plane",
    "smooth",
    "for",
    "final",
    "fit",
];

const ADJECTIVES: &[&str] = &[
    "General",
    "Advanced",
    "Beginner",
    "Professional",
    "Weekend",
    "Antique",
    "Modern",
    "Classic",
    "Regional",
    "Technical",
];

const SUBJECTS: &[&str] = &[
    "Woodworking",
    "Turning",
    "Carving",
    "Finishing",
    "Sharpening",
    "Power Tools",
    "Hand Tools",
    "Project Showcase",
    "Shop Setup",
    "Lumber Exchange",
    "CNC",
    "Marquetry",
    "Restoration",
    "Workbenches",
    "Joinery",
];

/// Generates a username like `OakHands42`.
pub fn username(rng: &mut Prng) -> String {
    const PREFIX: &[&str] = &[
        "Oak", "Pine", "Maple", "Walnut", "Cherry", "Birch", "Cedar", "Ash",
    ];
    const SUFFIX: &[&str] = &[
        "Hands", "Worker", "Turner", "Smith", "Craft", "Shavings", "Grain",
    ];
    format!(
        "{}{}{}",
        rng.pick(PREFIX),
        rng.pick(SUFFIX),
        rng.range(1, 9999)
    )
}

/// Generates a thread title.
pub fn thread_title(rng: &mut Prng) -> String {
    format!("{} {}", rng.pick(FIRST_WORDS), rng.pick(TOPICS))
}

/// Generates a forum name like `Advanced Finishing`.
pub fn forum_name(rng: &mut Prng) -> String {
    format!("{} {}", rng.pick(ADJECTIVES), rng.pick(SUBJECTS))
}

/// Generates `words` words of flowing text.
pub fn sentence(rng: &mut Prng, words: usize) -> String {
    let mut out = String::new();
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        let word = rng.pick(LOREM);
        out.push_str(word);
    }
    out
}

/// Generates a classified-ad title.
pub fn listing_title(rng: &mut Prng) -> String {
    const ITEMS: &[&str] = &[
        "Delta 14\" bandsaw",
        "Oak dining table",
        "Craftsman router",
        "Lumber bundle",
        "Antique hand plane",
        "Shop vacuum",
        "Drill press",
        "Workbench vise",
        "Festool sander",
        "Clamp set",
    ];
    const CONDITIONS: &[&str] = &[
        "like new",
        "barely used",
        "good condition",
        "needs work",
        "vintage",
    ];
    format!(
        "{} - {} - ${}",
        rng.pick(ITEMS),
        rng.pick(CONDITIONS),
        rng.range(20, 900)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Prng::new(11);
        let mut b = Prng::new(11);
        assert_eq!(username(&mut a), username(&mut b));
        assert_eq!(thread_title(&mut a), thread_title(&mut b));
        assert_eq!(sentence(&mut a, 12), sentence(&mut b, 12));
    }

    #[test]
    fn sentence_word_count() {
        let mut rng = Prng::new(3);
        let s = sentence(&mut rng, 25);
        assert_eq!(s.split(' ').count(), 25);
        assert_eq!(sentence(&mut rng, 0), "");
    }

    #[test]
    fn variety_across_draws() {
        let mut rng = Prng::new(5);
        let names: std::collections::HashSet<String> =
            (0..50).map(|_| username(&mut rng)).collect();
        assert!(names.len() > 30);
    }

    #[test]
    fn titles_are_nonempty() {
        let mut rng = Prng::new(7);
        for _ in 0..20 {
            assert!(!thread_title(&mut rng).is_empty());
            assert!(!forum_name(&mut rng).is_empty());
            assert!(listing_title(&mut rng).contains('$'));
        }
    }
}
