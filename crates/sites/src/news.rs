//! An ad-heavy news-article origin for the content-aware adaptation
//! evaluation (readability extraction, boilerplate stripping and
//! fidelity tiers).
//!
//! Every block carries a `data-msite-region` ground-truth label
//! (`content`, `ad`, `nav`, `sidebar`, `footer`, `comment`, `social`)
//! **and** realistic id/class tokens of the kind real pages use. The
//! adaptation pipeline only ever reads the ids/classes/tags — the
//! region labels exist so conformance tests and benchmarks can score
//! extraction precision/recall against known truth.

use crate::lorem;
use crate::template::{render, Scope};
use msite_net::{Method, Origin, Prng, Request, Response, Status};

/// News-site generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NewsConfig {
    /// Seed for generated copy.
    pub seed: u64,
    /// Paragraphs in the article body.
    pub paragraphs: u32,
    /// Inline ad units sprinkled around the article.
    pub ad_slots: u32,
    /// Reader comments below the article.
    pub comments: u32,
    /// Photos on the `/gallery` page.
    pub gallery_images: u32,
    /// Host this site answers as.
    pub host: String,
}

impl Default for NewsConfig {
    fn default() -> Self {
        NewsConfig {
            seed: 2012,
            paragraphs: 8,
            ad_slots: 4,
            comments: 6,
            gallery_images: 5,
            host: "news.test".to_string(),
        }
    }
}

/// The news origin.
///
/// # Examples
///
/// ```
/// use msite_net::{Origin, Request};
/// use msite_sites::news::{NewsConfig, NewsSite};
///
/// let site = NewsSite::new(NewsConfig::default());
/// let page = site.handle(&Request::get("http://news.test/").unwrap());
/// assert!(page.body_text().contains("data-msite-region=\"content\""));
/// ```
pub struct NewsSite {
    config: NewsConfig,
}

impl NewsSite {
    /// Creates the site.
    pub fn new(config: NewsConfig) -> NewsSite {
        NewsSite { config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &NewsConfig {
        &self.config
    }

    /// Base URL of the site.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.config.host)
    }

    fn article(&self) -> Response {
        let mut rng = Prng::new(self.config.seed);
        let headline = lorem::thread_title(&mut rng);
        let byline = lorem::username(&mut rng);
        let paragraphs: Vec<Scope> = (0..self.config.paragraphs)
            .map(|i| {
                let mut para = Prng::new(self.config.seed ^ (0x100 + i as u64));
                Scope::new().set("text", lorem::sentence(&mut para, 60))
            })
            .collect();
        let ads: Vec<Scope> = (0..self.config.ad_slots)
            .map(|i| {
                let mut ad = Prng::new(self.config.seed ^ (0x200 + i as u64));
                Scope::new()
                    .set("slot", (i + 1).to_string())
                    .set("pitch", lorem::listing_title(&mut ad))
            })
            .collect();
        let comments: Vec<Scope> = (0..self.config.comments)
            .map(|i| {
                let mut c = Prng::new(self.config.seed ^ (0x300 + i as u64));
                Scope::new()
                    .set("author", lorem::username(&mut c))
                    .set("text", lorem::sentence(&mut c, 18))
            })
            .collect();
        let scope = Scope::new()
            .set("headline", headline)
            .set("byline", byline)
            .set("paragraphs", paragraphs)
            .set("ads", ads)
            .set("comments", comments);
        Response::html(render(ARTICLE_TEMPLATE, &scope).expect("article template"))
    }

    fn gallery(&self) -> Response {
        let photos: Vec<Scope> = (0..self.config.gallery_images)
            .map(|i| {
                let mut p = Prng::new(self.config.seed ^ (0x400 + i as u64));
                Scope::new()
                    .set("index", (i + 1).to_string())
                    .set("caption", lorem::thread_title(&mut p))
            })
            .collect();
        let scope = Scope::new().set("photos", photos);
        Response::html(render(GALLERY_TEMPLATE, &scope).expect("gallery template"))
    }
}

impl Origin for NewsSite {
    fn handle(&self, request: &Request) -> Response {
        if request.method != Method::Get {
            return Response::error(Status::BAD_REQUEST, "unsupported method");
        }
        match request.url.path() {
            "/" => self.article(),
            "/gallery" => self.gallery(),
            _ => Response::error(Status::NOT_FOUND, "no such page"),
        }
    }

    fn name(&self) -> &str {
        "news"
    }
}

const ARTICLE_TEMPLATE: &str = r#"<!DOCTYPE html><html><head><title>{{headline}}</title></head>
<body>
<nav id="topnav" class="navbar menu" data-msite-region="nav">
<a href="/">Home</a> <a href="/gallery">Photos</a> <a href="/world">World</a> <a href="/sports">Sports</a> <a href="/opinion">Opinion</a>
</nav>
<div id="leaderboard" class="ad-banner sponsor" data-msite-region="ad">
{{#each ads}}<div class="advert adsense" id="ad-slot-{{slot}}" data-msite-region="ad"><a href="http://ads.example/click/{{slot}}">{{pitch}}</a></div>
{{/each}}
</div>
<article id="story" class="article-body" data-msite-region="content">
<h1 class="headline">{{headline}}</h1>
<p class="byline">by {{byline}}</p>
{{#each paragraphs}}<p>{{text}}</p>
{{/each}}
</article>
<div class="share social" data-msite-region="social">
<a href="http://social.example/share">share</a> <a href="http://social.example/follow">follow us</a>
</div>
<aside id="rail" class="sidebar widget" data-msite-region="sidebar">
<h3>Trending</h3>
<ul><li><a href="/t/1">story one</a></li><li><a href="/t/2">story two</a></li><li><a href="/t/3">story three</a></li></ul>
</aside>
<section id="comments" class="comment-list" data-msite-region="comment">
{{#each comments}}<div class="comment"><b class="comment-author">{{author}}</b> <span class="comment-text">{{text}}</span></div>
{{/each}}
</section>
<footer id="pagefoot" class="footer copyright" data-msite-region="footer">
&copy; 2012 Daily Shavings &middot; <a href="/legal">terms</a> &middot; <a href="/privacy">privacy</a>
</footer>
</body></html>"#;

const GALLERY_TEMPLATE: &str = r#"<!DOCTYPE html><html><head><title>photo gallery</title></head>
<body>
<nav id="topnav" class="navbar menu" data-msite-region="nav"><a href="/">Home</a> <a href="/gallery">Photos</a></nav>
<main id="gallery" class="gallery" data-msite-region="content">
<h1>Shop photo gallery</h1>
{{#each photos}}<figure class="photo"><img src="/photos/{{index}}.png" width="640" height="480" alt="{{caption}}"><figcaption>{{caption}}</figcaption></figure>
{{/each}}
</main>
<footer id="pagefoot" class="footer" data-msite-region="footer">&copy; 2012 Daily Shavings</footer>
</body></html>"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> NewsSite {
        NewsSite::new(NewsConfig::default())
    }

    fn get(s: &NewsSite, path: &str) -> Response {
        s.handle(&Request::get(&format!("http://{}{path}", s.config.host)).unwrap())
    }

    #[test]
    fn article_carries_every_region_label() {
        let body = get(&site(), "/").body_text();
        for region in [
            "content", "ad", "nav", "sidebar", "footer", "comment", "social",
        ] {
            assert!(
                body.contains(&format!("data-msite-region=\"{region}\"")),
                "missing region {region}"
            );
        }
    }

    #[test]
    fn article_has_configured_counts() {
        let s = site();
        let body = get(&s, "/").body_text();
        assert_eq!(
            body.matches("class=\"advert adsense\"").count(),
            s.config.ad_slots as usize
        );
        assert_eq!(
            body.matches("class=\"comment\"").count(),
            s.config.comments as usize
        );
        // Body paragraphs plus the byline paragraph.
        assert!(body.matches("<p>").count() >= s.config.paragraphs as usize);
    }

    #[test]
    fn gallery_images_are_sized() {
        let s = site();
        let body = get(&s, "/gallery").body_text();
        assert_eq!(
            body.matches("width=\"640\" height=\"480\"").count(),
            s.config.gallery_images as usize
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = get(&site(), "/").body_text();
        let b = get(&site(), "/").body_text();
        assert_eq!(a, b);
        let other = NewsSite::new(NewsConfig {
            seed: 7,
            ..NewsConfig::default()
        });
        assert_ne!(a, get(&other, "/").body_text());
    }

    #[test]
    fn unknown_path_404() {
        assert_eq!(get(&site(), "/nope").status, Status::NOT_FOUND);
    }
}
