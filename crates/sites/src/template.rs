//! A tiny logic-light template engine for the synthetic sites.
//!
//! vBulletin is template-driven; the synthetic forum is too, which keeps
//! its markup realistic (deep tables, repeated row templates) and lets
//! tests tweak skins without touching code. Syntax:
//!
//! - `{{name}}` — substitute a variable (HTML-escaped);
//! - `{{{name}}}` — substitute without escaping (pre-built fragments);
//! - `{{#each items}}...{{/each}}` — repeat over a list of scopes;
//! - `{{#if flag}}...{{/if}}` — include when the variable is non-empty.

use msite_html::entities::encode_text;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Values a template can interpolate.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A scalar string.
    Text(String),
    /// A list of nested scopes for `{{#each}}`.
    List(Vec<Scope>),
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Text(s)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Text(n.to_string())
    }
}

/// A set of named values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scope {
    values: BTreeMap<String, Value>,
}

impl Scope {
    /// Creates an empty scope.
    pub fn new() -> Scope {
        Scope::default()
    }

    /// Sets a value (builder style).
    pub fn set(mut self, name: &str, value: impl Into<Value>) -> Scope {
        self.values.insert(name.to_string(), value.into());
        self
    }

    fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }
}

/// Error for malformed templates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateError {
    message: String,
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "template error: {}", self.message)
    }
}

impl Error for TemplateError {}

fn err(message: impl Into<String>) -> TemplateError {
    TemplateError {
        message: message.into(),
    }
}

/// Renders `template` with `scope`.
///
/// # Errors
///
/// Returns [`TemplateError`] on unterminated blocks or tags.
/// Missing variables render as empty strings (template-engine
/// convention), not errors.
///
/// # Examples
///
/// ```
/// use msite_sites::template::{render, Scope};
///
/// let out = render(
///     "<ul>{{#each items}}<li>{{name}}</li>{{/each}}</ul>",
///     &Scope::new().set("items", vec![
///         Scope::new().set("name", "General"),
///         Scope::new().set("name", "Off-Topic <chat>"),
///     ]),
/// ).unwrap();
/// assert_eq!(out, "<ul><li>General</li><li>Off-Topic &lt;chat&gt;</li></ul>");
/// ```
pub fn render(template: &str, scope: &Scope) -> Result<String, TemplateError> {
    let mut out = String::with_capacity(template.len());
    render_section(template, scope, &mut out)?;
    Ok(out)
}

impl From<Vec<Scope>> for Value {
    fn from(list: Vec<Scope>) -> Value {
        Value::List(list)
    }
}

fn render_section(mut rest: &str, scope: &Scope, out: &mut String) -> Result<(), TemplateError> {
    while let Some(open) = rest.find("{{") {
        out.push_str(&rest[..open]);
        rest = &rest[open..];
        if let Some(body) = rest.strip_prefix("{{{") {
            let close = body.find("}}}").ok_or_else(|| err("unterminated {{{"))?;
            let name = body[..close].trim();
            if let Some(Value::Text(text)) = scope.get(name) {
                out.push_str(text);
            }
            rest = &body[close + 3..];
            continue;
        }
        let body = &rest[2..];
        let close = body.find("}}").ok_or_else(|| err("unterminated {{"))?;
        let tag = body[..close].trim();
        let after_tag = &body[close + 2..];
        if let Some(block) = tag.strip_prefix("#each ") {
            let name = block.trim();
            let (inner, remainder) = split_block(after_tag, "each")?;
            if let Some(Value::List(items)) = scope.get(name) {
                for item in items {
                    render_section(inner, item, out)?;
                }
            }
            rest = remainder;
        } else if let Some(block) = tag.strip_prefix("#if ") {
            let name = block.trim();
            let (inner, remainder) = split_block(after_tag, "if")?;
            let truthy = match scope.get(name) {
                Some(Value::Text(t)) => !t.is_empty(),
                Some(Value::List(l)) => !l.is_empty(),
                None => false,
            };
            if truthy {
                render_section(inner, scope, out)?;
            }
            rest = remainder;
        } else if tag.starts_with('/') {
            return Err(err(format!("unexpected closer {{{{{tag}}}}}")));
        } else {
            if let Some(Value::Text(text)) = scope.get(tag) {
                out.push_str(&encode_text(text));
            }
            rest = after_tag;
        }
    }
    out.push_str(rest);
    Ok(())
}

/// Finds the matching `{{/kind}}` for a block, handling nesting.
fn split_block<'a>(body: &'a str, kind: &str) -> Result<(&'a str, &'a str), TemplateError> {
    let open_each = format!("{{{{#{kind} ");
    let close_tag = format!("{{{{/{kind}}}}}");
    let mut depth = 1;
    let mut search_from = 0;
    loop {
        let next_open = body[search_from..]
            .find(&open_each)
            .map(|i| i + search_from);
        let next_close = body[search_from..]
            .find(&close_tag)
            .map(|i| i + search_from);
        match (next_open, next_close) {
            (Some(o), Some(c)) if o < c => {
                depth += 1;
                search_from = o + open_each.len();
            }
            (_, Some(c)) => {
                depth -= 1;
                if depth == 0 {
                    return Ok((&body[..c], &body[c + close_tag.len()..]));
                }
                search_from = c + close_tag.len();
            }
            _ => return Err(err(format!("missing {close_tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_substitution_escapes() {
        let out = render("Hello {{who}}!", &Scope::new().set("who", "<world>")).unwrap();
        assert_eq!(out, "Hello &lt;world&gt;!");
    }

    #[test]
    fn raw_substitution_does_not_escape() {
        let out = render("{{{frag}}}", &Scope::new().set("frag", "<b>x</b>")).unwrap();
        assert_eq!(out, "<b>x</b>");
    }

    #[test]
    fn missing_variable_renders_empty() {
        assert_eq!(render("[{{nope}}]", &Scope::new()).unwrap(), "[]");
    }

    #[test]
    fn each_repeats() {
        let scope = Scope::new().set(
            "rows",
            vec![
                Scope::new().set("n", "1"),
                Scope::new().set("n", "2"),
                Scope::new().set("n", "3"),
            ],
        );
        assert_eq!(
            render("{{#each rows}}({{n}}){{/each}}", &scope).unwrap(),
            "(1)(2)(3)"
        );
    }

    #[test]
    fn nested_each() {
        let scope = Scope::new().set(
            "outer",
            vec![Scope::new().set("label", "A").set(
                "inner",
                vec![Scope::new().set("x", "1"), Scope::new().set("x", "2")],
            )],
        );
        assert_eq!(
            render(
                "{{#each outer}}{{label}}:{{#each inner}}{{x}}{{/each}}{{/each}}",
                &scope
            )
            .unwrap(),
            "A:12"
        );
    }

    #[test]
    fn if_blocks() {
        let scope = Scope::new().set("flag", "yes").set("empty", "");
        assert_eq!(render("{{#if flag}}on{{/if}}", &scope).unwrap(), "on");
        assert_eq!(render("{{#if empty}}on{{/if}}", &scope).unwrap(), "");
        assert_eq!(render("{{#if missing}}on{{/if}}", &scope).unwrap(), "");
    }

    #[test]
    fn errors_on_malformed() {
        assert!(render("{{unclosed", &Scope::new()).is_err());
        assert!(render("{{#each x}}no close", &Scope::new()).is_err());
        assert!(render("{{/each}}", &Scope::new()).is_err());
        assert!(render("{{{raw}}", &Scope::new()).is_err());
    }

    #[test]
    fn each_over_missing_list_is_empty() {
        assert_eq!(
            render("x{{#each gone}}y{{/each}}z", &Scope::new()).unwrap(),
            "xz"
        );
    }
}
