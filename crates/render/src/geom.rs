//! Geometry primitives shared by layout and paint.

/// An axis-aligned rectangle in CSS pixels.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Left edge.
    pub x: f32,
    /// Top edge.
    pub y: f32,
    /// Width (non-negative).
    pub w: f32,
    /// Height (non-negative).
    pub h: f32,
}

impl Rect {
    /// Creates a rectangle.
    pub fn new(x: f32, y: f32, w: f32, h: f32) -> Self {
        Rect { x, y, w, h }
    }

    /// Right edge.
    pub fn right(&self) -> f32 {
        self.x + self.w
    }

    /// Bottom edge.
    pub fn bottom(&self) -> f32 {
        self.y + self.h
    }

    /// True when the point lies inside (inclusive of top/left edges).
    pub fn contains(&self, px: f32, py: f32) -> bool {
        px >= self.x && px < self.right() && py >= self.y && py < self.bottom()
    }

    /// True when the rectangles overlap.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x < other.right()
            && other.x < self.right()
            && self.y < other.bottom()
            && other.y < self.bottom()
    }

    /// This rectangle scaled uniformly by `factor`.
    pub fn scaled(&self, factor: f32) -> Rect {
        Rect::new(
            self.x * factor,
            self.y * factor,
            self.w * factor,
            self.h * factor,
        )
    }

    /// Rounds the rectangle outward to integer pixel coordinates as
    /// `(x, y, w, h)`.
    pub fn to_pixels(&self) -> (i32, i32, i32, i32) {
        let x0 = self.x.floor() as i32;
        let y0 = self.y.floor() as i32;
        let x1 = self.right().ceil() as i32;
        let y1 = self.bottom().ceil() as i32;
        (x0, y0, (x1 - x0).max(0), (y1 - y0).max(0))
    }
}

/// An RGB color with 8 bits per channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// Creates a color from channels.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Self {
        Color { r, g, b }
    }

    /// White (`#ffffff`).
    pub const WHITE: Color = Color::rgb(255, 255, 255);
    /// Black (`#000000`).
    pub const BLACK: Color = Color::rgb(0, 0, 0);

    /// Parses a CSS color: `#rgb`, `#rrggbb`, `rgb(r,g,b)`, or one of the
    /// named colors used in 2000s-era forum templates.
    ///
    /// Returns `None` for unrecognized syntax.
    ///
    /// # Examples
    ///
    /// ```
    /// use msite_render::Color;
    /// assert_eq!(Color::parse("#fff"), Some(Color::WHITE));
    /// assert_eq!(Color::parse("rgb(1, 2, 3)"), Some(Color::rgb(1, 2, 3)));
    /// assert_eq!(Color::parse("navy"), Some(Color::rgb(0, 0, 128)));
    /// assert_eq!(Color::parse("bogus"), None);
    /// ```
    pub fn parse(input: &str) -> Option<Color> {
        let s = input.trim();
        if let Some(hex) = s.strip_prefix('#') {
            return match hex.len() {
                3 => {
                    let mut chans = [0u8; 3];
                    for (i, c) in hex.chars().enumerate() {
                        let v = c.to_digit(16)? as u8;
                        chans[i] = v * 17;
                    }
                    Some(Color::rgb(chans[0], chans[1], chans[2]))
                }
                6 => {
                    let v = u32::from_str_radix(hex, 16).ok()?;
                    Some(Color::rgb((v >> 16) as u8, (v >> 8) as u8, v as u8))
                }
                _ => None,
            };
        }
        if let Some(args) = s
            .strip_prefix("rgb(")
            .or_else(|| s.strip_prefix("RGB("))
            .and_then(|r| r.strip_suffix(')'))
        {
            let mut parts = args.split(',').map(|p| p.trim().parse::<i64>());
            let r = parts.next()?.ok()?;
            let g = parts.next()?.ok()?;
            let b = parts.next()?.ok()?;
            return Some(Color::rgb(
                r.clamp(0, 255) as u8,
                g.clamp(0, 255) as u8,
                b.clamp(0, 255) as u8,
            ));
        }
        named_color(&s.to_ascii_lowercase())
    }

    /// Luminance in [0, 255] using the Rec. 601 weights.
    pub fn luminance(&self) -> u8 {
        ((self.r as u32 * 299 + self.g as u32 * 587 + self.b as u32 * 114) / 1000) as u8
    }
}

impl Default for Color {
    fn default() -> Self {
        Color::BLACK
    }
}

fn named_color(name: &str) -> Option<Color> {
    Some(match name {
        "black" => Color::rgb(0, 0, 0),
        "white" => Color::rgb(255, 255, 255),
        "red" => Color::rgb(255, 0, 0),
        "green" => Color::rgb(0, 128, 0),
        "blue" => Color::rgb(0, 0, 255),
        "yellow" => Color::rgb(255, 255, 0),
        "orange" => Color::rgb(255, 165, 0),
        "purple" => Color::rgb(128, 0, 128),
        "gray" | "grey" => Color::rgb(128, 128, 128),
        "silver" => Color::rgb(192, 192, 192),
        "maroon" => Color::rgb(128, 0, 0),
        "navy" => Color::rgb(0, 0, 128),
        "teal" => Color::rgb(0, 128, 128),
        "olive" => Color::rgb(128, 128, 0),
        "lime" => Color::rgb(0, 255, 0),
        "aqua" | "cyan" => Color::rgb(0, 255, 255),
        "fuchsia" | "magenta" => Color::rgb(255, 0, 255),
        "brown" => Color::rgb(165, 42, 42),
        "tan" => Color::rgb(210, 180, 140),
        "wheat" => Color::rgb(245, 222, 179),
        "beige" => Color::rgb(245, 245, 220),
        "ivory" => Color::rgb(255, 255, 240),
        "transparent" => return None,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_edges_and_contains() {
        let r = Rect::new(10.0, 20.0, 30.0, 40.0);
        assert_eq!(r.right(), 40.0);
        assert_eq!(r.bottom(), 60.0);
        assert!(r.contains(10.0, 20.0));
        assert!(r.contains(39.9, 59.9));
        assert!(!r.contains(40.0, 20.0));
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(a.intersects(&Rect::new(5.0, 5.0, 10.0, 10.0)));
        assert!(!a.intersects(&Rect::new(10.0, 0.0, 5.0, 5.0)));
    }

    #[test]
    fn rect_scaling_and_pixels() {
        let r = Rect::new(1.2, 1.2, 2.5, 2.5).scaled(2.0);
        assert_eq!(r, Rect::new(2.4, 2.4, 5.0, 5.0));
        let (x, y, w, h) = r.to_pixels();
        assert_eq!((x, y), (2, 2));
        assert_eq!((w, h), (6, 6)); // rounded outward
    }

    #[test]
    fn hex_colors() {
        assert_eq!(Color::parse("#000000"), Some(Color::BLACK));
        assert_eq!(Color::parse("#ABCDEF"), Some(Color::rgb(0xAB, 0xCD, 0xEF)));
        assert_eq!(Color::parse("#f00"), Some(Color::rgb(255, 0, 0)));
        assert_eq!(Color::parse("#ff"), None);
        assert_eq!(Color::parse("#gggggg"), None);
    }

    #[test]
    fn rgb_function() {
        assert_eq!(Color::parse("rgb(300,-5,16)"), Some(Color::rgb(255, 0, 16)));
        assert_eq!(Color::parse("rgb(1,2)"), None);
    }

    #[test]
    fn named_colors() {
        assert_eq!(Color::parse("WHITE"), Some(Color::WHITE));
        assert_eq!(Color::parse("transparent"), None);
    }

    #[test]
    fn luminance_ordering() {
        assert!(Color::WHITE.luminance() > Color::rgb(128, 128, 128).luminance());
        assert!(Color::rgb(128, 128, 128).luminance() > Color::BLACK.luminance());
        assert_eq!(Color::WHITE.luminance(), 255);
    }
}
