//! A software RGB canvas: the raster target of the rendering engine.

use crate::font;
use crate::geom::{Color, Rect};

/// An RGB8 pixel buffer with drawing primitives.
///
/// # Examples
///
/// ```
/// use msite_render::{Canvas, Color};
///
/// let mut canvas = Canvas::new(100, 50, Color::WHITE);
/// canvas.fill_rect_px(10, 10, 30, 20, Color::rgb(200, 0, 0));
/// canvas.draw_text(12, 12, "hi", 13.0, Color::BLACK);
/// assert_eq!(canvas.get(0, 0), Color::WHITE);
/// assert_eq!(canvas.get(10, 10), Color::rgb(200, 0, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Canvas {
    width: u32,
    height: u32,
    pixels: Vec<u8>, // RGB interleaved
}

impl Canvas {
    /// Creates a canvas filled with `background`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the buffer would exceed
    /// 512 MiB (runaway-layout guard).
    pub fn new(width: u32, height: u32, background: Color) -> Self {
        assert!(width > 0 && height > 0, "canvas dimensions must be nonzero");
        let bytes = width as u64 * height as u64 * 3;
        assert!(
            bytes <= 512 * 1024 * 1024,
            "canvas too large: {bytes} bytes"
        );
        let mut pixels = Vec::with_capacity(bytes as usize);
        for _ in 0..(width as u64 * height as u64) {
            pixels.extend_from_slice(&[background.r, background.g, background.b]);
        }
        Canvas {
            width,
            height,
            pixels,
        }
    }

    /// Canvas width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Canvas height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw RGB8 bytes, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Pixel color at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, x: u32, y: u32) -> Color {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let i = ((y * self.width + x) * 3) as usize;
        Color::rgb(self.pixels[i], self.pixels[i + 1], self.pixels[i + 2])
    }

    /// Sets one pixel; silently clips when out of bounds.
    pub fn set(&mut self, x: i32, y: i32, color: Color) {
        if x < 0 || y < 0 || x as u32 >= self.width || y as u32 >= self.height {
            return;
        }
        let i = ((y as u32 * self.width + x as u32) * 3) as usize;
        self.pixels[i] = color.r;
        self.pixels[i + 1] = color.g;
        self.pixels[i + 2] = color.b;
    }

    /// Fills an integer-pixel rectangle, clipping to the canvas.
    pub fn fill_rect_px(&mut self, x: i32, y: i32, w: i32, h: i32, color: Color) {
        let x0 = x.max(0) as u32;
        let y0 = y.max(0) as u32;
        let x1 = (x + w).clamp(0, self.width as i32) as u32;
        let y1 = (y + h).clamp(0, self.height as i32) as u32;
        for row in y0..y1 {
            let base = ((row * self.width + x0) * 3) as usize;
            let end = ((row * self.width + x1) * 3) as usize;
            let mut i = base;
            while i < end {
                self.pixels[i] = color.r;
                self.pixels[i + 1] = color.g;
                self.pixels[i + 2] = color.b;
                i += 3;
            }
        }
    }

    /// Fills a [`Rect`] (rounded outward to pixels).
    pub fn fill_rect(&mut self, rect: &Rect, color: Color) {
        let (x, y, w, h) = rect.to_pixels();
        self.fill_rect_px(x, y, w, h, color);
    }

    /// Strokes the border of a [`Rect`] with the given pixel width.
    pub fn stroke_rect(&mut self, rect: &Rect, width: u32, color: Color) {
        if width == 0 {
            return;
        }
        let (x, y, w, h) = rect.to_pixels();
        let bw = width as i32;
        self.fill_rect_px(x, y, w, bw, color); // top
        self.fill_rect_px(x, y + h - bw, w, bw, color); // bottom
        self.fill_rect_px(x, y, bw, h, color); // left
        self.fill_rect_px(x + w - bw, y, bw, h, color); // right
    }

    /// Draws text with the built-in 5×7 font; the origin is the top-left
    /// of the first glyph cell. Returns the advance in pixels.
    pub fn draw_text(&mut self, x: i32, y: i32, text: &str, font_size: f32, color: Color) -> i32 {
        let scale = font::scale_for(font_size) as i32;
        let mut cx = x;
        for ch in text.chars() {
            for col in 0..5u32 {
                for row in 0..7u32 {
                    if font::pixel_set(ch, col, row) {
                        self.fill_rect_px(
                            cx + col as i32 * scale,
                            y + row as i32 * scale,
                            scale,
                            scale,
                            color,
                        );
                    }
                }
            }
            cx += font::CELL_WIDTH as i32 * scale;
        }
        cx - x
    }

    /// Draws a crossed placeholder box — how the engine depicts images
    /// and plugins it does not decode (the thumbnail look of early mobile
    /// browsers).
    pub fn draw_placeholder(&mut self, rect: &Rect, border: Color, fill: Color) {
        self.fill_rect(rect, fill);
        self.stroke_rect(rect, 1, border);
        let (x, y, w, h) = rect.to_pixels();
        // Diagonals via simple DDA.
        let steps = w.max(h).max(1);
        for i in 0..=steps {
            let fx = x + (i * (w - 1).max(0)) / steps;
            let fy = y + (i * (h - 1).max(0)) / steps;
            self.set(fx, fy, border);
            self.set(x + (w - 1).max(0) - (fx - x), fy, border);
        }
    }

    /// Box-filter downsample to a new width, preserving aspect ratio.
    /// A `new_width` of at least 1 is enforced.
    pub fn downscale_to_width(&self, new_width: u32) -> Canvas {
        let new_width = new_width.clamp(1, self.width);
        let factor = self.width as f32 / new_width as f32;
        let new_height = ((self.height as f32 / factor).round() as u32).max(1);
        let mut out = Canvas::new(new_width, new_height, Color::WHITE);
        for oy in 0..new_height {
            for ox in 0..new_width {
                // Source window.
                let sx0 = (ox as f32 * factor) as u32;
                let sy0 = (oy as f32 * factor) as u32;
                let sx1 = (((ox + 1) as f32 * factor) as u32).clamp(sx0 + 1, self.width);
                let sy1 = (((oy + 1) as f32 * factor) as u32).clamp(sy0 + 1, self.height);
                let mut acc = [0u64; 3];
                let mut n = 0u64;
                for sy in sy0..sy1 {
                    for sx in sx0..sx1 {
                        let i = ((sy * self.width + sx) * 3) as usize;
                        acc[0] += self.pixels[i] as u64;
                        acc[1] += self.pixels[i + 1] as u64;
                        acc[2] += self.pixels[i + 2] as u64;
                        n += 1;
                    }
                }
                out.set(
                    ox as i32,
                    oy as i32,
                    Color::rgb((acc[0] / n) as u8, (acc[1] / n) as u8, (acc[2] / n) as u8),
                );
            }
        }
        out
    }

    /// Quantizes every channel to `levels` distinct values (2..=256) —
    /// the fidelity-reduction post-processor knob.
    pub fn quantize(&mut self, levels: u16) {
        let levels = levels.clamp(2, 256) as u32;
        let step = 255.0 / (levels - 1) as f32;
        for byte in &mut self.pixels {
            let level = (*byte as f32 / step).round();
            *byte = (level * step).round().clamp(0.0, 255.0) as u8;
        }
    }

    /// Crops to the intersection of `rect` with the canvas.
    ///
    /// # Panics
    ///
    /// Panics when the intersection is empty.
    pub fn crop(&self, rect: &Rect) -> Canvas {
        let (x, y, w, h) = rect.to_pixels();
        let x0 = x.max(0) as u32;
        let y0 = y.max(0) as u32;
        let x1 = ((x + w).max(0) as u32).min(self.width);
        let y1 = ((y + h).max(0) as u32).min(self.height);
        assert!(x1 > x0 && y1 > y0, "crop region empty");
        let mut out = Canvas::new(x1 - x0, y1 - y0, Color::WHITE);
        for row in y0..y1 {
            for col in x0..x1 {
                out.set((col - x0) as i32, (row - y0) as i32, self.get(col, row));
            }
        }
        out
    }

    /// Number of distinct colors present (post-quantization metric).
    pub fn distinct_colors(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for chunk in self.pixels.chunks_exact(3) {
            seen.insert([chunk[0], chunk[1], chunk[2]]);
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_fills_background() {
        let c = Canvas::new(4, 3, Color::rgb(9, 8, 7));
        assert_eq!(c.width(), 4);
        assert_eq!(c.height(), 3);
        assert_eq!(c.get(3, 2), Color::rgb(9, 8, 7));
        assert_eq!(c.pixels().len(), 4 * 3 * 3);
    }

    #[test]
    fn fill_rect_clips() {
        let mut c = Canvas::new(10, 10, Color::WHITE);
        c.fill_rect_px(-5, -5, 8, 8, Color::BLACK);
        assert_eq!(c.get(0, 0), Color::BLACK);
        assert_eq!(c.get(2, 2), Color::BLACK);
        assert_eq!(c.get(3, 3), Color::WHITE);
        c.fill_rect_px(8, 8, 100, 100, Color::BLACK);
        assert_eq!(c.get(9, 9), Color::BLACK);
    }

    #[test]
    fn stroke_draws_only_border() {
        let mut c = Canvas::new(10, 10, Color::WHITE);
        c.stroke_rect(&Rect::new(1.0, 1.0, 8.0, 8.0), 1, Color::BLACK);
        assert_eq!(c.get(1, 1), Color::BLACK);
        assert_eq!(c.get(8, 1), Color::BLACK);
        assert_eq!(c.get(4, 4), Color::WHITE);
    }

    #[test]
    fn text_marks_pixels() {
        let mut c = Canvas::new(40, 20, Color::WHITE);
        let advance = c.draw_text(0, 0, "AB", 8.0, Color::BLACK);
        assert_eq!(advance, 12); // two cells at scale 1
                                 // Some pixel of 'A' must be black.
        let mut black = 0;
        for y in 0..8 {
            for x in 0..6 {
                if c.get(x, y) == Color::BLACK {
                    black += 1;
                }
            }
        }
        assert!(black >= 5);
    }

    #[test]
    fn text_scale_doubles_advance() {
        let mut c = Canvas::new(200, 40, Color::WHITE);
        let a1 = c.draw_text(0, 0, "xyz", 8.0, Color::BLACK);
        let a2 = c.draw_text(0, 20, "xyz", 16.0, Color::BLACK);
        assert_eq!(a2, a1 * 2);
    }

    #[test]
    fn downscale_halves_dimensions() {
        let mut c = Canvas::new(100, 60, Color::WHITE);
        c.fill_rect_px(0, 0, 50, 60, Color::BLACK);
        let small = c.downscale_to_width(50);
        assert_eq!(small.width(), 50);
        assert_eq!(small.height(), 30);
        // Left half black, right half white (away from the seam).
        assert_eq!(small.get(10, 15), Color::BLACK);
        assert_eq!(small.get(40, 15), Color::WHITE);
    }

    #[test]
    fn downscale_averages() {
        // Checkerboard of black/white downsampled 2x → mid gray.
        let mut c = Canvas::new(4, 4, Color::WHITE);
        for y in 0..4 {
            for x in 0..4 {
                if (x + y) % 2 == 0 {
                    c.set(x, y, Color::BLACK);
                }
            }
        }
        let small = c.downscale_to_width(2);
        let p = small.get(0, 0);
        assert!((p.r as i32 - 127).abs() <= 16, "got {p:?}");
    }

    #[test]
    fn quantize_reduces_palette() {
        let mut c = Canvas::new(16, 16, Color::WHITE);
        for y in 0..16 {
            for x in 0..16 {
                c.set(x, y, Color::rgb((x * 16) as u8, (y * 16) as u8, 128));
            }
        }
        let before = c.distinct_colors();
        c.quantize(4);
        let after = c.distinct_colors();
        assert!(after < before);
        assert!(after <= 16); // at most 4x4 combinations for varying r,g
    }

    #[test]
    fn quantize_extremes_preserved() {
        let mut c = Canvas::new(2, 1, Color::WHITE);
        c.set(1, 0, Color::BLACK);
        c.quantize(2);
        assert_eq!(c.get(0, 0), Color::WHITE);
        assert_eq!(c.get(1, 0), Color::BLACK);
    }

    #[test]
    fn crop_extracts_region() {
        let mut c = Canvas::new(10, 10, Color::WHITE);
        c.set(5, 5, Color::BLACK);
        let cropped = c.crop(&Rect::new(4.0, 4.0, 3.0, 3.0));
        assert_eq!(cropped.width(), 3);
        assert_eq!(cropped.get(1, 1), Color::BLACK);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn crop_outside_panics() {
        let c = Canvas::new(4, 4, Color::WHITE);
        let _ = c.crop(&Rect::new(100.0, 100.0, 5.0, 5.0));
    }

    #[test]
    fn placeholder_draws_frame() {
        let mut c = Canvas::new(20, 20, Color::WHITE);
        c.draw_placeholder(
            &Rect::new(2.0, 2.0, 16.0, 16.0),
            Color::BLACK,
            Color::rgb(230, 230, 230),
        );
        assert_eq!(c.get(2, 2), Color::BLACK);
        assert_eq!(c.get(10, 5), Color::rgb(230, 230, 230));
    }
}
