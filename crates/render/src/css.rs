//! CSS-lite: stylesheet parsing, the cascade, and computed styles.
//!
//! Supports the property subset that dominates 2012-era template-driven
//! sites (vBulletin skins and the like): the box model (width/height,
//! margin/padding, borders), colors and backgrounds, fonts
//! (size/weight), text alignment, line height and `display`. Selector
//! matching and specificity come from [`msite_selectors`].
//!
//! Presentational HTML attributes (`width=`, `bgcolor=`, `align=`,
//! `border=`, `cellpadding=`) are honored as author-level declarations of
//! lowest priority, which is what real engines do and what old forum
//! markup needs.

use crate::geom::Color;
use msite_html::{Document, NodeId};
use msite_selectors::SelectorList;

/// CSS `display` values supported by the layout engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Display {
    /// Vertical stacking box.
    #[default]
    Block,
    /// Participates in inline flow.
    Inline,
    /// Inline placement, block sizing (approximated as inline).
    InlineBlock,
    /// Removed from layout entirely.
    None,
    /// Table box (laid out as a block of rows).
    Table,
    /// Table row: children laid out side by side.
    TableRow,
    /// Table cell.
    TableCell,
}

/// A length or the absence of one.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Dimension {
    /// Not specified — derive from context.
    #[default]
    Auto,
    /// Absolute CSS pixels.
    Px(f32),
    /// Percentage of the containing block's width.
    Percent(f32),
}

impl Dimension {
    /// Resolves against a containing length; `Auto` yields `fallback`.
    pub fn resolve(&self, containing: f32, fallback: f32) -> f32 {
        match self {
            Dimension::Auto => fallback,
            Dimension::Px(v) => *v,
            Dimension::Percent(p) => containing * p / 100.0,
        }
    }

    fn parse(value: &str, font_size: f32) -> Option<Dimension> {
        let v = value.trim();
        if v.eq_ignore_ascii_case("auto") {
            return Some(Dimension::Auto);
        }
        if let Some(p) = v.strip_suffix('%') {
            return p.trim().parse::<f32>().ok().map(Dimension::Percent);
        }
        if let Some(px) = v.strip_suffix("px") {
            return px.trim().parse::<f32>().ok().map(Dimension::Px);
        }
        if let Some(pt) = v.strip_suffix("pt") {
            return pt
                .trim()
                .parse::<f32>()
                .ok()
                .map(|x| Dimension::Px(x * 4.0 / 3.0));
        }
        if let Some(em) = v.strip_suffix("em") {
            return em
                .trim()
                .parse::<f32>()
                .ok()
                .map(|x| Dimension::Px(x * font_size));
        }
        // Bare numbers (HTML attribute style) are pixels.
        v.parse::<f32>().ok().map(Dimension::Px)
    }
}

/// Horizontal text alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TextAlign {
    /// Flush left.
    #[default]
    Left,
    /// Centered.
    Center,
    /// Flush right.
    Right,
}

/// Fully resolved style for one element.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputedStyle {
    /// Display type.
    pub display: Display,
    /// Specified width.
    pub width: Dimension,
    /// Specified height.
    pub height: Dimension,
    /// Margins: top, right, bottom, left.
    pub margin: [f32; 4],
    /// Padding: top, right, bottom, left.
    pub padding: [f32; 4],
    /// Border width in px (uniform).
    pub border_width: f32,
    /// Border color.
    pub border_color: Color,
    /// Background fill, when any.
    pub background: Option<Color>,
    /// Foreground (text) color. Inherited.
    pub color: Color,
    /// Font size in px. Inherited.
    pub font_size: f32,
    /// Bold text. Inherited.
    pub bold: bool,
    /// Text alignment. Inherited.
    pub text_align: TextAlign,
    /// Line height as a multiple of font size. Inherited.
    pub line_height: f32,
}

impl Default for ComputedStyle {
    fn default() -> Self {
        ComputedStyle {
            display: Display::Block,
            width: Dimension::Auto,
            height: Dimension::Auto,
            margin: [0.0; 4],
            padding: [0.0; 4],
            border_width: 0.0,
            border_color: Color::BLACK,
            background: None,
            color: Color::BLACK,
            font_size: 13.0,
            bold: false,
            text_align: TextAlign::Left,
            line_height: 1.25,
        }
    }
}

/// One `property: value` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Declaration {
    /// Lowercased property name.
    pub property: String,
    /// Raw value text, trimmed.
    pub value: String,
}

/// A rule: selectors plus declarations.
#[derive(Debug, Clone)]
pub struct Rule {
    /// The selector list this rule applies to.
    pub selectors: SelectorList,
    /// Declarations in source order.
    pub declarations: Vec<Declaration>,
}

/// A parsed stylesheet.
#[derive(Debug, Clone, Default)]
pub struct Stylesheet {
    /// Rules in source order.
    pub rules: Vec<Rule>,
}

impl Stylesheet {
    /// Parses CSS text leniently: rules that fail to parse are skipped,
    /// comments and at-rules are ignored. Never fails.
    ///
    /// # Examples
    ///
    /// ```
    /// let sheet = msite_render::Stylesheet::parse(
    ///     "td.alt1 { background: #F5F5FF; color: #000 } .hidden { display: none }");
    /// assert_eq!(sheet.rules.len(), 2);
    /// ```
    pub fn parse(input: &str) -> Stylesheet {
        let text = strip_comments(input);
        let mut rules = Vec::new();
        let mut rest = text.as_str();
        while let Some(open) = rest.find('{') {
            let selector_src = rest[..open].trim();
            let after = &rest[open + 1..];
            let close = match after.find('}') {
                Some(c) => c,
                None => break,
            };
            let body = &after[..close];
            rest = &after[close + 1..];
            if selector_src.starts_with('@') {
                continue; // at-rules unsupported
            }
            if let Ok(selectors) = SelectorList::parse(selector_src) {
                rules.push(Rule {
                    selectors,
                    declarations: parse_declarations(body),
                });
            }
        }
        Stylesheet { rules }
    }

    /// Number of declarations across all rules (cost-model input).
    pub fn declaration_count(&self) -> usize {
        self.rules.iter().map(|r| r.declarations.len()).sum()
    }
}

fn strip_comments(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut rest = input;
    while let Some(start) = rest.find("/*") {
        out.push_str(&rest[..start]);
        match rest[start + 2..].find("*/") {
            Some(end) => rest = &rest[start + 2 + end + 2..],
            None => return out,
        }
    }
    out.push_str(rest);
    out
}

/// Parses a declaration block body (`prop: value; ...`).
pub fn parse_declarations(body: &str) -> Vec<Declaration> {
    body.split(';')
        .filter_map(|decl| {
            let (prop, value) = decl.split_once(':')?;
            let property = prop.trim().to_ascii_lowercase();
            let value = value
                .trim()
                .trim_end_matches("!important")
                .trim()
                .to_string();
            if property.is_empty() || value.is_empty() {
                return None;
            }
            Some(Declaration { property, value })
        })
        .collect()
}

/// Computes styles for a whole document against a stylesheet, including
/// UA defaults, presentational attributes, the cascade and inheritance.
///
/// Returns one [`ComputedStyle`] per arena slot, indexed by
/// [`NodeId::index`]. Non-element slots hold defaults.
pub fn compute_styles(doc: &Document, sheet: &Stylesheet) -> Vec<ComputedStyle> {
    // Pre-match every rule once: rule index -> matched node ids.
    let mut per_node: Vec<Vec<(u32, u32, usize)>> = vec![Vec::new(); doc.arena_len()];
    for (order, rule) in sheet.rules.iter().enumerate() {
        let spec = rule.selectors.specificity();
        // Flatten specificity into one sortable key.
        let key = spec.0 * 1_000_000 + spec.1 * 1_000 + spec.2;
        for node in rule.selectors.select(doc, doc.root()) {
            per_node[node.index()].push((1, key, order));
        }
    }

    let mut styles: Vec<ComputedStyle> = vec![ComputedStyle::default(); doc.arena_len()];
    // Document-order traversal guarantees parents are computed first.
    let ids: Vec<NodeId> = doc.descendants(doc.root()).collect();
    for id in ids {
        if doc.data(id).as_element().is_none() {
            // Text inherits wholesale from parent.
            if let Some(parent) = doc.node(id).parent() {
                styles[id.index()] = styles[parent.index()].clone();
            }
            continue;
        }
        let mut style = inherited_base(doc, id, &styles);
        apply_ua_defaults(doc, id, &mut style);
        apply_presentational_attrs(doc, id, &mut style);
        // Author rules in cascade order.
        let mut matches = per_node[id.index()].clone();
        matches.sort_by_key(|&(_, spec, order)| (spec, order));
        for (_, _, order) in matches {
            for decl in &sheet.rules[order].declarations {
                apply_declaration(&mut style, decl);
            }
        }
        // Inline style wins.
        if let Some(inline) = doc.attr(id, "style") {
            for decl in parse_declarations(inline) {
                apply_declaration(&mut style, &decl);
            }
        }
        styles[id.index()] = style;
    }
    styles
}

/// Style with inherited properties copied from the parent.
fn inherited_base(doc: &Document, id: NodeId, styles: &[ComputedStyle]) -> ComputedStyle {
    let mut style = ComputedStyle::default();
    if let Some(parent) = doc.node(id).parent() {
        let p = &styles[parent.index()];
        style.color = p.color;
        style.font_size = p.font_size;
        style.bold = p.bold;
        style.text_align = p.text_align;
        style.line_height = p.line_height;
    }
    style
}

/// Browser default styles for common tags.
fn apply_ua_defaults(doc: &Document, id: NodeId, style: &mut ComputedStyle) {
    let Some(name) = doc.tag_name(id) else { return };
    match name {
        "span" | "a" | "b" | "i" | "u" | "em" | "strong" | "small" | "big" | "font" | "tt"
        | "code" | "label" | "abbr" | "sub" | "sup" | "img" | "input" | "button" | "select"
        | "textarea" | "br" => style.display = Display::Inline,
        "table" => {
            style.display = Display::Table;
        }
        "tr" => style.display = Display::TableRow,
        "td" | "th" => {
            style.display = Display::TableCell;
            style.padding = [2.0; 4];
        }
        "thead" | "tbody" | "tfoot" => style.display = Display::Block,
        "script" | "style" | "head" | "meta" | "link" | "title" | "noscript" => {
            style.display = Display::None
        }
        "h1" => {
            style.font_size *= 2.0;
            style.bold = true;
            style.margin = [13.0, 0.0, 13.0, 0.0];
        }
        "h2" => {
            style.font_size *= 1.5;
            style.bold = true;
            style.margin = [12.0, 0.0, 12.0, 0.0];
        }
        "h3" => {
            style.font_size *= 1.17;
            style.bold = true;
            style.margin = [11.0, 0.0, 11.0, 0.0];
        }
        "p" | "ul" | "ol" | "dl" | "blockquote" => style.margin = [8.0, 0.0, 8.0, 0.0],
        "li" => style.padding[3] = 16.0,
        "body" => style.margin = [8.0; 4],
        "hr" => {
            style.height = Dimension::Px(2.0);
            style.background = Some(Color::rgb(128, 128, 128));
            style.margin = [4.0, 0.0, 4.0, 0.0];
        }
        _ => {}
    }
    if matches!(name, "b" | "strong" | "th") {
        style.bold = true;
    }
    if name == "th" {
        style.text_align = TextAlign::Center;
    }
    if name == "a" {
        style.color = Color::rgb(0, 0, 238);
    }
    if name == "center" {
        style.text_align = TextAlign::Center;
    }
}

/// Legacy HTML presentational attributes, applied below author CSS.
fn apply_presentational_attrs(doc: &Document, id: NodeId, style: &mut ComputedStyle) {
    if let Some(w) = doc.attr(id, "width") {
        if let Some(d) = Dimension::parse(w, style.font_size) {
            style.width = d;
        }
    }
    if let Some(h) = doc.attr(id, "height") {
        if let Some(d) = Dimension::parse(h, style.font_size) {
            style.height = d;
        }
    }
    if let Some(bg) = doc.attr(id, "bgcolor") {
        style.background = Color::parse(bg);
    }
    if let Some(align) = doc.attr(id, "align") {
        style.text_align = match align.to_ascii_lowercase().as_str() {
            "center" => TextAlign::Center,
            "right" => TextAlign::Right,
            _ => TextAlign::Left,
        };
    }
    if let Some(border) = doc.attr(id, "border") {
        if let Ok(px) = border.trim().parse::<f32>() {
            style.border_width = px;
        }
    }
    if doc.is_element_named(id, "font") {
        if let Some(color) = doc.attr(id, "color").and_then(Color::parse) {
            style.color = color;
        }
    }
}

/// Applies one declaration to a computed style.
pub fn apply_declaration(style: &mut ComputedStyle, decl: &Declaration) {
    let v = decl.value.as_str();
    match decl.property.as_str() {
        "display" => {
            style.display = match v.to_ascii_lowercase().as_str() {
                "none" => Display::None,
                "inline" => Display::Inline,
                "inline-block" => Display::InlineBlock,
                "table" => Display::Table,
                "table-row" => Display::TableRow,
                "table-cell" => Display::TableCell,
                _ => Display::Block,
            }
        }
        "width" => {
            if let Some(d) = Dimension::parse(v, style.font_size) {
                style.width = d;
            }
        }
        "height" => {
            if let Some(d) = Dimension::parse(v, style.font_size) {
                style.height = d;
            }
        }
        "margin" => apply_box_shorthand(v, style.font_size, &mut style.margin),
        "margin-top" => apply_box_side(v, style.font_size, &mut style.margin, 0),
        "margin-right" => apply_box_side(v, style.font_size, &mut style.margin, 1),
        "margin-bottom" => apply_box_side(v, style.font_size, &mut style.margin, 2),
        "margin-left" => apply_box_side(v, style.font_size, &mut style.margin, 3),
        "padding" => apply_box_shorthand(v, style.font_size, &mut style.padding),
        "padding-top" => apply_box_side(v, style.font_size, &mut style.padding, 0),
        "padding-right" => apply_box_side(v, style.font_size, &mut style.padding, 1),
        "padding-bottom" => apply_box_side(v, style.font_size, &mut style.padding, 2),
        "padding-left" => apply_box_side(v, style.font_size, &mut style.padding, 3),
        "border" => {
            // e.g. `1px solid #ccc`
            for part in v.split_whitespace() {
                if let Some(Dimension::Px(px)) = Dimension::parse(part, style.font_size) {
                    style.border_width = px;
                } else if let Some(c) = Color::parse(part) {
                    style.border_color = c;
                }
            }
        }
        "border-width" => {
            if let Some(Dimension::Px(px)) = Dimension::parse(v, style.font_size) {
                style.border_width = px;
            }
        }
        "border-color" => {
            if let Some(c) = Color::parse(v) {
                style.border_color = c;
            }
        }
        "background" | "background-color" => {
            if v.eq_ignore_ascii_case("none") || v.eq_ignore_ascii_case("transparent") {
                style.background = None;
            } else {
                // For `background: #fff url(x) repeat-x` keep the color part.
                for part in v.split_whitespace() {
                    if let Some(c) = Color::parse(part) {
                        style.background = Some(c);
                        break;
                    }
                }
            }
        }
        "color" => {
            if let Some(c) = Color::parse(v) {
                style.color = c;
            }
        }
        "font-size" => {
            if let Some(Dimension::Px(px)) = Dimension::parse(v, style.font_size) {
                style.font_size = px;
            }
        }
        "font-weight" => {
            style.bold = matches!(v.to_ascii_lowercase().as_str(), "bold" | "bolder")
                || v.parse::<u32>().map(|w| w >= 600).unwrap_or(false);
        }
        "text-align" => {
            style.text_align = match v.to_ascii_lowercase().as_str() {
                "center" => TextAlign::Center,
                "right" => TextAlign::Right,
                _ => TextAlign::Left,
            }
        }
        "line-height" => {
            if let Ok(factor) = v.parse::<f32>() {
                style.line_height = factor;
            } else if let Some(Dimension::Px(px)) = Dimension::parse(v, style.font_size) {
                if style.font_size > 0.0 {
                    style.line_height = px / style.font_size;
                }
            }
        }
        "visibility" if v.eq_ignore_ascii_case("hidden") => {
            style.display = Display::None;
        }
        _ => {} // unsupported property: ignore
    }
}

fn apply_box_shorthand(value: &str, font_size: f32, sides: &mut [f32; 4]) {
    let parts: Vec<f32> = value
        .split_whitespace()
        .filter_map(|p| match Dimension::parse(p, font_size) {
            Some(Dimension::Px(px)) => Some(px),
            Some(Dimension::Auto) => Some(0.0),
            _ => None,
        })
        .collect();
    match parts.len() {
        1 => *sides = [parts[0]; 4],
        2 => *sides = [parts[0], parts[1], parts[0], parts[1]],
        3 => *sides = [parts[0], parts[1], parts[2], parts[1]],
        4 => *sides = [parts[0], parts[1], parts[2], parts[3]],
        _ => {}
    }
}

fn apply_box_side(value: &str, font_size: f32, sides: &mut [f32; 4], index: usize) {
    if let Some(Dimension::Px(px)) = Dimension::parse(value, font_size) {
        sides[index] = px;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msite_html::parse_document;

    #[test]
    fn parse_basic_sheet() {
        let sheet = Stylesheet::parse(
            "/* comment */ td { color: #333; padding: 2px 4px } .x, .y { display:none; }",
        );
        assert_eq!(sheet.rules.len(), 2);
        assert_eq!(sheet.rules[0].declarations.len(), 2);
        assert_eq!(sheet.declaration_count(), 3);
    }

    #[test]
    fn malformed_rules_skipped() {
        let sheet = Stylesheet::parse("{} ..bad { color: red } ok { color: blue }");
        assert_eq!(sheet.rules.len(), 1);
    }

    #[test]
    fn at_rules_ignored() {
        let sheet = Stylesheet::parse("@media screen { } p { color: red }");
        // The @media block's inner braces confuse no one: the first {}
        // pair is consumed, then `p` parses.
        assert!(sheet.rules.iter().any(|r| !r.declarations.is_empty()));
    }

    #[test]
    fn dimension_parsing() {
        assert_eq!(Dimension::parse("auto", 10.0), Some(Dimension::Auto));
        assert_eq!(
            Dimension::parse("50%", 10.0),
            Some(Dimension::Percent(50.0))
        );
        assert_eq!(Dimension::parse("12px", 10.0), Some(Dimension::Px(12.0)));
        assert_eq!(Dimension::parse("2em", 10.0), Some(Dimension::Px(20.0)));
        assert_eq!(Dimension::parse("12pt", 10.0), Some(Dimension::Px(16.0)));
        assert_eq!(Dimension::parse("7", 10.0), Some(Dimension::Px(7.0)));
        assert_eq!(Dimension::parse("x", 10.0), None);
    }

    #[test]
    fn dimension_resolution() {
        assert_eq!(Dimension::Auto.resolve(100.0, 42.0), 42.0);
        assert_eq!(Dimension::Px(7.0).resolve(100.0, 42.0), 7.0);
        assert_eq!(Dimension::Percent(25.0).resolve(200.0, 42.0), 50.0);
    }

    fn style_of(doc: &Document, sheet: &Stylesheet, selector: &str) -> ComputedStyle {
        let hits = SelectorList::parse(selector)
            .unwrap()
            .select(doc, doc.root());
        compute_styles(doc, sheet)[hits[0].index()].clone()
    }

    #[test]
    fn cascade_specificity_wins() {
        let doc = parse_document(r#"<div id="a" class="b">x</div>"#);
        let sheet = Stylesheet::parse("div { color: red } .b { color: green } #a { color: blue }");
        let s = style_of(&doc, &sheet, "#a");
        assert_eq!(s.color, Color::rgb(0, 0, 255));
    }

    #[test]
    fn later_rule_wins_at_equal_specificity() {
        let doc = parse_document(r#"<p class="x">t</p>"#);
        let sheet = Stylesheet::parse(".x { color: red } .x { color: green }");
        assert_eq!(style_of(&doc, &sheet, "p").color, Color::rgb(0, 128, 0));
    }

    #[test]
    fn inline_style_beats_everything() {
        let doc = parse_document(r#"<p id="i" style="color: #111">t</p>"#);
        let sheet = Stylesheet::parse("#i { color: #222 }");
        assert_eq!(
            style_of(&doc, &sheet, "p").color,
            Color::rgb(0x11, 0x11, 0x11)
        );
    }

    #[test]
    fn inheritance_of_color_and_font() {
        let doc = parse_document(r#"<div class="o"><span>t</span></div>"#);
        let sheet = Stylesheet::parse(".o { color: maroon; font-size: 20px }");
        let s = style_of(&doc, &sheet, "span");
        assert_eq!(s.color, Color::rgb(128, 0, 0));
        assert_eq!(s.font_size, 20.0);
        assert_eq!(s.display, Display::Inline);
    }

    #[test]
    fn non_inherited_props_reset() {
        let doc = parse_document(r#"<div class="o"><p>t</p></div>"#);
        let sheet = Stylesheet::parse(".o { background: #eee; border: 2px solid #000 }");
        let s = style_of(&doc, &sheet, "p");
        assert_eq!(s.background, None);
        assert_eq!(s.border_width, 0.0);
    }

    #[test]
    fn ua_defaults_applied() {
        let doc = parse_document("<h1>t</h1><b>b</b><a href=x>a</a><script>s</script>");
        let sheet = Stylesheet::default();
        let styles = compute_styles(&doc, &sheet);
        let h1 = doc.elements_by_tag(doc.root(), "h1")[0];
        assert!(styles[h1.index()].bold);
        assert_eq!(styles[h1.index()].font_size, 26.0);
        let a = doc.elements_by_tag(doc.root(), "a")[0];
        assert_eq!(styles[a.index()].display, Display::Inline);
        let script = doc.elements_by_tag(doc.root(), "script")[0];
        assert_eq!(styles[script.index()].display, Display::None);
    }

    #[test]
    fn presentational_attributes() {
        let doc = parse_document(
            r##"<table width="100%" border="1" bgcolor="#abcdef" align="center"><tr><td width="728">x</td></tr></table>"##,
        );
        let styles = compute_styles(&doc, &Stylesheet::default());
        let table = doc.elements_by_tag(doc.root(), "table")[0];
        let s = &styles[table.index()];
        assert_eq!(s.width, Dimension::Percent(100.0));
        assert_eq!(s.border_width, 1.0);
        assert_eq!(s.background, Some(Color::rgb(0xab, 0xcd, 0xef)));
        assert_eq!(s.text_align, TextAlign::Center);
        let td = doc.elements_by_tag(doc.root(), "td")[0];
        assert_eq!(styles[td.index()].width, Dimension::Px(728.0));
    }

    #[test]
    fn author_css_beats_presentational() {
        let doc = parse_document(r#"<td width="100" class="w">x</td>"#);
        let sheet = Stylesheet::parse(".w { width: 200px }");
        assert_eq!(style_of(&doc, &sheet, "td").width, Dimension::Px(200.0));
    }

    #[test]
    fn shorthand_box_values() {
        let mut s = ComputedStyle::default();
        apply_declaration(
            &mut s,
            &Declaration {
                property: "margin".into(),
                value: "1px 2px 3px 4px".into(),
            },
        );
        assert_eq!(s.margin, [1.0, 2.0, 3.0, 4.0]);
        apply_declaration(
            &mut s,
            &Declaration {
                property: "padding".into(),
                value: "5px 10px".into(),
            },
        );
        assert_eq!(s.padding, [5.0, 10.0, 5.0, 10.0]);
        apply_declaration(
            &mut s,
            &Declaration {
                property: "margin".into(),
                value: "7px".into(),
            },
        );
        assert_eq!(s.margin, [7.0; 4]);
    }

    #[test]
    fn important_suffix_stripped() {
        let decls = parse_declarations("color: red !important; x:;");
        assert_eq!(decls.len(), 1);
        assert_eq!(decls[0].value, "red");
    }

    #[test]
    fn font_weight_numeric() {
        let mut s = ComputedStyle::default();
        apply_declaration(
            &mut s,
            &Declaration {
                property: "font-weight".into(),
                value: "700".into(),
            },
        );
        assert!(s.bold);
        apply_declaration(
            &mut s,
            &Declaration {
                property: "font-weight".into(),
                value: "400".into(),
            },
        );
        assert!(!s.bold);
    }

    #[test]
    fn text_node_inherits_parent_style() {
        let doc = parse_document(r#"<div style="color:#123456">text</div>"#);
        let styles = compute_styles(&doc, &Stylesheet::default());
        let div = doc.elements_by_tag(doc.root(), "div")[0];
        let text = doc.children(div).next().unwrap();
        assert_eq!(styles[text.index()].color, Color::rgb(0x12, 0x34, 0x56));
    }
}
