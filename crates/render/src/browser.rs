//! The server-side browser facade — this reproduction's stand-in for the
//! embedded WebKit instance of the paper.
//!
//! A [`Browser`] bundles the whole pipeline (tidy → parse → cascade →
//! layout → paint) behind one call, and models the *cost* of bringing up
//! a full browser process, which is the quantity Figure 7 turns on: the
//! Highlight baseline pays [`Browser::launch`] per request, the m.Site
//! proxy pays it only when a graphical render is unavoidable.
//!
//! The launch cost is real CPU spin (not sleep), so throughput
//! experiments contend for cores exactly like real browser instances
//! would. The default of 250 ms approximates Qt/WebKit process spawn +
//! engine init on the paper's 2012 dual-core testbed; see DESIGN.md §2.

use crate::canvas::Canvas;
use crate::css::{compute_styles, Stylesheet};
use crate::layout::{layout_document, LayoutTree};
use crate::paint::paint;
use msite_html::{tidy, Document};
use std::time::{Duration, Instant};

/// How expensive instantiating a browser is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartupCost {
    /// Free: for unit tests and for pipeline-only uses.
    None,
    /// Spin the CPU for this long, modeling process spawn + engine init.
    Busy(Duration),
}

/// Browser configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowserConfig {
    /// Viewport width in px used for layout.
    pub viewport_width: u32,
    /// Cap on rendered page height in px.
    pub max_page_height: u32,
    /// Instantiation cost model.
    pub startup_cost: StartupCost,
}

impl Default for BrowserConfig {
    fn default() -> Self {
        BrowserConfig {
            viewport_width: 1024,
            max_page_height: 8192,
            startup_cost: StartupCost::None,
        }
    }
}

impl BrowserConfig {
    /// Configuration that models the paper's testbed: full-size desktop
    /// viewport and a 250 ms instance startup.
    pub fn paper_testbed() -> Self {
        BrowserConfig {
            viewport_width: 1024,
            max_page_height: 8192,
            startup_cost: StartupCost::Busy(Duration::from_millis(250)),
        }
    }
}

/// Everything a full render produces.
#[derive(Debug, Clone)]
pub struct RenderResult {
    /// The tidied document that was rendered (for geometry queries).
    pub doc: Document,
    /// Positioned boxes; use [`LayoutTree::rect_of`] for image maps.
    pub layout: LayoutTree,
    /// The rasterized page.
    pub canvas: Canvas,
}

/// A server-side browser instance.
///
/// # Examples
///
/// ```
/// use msite_render::browser::{Browser, BrowserConfig};
///
/// let browser = Browser::launch(BrowserConfig::default());
/// let result = browser.render_page("<body><h1>Forum</h1></body>", &[]);
/// assert!(result.canvas.height() > 0);
/// ```
#[derive(Debug)]
pub struct Browser {
    config: BrowserConfig,
    launched_in: Duration,
    pages_rendered: std::sync::atomic::AtomicU64,
}

impl Browser {
    /// Instantiates a browser, paying the configured startup cost.
    pub fn launch(config: BrowserConfig) -> Browser {
        let start = Instant::now();
        if let StartupCost::Busy(duration) = config.startup_cost {
            spin_for(duration);
        }
        Browser {
            config,
            launched_in: start.elapsed(),
            pages_rendered: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The configuration this instance runs.
    pub fn config(&self) -> &BrowserConfig {
        &self.config
    }

    /// How long instantiation took.
    pub fn launched_in(&self) -> Duration {
        self.launched_in
    }

    /// Pages rendered by this instance.
    pub fn pages_rendered(&self) -> u64 {
        self.pages_rendered
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Full pipeline: tidy, parse, cascade (inline `<style>` blocks plus
    /// `extra_css` external sheets), layout and paint.
    pub fn render_page(&self, html: &str, extra_css: &[&str]) -> RenderResult {
        let doc = tidy::tidy(html);
        let mut css_source = String::new();
        for style_el in doc.elements_by_tag(doc.root(), "style") {
            css_source.push_str(&doc.text_content(style_el));
            css_source.push('\n');
        }
        for extra in extra_css {
            css_source.push_str(extra);
            css_source.push('\n');
        }
        let sheet = Stylesheet::parse(&css_source);
        let styles = compute_styles(&doc, &sheet);
        let layout = layout_document(&doc, &styles, self.config.viewport_width as f32);
        let canvas = paint(&layout, self.config.max_page_height);
        self.pages_rendered
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        RenderResult {
            doc,
            layout,
            canvas,
        }
    }
}

/// Burns CPU for `duration` doing real work (FNV hashing), so that
/// concurrent launches contend for cores like real processes.
fn spin_for(duration: Duration) {
    let start = Instant::now();
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    while start.elapsed() < duration {
        for i in 0..4096u64 {
            acc ^= i;
            acc = acc.wrapping_mul(0x1000_0000_01b3);
        }
        std::hint::black_box(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_launch_is_fast() {
        let b = Browser::launch(BrowserConfig::default());
        assert!(b.launched_in() < Duration::from_millis(50));
    }

    #[test]
    fn busy_launch_takes_configured_time() {
        let config = BrowserConfig {
            startup_cost: StartupCost::Busy(Duration::from_millis(30)),
            ..Default::default()
        };
        let b = Browser::launch(config);
        assert!(b.launched_in() >= Duration::from_millis(30));
        assert!(b.launched_in() < Duration::from_millis(500));
    }

    #[test]
    fn render_counts_pages() {
        let b = Browser::launch(BrowserConfig::default());
        b.render_page("<p>one</p>", &[]);
        b.render_page("<p>two</p>", &[]);
        assert_eq!(b.pages_rendered(), 2);
    }

    #[test]
    fn inline_style_blocks_used() {
        let b = Browser::launch(BrowserConfig::default());
        let result = b.render_page(
            "<html><head><style>body{margin:0} div{background:#ff0000;height:10px}</style></head>\
             <body><div></div></body></html>",
            &[],
        );
        assert_eq!(result.canvas.get(5, 5), crate::geom::Color::rgb(255, 0, 0));
    }

    #[test]
    fn extra_css_applied() {
        let b = Browser::launch(BrowserConfig::default());
        let result = b.render_page(
            "<body><div id=x></div></body>",
            &["body{margin:0} #x{background:#00ff00;height:5px}"],
        );
        assert_eq!(result.canvas.get(2, 2), crate::geom::Color::rgb(0, 255, 0));
    }

    #[test]
    fn geometry_queryable_after_render() {
        let b = Browser::launch(BrowserConfig::default());
        let result = b.render_page(
            "<body><div id=target style=\"height:42px\">x</div></body>",
            &["body{margin:0}"],
        );
        let target = result.doc.element_by_id("target").unwrap();
        let rect = result.layout.rect_of(target).unwrap();
        assert_eq!(rect.h, 42.0);
    }
}
