//! PNG encoding with a from-scratch DEFLATE compressor.
//!
//! The snapshot attribute's whole point is shipping a *small* image to the
//! device, so the encoder compresses for real: LZ77 with hash-chain match
//! search over a 32 KiB window, emitted with the fixed Huffman codes of
//! RFC 1951, wrapped in zlib (RFC 1950) and PNG chunks. Synthetic page
//! renders are dominated by flat runs, which this compresses by 50–200×.

use crate::canvas::Canvas;
use msite_support::swar;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Cumulative [`encode`] call count, for the `/metrics` exposition.
static ENCODE_CALLS: AtomicU64 = AtomicU64::new(0);
/// Cumulative wall-clock microseconds spent inside [`encode`].
static ENCODE_MICROS: AtomicU64 = AtomicU64::new(0);

/// Process-wide `(calls, microseconds)` totals across every [`encode`]
/// call, consumed by the proxy's observability sync so PNG cost shows
/// up as `msite_png_encodes_total` / `msite_png_encode_micros`.
pub fn encode_totals() -> (u64, u64) {
    (
        ENCODE_CALLS.load(Ordering::Relaxed),
        ENCODE_MICROS.load(Ordering::Relaxed),
    )
}

/// Encodes a canvas as a truecolor (8-bit RGB) PNG.
///
/// # Examples
///
/// ```
/// use msite_render::{Canvas, Color, png};
///
/// let canvas = Canvas::new(64, 64, Color::WHITE);
/// let bytes = png::encode(&canvas);
/// assert_eq!(&bytes[..8], &[0x89, b'P', b'N', b'G', b'\r', b'\n', 0x1A, b'\n']);
/// assert!(bytes.len() < 64 * 64 * 3); // compression actually happened
/// ```
pub fn encode(canvas: &Canvas) -> Vec<u8> {
    let started = Instant::now();
    // Raw scanlines, each prefixed with filter type 0 (None).
    let width = canvas.width() as usize;
    let stride = width * 3;
    let mut raw = Vec::with_capacity((stride + 1) * canvas.height() as usize);
    for row in canvas.pixels().chunks_exact(stride) {
        raw.push(0u8);
        raw.extend_from_slice(row);
    }
    let compressed = zlib_compress(&raw);

    let mut out = Vec::with_capacity(compressed.len() + 128);
    out.extend_from_slice(&[0x89, b'P', b'N', b'G', b'\r', b'\n', 0x1A, b'\n']);
    let mut ihdr = Vec::with_capacity(13);
    ihdr.extend_from_slice(&canvas.width().to_be_bytes());
    ihdr.extend_from_slice(&canvas.height().to_be_bytes());
    ihdr.extend_from_slice(&[8, 2, 0, 0, 0]); // depth 8, color RGB
    write_chunk(&mut out, b"IHDR", &ihdr);
    write_chunk(&mut out, b"IDAT", &compressed);
    write_chunk(&mut out, b"IEND", &[]);
    ENCODE_CALLS.fetch_add(1, Ordering::Relaxed);
    ENCODE_MICROS.fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
    out
}

fn write_chunk(out: &mut Vec<u8>, kind: &[u8; 4], data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_be_bytes());
    out.extend_from_slice(kind);
    out.extend_from_slice(data);
    let mut crc = Crc32::new();
    crc.update(kind);
    crc.update(data);
    out.extend_from_slice(&crc.finish().to_be_bytes());
}

/// Compresses `data` into a zlib stream (deflate with fixed Huffman).
pub fn zlib_compress(data: &[u8]) -> Vec<u8> {
    let mut out = vec![0x78, 0x9C]; // CMF/FLG, (0x789C % 31 == 0)
    deflate_fixed(data, &mut out, false);
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// Per-byte/per-bit twin of [`zlib_compress`]: same LZ77 search and
/// fixed-Huffman coding without the word-at-a-time match extension or
/// the reversed-code table. The identity gates pin the two byte-equal.
#[doc(hidden)]
pub fn zlib_compress_scalar(data: &[u8]) -> Vec<u8> {
    let mut out = vec![0x78, 0x9C];
    deflate_fixed(data, &mut out, true);
    out.extend_from_slice(&adler32_scalar(data).to_be_bytes());
    out
}

// -------------------------------------------------------------------
// Checksums
// -------------------------------------------------------------------

/// The CRC-32 (IEEE, reflected) polynomial in its shifted form.
const CRC_POLY: u32 = 0xEDB8_8320;

/// One bitwise table entry: eight shift-and-conditional-xor rounds.
const fn crc_entry(index: u32) -> u32 {
    let mut x = index;
    let mut bit = 0;
    while bit < 8 {
        x = if x & 1 != 0 {
            (x >> 1) ^ CRC_POLY
        } else {
            x >> 1
        };
        bit += 1;
    }
    x
}

/// Slicing-by-8 lookup tables, built at compile time. `CRC_TABLES[0]` is
/// the classic byte-at-a-time table; table `k` advances a byte through
/// `k` further zero bytes, letting [`Crc32::update`] fold eight input
/// bytes per iteration with no data dependence between the lookups.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        tables[0][i] = crc_entry(i as u32);
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// Streaming CRC-32 (IEEE, reflected) used by PNG chunks.
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes through the slicing-by-8 tables: eight bytes per
    /// iteration, one table lookup each, byte-identical to
    /// [`Crc32::update_bitwise`].
    pub fn update(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(8);
        let mut state = self.state;
        for chunk in chunks.by_ref() {
            let low = state ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            state = CRC_TABLES[7][(low & 0xFF) as usize]
                ^ CRC_TABLES[6][((low >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[5][((low >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[4][(low >> 24) as usize]
                ^ CRC_TABLES[3][chunk[4] as usize]
                ^ CRC_TABLES[2][chunk[5] as usize]
                ^ CRC_TABLES[1][chunk[6] as usize]
                ^ CRC_TABLES[0][chunk[7] as usize];
        }
        for &byte in chunks.remainder() {
            state = (state >> 8) ^ CRC_TABLES[0][((state ^ byte as u32) & 0xFF) as usize];
        }
        self.state = state;
    }

    /// The original per-bit inner loop, kept as the scalar reference the
    /// identity gates and the `hotpath` bench baseline run against.
    #[doc(hidden)]
    pub fn update_bitwise(&mut self, data: &[u8]) {
        for &byte in data {
            let mut x = (self.state ^ byte as u32) & 0xFF;
            for _ in 0..8 {
                x = if x & 1 != 0 {
                    (x >> 1) ^ CRC_POLY
                } else {
                    x >> 1
                };
            }
            self.state = (self.state >> 8) ^ x;
        }
    }

    /// Finalizes and returns the checksum.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// Adler-32 checksum used by the zlib wrapper.
///
/// The per-byte reference is a serial two-deep dependence chain
/// (`a += d; b += a`), which caps it at ~2 cycles/byte. This form
/// rewrites each 5552-byte chunk in closed form —
/// `b' = b + n·a + n·Σdᵢ − Σi·dᵢ` and `a' = a + Σdᵢ` — so the loop
/// body is two *independent* integer reductions the compiler is free
/// to unroll with parallel accumulators (integer addition
/// reassociates; the serial chain is gone). The 5552-byte chunk is
/// the standard largest span for which the sums cannot overflow
/// before the modulo; in `u64` the bound holds with room to spare.
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u64 = 65_521;
    let mut a: u64 = 1;
    let mut b: u64 = 0;
    for chunk in data.chunks(5552) {
        let n = chunk.len() as u64;
        // Split the chunk into 16-byte blocks and decompose
        // Σi·dᵢ = 16·Σ_b b·S_b + Σ_k k·C_k, where S_b is block b's sum
        // and C_k is the column sum of lane k across blocks. Column
        // sums are plain lane-wise adds (vectorizable on baseline
        // SSE2, which has no 32-bit vector multiply), and Σ_b b·S_b
        // comes out of Abel summation — B·s − Σ_j s_j — so the hot
        // loop contains no multiplies at all. All accumulators stay in
        // u32: over one chunk, C_k ≤ 347·255, s ≤ 5552·255 ≈ 1.4e6,
        // and t = Σ_j s_j ≤ 347·1.4e6 ≈ 4.9e8.
        let mut col = [0u32; 16];
        let mut s: u32 = 0; // running byte sum within the chunk
        let mut t: u32 = 0; // Σ of `s` sampled after each block
        let mut nblocks: u64 = 0;
        let mut blocks = chunk.chunks_exact(16);
        for blk in blocks.by_ref() {
            for (c, &x) in col.iter_mut().zip(blk) {
                *c += u32::from(x);
            }
            s += blk.iter().map(|&x| u32::from(x)).sum::<u32>();
            t += s;
            nblocks += 1;
        }
        let mut si: u64 = 16 * (nblocks * u64::from(s) - u64::from(t));
        for (k, &c) in col.iter().enumerate() {
            si += k as u64 * u64::from(c);
        }
        let mut sum = u64::from(s);
        for (j, &x) in blocks.remainder().iter().enumerate() {
            si += (nblocks * 16 + j as u64) * u64::from(x);
            sum += u64::from(x);
        }
        // Each d_i appears in (n - i) of the chunk's partial sums, so
        // the chunk's contribution to `b` is n·a + Σ(n-i)·d_i, and
        // Σ(n-i)·d_i = n·sum - si (non-negative: si ≤ (n-1)·sum).
        b = (b + n * a + n * sum - si) % MOD;
        a = (a + sum) % MOD;
    }
    ((b as u32) << 16) | a as u32
}

/// The original byte-at-a-time Adler-32, kept as the identity-gate
/// reference and the `hotpath` bench baseline.
#[doc(hidden)]
pub fn adler32_scalar(data: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += byte as u32;
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

// -------------------------------------------------------------------
// DEFLATE (fixed Huffman) with LZ77 hash-chain matcher
// -------------------------------------------------------------------

/// Bit-reversed bytes: `REV8[b]` is `b` with its eight bits mirrored.
/// Two lookups reverse a 16-bit code, replacing the per-bit loop in the
/// Huffman emit path.
const REV8: [u8; 256] = {
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let mut x = i as u8;
        x = x.rotate_left(4);
        x = ((x & 0xCC) >> 2) | ((x & 0x33) << 2);
        x = ((x & 0xAA) >> 1) | ((x & 0x55) << 1);
        table[i] = x;
        i += 1;
    }
    table
};

struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    bit_buf: u32,
    bit_count: u32,
    /// `true` routes [`BitWriter::write_code`] through the original
    /// per-bit reversal loop instead of the [`REV8`] table.
    scalar: bool,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut Vec<u8>, scalar: bool) -> Self {
        BitWriter {
            out,
            bit_buf: 0,
            bit_count: 0,
            scalar,
        }
    }

    /// Writes `n` bits LSB-first (deflate's "data element" order).
    fn write_bits(&mut self, value: u32, n: u32) {
        self.bit_buf |= value << self.bit_count;
        self.bit_count += n;
        while self.bit_count >= 8 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Writes a Huffman code: bits go out MSB-of-code first. Fixed
    /// Huffman codes are at most 9 bits, so reversing the low 16 bits
    /// of `code` and shifting right by `16 - n` mirrors exactly the
    /// `n` bits that matter.
    fn write_code(&mut self, code: u32, n: u32) {
        let reversed = if self.scalar {
            let mut r = 0u32;
            for i in 0..n {
                if code & (1 << i) != 0 {
                    r |= 1 << (n - 1 - i);
                }
            }
            r
        } else {
            let mirrored = ((REV8[(code & 0xFF) as usize] as u32) << 8)
                | REV8[((code >> 8) & 0xFF) as usize] as u32;
            mirrored >> (16 - n)
        };
        self.write_bits(reversed, n);
    }

    fn flush(&mut self) {
        if self.bit_count > 0 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf = 0;
            self.bit_count = 0;
        }
    }
}

/// Length code table: (code, extra_bits, base_length).
const LENGTH_CODES: [(u32, u32, u32); 29] = [
    (257, 0, 3),
    (258, 0, 4),
    (259, 0, 5),
    (260, 0, 6),
    (261, 0, 7),
    (262, 0, 8),
    (263, 0, 9),
    (264, 0, 10),
    (265, 1, 11),
    (266, 1, 13),
    (267, 1, 15),
    (268, 1, 17),
    (269, 2, 19),
    (270, 2, 23),
    (271, 2, 27),
    (272, 2, 31),
    (273, 3, 35),
    (274, 3, 43),
    (275, 3, 51),
    (276, 3, 59),
    (277, 4, 67),
    (278, 4, 83),
    (279, 4, 99),
    (280, 4, 115),
    (281, 5, 131),
    (282, 5, 163),
    (283, 5, 195),
    (284, 5, 227),
    (285, 0, 258),
];

/// Distance code table: (code, extra_bits, base_distance).
const DIST_CODES: [(u32, u32, u32); 30] = [
    (0, 0, 1),
    (1, 0, 2),
    (2, 0, 3),
    (3, 0, 4),
    (4, 1, 5),
    (5, 1, 7),
    (6, 2, 9),
    (7, 2, 13),
    (8, 3, 17),
    (9, 3, 25),
    (10, 4, 33),
    (11, 4, 49),
    (12, 5, 65),
    (13, 5, 97),
    (14, 6, 129),
    (15, 6, 193),
    (16, 7, 257),
    (17, 7, 385),
    (18, 8, 513),
    (19, 8, 769),
    (20, 9, 1025),
    (21, 9, 1537),
    (22, 10, 2049),
    (23, 10, 3073),
    (24, 11, 4097),
    (25, 11, 6145),
    (26, 12, 8193),
    (27, 12, 12289),
    (28, 13, 16385),
    (29, 13, 24577),
];

const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const HASH_BITS: u32 = 15;
const MAX_CHAIN: usize = 48;

fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Emits one fixed-Huffman deflate block containing all of `data`.
///
/// `scalar` selects the per-byte match extension and per-bit code
/// reversal; the fast path extends matches a word at a time with
/// [`swar::common_prefix_len`]. Both produce the same bitstream.
fn deflate_fixed(data: &[u8], out: &mut Vec<u8>, scalar: bool) {
    let mut writer = BitWriter::new(out, scalar);
    writer.write_bits(1, 1); // BFINAL
    writer.write_bits(1, 2); // BTYPE=01 fixed Huffman

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len().max(1)];

    let hashable_end = data.len().saturating_sub(MIN_MATCH - 1);
    let mut i = 0;
    while i < data.len() {
        // Search the hash chain for the longest match behind `i`.
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i < hashable_end {
            let h = hash3(data, i);
            let mut candidate = head[h];
            let mut chain = 0;
            while candidate != usize::MAX && i - candidate <= WINDOW && chain < MAX_CHAIN {
                let limit = (data.len() - i).min(MAX_MATCH);
                let len = if scalar {
                    let mut len = 0usize;
                    while len < limit && data[candidate + len] == data[i + len] {
                        len += 1;
                    }
                    len
                } else {
                    // The slices may overlap (run matches with small
                    // distance); that only means the comparison reads
                    // the same bytes twice, which is exactly what the
                    // byte loop does.
                    swar::common_prefix_len(
                        &data[candidate..candidate + limit],
                        &data[i..i + limit],
                    )
                };
                if len > best_len {
                    best_len = len;
                    best_dist = i - candidate;
                    if len >= MAX_MATCH {
                        break;
                    }
                }
                candidate = prev[candidate];
                chain += 1;
            }
        }
        let take = if best_len >= MIN_MATCH {
            emit_match(&mut writer, best_len as u32, best_dist as u32);
            best_len
        } else {
            emit_literal(&mut writer, data[i]);
            1
        };
        // Register every covered position in the hash chains so later
        // matches can point into this region. (Indexing two arrays in
        // lockstep; an iterator form would obscure it.)
        #[allow(clippy::needless_range_loop)]
        for j in i..(i + take).min(hashable_end) {
            let hj = hash3(data, j);
            prev[j] = head[hj];
            head[hj] = j;
        }
        i += take;
    }
    emit_symbol(&mut writer, 256); // end of block
    writer.flush();
}

fn emit_literal(writer: &mut BitWriter<'_>, byte: u8) {
    emit_symbol(writer, byte as u32);
}

/// Writes a literal/length symbol with the fixed Huffman code.
fn emit_symbol(writer: &mut BitWriter<'_>, symbol: u32) {
    match symbol {
        0..=143 => writer.write_code(0x30 + symbol, 8),
        144..=255 => writer.write_code(0x190 + symbol - 144, 9),
        256..=279 => writer.write_code(symbol - 256, 7),
        _ => writer.write_code(0xC0 + symbol - 280, 8),
    }
}

fn emit_match(writer: &mut BitWriter<'_>, length: u32, distance: u32) {
    let (code, extra, base) = *LENGTH_CODES
        .iter()
        .rev()
        .find(|(_, _, b)| *b <= length)
        .expect("length >= 3");
    emit_symbol(writer, code);
    if extra > 0 {
        writer.write_bits(length - base, extra);
    }
    let (dcode, dextra, dbase) = *DIST_CODES
        .iter()
        .rev()
        .find(|(_, _, b)| *b <= distance)
        .expect("distance >= 1");
    writer.write_code(dcode, 5);
    if dextra > 0 {
        writer.write_bits(distance - dbase, dextra);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Color;

    /// A test-only inflater for fixed-Huffman streams, written
    /// independently from the encoder so the round-trip test means
    /// something.
    fn inflate_fixed(mut bits: BitReader<'_>) -> Vec<u8> {
        let bfinal = bits.read_bits(1);
        assert_eq!(bfinal, 1);
        let btype = bits.read_bits(2);
        assert_eq!(btype, 1, "fixed Huffman expected");
        let mut out = Vec::new();
        loop {
            let sym = read_fixed_symbol(&mut bits);
            match sym {
                0..=255 => out.push(sym as u8),
                256 => break,
                _ => {
                    let (_, extra, base) = LENGTH_CODES
                        .iter()
                        .find(|(c, _, _)| *c == sym)
                        .copied()
                        .unwrap();
                    let length = base + bits.read_bits(extra);
                    let dcode = bits.read_code(5);
                    let (_, dextra, dbase) = DIST_CODES
                        .iter()
                        .find(|(c, _, _)| *c == dcode)
                        .copied()
                        .unwrap();
                    let dist = (dbase + bits.read_bits(dextra)) as usize;
                    let start = out.len() - dist;
                    for k in 0..length as usize {
                        let byte = out[start + k];
                        out.push(byte);
                    }
                }
            }
        }
        out
    }

    fn read_fixed_symbol(bits: &mut BitReader<'_>) -> u32 {
        // Read 7 bits first (MSB-first code space).
        let mut code = bits.read_code(7);
        if code <= 0x17 {
            return code + 256;
        }
        code = (code << 1) | bits.read_bits(1);
        if (0x30..=0xBF).contains(&code) {
            return code - 0x30;
        }
        if (0xC0..=0xC7).contains(&code) {
            return code - 0xC0 + 280;
        }
        code = (code << 1) | bits.read_bits(1);
        assert!((0x190..=0x1FF).contains(&code), "bad code {code:#x}");
        code - 0x190 + 144
    }

    struct BitReader<'a> {
        data: &'a [u8],
        pos: usize,
        bit: u32,
    }

    impl<'a> BitReader<'a> {
        fn new(data: &'a [u8]) -> Self {
            BitReader {
                data,
                pos: 0,
                bit: 0,
            }
        }

        fn read_bits(&mut self, n: u32) -> u32 {
            let mut v = 0;
            for i in 0..n {
                let byte = self.data[self.pos];
                let bit = (byte >> self.bit) & 1;
                v |= (bit as u32) << i;
                self.bit += 1;
                if self.bit == 8 {
                    self.bit = 0;
                    self.pos += 1;
                }
            }
            v
        }

        /// Reads a Huffman code MSB-first.
        fn read_code(&mut self, n: u32) -> u32 {
            let mut v = 0;
            for _ in 0..n {
                v = (v << 1) | self.read_bits(1);
            }
            v
        }
    }

    fn roundtrip(data: &[u8]) {
        let z = zlib_compress(data);
        assert_eq!(z[0], 0x78);
        assert_eq!((z[0] as u32 * 256 + z[1] as u32) % 31, 0);
        let body = &z[2..z.len() - 4];
        let decoded = inflate_fixed(BitReader::new(body));
        assert_eq!(decoded, data, "roundtrip failed for {} bytes", data.len());
        let stored_adler = u32::from_be_bytes(z[z.len() - 4..].try_into().unwrap());
        assert_eq!(stored_adler, adler32(data));
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn roundtrip_repetitive() {
        roundtrip(&vec![0u8; 10_000]);
        roundtrip(b"abcabcabcabcabcabcabcabc");
        let mut data = Vec::new();
        for i in 0..5_000u32 {
            data.push((i % 7) as u8);
        }
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_pseudorandom() {
        // Deterministic xorshift noise — worst case for LZ77.
        let mut state = 0x12345678u32;
        let mut data = Vec::with_capacity(4096);
        for _ in 0..4096 {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            data.push(state as u8);
        }
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        roundtrip(&data);
    }

    #[test]
    fn flat_data_compresses_hard() {
        let data = vec![0xABu8; 100_000];
        let z = zlib_compress(&data);
        assert!(z.len() < 2_000, "100 KB of runs -> {} bytes", z.len());
    }

    #[test]
    fn crc32_known_vectors() {
        let mut c = Crc32::new();
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xCBF4_3926);
        let mut c = Crc32::new();
        c.update(b"");
        assert_eq!(c.finish(), 0);
    }

    #[test]
    fn crc32_table_matches_bitwise_reference() {
        msite_support::prop::check("crc32 table vs bitwise", 200, 0x9E37_79B9, |g| {
            let data = g.vec(0, 300, |g| g.u8());
            // Split the feed at an arbitrary point so chunk remainders
            // and resumed state both get exercised.
            let split = g.range_usize(0, data.len() + 1);
            let mut fast = Crc32::new();
            fast.update(&data[..split]);
            fast.update(&data[split..]);
            let mut slow = Crc32::new();
            slow.update_bitwise(&data);
            assert_eq!(fast.finish(), slow.finish());
        });
    }

    #[test]
    fn adler32_known_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
        assert_eq!(adler32_scalar(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn adler32_fast_matches_scalar() {
        msite_support::prop::check("adler32 unrolled vs scalar", 120, 0x0B11_0002, |g| {
            // Long enough to cross the 5552-byte overflow chunk and
            // leave word remainders of every phase.
            let data = g.vec(0, 9_000, |g| g.u8());
            assert_eq!(adler32(&data), adler32_scalar(&data));
        });
    }

    #[test]
    fn zlib_fast_and_scalar_are_byte_identical() {
        msite_support::prop::check("zlib swar/scalar identity", 80, 0x0B11_0001, |g| {
            // Alternate run-heavy and noisy segments: runs exercise
            // overlapping match extension (distance < length), noise
            // exercises the literal path and short matches.
            let mut data = Vec::new();
            for _ in 0..g.range_usize(0, 6) {
                if g.bool() {
                    let byte = g.u8();
                    let n = g.range_usize(1, 600);
                    data.resize(data.len() + n, byte);
                } else {
                    for _ in 0..g.range_usize(1, 300) {
                        data.push(g.u8());
                    }
                }
            }
            assert_eq!(
                zlib_compress(&data),
                zlib_compress_scalar(&data),
                "{} bytes diverged",
                data.len()
            );
        });
    }

    #[test]
    fn png_structure_valid() {
        let mut canvas = Canvas::new(32, 16, Color::WHITE);
        canvas.fill_rect_px(0, 0, 16, 16, Color::rgb(10, 20, 30));
        let bytes = encode(&canvas);
        assert_eq!(
            &bytes[..8],
            &[0x89, b'P', b'N', b'G', b'\r', b'\n', 0x1A, b'\n']
        );
        // Walk the chunks, verifying lengths and CRCs.
        let mut pos = 8;
        let mut kinds = Vec::new();
        while pos < bytes.len() {
            let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let kind = &bytes[pos + 4..pos + 8];
            let data = &bytes[pos + 8..pos + 8 + len];
            let stored =
                u32::from_be_bytes(bytes[pos + 8 + len..pos + 12 + len].try_into().unwrap());
            let mut crc = Crc32::new();
            crc.update(kind);
            crc.update(data);
            assert_eq!(crc.finish(), stored);
            kinds.push(kind.to_vec());
            pos += 12 + len;
        }
        assert_eq!(
            kinds,
            vec![b"IHDR".to_vec(), b"IDAT".to_vec(), b"IEND".to_vec()]
        );
    }

    #[test]
    fn png_idat_decompresses_to_scanlines() {
        let canvas = Canvas::new(8, 4, Color::rgb(1, 2, 3));
        let bytes = encode(&canvas);
        // Extract IDAT payload.
        let idat_pos = bytes.windows(4).position(|w| w == b"IDAT").unwrap();
        let len = u32::from_be_bytes(bytes[idat_pos - 4..idat_pos].try_into().unwrap()) as usize;
        let z = &bytes[idat_pos + 4..idat_pos + 4 + len];
        let raw = inflate_fixed(BitReader::new(&z[2..]));
        assert_eq!(raw.len(), 4 * (1 + 8 * 3));
        assert_eq!(raw[0], 0); // filter byte
        assert_eq!(&raw[1..4], &[1, 2, 3]);
    }
}
