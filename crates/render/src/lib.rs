//! # msite-render
//!
//! The server-side rendering engine of the m.Site reproduction — the
//! substitute for the paper's embedded WebKit. It takes HTML + CSS and
//! produces positioned boxes and rasterized PNG snapshots, entirely in
//! safe Rust with no external codecs:
//!
//! - [`css`]: CSS-lite parsing, the cascade, computed styles;
//! - [`layout`]: block/inline/table flow layout with real text metrics;
//! - [`font`]: a 5×7 bitmap font for deterministic glyph rendering;
//! - [`canvas`]/[`mod@paint`]: a software RGB rasterizer;
//! - [`png`]: PNG encoding over a from-scratch DEFLATE compressor;
//! - [`image`]: the fidelity post-processor (scale/quantize/crop);
//! - [`browser`]: the all-in-one [`Browser`] facade with a modeled
//!   instance startup cost — the quantity the paper's Figure 7 varies.
//!
//! ```
//! use msite_render::browser::{Browser, BrowserConfig};
//! use msite_render::image::{process, ImageFormat, PostProcess};
//!
//! let browser = Browser::launch(BrowserConfig::default());
//! let page = browser.render_page(
//!     "<body><h1>Sawmill Creek</h1><p>Woodworking forums</p></body>", &[]);
//! let snapshot = process(&page.canvas, &PostProcess {
//!     scale: Some(0.5),
//!     format: ImageFormat::JpegClass { quality: 40 },
//!     ..Default::default()
//! });
//! assert!(snapshot.wire_bytes() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod browser;
pub mod canvas;
pub mod css;
pub mod font;
pub mod geom;
pub mod image;
pub mod layout;
pub mod paint;
pub mod png;

pub use browser::{Browser, BrowserConfig, RenderResult, StartupCost};
pub use canvas::Canvas;
pub use css::{compute_styles, ComputedStyle, Stylesheet};
pub use geom::{Color, Rect};
pub use image::{FidelityCaps, ImageFormat, PostProcess, ProcessedImage};
pub use layout::{layout_document, BoxContent, LayoutBox, LayoutTree};
pub use paint::paint;
