//! Painting: rasterizes a [`LayoutTree`] onto a
//! [`Canvas`].
//!
//! [`LayoutTree`]: crate::layout::LayoutTree

use crate::canvas::Canvas;
use crate::geom::{Color, Rect};
use crate::layout::{BoxContent, LayoutBox, LayoutTree};

/// Paints the layout tree onto a fresh canvas sized to the page.
///
/// The canvas height is clamped to `max_height` pixels to bound memory on
/// pathological pages; content below the clamp is simply not painted
/// (like a capped screenshot).
pub fn paint(tree: &LayoutTree, max_height: u32) -> Canvas {
    let width = (tree.viewport_width.ceil() as u32).max(1);
    let height = (tree.page_height.ceil() as u32).clamp(1, max_height);
    let mut canvas = Canvas::new(width, height, Color::WHITE);
    paint_box(&tree.root, &mut canvas);
    canvas
}

fn paint_box(layout_box: &LayoutBox, canvas: &mut Canvas) {
    let viewport = Rect::new(0.0, 0.0, canvas.width() as f32, canvas.height() as f32);
    if !layout_box.rect.intersects(&viewport) && layout_box.rect.h > 0.0 {
        // Entirely clipped; children are inside the parent rect for flow
        // layout, so the subtree can be skipped.
        return;
    }
    match &layout_box.content {
        BoxContent::Container => {
            if let Some(bg) = layout_box.style.background {
                canvas.fill_rect(&layout_box.rect, bg);
            }
            if layout_box.style.border_width > 0.0 {
                canvas.stroke_rect(
                    &layout_box.rect,
                    layout_box.style.border_width.round().max(1.0) as u32,
                    layout_box.style.border_color,
                );
            }
        }
        BoxContent::Text(text) => {
            canvas.draw_text(
                layout_box.rect.x.round() as i32,
                layout_box.rect.y.round() as i32,
                text,
                layout_box.style.font_size,
                layout_box.style.color,
            );
        }
        BoxContent::Image(_) => {
            canvas.draw_placeholder(
                &layout_box.rect,
                Color::rgb(120, 120, 120),
                Color::rgb(224, 224, 230),
            );
        }
        BoxContent::Control(kind) => {
            let fill = if kind == "submit" || kind == "button" {
                Color::rgb(221, 221, 221)
            } else {
                Color::WHITE
            };
            canvas.fill_rect(&layout_box.rect, fill);
            canvas.stroke_rect(&layout_box.rect, 1, Color::rgb(118, 118, 118));
        }
    }
    for child in &layout_box.children {
        paint_box(child, canvas);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::css::{compute_styles, Stylesheet};
    use crate::layout::layout_document;
    use msite_html::parse_document;

    fn render(html: &str, css: &str, width: f32) -> Canvas {
        let doc = parse_document(html);
        let styles = compute_styles(&doc, &Stylesheet::parse(css));
        let tree = layout_document(&doc, &styles, width);
        paint(&tree, 4096)
    }

    fn count_color(canvas: &Canvas, color: Color) -> usize {
        let mut n = 0;
        for y in 0..canvas.height() {
            for x in 0..canvas.width() {
                if canvas.get(x, y) == color {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn background_painted() {
        let canvas = render(
            "<body><div style=\"height:20px;background:#ff0000\"></div></body>",
            "body{margin:0}",
            50.0,
        );
        assert!(count_color(&canvas, Color::rgb(255, 0, 0)) >= 50 * 18);
    }

    #[test]
    fn text_painted_in_color() {
        let canvas = render(
            "<body><p style=\"color:#0000ff\">XXXX</p></body>",
            "body{margin:0} p{margin:0}",
            200.0,
        );
        assert!(count_color(&canvas, Color::rgb(0, 0, 255)) > 20);
    }

    #[test]
    fn border_painted() {
        let canvas = render(
            "<body><div style=\"height:30px;border:2px solid #00ff00\"></div></body>",
            "body{margin:0}",
            40.0,
        );
        assert!(count_color(&canvas, Color::rgb(0, 255, 0)) > 40);
        // Interior stays white.
        assert_eq!(canvas.get(20, 15), Color::WHITE);
    }

    #[test]
    fn image_placeholder_painted() {
        let canvas = render(
            "<body><img src=\"x.gif\" width=\"40\" height=\"40\"></body>",
            "body{margin:0}",
            60.0,
        );
        assert!(count_color(&canvas, Color::rgb(224, 224, 230)) > 400);
    }

    #[test]
    fn height_clamped() {
        let mut html = String::from("<body>");
        for _ in 0..500 {
            html.push_str("<div style=\"height:100px\">x</div>");
        }
        html.push_str("</body>");
        let canvas = render(&html, "body{margin:0}", 100.0);
        assert!(canvas.height() <= 4096);
    }

    #[test]
    fn deterministic_output() {
        let a = render("<body><p>stable</p></body>", "", 120.0);
        let b = render("<body><p>stable</p></body>", "", 120.0);
        assert_eq!(a.pixels(), b.pixels());
    }
}
