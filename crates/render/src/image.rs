//! The image fidelity post-processor.
//!
//! The paper: "objects can be passed to a post-processor before being made
//! available to the client, allowing for manipulations in image fidelity
//! and cropping ... a full page rendered into a high-fidelity png can
//! consume upwards of 600K; a post-processor can produce a
//! reduced-fidelity jpg at 25-50k."
//!
//! This module applies scale/quantize/crop pipelines to a [`Canvas`] and
//! produces real PNG bytes. A JPEG-class output size is *modeled* (we do
//! not ship a DCT codec): the estimate is `pixels × bits-per-pixel(q)`
//! with an entropy correction measured from the image itself, which
//! reproduces the paper's size *ratios*; see DESIGN.md §2.

use crate::canvas::Canvas;
use crate::geom::Rect;
use crate::png;

/// Output format of the post-processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageFormat {
    /// Lossless PNG (real bytes, real size).
    Png,
    /// Lossy JPEG-class artifact: pixels are quantized for display and
    /// the byte size is modeled from quality and measured entropy.
    JpegClass {
        /// Quality 1..=100 — drives both quantization and the size model.
        quality: u8,
    },
}

/// Instructions for one post-processing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PostProcess {
    /// Optional crop applied first.
    pub crop: Option<Rect>,
    /// Optional uniform scale factor (0 < f <= 1) applied second.
    pub scale: Option<f32>,
    /// Output format.
    pub format: ImageFormat,
}

impl Default for PostProcess {
    fn default() -> Self {
        PostProcess {
            crop: None,
            scale: None,
            format: ImageFormat::Png,
        }
    }
}

/// A processed image artifact ready to serve.
#[derive(Debug, Clone)]
pub struct ProcessedImage {
    /// Pixel data after crop/scale/quantize.
    pub canvas: Canvas,
    /// Encoded bytes: real PNG bytes for [`ImageFormat::Png`]; for
    /// JPEG-class output, a PNG rendition of the degraded pixels (so the
    /// artifact is still viewable) — but see [`ProcessedImage::wire_bytes`].
    pub encoded: Vec<u8>,
    /// The byte count the artifact would occupy on the wire: the encoded
    /// length for PNG, the modeled size for JPEG-class.
    pub wire_size: usize,
    /// Format the artifact represents.
    pub format: ImageFormat,
}

impl ProcessedImage {
    /// Bytes transferred to the client when this artifact is served.
    pub fn wire_bytes(&self) -> usize {
        self.wire_size
    }
}

/// Dimension + quality caps for one fidelity tier — how the adaptation
/// layer expresses "this client is on a 2G link" to the encoder. The
/// caps ride the existing [`PostProcess`] knobs: width in excess of
/// `max_width` is downscaled and the output is JPEG-class at `quality`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FidelityCaps {
    /// Widest the output may be, in pixels; wider canvases downscale.
    pub max_width: u32,
    /// JPEG-class quality (1..=100) for the tier.
    pub quality: u8,
}

impl FidelityCaps {
    /// The [`PostProcess`] run these caps imply for a canvas of
    /// `width` pixels.
    pub fn post_process(&self, width: u32) -> PostProcess {
        let scale = if width > self.max_width && width > 0 {
            Some(self.max_width as f32 / width as f32)
        } else {
            None
        };
        PostProcess {
            crop: None,
            scale,
            format: ImageFormat::JpegClass {
                quality: self.quality,
            },
        }
    }
}

/// Encodes `canvas` under a fidelity tier's caps: downscale to the
/// tier's width bound, then JPEG-class encode at the tier's quality.
///
/// # Examples
///
/// ```
/// use msite_render::{Canvas, Color};
/// use msite_render::image::{process_tiered, FidelityCaps};
///
/// let canvas = Canvas::new(640, 480, Color::WHITE);
/// let low = process_tiered(&canvas, &FidelityCaps { max_width: 160, quality: 20 });
/// let high = process_tiered(&canvas, &FidelityCaps { max_width: 1024, quality: 70 });
/// assert_eq!(low.canvas.width(), 160);
/// assert_eq!(high.canvas.width(), 640); // already under the cap
/// assert!(low.wire_bytes() < high.wire_bytes());
/// ```
pub fn process_tiered(canvas: &Canvas, caps: &FidelityCaps) -> ProcessedImage {
    process(canvas, &caps.post_process(canvas.width()))
}

/// Runs the post-processor.
///
/// # Panics
///
/// Panics if `crop` lies entirely outside the canvas.
///
/// # Examples
///
/// ```
/// use msite_render::{Canvas, Color};
/// use msite_render::image::{process, ImageFormat, PostProcess};
///
/// let canvas = Canvas::new(200, 100, Color::WHITE);
/// let full = process(&canvas, &PostProcess::default());
/// let small = process(&canvas, &PostProcess {
///     scale: Some(0.5),
///     format: ImageFormat::JpegClass { quality: 40 },
///     ..Default::default()
/// });
/// assert!(small.wire_bytes() < full.wire_bytes() || full.wire_bytes() < 2048);
/// assert_eq!(small.canvas.width(), 100);
/// ```
pub fn process(canvas: &Canvas, spec: &PostProcess) -> ProcessedImage {
    let mut work = match &spec.crop {
        Some(rect) => canvas.crop(rect),
        None => canvas.clone(),
    };
    if let Some(scale) = spec.scale {
        let scale = scale.clamp(0.01, 1.0);
        let new_width = ((work.width() as f32 * scale).round() as u32).max(1);
        if new_width < work.width() {
            work = work.downscale_to_width(new_width);
        }
    }
    match spec.format {
        ImageFormat::Png => {
            let encoded = png::encode(&work);
            let wire_size = encoded.len();
            ProcessedImage {
                canvas: work,
                encoded,
                wire_size,
                format: spec.format,
            }
        }
        ImageFormat::JpegClass { quality } => {
            let quality = quality.clamp(1, 100);
            // Quantization levels track quality: q=100 -> 256 levels,
            // q=10 -> ~26 levels.
            let levels = ((quality as u16 * 256) / 100).clamp(4, 256);
            work.quantize(levels);
            let wire_size = jpeg_size_model(&work, quality);
            let encoded = png::encode(&work);
            ProcessedImage {
                canvas: work,
                encoded,
                wire_size,
                format: spec.format,
            }
        }
    }
}

/// Models the byte size of a baseline JPEG at the given quality.
///
/// JPEG spends roughly `bpp(q)` bits per pixel on photographic content,
/// scaled by how busy the image is. We measure busyness as the mean
/// horizontal gradient magnitude (0..255) normalized so flat synthetic
/// pages land near 0.15 and noise lands near 1.0 — calibrated against
/// the libjpeg size tables for quality 25/50/75/90.
pub fn jpeg_size_model(canvas: &Canvas, quality: u8) -> usize {
    let pixels = canvas.width() as u64 * canvas.height() as u64;
    // Bits per pixel at "busyness 1.0": piecewise-linear over quality.
    let q = quality.clamp(1, 100) as f64;
    let bpp_busy = if q <= 50.0 {
        0.25 + (q / 50.0) * 0.75 // 0.25 .. 1.0
    } else {
        1.0 + ((q - 50.0) / 50.0) * 2.0 // 1.0 .. 3.0
    };
    let busyness = (mean_gradient(canvas) / 24.0).clamp(0.08, 1.0);
    let body = (pixels as f64 * bpp_busy * busyness / 8.0) as usize;
    // Fixed header/tables overhead.
    body + 640
}

fn mean_gradient(canvas: &Canvas) -> f64 {
    let w = canvas.width();
    let h = canvas.height();
    if w < 2 {
        return 0.0;
    }
    let px = canvas.pixels();
    let mut total: u64 = 0;
    let mut count: u64 = 0;
    // Sample every 4th row for speed.
    let mut y = 0;
    while y < h {
        let row = (y * w * 3) as usize;
        for x in 0..(w - 1) as usize {
            let a = px[row + x * 3] as i64;
            let b = px[row + (x + 1) * 3] as i64;
            total += (a - b).unsigned_abs();
            count += 1;
        }
        y += 4;
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Color;

    fn busy_canvas(w: u32, h: u32) -> Canvas {
        let mut c = Canvas::new(w, h, Color::WHITE);
        let mut state = 0xDEADBEEFu32;
        for y in 0..h {
            for x in 0..w {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                c.set(
                    x as i32,
                    y as i32,
                    Color::rgb(state as u8, (state >> 8) as u8, (state >> 16) as u8),
                );
            }
        }
        c
    }

    #[test]
    fn scale_halves_dimensions() {
        let c = Canvas::new(100, 80, Color::WHITE);
        let out = process(
            &c,
            &PostProcess {
                scale: Some(0.5),
                ..Default::default()
            },
        );
        assert_eq!(out.canvas.width(), 50);
        assert_eq!(out.canvas.height(), 40);
    }

    #[test]
    fn crop_then_scale() {
        let c = Canvas::new(100, 100, Color::WHITE);
        let out = process(
            &c,
            &PostProcess {
                crop: Some(Rect::new(0.0, 0.0, 60.0, 40.0)),
                scale: Some(0.5),
                ..Default::default()
            },
        );
        assert_eq!(out.canvas.width(), 30);
        assert_eq!(out.canvas.height(), 20);
    }

    #[test]
    fn png_wire_size_is_real() {
        let c = Canvas::new(64, 64, Color::WHITE);
        let out = process(&c, &PostProcess::default());
        assert_eq!(out.wire_size, out.encoded.len());
        assert!(out.encoded.starts_with(&[0x89, b'P', b'N', b'G']));
    }

    #[test]
    fn jpeg_model_monotone_in_quality() {
        let c = busy_canvas(128, 128);
        let sizes: Vec<usize> = [10u8, 25, 50, 75, 95]
            .iter()
            .map(|&q| jpeg_size_model(&c, q))
            .collect();
        for pair in sizes.windows(2) {
            assert!(pair[0] < pair[1], "{sizes:?}");
        }
    }

    #[test]
    fn jpeg_model_scales_with_busyness() {
        let flat = Canvas::new(128, 128, Color::WHITE);
        let busy = busy_canvas(128, 128);
        assert!(jpeg_size_model(&busy, 50) > 3 * jpeg_size_model(&flat, 50));
    }

    #[test]
    fn jpeg_class_quantizes_pixels() {
        let c = busy_canvas(64, 64);
        let before = c.distinct_colors();
        let out = process(
            &c,
            &PostProcess {
                format: ImageFormat::JpegClass { quality: 20 },
                ..Default::default()
            },
        );
        assert!(out.canvas.distinct_colors() < before);
    }

    #[test]
    fn tiered_encode_orders_by_caps() {
        let c = busy_canvas(640, 400);
        let tiers = [
            FidelityCaps {
                max_width: 160,
                quality: 20,
            },
            FidelityCaps {
                max_width: 320,
                quality: 40,
            },
            FidelityCaps {
                max_width: 1024,
                quality: 70,
            },
        ];
        let sizes: Vec<usize> = tiers
            .iter()
            .map(|t| process_tiered(&c, t).wire_bytes())
            .collect();
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
        // Caps wider than the canvas leave dimensions alone.
        let wide = process_tiered(
            &c,
            &FidelityCaps {
                max_width: 4096,
                quality: 70,
            },
        );
        assert_eq!(wide.canvas.width(), 640);
    }

    #[test]
    fn paper_c2_shape_high_fidelity_vs_reduced() {
        // A "full page" canvas: mostly flat with some busy rows, like a
        // rendered forum. High-fidelity PNG vs quality-40 JPEG-class at
        // half scale must shrink by roughly an order of magnitude.
        let mut page = Canvas::new(1024, 2048, Color::WHITE);
        for band in 0..32 {
            let y = band * 64;
            page.fill_rect_px(0, y, 1024, 20, Color::rgb(0x33, 0x5C, 0x8E));
            page.draw_text(
                8,
                y + 24,
                "Forum row with description text and links",
                13.0,
                Color::BLACK,
            );
        }
        let hi = process(&page, &PostProcess::default());
        let lo = process(
            &page,
            &PostProcess {
                scale: Some(0.5),
                format: ImageFormat::JpegClass { quality: 40 },
                ..Default::default()
            },
        );
        // The full forum-page experiment (C2 in EXPERIMENTS.md) shows the
        // paper's ~12-24x; this small synthetic canvas checks the shape
        // (a clear multiple) cheaply.
        assert!(
            lo.wire_bytes() * 3 < hi.wire_bytes(),
            "hi={} lo={}",
            hi.wire_bytes(),
            lo.wire_bytes()
        );
    }
}
