//! Scenario tests for the layout engine on realistic forum-era markup:
//! nested tables, mixed inline/block flows, presentational attributes —
//! the structures the snapshot pipeline must get geometrically right.

use msite_html::parse_document;
use msite_render::{compute_styles, layout_document, LayoutTree, Rect, Stylesheet};

fn layout(html: &str, css: &str, width: f32) -> (msite_html::Document, LayoutTree) {
    let doc = parse_document(html);
    let styles = compute_styles(&doc, &Stylesheet::parse(css));
    let tree = layout_document(&doc, &styles, width);
    (doc, tree)
}

fn rect(doc: &msite_html::Document, tree: &LayoutTree, id: &str) -> Rect {
    tree.rect_of(doc.element_by_id(id).unwrap())
        .unwrap_or_else(|| panic!("no box for #{id}"))
}

#[test]
fn nested_tables_nest_geometrically() {
    let (doc, tree) = layout(
        r#"<body><table id="outer" width="600"><tr><td id="cell">
           <table id="inner" width="200"><tr><td id="deep">x</td></tr></table>
           </td></tr></table></body>"#,
        "body{margin:0} td{padding:0}",
        600.0,
    );
    let outer = rect(&doc, &tree, "outer");
    let inner = rect(&doc, &tree, "inner");
    let deep = rect(&doc, &tree, "deep");
    assert_eq!(outer.w, 600.0);
    assert_eq!(inner.w, 200.0);
    // Containment: inner inside outer, deep inside inner.
    assert!(inner.x >= outer.x && inner.right() <= outer.right() + 0.01);
    assert!(deep.x >= inner.x && deep.right() <= inner.right() + 0.01);
    assert!(deep.y >= inner.y);
}

#[test]
fn three_fixed_cells_and_one_auto() {
    let (doc, tree) = layout(
        r#"<body><table width="800"><tr>
           <td id="a" width="100">a</td><td id="b" width="200">b</td>
           <td id="c">c</td><td id="d" width="100">d</td>
           </tr></table></body>"#,
        "body{margin:0}",
        800.0,
    );
    assert_eq!(rect(&doc, &tree, "a").w, 100.0);
    assert_eq!(rect(&doc, &tree, "b").w, 200.0);
    assert_eq!(rect(&doc, &tree, "c").w, 400.0); // 800 - 400 fixed
    assert_eq!(rect(&doc, &tree, "d").w, 100.0);
    // Cells abut left to right.
    assert!(rect(&doc, &tree, "b").x >= rect(&doc, &tree, "a").right() - 0.01);
    assert!(rect(&doc, &tree, "c").x >= rect(&doc, &tree, "b").right() - 0.01);
}

#[test]
fn percent_cell_widths() {
    let (doc, tree) = layout(
        r#"<body><table width="500"><tr>
           <td id="l" width="40%">left</td><td id="r" width="60%">right</td>
           </tr></table></body>"#,
        "body{margin:0}",
        500.0,
    );
    assert_eq!(rect(&doc, &tree, "l").w, 200.0);
    assert_eq!(rect(&doc, &tree, "r").w, 300.0);
}

#[test]
fn heading_scale_and_margins() {
    let (doc, tree) = layout(
        "<body><h1 id=\"h1\">Big</h1><h3 id=\"h3\">Small</h3><p id=\"p\">text</p></body>",
        "body{margin:0}",
        600.0,
    );
    let h1 = rect(&doc, &tree, "h1");
    let h3 = rect(&doc, &tree, "h3");
    let p = rect(&doc, &tree, "p");
    assert!(h1.h > h3.h, "h1 {h1:?} vs h3 {h3:?}");
    assert!(h3.y > h1.bottom()); // margins separate them
    assert!(p.y > h3.bottom());
}

#[test]
fn inline_run_flows_around_image() {
    let (_, tree) = layout(
        "<body><p>before <img src=\"x\" width=\"50\" height=\"50\"> after</p></body>",
        "body{margin:0}",
        600.0,
    );
    // Line height grows to the image.
    assert!(tree.page_height >= 50.0);
    assert!(
        tree.page_height < 120.0,
        "image inline, not stacked: {}",
        tree.page_height
    );
}

#[test]
fn wide_image_on_narrow_viewport_keeps_page_height_sane() {
    let (_, tree) = layout(
        "<body><img src=\"banner\" width=\"728\" height=\"90\"></body>",
        "body{margin:0}",
        320.0,
    );
    // The banner overflows horizontally (no shrinking in 2012 layouts),
    // the vertical flow stays one line.
    assert!(tree.page_height >= 90.0 && tree.page_height <= 120.0);
}

#[test]
fn display_none_subtree_in_table() {
    let (doc, tree) = layout(
        r#"<body><table><tr><td id="shown">x</td>
           <td id="hidden" style="display:none">y</td></tr></table></body>"#,
        "body{margin:0}",
        400.0,
    );
    assert!(tree.rect_of(doc.element_by_id("hidden").unwrap()).is_none());
    // The shown cell takes the whole row.
    assert_eq!(rect(&doc, &tree, "shown").w, 400.0);
}

#[test]
fn deep_nesting_accumulates_padding() {
    let (doc, tree) = layout(
        r#"<body><div id="o" style="padding:10px"><div id="m" style="padding:10px">
           <div id="i" style="padding:10px">x</div></div></div></body>"#,
        "body{margin:0}",
        400.0,
    );
    assert_eq!(rect(&doc, &tree, "o").x, 0.0);
    assert_eq!(rect(&doc, &tree, "m").x, 10.0);
    assert_eq!(rect(&doc, &tree, "i").x, 20.0);
    assert_eq!(rect(&doc, &tree, "i").w, 360.0);
}

#[test]
fn empty_table_and_empty_cells() {
    let (_, tree) = layout(
        "<body><table></table><table><tr></tr></table><table><tr><td></td></tr></table></body>",
        "body{margin:0}",
        300.0,
    );
    assert!(tree.page_height >= 0.0); // just must not panic or blow up
    assert!(tree.page_height < 60.0);
}

#[test]
fn long_unbroken_word_does_not_loop() {
    let word = "x".repeat(400);
    let (_, tree) = layout(
        &format!("<body><p>{word}</p></body>"),
        "body{margin:0}",
        200.0,
    );
    // One oversized word: a single (overflowing) line, not infinite lines.
    assert!(tree.page_height < 100.0, "{}", tree.page_height);
}

#[test]
fn forum_row_shape() {
    // The exact structure of the synthetic forum's rows.
    let (doc, tree) = layout(
        r#"<body><table id="forumbits" width="100%">
        <tr class="forumrow">
          <td id="icon" class="alt1" width="36"><img src="/images/forum_new.gif" width="28" height="28"></td>
          <td id="title" class="alt1"><a href="/forumdisplay.php?f=1">General Woodworking</a>
            <div class="smallfont">all about wood</div></td>
          <td id="last" class="alt2" width="220"><span class="smallfont">Last post</span></td>
        </tr></table></body>"#,
        "body{margin:0} td.alt1{padding:6px} td.alt2{padding:6px}",
        1024.0,
    );
    let icon = rect(&doc, &tree, "icon");
    let title = rect(&doc, &tree, "title");
    let last = rect(&doc, &tree, "last");
    assert_eq!(icon.w, 36.0);
    assert_eq!(last.w, 220.0);
    assert_eq!(title.w, 1024.0 - 36.0 - 220.0);
    // Same row: equal heights after equalization.
    assert_eq!(icon.h, title.h);
    assert_eq!(title.h, last.h);
}

#[test]
fn center_tag_centers_children_text() {
    let (_, left_tree) = layout("<body><p id=\"t\">mid</p></body>", "body{margin:0}", 400.0);
    let (_, center_tree) = layout(
        "<body><center><p id=\"t\">mid</p></center></body>",
        "body{margin:0}",
        400.0,
    );
    fn first_text_x(b: &msite_render::LayoutBox) -> Option<f32> {
        if let msite_render::BoxContent::Text(_) = &b.content {
            return Some(b.rect.x);
        }
        b.children.iter().find_map(first_text_x)
    }
    let lx = first_text_x(&left_tree.root).unwrap();
    let cx = first_text_x(&center_tree.root).unwrap();
    assert!(cx > lx + 50.0, "left {lx} center {cx}");
}

#[test]
fn word_positions_scale_with_page() {
    let (_, tree) = layout(
        "<body><p>alpha beta gamma delta epsilon zeta eta theta</p></body>",
        "body{margin:0}",
        160.0, // narrow: forces wrapping
    );
    let words = tree.word_positions();
    assert_eq!(words.len(), 8);
    // Multiple lines used.
    let distinct_ys: std::collections::BTreeSet<i64> =
        words.iter().map(|(_, r)| r.y as i64).collect();
    assert!(distinct_ys.len() >= 2);
    // All within the viewport horizontally (words wrap rather than escape).
    for (w, r) in &words {
        assert!(r.x >= 0.0 && r.x < 160.0, "{w} at {r:?}");
    }
}

#[test]
fn inputs_and_buttons_take_intrinsic_sizes() {
    let (_, tree) = layout(
        r#"<body><form><input type="text" name="u"> <input type="password" name="p">
           <input type="submit" value="Log in"> <input type="checkbox"></form></body>"#,
        "body{margin:0}",
        800.0,
    );
    fn controls(b: &msite_render::LayoutBox, out: &mut Vec<(String, Rect)>) {
        if let msite_render::BoxContent::Control(kind) = &b.content {
            out.push((kind.clone(), b.rect));
        }
        for c in &b.children {
            controls(c, out);
        }
    }
    let mut found = Vec::new();
    controls(&tree.root, &mut found);
    assert_eq!(found.len(), 4);
    let checkbox = found.iter().find(|(k, _)| k == "checkbox").unwrap();
    assert_eq!(checkbox.1.w, 13.0);
    let text = found.iter().find(|(k, _)| k == "text").unwrap();
    assert!(text.1.w >= 100.0);
}

#[test]
fn hr_renders_as_thin_rule() {
    let (doc, tree) = layout(
        "<body><p>a</p><hr id=\"rule\"><p>b</p></body>",
        "body{margin:0}",
        300.0,
    );
    let hr = rect(&doc, &tree, "rule");
    assert!(hr.h <= 4.0);
    assert_eq!(hr.w, 300.0);
}

#[test]
fn box_count_grows_with_content() {
    let small = layout("<body><p>one</p></body>", "", 400.0).1.box_count();
    let mut html = String::from("<body>");
    for i in 0..50 {
        html.push_str(&format!("<div><p>row {i}</p></div>"));
    }
    html.push_str("</body>");
    let large = layout(&html, "", 400.0).1.box_count();
    assert!(large > small + 90);
}
