//! Property tests for the rendering engine: layout invariants, raster
//! bounds, and codec round trips on arbitrary inputs.

use msite_html::parse_document;
use msite_render::{
    compute_styles, layout_document, paint, png, Canvas, Color, LayoutBox, Stylesheet,
};
use msite_support::prop::{self, Gen};

fn arb_page(g: &mut Gen) -> String {
    let blocks: Vec<String> = g.vec(0, 11, |g| match g.range_u32(0, 5) {
        0 => format!(
            "<p>{}</p>",
            g.string_from("abcdefghijklmnopqrstuvwxyz ", 0, 20)
        ),
        1 => format!(
            "<div style=\"height:{}px\">{}</div>",
            g.range_u32(10, 200),
            g.string_from("abcdefghijklmnopqrstuvwxyz ", 0, 12)
        ),
        2 => format!(
            "<table><tr><td>{}</td><td>{}</td></tr></table>",
            g.string_from("abcdefghijklmnopqrstuvwxyz", 1, 6),
            g.string_from("abcdefghijklmnopqrstuvwxyz", 1, 6)
        ),
        3 => format!(
            "<img src=\"x.gif\" width=\"{}\" height=\"{}\">",
            g.range_u32(10, 600),
            g.range_u32(10, 200)
        ),
        _ => format!(
            "<h2>{}</h2>",
            g.string_from("abcdefghijklmnopqrstuvwxyz ", 0, 16)
        ),
    });
    format!("<body style=\"margin:0\">{}</body>", blocks.concat())
}

fn walk_boxes(b: &LayoutBox, f: &mut impl FnMut(&LayoutBox)) {
    f(b);
    for c in &b.children {
        walk_boxes(c, f);
    }
}

/// No layout box extends left of the viewport or above the page, and
/// widths/heights are never negative or NaN.
#[test]
fn layout_boxes_sane() {
    prop::check("layout boxes sane", 48, 0x4E4D_E210, |g| {
        let page = arb_page(g);
        let width = g.range_f32(120.0, 1200.0);
        let doc = parse_document(&page);
        let styles = compute_styles(&doc, &Stylesheet::default());
        let tree = layout_document(&doc, &styles, width);
        assert!(tree.page_height.is_finite());
        assert!(tree.page_height >= 0.0);
        let mut ok = true;
        walk_boxes(&tree.root, &mut |b| {
            if !(b.rect.w.is_finite()
                && b.rect.h.is_finite()
                && b.rect.x.is_finite()
                && b.rect.y.is_finite()
                && b.rect.w >= 0.0
                && b.rect.h >= 0.0
                && b.rect.x >= -0.5
                && b.rect.y >= -0.5)
            {
                ok = false;
            }
        });
        assert!(ok, "degenerate box in {page}");
    });
}

/// Block-level siblings under the same parent never overlap vertically
/// (flow layout stacks them).
#[test]
fn sibling_blocks_do_not_overlap() {
    prop::check("sibling blocks do not overlap", 48, 0x4E4D_E211, |g| {
        let count = g.range_usize(1, 8);
        let height = g.range_u32(10, 80);
        let body: String = (0..count)
            .map(|i| format!("<div id=\"b{i}\" style=\"height:{height}px\">x</div>"))
            .collect();
        let page = format!("<body style=\"margin:0\">{body}</body>");
        let doc = parse_document(&page);
        let styles = compute_styles(&doc, &Stylesheet::default());
        let tree = layout_document(&doc, &styles, 400.0);
        let mut rects = Vec::new();
        for i in 0..count {
            let id = doc.element_by_id(&format!("b{i}")).unwrap();
            rects.push(tree.rect_of(id).unwrap());
        }
        for pair in rects.windows(2) {
            assert!(
                pair[0].bottom() <= pair[1].y + 0.01,
                "{:?} overlaps {:?}",
                pair[0],
                pair[1]
            );
        }
    });
}

/// Painting any laid-out page stays within the clamped canvas and is
/// deterministic.
#[test]
fn paint_total_and_deterministic() {
    prop::check("paint total and deterministic", 48, 0x4E4D_E212, |g| {
        let page = arb_page(g);
        let doc = parse_document(&page);
        let styles = compute_styles(&doc, &Stylesheet::default());
        let tree = layout_document(&doc, &styles, 320.0);
        let a = paint(&tree, 2048);
        let b = paint(&tree, 2048);
        assert!(a.height() <= 2048);
        assert_eq!(a.pixels(), b.pixels());
    });
}

/// The zlib stream produced for arbitrary bytes carries a correct
/// Adler-32 and never inflates catastrophically.
#[test]
fn zlib_compress_bounded() {
    prop::check("zlib compress bounded", 48, 0x4E4D_E213, |g| {
        let data = g.vec(0, 4095, Gen::u8);
        let z = png::zlib_compress(&data);
        // Fixed-Huffman worst case is ~9/8 of input plus framing.
        assert!(
            z.len() <= data.len() * 9 / 8 + 64,
            "{} -> {}",
            data.len(),
            z.len()
        );
        let stored = u32::from_be_bytes(z[z.len() - 4..].try_into().unwrap());
        assert_eq!(stored, png::adler32(&data));
    });
}

/// PNG encoding yields structurally valid files for arbitrary canvas
/// contents, with CRCs that verify.
#[test]
fn png_structure_holds() {
    prop::check("png structure holds", 48, 0x4E4D_E214, |g| {
        let w = g.range_u32(1, 48);
        let h = g.range_u32(1, 48);
        let mut canvas = Canvas::new(w, h, Color::WHITE);
        for y in 0..h {
            for x in 0..w {
                let v = g.u64();
                canvas.set(
                    x as i32,
                    y as i32,
                    Color::rgb(v as u8, (v >> 8) as u8, (v >> 16) as u8),
                );
            }
        }
        let bytes = png::encode(&canvas);
        assert!(bytes.starts_with(&[0x89, b'P', b'N', b'G']));
        // Verify every chunk CRC.
        let mut pos = 8;
        while pos < bytes.len() {
            let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let kind = &bytes[pos + 4..pos + 8];
            let data = &bytes[pos + 8..pos + 8 + len];
            let stored =
                u32::from_be_bytes(bytes[pos + 8 + len..pos + 12 + len].try_into().unwrap());
            let mut crc = png::Crc32::new();
            crc.update(kind);
            crc.update(data);
            assert_eq!(crc.finish(), stored);
            pos += 12 + len;
        }
        assert_eq!(pos, bytes.len());
    });
}

/// Downscaling preserves the average brightness within quantization
/// error (box filter is a mean).
#[test]
fn downscale_preserves_mean() {
    prop::check("downscale preserves mean", 48, 0x4E4D_E215, |g| {
        let mut canvas = Canvas::new(64, 64, Color::WHITE);
        for y in 0..64 {
            for x in 0..64 {
                let v = (g.u64() & 0xFF) as u8;
                canvas.set(x, y, Color::rgb(v, v, v));
            }
        }
        let mean = |c: &Canvas| {
            let px = c.pixels();
            px.iter().map(|&b| b as f64).sum::<f64>() / px.len() as f64
        };
        let before = mean(&canvas);
        let after = mean(&canvas.downscale_to_width(16));
        assert!((before - after).abs() < 6.0, "{before} vs {after}");
    });
}

/// Quantization is idempotent: quantizing twice equals once.
#[test]
fn quantize_idempotent() {
    prop::check("quantize idempotent", 48, 0x4E4D_E216, |g| {
        let levels = g.range_u16(2, 32);
        let mut canvas = Canvas::new(16, 16, Color::WHITE);
        for y in 0..16 {
            for x in 0..16 {
                let v = g.u64();
                canvas.set(x, y, Color::rgb(v as u8, (v >> 8) as u8, (v >> 16) as u8));
            }
        }
        let mut once = canvas.clone();
        once.quantize(levels);
        let mut twice = once.clone();
        twice.quantize(levels);
        assert_eq!(once.pixels(), twice.pixels());
    });
}
