//! Property tests for the rendering engine: layout invariants, raster
//! bounds, and codec round trips on arbitrary inputs.

use msite_html::parse_document;
use msite_render::{
    compute_styles, layout_document, paint, png, Canvas, Color, LayoutBox, Stylesheet,
};
use proptest::prelude::*;

/// Local SplitMix64 (msite-render does not depend on msite-net).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn arb_page() -> impl Strategy<Value = String> {
    let block = prop_oneof![
        "[a-z ]{0,20}".prop_map(|t| format!("<p>{t}</p>")),
        ("[a-z ]{0,12}", 10u32..200).prop_map(|(t, h)| format!(
            "<div style=\"height:{h}px\">{t}</div>"
        )),
        ("[a-z]{1,6}", "[a-z]{1,6}").prop_map(|(a, b)| format!(
            "<table><tr><td>{a}</td><td>{b}</td></tr></table>"
        )),
        (10u32..600, 10u32..200).prop_map(|(w, h)| format!(
            "<img src=\"x.gif\" width=\"{w}\" height=\"{h}\">"
        )),
        "[a-z ]{0,16}".prop_map(|t| format!("<h2>{t}</h2>")),
    ];
    prop::collection::vec(block, 0..12).prop_map(|blocks| {
        format!("<body style=\"margin:0\">{}</body>", blocks.concat())
    })
}

fn walk_boxes(b: &LayoutBox, f: &mut impl FnMut(&LayoutBox)) {
    f(b);
    for c in &b.children {
        walk_boxes(c, f);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No layout box extends left of the viewport or above the page, and
    /// widths/heights are never negative or NaN.
    #[test]
    fn layout_boxes_sane(page in arb_page(), width in 120f32..1200.0) {
        let doc = parse_document(&page);
        let styles = compute_styles(&doc, &Stylesheet::default());
        let tree = layout_document(&doc, &styles, width);
        prop_assert!(tree.page_height.is_finite());
        prop_assert!(tree.page_height >= 0.0);
        let mut ok = true;
        walk_boxes(&tree.root, &mut |b| {
            if !(b.rect.w.is_finite() && b.rect.h.is_finite()
                && b.rect.x.is_finite() && b.rect.y.is_finite()
                && b.rect.w >= 0.0 && b.rect.h >= 0.0
                && b.rect.x >= -0.5 && b.rect.y >= -0.5)
            {
                ok = false;
            }
        });
        prop_assert!(ok, "degenerate box in {page}");
    }

    /// Block-level siblings under the same parent never overlap
    /// vertically (flow layout stacks them).
    #[test]
    fn sibling_blocks_do_not_overlap(count in 1usize..8, height in 10u32..80) {
        let body: String = (0..count)
            .map(|i| format!("<div id=\"b{i}\" style=\"height:{height}px\">x</div>"))
            .collect();
        let page = format!("<body style=\"margin:0\">{body}</body>");
        let doc = parse_document(&page);
        let styles = compute_styles(&doc, &Stylesheet::default());
        let tree = layout_document(&doc, &styles, 400.0);
        let mut rects = Vec::new();
        for i in 0..count {
            let id = doc.element_by_id(&format!("b{i}")).unwrap();
            rects.push(tree.rect_of(id).unwrap());
        }
        for pair in rects.windows(2) {
            prop_assert!(pair[0].bottom() <= pair[1].y + 0.01,
                "{:?} overlaps {:?}", pair[0], pair[1]);
        }
    }

    /// Painting any laid-out page stays within the clamped canvas and is
    /// deterministic.
    #[test]
    fn paint_total_and_deterministic(page in arb_page()) {
        let doc = parse_document(&page);
        let styles = compute_styles(&doc, &Stylesheet::default());
        let tree = layout_document(&doc, &styles, 320.0);
        let a = paint(&tree, 2048);
        let b = paint(&tree, 2048);
        prop_assert!(a.height() <= 2048);
        prop_assert_eq!(a.pixels(), b.pixels());
    }

    /// The zlib stream produced for arbitrary bytes carries a correct
    /// Adler-32 and never inflates catastrophically.
    #[test]
    fn zlib_compress_bounded(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let z = png::zlib_compress(&data);
        // Fixed-Huffman worst case is ~9/8 of input plus framing.
        prop_assert!(z.len() <= data.len() * 9 / 8 + 64, "{} -> {}", data.len(), z.len());
        let stored = u32::from_be_bytes(z[z.len() - 4..].try_into().unwrap());
        prop_assert_eq!(stored, png::adler32(&data));
    }

    /// PNG encoding yields structurally valid files for arbitrary canvas
    /// contents, with CRCs that verify.
    #[test]
    fn png_structure_holds(w in 1u32..48, h in 1u32..48, seed in any::<u64>()) {
        let mut canvas = Canvas::new(w, h, Color::WHITE);
        let mut rng = Mix(seed);
        for y in 0..h {
            for x in 0..w {
                let v = rng.next();
                canvas.set(x as i32, y as i32,
                    Color::rgb(v as u8, (v >> 8) as u8, (v >> 16) as u8));
            }
        }
        let bytes = png::encode(&canvas);
        prop_assert!(bytes.starts_with(&[0x89, b'P', b'N', b'G']));
        // Verify every chunk CRC.
        let mut pos = 8;
        while pos < bytes.len() {
            let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let kind = &bytes[pos + 4..pos + 8];
            let data = &bytes[pos + 8..pos + 8 + len];
            let stored = u32::from_be_bytes(bytes[pos + 8 + len..pos + 12 + len].try_into().unwrap());
            let mut crc = png::Crc32::new();
            crc.update(kind);
            crc.update(data);
            prop_assert_eq!(crc.finish(), stored);
            pos += 12 + len;
        }
        prop_assert_eq!(pos, bytes.len());
    }

    /// Downscaling preserves the average brightness within quantization
    /// error (box filter is a mean).
    #[test]
    fn downscale_preserves_mean(seed in any::<u64>()) {
        let mut canvas = Canvas::new(64, 64, Color::WHITE);
        let mut rng = Mix(seed);
        for y in 0..64 {
            for x in 0..64 {
                let v = (rng.next() & 0xFF) as u8;
                canvas.set(x, y, Color::rgb(v, v, v));
            }
        }
        let mean = |c: &Canvas| {
            let px = c.pixels();
            px.iter().map(|&b| b as f64).sum::<f64>() / px.len() as f64
        };
        let before = mean(&canvas);
        let after = mean(&canvas.downscale_to_width(16));
        prop_assert!((before - after).abs() < 6.0, "{before} vs {after}");
    }

    /// Quantization is idempotent: quantizing twice equals once.
    #[test]
    fn quantize_idempotent(levels in 2u16..32, seed in any::<u64>()) {
        let mut canvas = Canvas::new(16, 16, Color::WHITE);
        let mut rng = Mix(seed);
        for y in 0..16 {
            for x in 0..16 {
                let v = rng.next();
                canvas.set(x, y, Color::rgb(v as u8, (v >> 8) as u8, (v >> 16) as u8));
            }
        }
        let mut once = canvas.clone();
        once.quantize(levels);
        let mut twice = once.clone();
        twice.quantize(levels);
        prop_assert_eq!(once.pixels(), twice.pixels());
    }
}
