//! Byte-identity gates for the html crate's SWAR fast paths.
//!
//! `Tokenizer::new` (word-at-a-time) and `Tokenizer::new_scalar`
//! (per-byte reference) must produce the exact same token stream on
//! any input, and the entity codec / whitespace normalizer fast paths
//! must agree with their `*_scalar` twins — on markup-shaped documents
//! and on arbitrary text alike.

use msite_html::entities;
use msite_html::text::{normalize_ws, normalize_ws_scalar};
use msite_html::tokenizer::{Token, Tokenizer};
use msite_support::prop::{self, Gen};

/// Markup-shaped soup: nested tags (including raw-text elements with
/// fake closers inside), attributes in every quoting style, entities
/// (valid and bogus), comments, doctypes, and long plain-text runs
/// that push matches past the 64-byte mark.
fn arb_markup(g: &mut Gen) -> String {
    let mut out = String::new();
    if g.range_u32(0, 4) == 0 {
        out.push_str("<!DOCTYPE html>");
    }
    let pieces = g.range_usize(0, 12);
    for _ in 0..pieces {
        match g.range_u32(0, 10) {
            0 => {
                // Raw-text element with hostile content.
                let tag = *g.pick(&["script", "style", "textarea", "title", "xmp"]);
                let close_case = if g.bool() {
                    tag.to_uppercase()
                } else {
                    tag.to_string()
                };
                out.push_str(&format!("<{tag}>"));
                for _ in 0..g.range_usize(0, 3) {
                    match g.range_u32(0, 4) {
                        0 => out.push_str("var x = '</div>';"),
                        1 => out.push_str(&format!("</{tag}foo>")),
                        2 => out.push_str(&"padpadpad".repeat(g.range_usize(1, 12))),
                        _ => out.push_str("if (a < b && c &amp; d) {}"),
                    }
                }
                if g.bool() {
                    out.push_str(&format!(
                        "</{close_case}{}>",
                        *g.pick(&["", " ", "/", "\t"])
                    ));
                }
            }
            1 => {
                // Start tag with mixed attributes.
                let tag = *g.pick(&["div", "a", "input", "td", "img", "DIV", "SPAN"]);
                out.push('<');
                out.push_str(tag);
                for _ in 0..g.range_usize(0, 3) {
                    let name = g.ident(6);
                    match g.range_u32(0, 4) {
                        0 => out.push_str(&format!(" {name}")),
                        1 => out.push_str(&format!(" {name}={}", g.ident(8))),
                        2 => out.push_str(&format!(" {name}=\"{}\"", g.ascii_string(40))),
                        _ => out.push_str(&format!(" {name}='{}&amp;'", g.ascii_string(12))),
                    }
                }
                let closer = *g.pick(&[">", "/>", " >", ""]);
                out.push_str(closer);
            }
            2 => out.push_str(&format!("</{}>", g.ident(5))),
            3 => out.push_str(&format!("<!-- {} -->", g.ascii_string(30))),
            4 => {
                let ent = *g.pick(&["&amp;", "&lt;", "&#65;", "&#x41;", "&bogus;", "&", "&;"]);
                out.push_str(ent);
            }
            5 => {
                let stray = *g.pick(&["<", "< ", "<3", "<?pi?>", "<!bogus>", "</>"]);
                out.push_str(stray);
            }
            // Long plain runs: the case the SWAR scan exists for.
            6 => out.push_str(&"lorem ipsum dolor sit amet ".repeat(g.range_usize(1, 8))),
            _ => out.push_str(&g.ascii_ws_string(60)),
        }
    }
    out
}

#[test]
fn tokenizer_fast_and_scalar_agree_on_random_documents() {
    prop::check("tokenizer swar/scalar identity", 400, 0x0B0B_0001, |g| {
        let doc = arb_markup(g);
        let fast: Vec<Token> = Tokenizer::new(&doc).collect();
        let slow: Vec<Token> = Tokenizer::new_scalar(&doc).collect();
        assert_eq!(fast, slow, "input: {doc:?}");
    });
}

#[test]
fn tokenizer_fast_and_scalar_agree_on_arbitrary_unicode() {
    prop::check("tokenizer identity on unicode", 300, 0x0B0B_0002, |g| {
        let doc = g.unicode_string(200);
        let fast: Vec<Token> = Tokenizer::new(&doc).collect();
        let slow: Vec<Token> = Tokenizer::new_scalar(&doc).collect();
        assert_eq!(fast, slow, "input: {doc:?}");
    });
}

#[test]
fn entity_codec_fast_and_scalar_agree() {
    prop::check("entity codec identity", 400, 0x0B0B_0003, |g| {
        // Entity-dense strings plus arbitrary unicode.
        let input = if g.bool() {
            let mut s = String::new();
            for _ in 0..g.range_usize(0, 12) {
                match g.range_u32(0, 5) {
                    0 => {
                        let ent = *g.pick(&["&amp;", "&nbsp;", "&#160;", "&#xA0", "&oops;"]);
                        s.push_str(ent);
                    }
                    1 => s.push_str(&g.ascii_string(30)),
                    2 => s.push('\u{00A0}'),
                    3 => {
                        let raw = *g.pick(&["<", ">", "\"", "&"]);
                        s.push_str(raw);
                    }
                    _ => s.push_str(&g.unicode_string(10)),
                }
            }
            s
        } else {
            g.unicode_string(120)
        };
        assert_eq!(entities::decode(&input), entities::decode_scalar(&input));
        assert_eq!(
            entities::encode_text(&input),
            entities::encode_text_scalar(&input)
        );
        assert_eq!(
            entities::encode_attr(&input),
            entities::encode_attr_scalar(&input)
        );
    });
}

#[test]
fn normalize_ws_fast_and_scalar_agree() {
    prop::check("normalize_ws identity", 400, 0x0B0B_0004, |g| {
        let input = match g.range_u32(0, 3) {
            0 => g.ascii_ws_string(150),
            1 => g.unicode_string(100),
            // Whitespace-heavy: runs of mixed spaces around words.
            _ => {
                let mut s = String::new();
                for _ in 0..g.range_usize(0, 10) {
                    s.push_str(&" \t\n"[..g.range_usize(1, 4)]);
                    s.push_str(&g.ident(8).repeat(g.range_usize(1, 10)));
                }
                s
            }
        };
        assert_eq!(
            normalize_ws(&input),
            normalize_ws_scalar(&input),
            "input: {input:?}"
        );
    });
}
