//! Property-based tests for the HTML substrate.

use msite_html::{parse_document, tidy, Document, NodeId};
use msite_support::prop::{self, Gen};

const TAGS: [&str; 13] = [
    "div", "span", "p", "b", "i", "a", "ul", "li", "table", "tr", "td", "h1", "form",
];

fn arb_attr(g: &mut Gen) -> (String, String) {
    (
        g.string_from("abcdefghijklmnopqrstuvwxyz", 1, 8),
        g.ascii_string(16),
    )
}

/// A small well-formed document builder: recursively generates a tree and
/// renders it to a source string while recording expected structure.
#[derive(Debug, Clone)]
enum Tree {
    Text(String),
    Element {
        tag: &'static str,
        attrs: Vec<(String, String)>,
        children: Vec<Tree>,
    },
}

fn arb_tree(g: &mut Gen, depth: usize) -> Tree {
    if depth == 0 || g.range_u32(0, 3) == 0 {
        return Tree::Text(g.ascii_string(24));
    }
    Tree::Element {
        tag: TAGS[g.range_usize(0, TAGS.len())],
        attrs: g.vec(0, 2, arb_attr),
        children: g.vec(0, 4, |g| arb_tree(g, depth - 1)),
    }
}

fn render(tree: &Tree, out: &mut String) {
    match tree {
        Tree::Text(t) => out.push_str(&msite_html::entities::encode_text(t)),
        Tree::Element {
            tag,
            attrs,
            children,
        } => {
            out.push('<');
            out.push_str(tag);
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(&msite_html::entities::encode_attr(v));
                out.push('"');
            }
            out.push('>');
            for c in children {
                render(c, out);
            }
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

fn count_elements(doc: &Document, id: NodeId) -> usize {
    doc.descendants(id)
        .filter(|&d| doc.data(d).as_element().is_some())
        .count()
}

fn tree_element_count(tree: &Tree) -> usize {
    match tree {
        Tree::Text(_) => 0,
        Tree::Element { children, .. } => {
            1 + children.iter().map(tree_element_count).sum::<usize>()
        }
    }
}

/// parse → serialize → parse reaches a fixpoint after one round.
#[test]
fn serialize_parse_fixpoint() {
    prop::check("serialize/parse fixpoint", 256, 0x007A_6E50, |g| {
        let input = g.ascii_string(160);
        let once = parse_document(&input).to_html();
        let twice = parse_document(&once).to_html();
        assert_eq!(once, twice);
    });
}

/// The parser never panics and never loses non-markup text length
/// catastrophically on arbitrary bytes (smoke property).
#[test]
fn parser_total_on_arbitrary_input() {
    prop::check("parser total on arbitrary input", 256, 0x007A_6E51, |g| {
        let input = g.unicode_string(200);
        let doc = parse_document(&input);
        let _ = doc.to_html();
        let _ = doc.to_xhtml();
    });
}

/// Well-formed generated documents round-trip with exact structure:
/// same element count and same serialized source.
#[test]
fn well_formed_documents_round_trip() {
    prop::check("well-formed documents round-trip", 256, 0x007A_6E52, |g| {
        let tree = arb_tree(g, 4);
        let mut src = String::new();
        render(&tree, &mut src);
        let doc = parse_document(&src);
        // Note: parser may auto-close (e.g. p inside p), so only compare
        // against trees that do not trigger implied end tags; detect by
        // re-serializing and re-parsing to a fixpoint instead.
        let once = doc.to_html();
        let reparsed = parse_document(&once);
        assert_eq!(
            count_elements(&doc, doc.root()),
            count_elements(&reparsed, reparsed.root())
        );
        assert_eq!(once, reparsed.to_html());
        // Element count never exceeds what was generated.
        assert!(count_elements(&doc, doc.root()) <= tree_element_count(&tree));
    });
}

/// Entity decode(encode(x)) == x for arbitrary unicode text.
#[test]
fn entity_text_round_trip() {
    prop::check("entity text round-trip", 256, 0x007A_6E53, |g| {
        let input = g.unicode_string(64);
        let encoded = msite_html::entities::encode_text(&input);
        assert_eq!(msite_html::entities::decode(&encoded), input);
    });
}

/// Attribute values survive a full parse/serialize round trip.
#[test]
fn attribute_value_round_trip() {
    prop::check("attribute value round-trip", 256, 0x007A_6E54, |g| {
        let value = g.ascii_string(32);
        let src = format!(
            "<div data-x=\"{}\"></div>",
            msite_html::entities::encode_attr(&value)
        );
        let doc = parse_document(&src);
        let div = doc.elements_by_tag(doc.root(), "div")[0];
        assert_eq!(doc.attr(div, "data-x"), Some(value.as_str()));
    });
}

/// Tidy always yields the canonical doctype/html/head/body skeleton,
/// no matter the input.
#[test]
fn tidy_always_canonical() {
    prop::check("tidy always canonical", 256, 0x007A_6E55, |g| {
        let input = g.unicode_string(160);
        let doc = tidy(&input);
        let root = doc.root();
        let htmls = doc
            .children(root)
            .filter(|&id| doc.is_element_named(id, "html"))
            .count();
        assert_eq!(htmls, 1);
        let html = doc
            .children(root)
            .find(|&id| doc.is_element_named(id, "html"))
            .unwrap();
        let kid_names: Vec<String> = doc
            .children(html)
            .filter_map(|id| doc.tag_name(id).map(str::to_string))
            .collect();
        assert_eq!(kid_names, vec!["head".to_string(), "body".to_string()]);
    });
}

/// Tidy output re-tidies to itself (idempotence).
#[test]
fn tidy_idempotent() {
    prop::check("tidy idempotent", 256, 0x007A_6E56, |g| {
        let input = g.ascii_string(160);
        let first = tidy(&input).to_xhtml();
        let second = tidy(&first).to_xhtml();
        assert_eq!(first, second);
    });
}

/// visible_text never contains script bodies.
#[test]
fn visible_text_excludes_scripts() {
    prop::check("visible text excludes scripts", 256, 0x007A_6E57, |g| {
        let code = g.string_from("abcdefghijklmnopqrstuvwxyz =;()", 0, 32);
        let src = format!("<body><script>MARKER{code}</script><p>seen</p></body>");
        let doc = parse_document(&src);
        let text = msite_html::text::visible_text(&doc, doc.root());
        assert!(!text.contains("MARKER"));
        assert!(text.contains("seen"));
    });
}
