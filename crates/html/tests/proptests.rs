//! Property-based tests for the HTML substrate.

use msite_html::{parse_document, tidy, Document, NodeId};
use proptest::prelude::*;

/// Strategy: arbitrary text content without markup-significant chars
/// being required — any chars allowed, the pipeline must cope.
fn arb_text() -> impl Strategy<Value = String> {
    "[ -~]{0,24}" // printable ASCII
}

fn arb_tag() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "div", "span", "p", "b", "i", "a", "ul", "li", "table", "tr", "td", "h1", "form",
    ])
}

fn arb_attr() -> impl Strategy<Value = (String, String)> {
    ("[a-z]{1,8}", "[ -~]{0,16}").prop_map(|(k, v)| (k, v))
}

/// A small well-formed document builder: recursively generates a tree and
/// renders it to a source string while recording expected structure.
#[derive(Debug, Clone)]
enum Tree {
    Text(String),
    Element {
        tag: &'static str,
        attrs: Vec<(String, String)>,
        children: Vec<Tree>,
    },
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = arb_text().prop_map(Tree::Text);
    leaf.prop_recursive(4, 32, 5, |inner| {
        (
            arb_tag(),
            prop::collection::vec(arb_attr(), 0..3),
            prop::collection::vec(inner, 0..5),
        )
            .prop_map(|(tag, attrs, children)| Tree::Element { tag, attrs, children })
    })
}

fn render(tree: &Tree, out: &mut String) {
    match tree {
        Tree::Text(t) => out.push_str(&msite_html::entities::encode_text(t)),
        Tree::Element { tag, attrs, children } => {
            out.push('<');
            out.push_str(tag);
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(&msite_html::entities::encode_attr(v));
                out.push('"');
            }
            out.push('>');
            for c in children {
                render(c, out);
            }
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

fn count_elements(doc: &Document, id: NodeId) -> usize {
    doc.descendants(id)
        .filter(|&d| doc.data(d).as_element().is_some())
        .count()
}

fn tree_element_count(tree: &Tree) -> usize {
    match tree {
        Tree::Text(_) => 0,
        Tree::Element { children, .. } => {
            1 + children.iter().map(tree_element_count).sum::<usize>()
        }
    }
}

proptest! {
    /// parse → serialize → parse reaches a fixpoint after one round.
    #[test]
    fn serialize_parse_fixpoint(input in "[ -~]{0,160}") {
        let once = parse_document(&input).to_html();
        let twice = parse_document(&once).to_html();
        prop_assert_eq!(&once, &twice);
    }

    /// The parser never panics and never loses non-markup text length
    /// catastrophically on arbitrary bytes (smoke property).
    #[test]
    fn parser_total_on_arbitrary_input(input in ".{0,200}") {
        let doc = parse_document(&input);
        let _ = doc.to_html();
        let _ = doc.to_xhtml();
    }

    /// Well-formed generated documents round-trip with exact structure:
    /// same element count and same serialized source.
    #[test]
    fn well_formed_documents_round_trip(tree in arb_tree()) {
        let mut src = String::new();
        render(&tree, &mut src);
        let doc = parse_document(&src);
        // Note: parser may auto-close (e.g. p inside p), so only compare
        // against trees that do not trigger implied end tags; detect by
        // re-serializing and re-parsing to a fixpoint instead.
        let once = doc.to_html();
        let reparsed = parse_document(&once);
        prop_assert_eq!(count_elements(&doc, doc.root()), count_elements(&reparsed, reparsed.root()));
        prop_assert_eq!(once, reparsed.to_html());
        // Element count never exceeds what was generated.
        prop_assert!(count_elements(&doc, doc.root()) <= tree_element_count(&tree));
    }

    /// Entity decode(encode(x)) == x for arbitrary unicode text.
    #[test]
    fn entity_text_round_trip(input in "\\PC{0,64}") {
        let encoded = msite_html::entities::encode_text(&input);
        prop_assert_eq!(msite_html::entities::decode(&encoded), input);
    }

    /// Attribute values survive a full parse/serialize round trip.
    #[test]
    fn attribute_value_round_trip(value in "[ -~]{0,32}") {
        let src = format!("<div data-x=\"{}\"></div>",
            msite_html::entities::encode_attr(&value));
        let doc = parse_document(&src);
        let div = doc.elements_by_tag(doc.root(), "div")[0];
        prop_assert_eq!(doc.attr(div, "data-x"), Some(value.as_str()));
    }

    /// Tidy always yields the canonical doctype/html/head/body skeleton,
    /// no matter the input.
    #[test]
    fn tidy_always_canonical(input in ".{0,160}") {
        let doc = tidy(&input);
        let root = doc.root();
        let htmls = doc.children(root)
            .filter(|&id| doc.is_element_named(id, "html"))
            .count();
        prop_assert_eq!(htmls, 1);
        let html = doc.children(root)
            .find(|&id| doc.is_element_named(id, "html")).unwrap();
        let kid_names: Vec<String> = doc.children(html)
            .filter_map(|id| doc.tag_name(id).map(str::to_string))
            .collect();
        prop_assert_eq!(kid_names, vec!["head".to_string(), "body".to_string()]);
    }

    /// Tidy output re-tidies to itself (idempotence).
    #[test]
    fn tidy_idempotent(input in "[ -~]{0,160}") {
        let first = tidy(&input).to_xhtml();
        let second = tidy(&first).to_xhtml();
        prop_assert_eq!(first, second);
    }

    /// visible_text never contains script bodies.
    #[test]
    fn visible_text_excludes_scripts(code in "[a-z =;()]{0,32}") {
        let src = format!("<body><script>MARKER{code}</script><p>seen</p></body>");
        let doc = parse_document(&src);
        let text = msite_html::text::visible_text(&doc, doc.root());
        prop_assert!(!text.contains("MARKER"));
        prop_assert!(text.contains("seen"));
    }
}
