//! Visible-text extraction used by the search attribute and by the
//! page-load cost model.

use crate::dom::{Document, NodeData, NodeId};
use msite_support::swar::ByteSet;

/// Elements whose text is never rendered.
const INVISIBLE: &[&str] = &["script", "style", "head", "title", "noscript", "template"];

/// The six ASCII bytes `char::is_whitespace` accepts. Only valid when
/// the whole input is ASCII — Unicode whitespace (U+00A0, U+2028, …)
/// sends [`normalize_ws`] to the per-char path.
const ASCII_WS: ByteSet = ByteSet::new(b" \t\n\x0B\x0C\r");

/// Collapses runs of whitespace into single spaces and trims the ends.
///
/// ASCII input — the overwhelmingly common case for extracted page
/// text — bulk-copies each word after a word-at-a-time delimiter scan;
/// anything else takes the per-char reference path.
///
/// # Examples
///
/// ```
/// assert_eq!(msite_html::text::normalize_ws("  a \n\t b  "), "a b");
/// ```
pub fn normalize_ws(input: &str) -> String {
    if !input.is_ascii() {
        return normalize_ws_scalar(input);
    }
    let bytes = input.as_bytes();
    let mut out = String::with_capacity(input.len());
    let mut i = 0;
    while i < bytes.len() {
        if ASCII_WS.contains(bytes[i]) {
            i += 1;
            continue;
        }
        let run = ASCII_WS.skip_run(&bytes[i..]);
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&input[i..i + run]);
        i += run;
    }
    out
}

/// The per-char reference twin of [`normalize_ws`], also the only path
/// that understands non-ASCII whitespace.
#[doc(hidden)]
pub fn normalize_ws_scalar(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut in_space = true; // leading whitespace is dropped
    for ch in input.chars() {
        if ch.is_whitespace() {
            if !in_space {
                out.push(' ');
                in_space = true;
            }
        } else {
            out.push(ch);
            in_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// The whitespace-normalized text a user would see when `scope` is
/// rendered: skips `script`, `style`, `head` and other invisible subtrees.
///
/// # Examples
///
/// ```
/// let doc = msite_html::parse_document(
///     "<body><script>var x;</script><p>Hello   <b>world</b></p></body>");
/// assert_eq!(msite_html::text::visible_text(&doc, doc.root()), "Hello world");
/// ```
pub fn visible_text(doc: &Document, scope: NodeId) -> String {
    let mut raw = String::new();
    collect(doc, scope, &mut raw);
    normalize_ws(&raw)
}

fn collect(doc: &Document, id: NodeId, out: &mut String) {
    match doc.data(id) {
        NodeData::Text(t) => out.push_str(t),
        NodeData::Element(e) if INVISIBLE.contains(&e.name()) => {}
        _ => {
            for child in doc.children(id) {
                collect(doc, child, out);
            }
            // Block-ish elements imply a word break.
            if doc
                .tag_name(id)
                .map(|n| {
                    matches!(
                        n,
                        "p" | "div"
                            | "li"
                            | "tr"
                            | "td"
                            | "th"
                            | "br"
                            | "h1"
                            | "h2"
                            | "h3"
                            | "h4"
                            | "h5"
                            | "h6"
                            | "table"
                            | "ul"
                            | "ol"
                            | "form"
                    )
                })
                .unwrap_or(false)
            {
                out.push(' ');
            }
        }
    }
}

/// Lowercased word tokens of the visible text of `scope`, in document
/// order, for building the search attribute's word index.
pub fn visible_words(doc: &Document, scope: NodeId) -> Vec<String> {
    visible_text(doc, scope)
        .split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_document;

    #[test]
    fn normalize_collapses_and_trims() {
        assert_eq!(normalize_ws(""), "");
        assert_eq!(normalize_ws("   "), "");
        assert_eq!(normalize_ws("a  b\nc"), "a b c");
    }

    #[test]
    fn scripts_and_styles_excluded() {
        let doc = parse_document(
            "<html><head><style>.x{}</style><title>T</title></head>\
             <body><script>ignore()</script>shown</body></html>",
        );
        assert_eq!(visible_text(&doc, doc.root()), "shown");
    }

    #[test]
    fn block_boundaries_produce_spaces() {
        let doc = parse_document("<div>one</div><div>two</div>");
        assert_eq!(visible_text(&doc, doc.root()), "one two");
    }

    #[test]
    fn table_cells_separate_words() {
        let doc = parse_document("<table><tr><td>a</td><td>b</td></tr></table>");
        assert_eq!(visible_text(&doc, doc.root()), "a b");
    }

    #[test]
    fn words_lowercased_and_tokenized() {
        let doc = parse_document("<p>Wood-working Tips, 2012 Edition!</p>");
        assert_eq!(
            visible_words(&doc, doc.root()),
            ["wood", "working", "tips", "2012", "edition"]
        );
    }

    #[test]
    fn scoped_extraction() {
        let doc = parse_document("<div id=a>inside</div><div>outside</div>");
        let a = doc.element_by_id("a").unwrap();
        assert_eq!(visible_text(&doc, a), "inside");
    }
}
