//! Stable content fingerprints over the canonical serialization.
//!
//! [`fingerprint_map`] computes a 64-bit FNV-1a hash for **every**
//! subtree in a document, hashed over exactly the bytes
//! [`Document::outer_html`] would produce for that subtree. Because the
//! hash input is the canonical serialization (not parser-internal
//! state), fingerprints are stable across parse → serialize → parse
//! round trips: re-parsing a page that did not change yields the same
//! fingerprint for every subtree, and editing one text node changes the
//! fingerprints of exactly that node's ancestor chain.
//!
//! That property is what makes the proxy's incremental re-adaptation
//! sound: a subtree whose fingerprint matches the previous fetch is
//! guaranteed to serialize to the same bytes, so every artifact derived
//! from it can be reused without re-running the pipeline's assembly or
//! pre-render work.
//!
//! The whole map is computed in one serialization walk: a stack of
//! running hashers (one per open ancestor) absorbs each emitted byte,
//! so the cost is O(depth · bytes) with no per-subtree re-serialization.

use crate::dom::{Document, NodeData, NodeId};
use crate::entities;
use crate::metrics::{MetricsMap, SubtreeMetrics};
use crate::parser::is_void_element;
use crate::tokenizer::RAW_TEXT_ELEMENTS;
use std::collections::HashMap;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the same primitive the render cache uses
/// for shard striping, exposed here so other layers can mix document
/// fingerprints with their own context bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a hash from a previous state — chain calls to
/// fingerprint multi-part content without concatenating buffers.
pub fn fnv1a_continue(state: u64, bytes: &[u8]) -> u64 {
    let mut hash = state;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Per-subtree fingerprints for one document, keyed by [`NodeId`].
#[derive(Debug, Clone, Default)]
pub struct FingerprintMap {
    map: HashMap<NodeId, u64>,
    root: u64,
}

impl FingerprintMap {
    /// The fingerprint of the subtree rooted at `id`, when `id` was part
    /// of the fingerprinted document.
    pub fn of(&self, id: NodeId) -> Option<u64> {
        self.map.get(&id).copied()
    }

    /// The whole-document fingerprint (hash of
    /// [`Document::to_html`](crate::Document::to_html) output).
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Number of fingerprinted subtrees.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no subtrees were fingerprinted (empty document).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Computes subtree fingerprints for every node in `doc` in a single
/// serialization walk.
///
/// # Examples
///
/// ```
/// use msite_html::fingerprint::{fingerprint_map, fnv1a};
///
/// let doc = msite_html::parse_document("<div id=\"a\"><b>x</b></div>");
/// let fp = fingerprint_map(&doc);
/// let div = doc.element_by_id("a").unwrap();
/// assert_eq!(fp.of(div), Some(fnv1a(doc.outer_html(div).as_bytes())));
/// ```
pub fn fingerprint_map(doc: &Document) -> FingerprintMap {
    let (fp, _) = walk_document(doc, true, false);
    fp
}

/// Runs the single serialization walk, hashing and/or measuring every
/// subtree. The shared driver behind [`fingerprint_map`],
/// [`measure`](crate::metrics::measure) and
/// [`fingerprint_and_measure`](crate::metrics::fingerprint_and_measure):
/// both accumulations ride the same byte stream, so asking for both
/// costs one walk.
pub(crate) fn walk_document(
    doc: &Document,
    want_hashes: bool,
    want_metrics: bool,
) -> (FingerprintMap, Option<MetricsMap>) {
    let mut walker = Walker {
        doc,
        stack: Vec::new(),
        map: HashMap::new(),
        root: FNV_OFFSET,
        want_hashes,
        metrics: want_metrics.then(MetricsMap::default),
        anchor_depth: 0,
    };
    for child in doc.children(doc.root()) {
        walker.walk(child);
    }
    (
        FingerprintMap {
            map: walker.map,
            root: walker.root,
        },
        walker.metrics,
    )
}

/// One open ancestor on the walk stack: its running hash plus its
/// running metrics accumulator.
struct Frame {
    id: NodeId,
    hash: u64,
    metrics: SubtreeMetrics,
}

struct Walker<'a> {
    doc: &'a Document,
    /// One running hash + metrics accumulator per open ancestor,
    /// innermost last.
    stack: Vec<Frame>,
    map: HashMap<NodeId, u64>,
    root: u64,
    want_hashes: bool,
    metrics: Option<MetricsMap>,
    /// How many `<a>` elements are currently open — text emitted while
    /// nonzero is link text.
    anchor_depth: u32,
}

impl Walker<'_> {
    /// Absorbs serialized bytes into every open hasher and the
    /// whole-document hash, and (when measuring) into every open byte
    /// accumulator.
    fn emit(&mut self, text: &str) {
        if self.want_hashes {
            self.root = fnv1a_continue(self.root, text.as_bytes());
            for frame in &mut self.stack {
                frame.hash = fnv1a_continue(frame.hash, text.as_bytes());
            }
        }
        if let Some(metrics) = &mut self.metrics {
            let len = text.len() as u32;
            metrics.root.bytes += len;
            for frame in &mut self.stack {
                frame.metrics.bytes += len;
            }
        }
    }

    /// Bumps one metric counter on every open accumulator (and the
    /// whole-document one). No-op when not measuring.
    fn count(&mut self, bump: impl Fn(&mut SubtreeMetrics)) {
        if let Some(metrics) = &mut self.metrics {
            bump(&mut metrics.root);
            for frame in &mut self.stack {
                bump(&mut frame.metrics);
            }
        }
    }

    /// Mirrors `Document::write_node` for [`Dialect::Html`]
    /// (crate::serialize), emitting through the hasher stack instead of
    /// a string. Keeping the two walks byte-identical is load-bearing;
    /// the crate's property tests pin `fingerprint == fnv1a(outer_html)`
    /// for every node.
    fn walk(&mut self, id: NodeId) {
        self.stack.push(Frame {
            id,
            hash: FNV_OFFSET,
            metrics: SubtreeMetrics::default(),
        });
        match self.doc.data(id) {
            NodeData::Document => {
                let children: Vec<NodeId> = self.doc.children(id).collect();
                for child in children {
                    self.walk(child);
                }
            }
            NodeData::Doctype {
                name,
                public_id,
                system_id,
            } => {
                let mut out = String::from("<!DOCTYPE ");
                out.push_str(name);
                if !public_id.is_empty() {
                    out.push_str(" PUBLIC \"");
                    out.push_str(public_id);
                    out.push('"');
                    if !system_id.is_empty() {
                        out.push_str(" \"");
                        out.push_str(system_id);
                        out.push('"');
                    }
                } else if !system_id.is_empty() {
                    out.push_str(" SYSTEM \"");
                    out.push_str(system_id);
                    out.push('"');
                }
                out.push('>');
                self.emit(&out);
            }
            NodeData::Comment(text) => {
                let text = text.clone();
                let payload = text.len() as u32;
                self.count(|m| m.comment_bytes += payload);
                self.emit("<!--");
                self.emit(&text);
                self.emit("-->");
            }
            NodeData::Text(text) => {
                let parent_raw = self
                    .doc
                    .node(id)
                    .parent()
                    .and_then(|p| self.doc.tag_name(p))
                    .map(|name| RAW_TEXT_ELEMENTS.contains(&name))
                    .unwrap_or(false);
                let rendered = if parent_raw {
                    text.clone()
                } else {
                    entities::encode_text(text).into_owned()
                };
                if !parent_raw {
                    let len = rendered.len() as u32;
                    let in_anchor = self.anchor_depth > 0;
                    self.count(|m| {
                        m.text_bytes += len;
                        if in_anchor {
                            m.link_text_bytes += len;
                        }
                    });
                }
                self.emit(&rendered);
            }
            NodeData::Element(element) => {
                let mut open = String::from("<");
                open.push_str(element.name());
                for (k, v) in element.attrs() {
                    open.push(' ');
                    open.push_str(k);
                    open.push_str("=\"");
                    open.push_str(&entities::encode_attr(v));
                    open.push('"');
                }
                let name = element.name().to_string();
                let is_anchor = name == "a";
                let is_paragraph = name == "p";
                self.count(|m| {
                    m.elements += 1;
                    if is_anchor {
                        m.links += 1;
                    }
                    if is_paragraph {
                        m.paragraphs += 1;
                    }
                });
                if is_void_element(&name) {
                    open.push('>');
                    self.emit(&open);
                    self.finish_frame();
                    return;
                }
                open.push('>');
                self.emit(&open);
                if is_anchor {
                    self.anchor_depth += 1;
                }
                let children: Vec<NodeId> = self.doc.children(id).collect();
                for child in children {
                    self.walk(child);
                }
                if is_anchor {
                    self.anchor_depth -= 1;
                }
                self.emit(&format!("</{name}>"));
            }
        }
        self.finish_frame();
    }

    /// Pops the innermost frame and records its hash and metrics.
    fn finish_frame(&mut self) {
        let frame = self.stack.pop().expect("walker stack underflow");
        if self.want_hashes {
            self.map.insert(frame.id, frame.hash);
        }
        if let Some(metrics) = &mut self.metrics {
            metrics.map.insert(frame.id, frame.metrics);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_document;

    /// Every node's fingerprint equals FNV-1a of its own outer HTML —
    /// the two serialization walks are byte-identical.
    #[test]
    fn fingerprint_matches_outer_html_for_every_node() {
        let doc = parse_document(
            "<!DOCTYPE html><!-- c --><html><head><title>T</title>\
             <script>if (a < b) go();</script></head>\
             <body><ul><li>a<li>b</ul><br><img src=\"x\"><p>5 &lt; 6</p></body></html>",
        );
        let fp = fingerprint_map(&doc);
        let mut stack: Vec<NodeId> = doc.children(doc.root()).collect();
        let mut visited = 0usize;
        while let Some(id) = stack.pop() {
            visited += 1;
            assert_eq!(
                fp.of(id),
                Some(fnv1a(doc.outer_html(id).as_bytes())),
                "node {id:?} fingerprint must hash its outer html"
            );
            stack.extend(doc.children(id));
        }
        assert_eq!(fp.len(), visited);
        assert_eq!(fp.root(), fnv1a(doc.to_html().as_bytes()));
    }

    /// Document-order fingerprint sequence of every node under the root.
    fn ordered(doc: &Document) -> Vec<u64> {
        let fp = fingerprint_map(doc);
        let mut out = vec![fp.root()];
        for id in doc.descendants(doc.root()) {
            out.push(fp.of(id).expect("every attached node is fingerprinted"));
        }
        out
    }

    /// Parse → serialize → parse is a fixed point for fingerprints:
    /// the re-parsed document yields the identical fingerprint sequence
    /// in document order, even for sloppy input the parser normalizes
    /// (implied tags, unclosed elements, uppercase names).
    #[test]
    fn round_trip_preserves_every_fingerprint() {
        let inputs = [
            "<!DOCTYPE html><html><head><title>T</title></head>\
             <body><div id=a><p>one<p>two</div><table><tr><td>x</table></body></html>",
            "<P CLASS=big>Sloppy &amp; unclosed<br><ul><li>1<li>2",
            "<html><body><script>let x = \"</b>\";</script><em>fin</em></body></html>",
        ];
        for input in inputs {
            let first = parse_document(input);
            let second = parse_document(&first.to_html());
            assert_eq!(
                ordered(&first),
                ordered(&second),
                "re-parse of serialized output must fingerprint identically for {input:?}"
            );
        }
    }

    /// Editing one text node changes exactly the fingerprints on its
    /// ancestor chain; every node outside the chain keeps its hash.
    #[test]
    fn text_edit_dirties_exactly_the_ancestor_chain() {
        let doc = parse_document(
            "<!DOCTYPE html><html><head><title>T</title></head>\
             <body><div id=\"posts\"><div id=\"p1\"><p>alpha</p></div>\
             <div id=\"p2\"><p>beta</p></div></div>\
             <div id=\"footer\"><span>fin</span></div></body></html>",
        );
        let before = fingerprint_map(&doc);

        let mut edited = doc.clone();
        let p1 = edited.element_by_id("p1").expect("fixture has #p1");
        let para = edited
            .descendants(p1)
            .find(|&id| edited.is_element_named(id, "p"))
            .expect("#p1 contains a <p>");
        let text = edited
            .node(para)
            .first_child()
            .expect("<p> has a text child");
        *edited.data_mut(text) = NodeData::Text("alpha EDITED".to_string());
        let after = fingerprint_map(&edited);

        // NodeIds are stable across the clone, so compare per node. The
        // dirty set is the edited text node plus its ancestor chain.
        let mut dirty: Vec<NodeId> = vec![text];
        dirty.extend(edited.ancestors(text).filter(|&id| id != edited.root()));
        assert_ne!(before.root(), after.root(), "root hash must change");
        for id in doc.descendants(doc.root()) {
            let changed = before.of(id) != after.of(id);
            assert_eq!(
                changed,
                dirty.contains(&id),
                "node {id:?} ({:?}) changed={changed}, expected only the ancestor chain to change",
                doc.tag_name(id)
            );
        }
        // Sibling subtree and footer specifically survive untouched.
        let p2 = doc.element_by_id("p2").expect("fixture has #p2");
        assert_eq!(before.of(p2), after.of(p2));
    }
}
