//! Lenient HTML tree construction.
//!
//! Turns the token stream from [`crate::tokenizer`] into a [`Document`].
//! The algorithm is a pragmatic subset of the HTML5 tree builder: void
//! elements never take children, common implied end tags (`<li>`, `<p>`,
//! table parts, `<option>`, `<dt>`/`<dd>`) are honored, mismatched close
//! tags are recovered from, and nothing ever fails. It does *not*
//! synthesize missing `html`/`head`/`body` elements — that normalization
//! is the job of [`mod@crate::tidy`].

use crate::dom::{Document, NodeId};
use crate::tokenizer::{Token, Tokenizer};

/// Elements that never have children and take no close tag.
pub const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "basefont", "br", "col", "embed", "hr", "img", "input", "link", "meta",
    "param", "source", "track", "wbr",
];

/// True when `name` is a void element.
pub fn is_void_element(name: &str) -> bool {
    VOID_ELEMENTS.contains(&name)
}

/// Block-level elements whose start tag implies `</p>`.
const CLOSES_P: &[&str] = &[
    "address",
    "article",
    "aside",
    "blockquote",
    "center",
    "div",
    "dl",
    "fieldset",
    "footer",
    "form",
    "h1",
    "h2",
    "h3",
    "h4",
    "h5",
    "h6",
    "header",
    "hr",
    "main",
    "nav",
    "ol",
    "p",
    "pre",
    "section",
    "table",
    "ul",
];

/// For a start tag `name`, the set of open element names it auto-closes
/// (popped while they sit on top of the stack).
fn auto_close_set(name: &str) -> &'static [&'static str] {
    match name {
        "li" => &["li", "p"],
        "dt" | "dd" => &["dt", "dd", "p"],
        "tr" => &["tr", "td", "th", "p"],
        "td" | "th" => &["td", "th", "p"],
        "thead" | "tbody" | "tfoot" => &["td", "th", "tr", "thead", "tbody", "tfoot", "p"],
        "option" => &["option"],
        "optgroup" => &["option", "optgroup"],
        "colgroup" => &["colgroup"],
        "body" => &["head"],
        _ => &[],
    }
}

/// Parses a complete HTML document.
///
/// Never fails: any byte sequence yields a document.
///
/// # Examples
///
/// ```
/// let doc = msite_html::parse_document("<ul><li>a<li>b</ul>");
/// assert_eq!(doc.elements_by_tag(doc.root(), "li").len(), 2);
/// ```
pub fn parse_document(input: &str) -> Document {
    let mut doc = Document::new();
    let root = doc.root();
    build(&mut doc, root, input);
    doc
}

/// Parses `input` as a fragment and appends the resulting nodes as
/// children of `parent` inside an existing document. Returns the ids of
/// the top-level parsed nodes.
pub fn parse_fragment_into(doc: &mut Document, parent: NodeId, input: &str) -> Vec<NodeId> {
    let before: Vec<NodeId> = doc.children(parent).collect();
    build(doc, parent, input);
    doc.children(parent)
        .filter(|id| !before.contains(id))
        .collect()
}

/// Parses `input` as a standalone fragment document whose root children
/// are the fragment's top-level nodes.
pub fn parse_fragment(input: &str) -> Document {
    parse_document(input)
}

fn build(doc: &mut Document, context: NodeId, input: &str) {
    // Stack of open elements; `context` is the insertion root and is never
    // popped.
    let mut stack: Vec<NodeId> = vec![context];
    let top_name = |doc: &Document, stack: &[NodeId]| -> Option<String> {
        stack
            .last()
            .and_then(|&id| doc.tag_name(id).map(str::to_string))
    };

    for token in Tokenizer::new(input) {
        match token {
            Token::Doctype {
                name,
                public_id,
                system_id,
            } => {
                let node = doc.create_doctype(&name, &public_id, &system_id);
                let parent = *stack.last().expect("stack never empty");
                doc.append_child(parent, node);
            }
            Token::Comment(text) => {
                let node = doc.create_comment(&text);
                let parent = *stack.last().expect("stack never empty");
                doc.append_child(parent, node);
            }
            Token::Text(text) => {
                let parent = *stack.last().expect("stack never empty");
                // Merge with a preceding text node to keep trees canonical.
                if let Some(last) = doc.node(parent).last_child() {
                    if let crate::dom::NodeData::Text(existing) = doc.data_mut(last) {
                        existing.push_str(&text);
                        continue;
                    }
                }
                let node = doc.create_text(&text);
                doc.append_child(parent, node);
            }
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                // Implied </p> for block-level openers.
                if CLOSES_P.contains(&name.as_str()) {
                    if let Some(top) = top_name(doc, &stack) {
                        if top == "p" && stack.len() > 1 {
                            stack.pop();
                        }
                    }
                }
                // Sibling auto-closing (li closes li, td closes td, ...).
                let close_set = auto_close_set(&name);
                if !close_set.is_empty() {
                    while stack.len() > 1 {
                        match top_name(doc, &stack) {
                            Some(top) if close_set.contains(&top.as_str()) => {
                                stack.pop();
                            }
                            _ => break,
                        }
                    }
                }
                let element = doc.create_element(&name);
                for (k, v) in &attrs {
                    doc.set_attr(element, k, v);
                }
                let parent = *stack.last().expect("stack never empty");
                doc.append_child(parent, element);
                if !self_closing && !is_void_element(&name) {
                    stack.push(element);
                }
            }
            Token::EndTag { name } => {
                if is_void_element(&name) {
                    continue; // e.g. stray </br>
                }
                // Find a matching open element (not the context root).
                let matching = stack
                    .iter()
                    .rposition(|&id| doc.tag_name(id) == Some(name.as_str()));
                match matching {
                    Some(pos) if pos > 0 => stack.truncate(pos),
                    _ => {} // unmatched close tag: ignore
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags_under_root(doc: &Document) -> Vec<String> {
        doc.descendants(doc.root())
            .filter_map(|id| doc.tag_name(id).map(str::to_string))
            .collect()
    }

    #[test]
    fn nested_structure() {
        let doc = parse_document("<div><span>x</span></div>");
        assert_eq!(tags_under_root(&doc), ["div", "span"]);
        let span = doc.elements_by_tag(doc.root(), "span")[0];
        assert_eq!(doc.text_content(span), "x");
    }

    #[test]
    fn implied_li_close() {
        let doc = parse_document("<ul><li>a<li>b<li>c</ul>");
        let ul = doc.elements_by_tag(doc.root(), "ul")[0];
        let lis: Vec<NodeId> = doc
            .children(ul)
            .filter(|&id| doc.is_element_named(id, "li"))
            .collect();
        assert_eq!(lis.len(), 3);
        assert_eq!(doc.text_content(lis[1]), "b");
    }

    #[test]
    fn nested_lists_not_flattened() {
        let doc = parse_document("<ul><li>a<ul><li>a1</ul><li>b</ul>");
        let outer = doc.elements_by_tag(doc.root(), "ul")[0];
        let direct_lis = doc
            .children(outer)
            .filter(|&id| doc.is_element_named(id, "li"))
            .count();
        assert_eq!(direct_lis, 2);
        assert_eq!(doc.elements_by_tag(doc.root(), "li").len(), 3);
    }

    #[test]
    fn implied_p_close() {
        let doc = parse_document("<p>one<p>two");
        let root = doc.root();
        let ps: Vec<NodeId> = doc
            .children(root)
            .filter(|&id| doc.is_element_named(id, "p"))
            .collect();
        assert_eq!(ps.len(), 2);
        assert_eq!(doc.text_content(ps[0]), "one");
        assert_eq!(doc.text_content(ps[1]), "two");
    }

    #[test]
    fn div_closes_open_p() {
        let doc = parse_document("<p>one<div>two</div>");
        let root = doc.root();
        let top: Vec<String> = doc
            .children(root)
            .filter_map(|id| doc.tag_name(id).map(str::to_string))
            .collect();
        assert_eq!(top, ["p", "div"]);
    }

    #[test]
    fn table_cells_auto_close() {
        let doc = parse_document("<table><tr><td>a<td>b<tr><td>c</table>");
        assert_eq!(doc.elements_by_tag(doc.root(), "tr").len(), 2);
        assert_eq!(doc.elements_by_tag(doc.root(), "td").len(), 3);
        let trs = doc.elements_by_tag(doc.root(), "tr");
        let first_row_cells = doc
            .children(trs[0])
            .filter(|&id| doc.is_element_named(id, "td"))
            .count();
        assert_eq!(first_row_cells, 2);
    }

    #[test]
    fn tbody_closes_thead_rows() {
        let doc = parse_document("<table><thead><tr><th>h<tbody><tr><td>x</table>");
        assert_eq!(doc.elements_by_tag(doc.root(), "thead").len(), 1);
        assert_eq!(doc.elements_by_tag(doc.root(), "tbody").len(), 1);
        let tbody = doc.elements_by_tag(doc.root(), "tbody")[0];
        assert_eq!(doc.elements_by_tag(tbody, "td").len(), 1);
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = parse_document("<br>text<img src=x>more");
        let root = doc.root();
        let br = doc.elements_by_tag(root, "br")[0];
        assert_eq!(doc.children(br).count(), 0);
        assert_eq!(doc.text_content(root), "textmore");
    }

    #[test]
    fn stray_close_tags_ignored() {
        let doc = parse_document("</div><p>ok</p></span>");
        assert_eq!(tags_under_root(&doc), ["p"]);
    }

    #[test]
    fn misnested_close_recovers() {
        // `</b>` closes through the inner <i> like a browser would.
        let doc = parse_document("<b><i>x</b>y");
        let root = doc.root();
        let b = doc.elements_by_tag(root, "b")[0];
        assert_eq!(doc.text_content(b), "x");
        // "y" lands outside <b>.
        let texts: Vec<String> = doc
            .children(root)
            .filter_map(|id| doc.data(id).as_text().map(str::to_string))
            .collect();
        assert_eq!(texts, ["y"]);
    }

    #[test]
    fn options_auto_close() {
        let doc = parse_document("<select><option>a<option>b</select>");
        assert_eq!(doc.elements_by_tag(doc.root(), "option").len(), 2);
        let select = doc.elements_by_tag(doc.root(), "select")[0];
        assert_eq!(doc.children(select).count(), 2);
    }

    #[test]
    fn dt_dd_auto_close() {
        let doc = parse_document("<dl><dt>t<dd>d<dt>t2</dl>");
        let dl = doc.elements_by_tag(doc.root(), "dl")[0];
        assert_eq!(doc.children(dl).count(), 3);
    }

    #[test]
    fn script_content_preserved() {
        let doc = parse_document("<script>var a = \"<div>\" && 1;</script>");
        let script = doc.elements_by_tag(doc.root(), "script")[0];
        assert_eq!(doc.text_content(script), "var a = \"<div>\" && 1;");
    }

    #[test]
    fn doctype_preserved() {
        let doc = parse_document("<!DOCTYPE html><html></html>");
        let first = doc.children(doc.root()).next().unwrap();
        assert!(matches!(
            doc.data(first),
            crate::dom::NodeData::Doctype { .. }
        ));
    }

    #[test]
    fn adjacent_text_merged() {
        let doc = parse_document("a&amp;b");
        let root = doc.root();
        assert_eq!(doc.children(root).count(), 1);
        assert_eq!(doc.text_content(root), "a&b");
    }

    #[test]
    fn fragment_into_existing_document() {
        let mut doc = parse_document("<div id=host></div>");
        let host = doc.element_by_id("host").unwrap();
        let added = parse_fragment_into(&mut doc, host, "<b>one</b><i>two</i>");
        assert_eq!(added.len(), 2);
        assert_eq!(doc.text_content(host), "onetwo");
    }

    #[test]
    fn self_closing_nonvoid_is_empty_element() {
        let doc = parse_document("<div/>after");
        let root = doc.root();
        let div = doc.elements_by_tag(root, "div")[0];
        assert_eq!(doc.children(div).count(), 0);
        assert_eq!(doc.text_content(root), "after");
    }

    #[test]
    fn deeply_nested_does_not_overflow() {
        let mut input = String::new();
        for _ in 0..5000 {
            input.push_str("<div>");
        }
        let doc = parse_document(&input);
        assert_eq!(doc.elements_by_tag(doc.root(), "div").len(), 5000);
    }

    #[test]
    fn empty_input_yields_empty_doc() {
        let doc = parse_document("");
        assert_eq!(doc.children(doc.root()).count(), 0);
    }
}
