//! A lenient HTML tokenizer.
//!
//! Produces a flat stream of [`Token`]s from arbitrary input without ever
//! failing: malformed constructs degrade to text or bogus comments, the
//! way browsers treat them. Raw-text elements (`script`, `style`,
//! `textarea`, `title`, `xmp`) switch the tokenizer into a mode where the
//! content is scanned only for the matching close tag.

use crate::entities;
use msite_support::swar;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative source bytes handed to [`Tokenizer::new`], exposed as
/// `msite_tokenizer_bytes_total` by the proxy's observability sync.
static BYTES_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of source bytes fed through the tokenizer.
pub fn bytes_total() -> u64 {
    BYTES_TOTAL.load(Ordering::Relaxed)
}

/// One lexical token of HTML input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<!DOCTYPE ...>`
    Doctype {
        /// Root element name (lowercased), e.g. `html`.
        name: String,
        /// PUBLIC identifier or empty.
        public_id: String,
        /// SYSTEM identifier or empty.
        system_id: String,
    },
    /// An opening tag such as `<div id="x">`.
    StartTag {
        /// Lowercased tag name.
        name: String,
        /// Attributes in source order; duplicate names keep the first value.
        attrs: Vec<(String, String)>,
        /// True for `<br/>`-style tags.
        self_closing: bool,
    },
    /// A closing tag such as `</div>`.
    EndTag {
        /// Lowercased tag name.
        name: String,
    },
    /// Character data with entities already decoded. Raw-text element
    /// contents (script/style) are delivered verbatim, undecoded.
    Text(String),
    /// `<!-- ... -->` contents.
    Comment(String),
}

/// Element names whose content is raw text (no nested markup).
pub const RAW_TEXT_ELEMENTS: &[&str] = &["script", "style", "textarea", "title", "xmp"];

/// Raw-text elements whose content should still be entity-decoded.
const ESCAPABLE_RAW_TEXT: &[&str] = &["textarea", "title"];

/// Streaming tokenizer over a borrowed input string.
///
/// # Examples
///
/// ```
/// use msite_html::tokenizer::{Token, Tokenizer};
///
/// let tokens: Vec<Token> = Tokenizer::new("<p>hi</p>").collect();
/// assert_eq!(tokens.len(), 3);
/// ```
pub struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
    /// When set, we are inside a raw-text element with this (lowercase) name.
    raw_text_tag: Option<String>,
    /// Queued token to emit after the current one (used for raw text
    /// followed by its end tag).
    pending: Option<Token>,
    /// Forces the per-byte reference scans instead of the SWAR fast
    /// paths. Reachable only through [`Tokenizer::new_scalar`]; the two
    /// modes are pinned byte-identical by
    /// `crates/html/tests/swar_identity.rs`.
    scalar: bool,
}

impl<'a> Tokenizer<'a> {
    /// Creates a tokenizer over `input`.
    pub fn new(input: &'a str) -> Self {
        BYTES_TOTAL.fetch_add(input.len() as u64, Ordering::Relaxed);
        Tokenizer {
            input,
            pos: 0,
            raw_text_tag: None,
            pending: None,
            scalar: false,
        }
    }

    /// Creates a tokenizer that uses the per-byte reference scans —
    /// the identity-gate twin of [`Tokenizer::new`].
    #[doc(hidden)]
    pub fn new_scalar(input: &'a str) -> Self {
        Tokenizer {
            scalar: true,
            ..Tokenizer::new(input)
        }
    }

    /// Index of the next `<` in `s`: word-at-a-time normally, per-byte
    /// in scalar mode.
    fn find_lt(&self, s: &str) -> Option<usize> {
        if self.scalar {
            s.as_bytes().iter().position(|&b| b == b'<')
        } else {
            swar::find_byte(s.as_bytes(), b'<')
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek_byte(&self) -> Option<u8> {
        self.input.as_bytes().get(self.pos).copied()
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn eof(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// Scans raw-text content until the matching `</tag` close sequence.
    fn next_raw_text(&mut self, tag: &str) -> Option<Token> {
        let rest = self.rest();
        let close_at = if self.scalar {
            raw_close_scalar(rest, tag)
        } else {
            raw_close_swar(rest, tag)
        };
        match close_at {
            Some(at) => {
                let content = &rest[..at];
                self.bump(at);
                // Consume through the terminating '>'.
                let after = self.rest();
                let gt = after.find('>').map(|i| i + 1).unwrap_or(after.len());
                self.bump(gt);
                self.raw_text_tag = None;
                let end = Token::EndTag {
                    name: tag.to_string(),
                };
                if content.is_empty() {
                    Some(end)
                } else {
                    self.pending = Some(end);
                    Some(Token::Text(self.decode_raw(tag, content)))
                }
            }
            None => {
                // Unterminated raw text: the remainder is content.
                let content = rest;
                self.pos = self.input.len();
                self.raw_text_tag = None;
                if content.is_empty() {
                    None
                } else {
                    Some(Token::Text(self.decode_raw(tag, content)))
                }
            }
        }
    }

    fn decode_raw(&self, tag: &str, content: &str) -> String {
        if ESCAPABLE_RAW_TEXT.contains(&tag) {
            self.decode_text(content)
        } else {
            content.to_string()
        }
    }

    /// Entity-decodes `text` via the mode-matching codec path.
    fn decode_text(&self, text: &str) -> String {
        if self.scalar {
            entities::decode_scalar(text)
        } else {
            entities::decode(text)
        }
    }

    /// Parses a tag that begins at `<` (already verified). Returns the
    /// token, or `None` to mean "treat the `<` as literal text".
    fn next_tag(&mut self) -> Option<Token> {
        let rest = self.rest();
        debug_assert!(rest.starts_with('<'));
        let after = &rest[1..];

        if let Some(stripped) = after.strip_prefix("!--") {
            // Comment.
            let (content, consumed) = match stripped.find("-->") {
                Some(end) => (&stripped[..end], 1 + 3 + end + 3),
                None => (stripped, rest.len()),
            };
            self.bump(consumed);
            return Some(Token::Comment(content.to_string()));
        }
        if after.len() >= 8 && after.as_bytes()[..8].eq_ignore_ascii_case(b"!doctype") {
            let body_start = 1 + 8;
            let end = rest.find('>').unwrap_or(rest.len());
            let body = &rest[body_start..end.min(rest.len())];
            self.bump((end + 1).min(rest.len()));
            return Some(parse_doctype(body));
        }
        if after.starts_with('!') || after.starts_with('?') {
            // Bogus comment: `<!foo>` or `<?xml ...?>`.
            let end = rest.find('>').unwrap_or(rest.len());
            let content = &rest[2..end.min(rest.len())];
            self.bump((end + 1).min(rest.len()));
            return Some(Token::Comment(content.to_string()));
        }
        if let Some(name_part) = after.strip_prefix('/') {
            // End tag.
            let name_len = tag_name_len(name_part);
            if name_len == 0 {
                // `</>` or `</3>`: bogus, skip to '>' as comment-ish text.
                let end = rest.find('>').unwrap_or(rest.len());
                self.bump((end + 1).min(rest.len()));
                return Some(Token::Comment(String::new()));
            }
            let name = name_part[..name_len].to_ascii_lowercase();
            let close = rest.find('>').map(|i| i + 1).unwrap_or(rest.len());
            self.bump(close);
            return Some(Token::EndTag { name });
        }
        let name_len = tag_name_len(after);
        if name_len == 0 {
            return None; // literal '<'
        }
        let name = after[..name_len].to_ascii_lowercase();
        // Attribute parsing.
        let mut cursor = 1 + name_len;
        let bytes = rest.as_bytes();
        let mut attrs: Vec<(String, String)> = Vec::new();
        let mut self_closing = false;
        loop {
            while cursor < bytes.len() && bytes[cursor].is_ascii_whitespace() {
                cursor += 1;
            }
            if cursor >= bytes.len() {
                break;
            }
            match bytes[cursor] {
                b'>' => {
                    cursor += 1;
                    break;
                }
                b'/' => {
                    if bytes.get(cursor + 1) == Some(&b'>') {
                        self_closing = true;
                        cursor += 2;
                        break;
                    }
                    cursor += 1;
                }
                _ => {
                    let (attr, consumed) = parse_attribute(&rest[cursor..], self.scalar);
                    cursor += consumed;
                    if let Some((k, v)) = attr {
                        if !attrs.iter().any(|(name, _)| *name == k) {
                            attrs.push((k, v));
                        }
                    } else {
                        // No progress possible; avoid an infinite loop.
                        cursor += 1;
                    }
                }
            }
        }
        self.bump(cursor);
        if !self_closing && RAW_TEXT_ELEMENTS.contains(&name.as_str()) {
            self.raw_text_tag = Some(name.clone());
        }
        Some(Token::StartTag {
            name,
            attrs,
            self_closing,
        })
    }
}

impl<'a> Iterator for Tokenizer<'a> {
    type Item = Token;

    fn next(&mut self) -> Option<Token> {
        if let Some(tok) = self.pending.take() {
            return Some(tok);
        }
        if self.eof() {
            return None;
        }
        if let Some(tag) = self.raw_text_tag.clone() {
            return self.next_raw_text(&tag);
        }
        if self.peek_byte() == Some(b'<') {
            if let Some(tok) = self.next_tag() {
                return Some(tok);
            }
            // Literal '<': fall through to text accumulation starting at it.
            let rest = self.rest();
            let next_lt = self
                .find_lt(&rest[1..])
                .map(|i| i + 1)
                .unwrap_or(rest.len());
            let text = &rest[..next_lt];
            self.bump(next_lt);
            return Some(Token::Text(self.decode_text(text)));
        }
        // Text run until the next '<'.
        let rest = self.rest();
        let end = self.find_lt(rest).unwrap_or(rest.len());
        let text = &rest[..end];
        self.bump(end);
        Some(Token::Text(self.decode_text(text)))
    }
}

/// Finds the `</tag` close sequence (case-insensitive, boundary-checked)
/// without allocating: hop between `<` bytes a word at a time, then
/// compare the candidate name with a branchless case fold.
fn raw_close_swar(rest: &str, tag: &str) -> Option<usize> {
    let bytes = rest.as_bytes();
    let tag_bytes = tag.as_bytes();
    let mut from = 0;
    loop {
        let at = from + swar::find_byte(&bytes[from..], b'<')?;
        let name_start = at + 2;
        if bytes.get(at + 1) == Some(&b'/')
            && bytes.len() >= name_start + tag_bytes.len()
            && swar::eq_ignore_case(&bytes[name_start..name_start + tag_bytes.len()], tag_bytes)
        {
            // Must be followed by whitespace, '/', '>' or EOF to count.
            match bytes.get(name_start + tag_bytes.len()) {
                None | Some(b'>') | Some(b'/') | Some(b' ') | Some(b'\t') | Some(b'\n')
                | Some(b'\r') => return Some(at),
                _ => {}
            }
        }
        from = at + 1;
    }
}

/// The original close-tag search — lowercases the whole remainder, then
/// substring-searches — kept as [`raw_close_swar`]'s identity twin.
fn raw_close_scalar(rest: &str, tag: &str) -> Option<usize> {
    let lower = rest.to_ascii_lowercase();
    let needle = format!("</{tag}");
    let mut search_from = 0;
    loop {
        match lower[search_from..].find(&needle) {
            Some(rel) => {
                let at = search_from + rel;
                // Must be followed by whitespace, '/', '>' or EOF to count.
                match lower.as_bytes().get(at + needle.len()) {
                    None | Some(b'>') | Some(b'/') | Some(b' ') | Some(b'\t') | Some(b'\n')
                    | Some(b'\r') => break Some(at),
                    _ => search_from = at + 1,
                }
            }
            None => break None,
        }
    }
}

/// Length of a tag name: letters, digits, `-`, `_`, `:` after an initial
/// ASCII letter.
fn tag_name_len(s: &str) -> usize {
    let bytes = s.as_bytes();
    if bytes.first().map(|b| b.is_ascii_alphabetic()) != Some(true) {
        return 0;
    }
    bytes
        .iter()
        .take_while(|b| b.is_ascii_alphanumeric() || **b == b'-' || **b == b'_' || **b == b':')
        .count()
}

/// Parses one attribute starting at a non-space byte. Returns the pair and
/// the number of bytes consumed. `scalar` selects the per-byte reference
/// scans for the quoted-value delimiter and entity decode.
fn parse_attribute(s: &str, scalar: bool) -> (Option<(String, String)>, usize) {
    let decode = if scalar {
        entities::decode_scalar
    } else {
        entities::decode
    };
    let bytes = s.as_bytes();
    let name_len = bytes
        .iter()
        .take_while(|b| !b.is_ascii_whitespace() && **b != b'=' && **b != b'>' && **b != b'/')
        .count();
    if name_len == 0 {
        return (None, 0);
    }
    let name = s[..name_len].to_ascii_lowercase();
    let mut cursor = name_len;
    while cursor < bytes.len() && bytes[cursor].is_ascii_whitespace() {
        cursor += 1;
    }
    if bytes.get(cursor) != Some(&b'=') {
        // Boolean attribute such as `checked`.
        return (Some((name, String::new())), name_len);
    }
    cursor += 1;
    while cursor < bytes.len() && bytes[cursor].is_ascii_whitespace() {
        cursor += 1;
    }
    match bytes.get(cursor) {
        Some(&q @ (b'"' | b'\'')) => {
            cursor += 1;
            let start = cursor;
            // The closing quote is a single-byte delimiter: hop to it a
            // word at a time rather than per byte.
            cursor += if scalar {
                bytes[start..].iter().position(|&b| b == q)
            } else {
                swar::find_byte(&bytes[start..], q)
            }
            .unwrap_or(bytes.len() - start);
            let value = decode(&s[start..cursor]);
            if cursor < bytes.len() {
                cursor += 1; // closing quote
            }
            (Some((name, value)), cursor)
        }
        Some(_) => {
            let start = cursor;
            while cursor < bytes.len()
                && !bytes[cursor].is_ascii_whitespace()
                && bytes[cursor] != b'>'
            {
                cursor += 1;
            }
            let value = decode(&s[start..cursor]);
            (Some((name, value)), cursor)
        }
        None => (Some((name, String::new())), cursor),
    }
}

/// Parses the interior of a doctype declaration (after `<!DOCTYPE`).
fn parse_doctype(body: &str) -> Token {
    let mut words = SplitQuoted::new(body.trim());
    let name = words
        .next()
        .map(|w| w.to_ascii_lowercase())
        .unwrap_or_default();
    let mut public_id = String::new();
    let mut system_id = String::new();
    while let Some(word) = words.next() {
        if word.eq_ignore_ascii_case("public") {
            if let Some(id) = words.next() {
                public_id = id;
            }
            if let Some(id) = words.next() {
                system_id = id;
            }
        } else if word.eq_ignore_ascii_case("system") {
            if let Some(id) = words.next() {
                system_id = id;
            }
        }
    }
    Token::Doctype {
        name,
        public_id,
        system_id,
    }
}

/// Splits a string on whitespace, treating quoted runs as single items
/// with quotes stripped.
struct SplitQuoted<'a> {
    rest: &'a str,
}

impl<'a> SplitQuoted<'a> {
    fn new(s: &'a str) -> Self {
        SplitQuoted { rest: s }
    }
}

impl<'a> Iterator for SplitQuoted<'a> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        let s = self.rest.trim_start();
        if s.is_empty() {
            self.rest = s;
            return None;
        }
        let bytes = s.as_bytes();
        if bytes[0] == b'"' || bytes[0] == b'\'' {
            let q = bytes[0];
            let end = s[1..].find(q as char).map(|i| i + 1).unwrap_or(s.len());
            let item = s[1..end].to_string();
            self.rest = &s[(end + 1).min(s.len())..];
            Some(item)
        } else {
            let end = s.find(|c: char| c.is_ascii_whitespace()).unwrap_or(s.len());
            let item = s[..end].to_string();
            self.rest = &s[end..];
            Some(item)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        Tokenizer::new(input).collect()
    }

    fn start(name: &str, attrs: &[(&str, &str)]) -> Token {
        Token::StartTag {
            name: name.to_string(),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            self_closing: false,
        }
    }

    fn end(name: &str) -> Token {
        Token::EndTag {
            name: name.to_string(),
        }
    }

    fn text(t: &str) -> Token {
        Token::Text(t.to_string())
    }

    #[test]
    fn simple_element() {
        assert_eq!(
            toks("<p>hi</p>"),
            vec![start("p", &[]), text("hi"), end("p")]
        );
    }

    #[test]
    fn attributes_quoted_unquoted_boolean() {
        assert_eq!(
            toks(r#"<input type="text" value=abc disabled>"#),
            vec![start(
                "input",
                &[("type", "text"), ("value", "abc"), ("disabled", "")]
            )]
        );
    }

    #[test]
    fn single_quoted_and_entity_values() {
        assert_eq!(
            toks("<a href='x?a=1&amp;b=2'>"),
            vec![start("a", &[("href", "x?a=1&b=2")])]
        );
    }

    #[test]
    fn uppercase_lowered() {
        assert_eq!(
            toks("<DIV CLASS='A'></DIV>"),
            vec![start("div", &[("class", "A")]), end("div")]
        );
    }

    #[test]
    fn self_closing_flag() {
        assert_eq!(
            toks("<br/><img src=x />"),
            vec![
                Token::StartTag {
                    name: "br".into(),
                    attrs: vec![],
                    self_closing: true
                },
                Token::StartTag {
                    name: "img".into(),
                    attrs: vec![("src".into(), "x".into())],
                    self_closing: true
                },
            ]
        );
    }

    #[test]
    fn duplicate_attrs_first_wins() {
        assert_eq!(
            toks(r#"<a id="one" id="two">"#),
            vec![start("a", &[("id", "one")])]
        );
    }

    #[test]
    fn comments() {
        assert_eq!(
            toks("a<!-- b --><!--unterminated"),
            vec![
                text("a"),
                Token::Comment(" b ".into()),
                Token::Comment("unterminated".into())
            ]
        );
    }

    #[test]
    fn doctype_simple() {
        assert_eq!(
            toks("<!DOCTYPE html>"),
            vec![Token::Doctype {
                name: "html".into(),
                public_id: String::new(),
                system_id: String::new()
            }]
        );
    }

    #[test]
    fn doctype_public() {
        let t = toks(
            r#"<!DOCTYPE HTML PUBLIC "-//W3C//DTD XHTML 1.0 Transitional//EN" "http://www.w3.org/TR/xhtml1/DTD/xhtml1-transitional.dtd">"#,
        );
        assert_eq!(
            t,
            vec![Token::Doctype {
                name: "html".into(),
                public_id: "-//W3C//DTD XHTML 1.0 Transitional//EN".into(),
                system_id: "http://www.w3.org/TR/xhtml1/DTD/xhtml1-transitional.dtd".into()
            }]
        );
    }

    #[test]
    fn script_raw_text_not_parsed() {
        assert_eq!(
            toks("<script>if (a < b) { x(\"</div>\"); }</script>"),
            vec![
                start("script", &[]),
                text("if (a < b) { x(\"</div>\"); }"),
                end("script"),
            ]
        );
    }

    #[test]
    fn script_close_inside_string_is_honored_leniently() {
        // Like browsers, the first real `</script` terminator wins.
        let t = toks("<script>var s = 1;</script >after");
        assert_eq!(
            t,
            vec![
                start("script", &[]),
                text("var s = 1;"),
                end("script"),
                text("after")
            ]
        );
    }

    #[test]
    fn title_content_entity_decoded() {
        assert_eq!(
            toks("<title>Tom &amp; Jerry</title>"),
            vec![start("title", &[]), text("Tom & Jerry"), end("title")]
        );
    }

    #[test]
    fn unterminated_script_consumes_rest() {
        assert_eq!(
            toks("<script>var x = '<div>';"),
            vec![start("script", &[]), text("var x = '<div>';")]
        );
    }

    #[test]
    fn literal_less_than_in_text() {
        assert_eq!(toks("a < b"), vec![text("a "), text("< b")]);
    }

    #[test]
    fn entities_in_text() {
        assert_eq!(toks("&lt;x&gt; &#65;"), vec![text("<x> A")]);
    }

    #[test]
    fn processing_instruction_is_bogus_comment() {
        assert_eq!(
            toks("<?xml version=\"1.0\"?>ok"),
            vec![Token::Comment("xml version=\"1.0\"?".into()), text("ok")]
        );
    }

    #[test]
    fn empty_end_tag_is_bogus() {
        let t = toks("</>x");
        assert_eq!(t, vec![Token::Comment(String::new()), text("x")]);
    }

    #[test]
    fn end_tag_with_attrs_ignores_them() {
        assert_eq!(toks("</div class='x'>"), vec![end("div")]);
    }

    #[test]
    fn unterminated_tag_at_eof() {
        let t = toks("<div class=");
        assert_eq!(t, vec![start("div", &[("class", "")])]);
    }

    #[test]
    fn textarea_raw_text() {
        assert_eq!(
            toks("<textarea><b>not bold</b></textarea>"),
            vec![
                start("textarea", &[]),
                text("<b>not bold</b>"),
                end("textarea")
            ]
        );
    }

    #[test]
    fn script_immediately_closed() {
        assert_eq!(
            toks("<script></script>"),
            vec![start("script", &[]), end("script")]
        );
    }

    #[test]
    fn fake_close_tag_prefix_inside_script() {
        assert_eq!(
            toks("<script>a</scriptfoo>b</script>"),
            vec![start("script", &[]), text("a</scriptfoo>b"), end("script"),]
        );
    }
}
