//! HTML character reference (entity) encoding and decoding.
//!
//! Supports the named entities that appear in real-world forum markup plus
//! decimal (`&#160;`) and hexadecimal (`&#xA0;`) numeric references.
//! Unknown references are passed through verbatim, matching lenient
//! browser behaviour.
//!
//! Both directions are SWAR-accelerated (DESIGN.md §15): `decode`
//! bulk-copies the spans between `&` bytes a word at a time, and the
//! encoders pre-scan for escapable bytes so clean input is returned
//! borrowed without a single allocation. The per-char reference
//! implementations survive as `*_scalar` twins behind byte-identity
//! property gates.

use msite_support::swar::{self, ByteSet};
use std::borrow::Cow;

/// Named entities recognized by [`decode`], ordered for binary search.
const NAMED: &[(&str, char)] = &[
    ("AMP", '&'),
    ("GT", '>'),
    ("LT", '<'),
    ("QUOT", '"'),
    ("amp", '&'),
    ("apos", '\''),
    ("bull", '\u{2022}'),
    ("cent", '\u{00A2}'),
    ("copy", '\u{00A9}'),
    ("dagger", '\u{2020}'),
    ("deg", '\u{00B0}'),
    ("divide", '\u{00F7}'),
    ("eacute", '\u{00E9}'),
    ("euro", '\u{20AC}'),
    ("frac12", '\u{00BD}'),
    ("frac14", '\u{00BC}'),
    ("gt", '>'),
    ("hellip", '\u{2026}'),
    ("laquo", '\u{00AB}'),
    ("ldquo", '\u{201C}'),
    ("lsquo", '\u{2018}'),
    ("lt", '<'),
    ("mdash", '\u{2014}'),
    ("middot", '\u{00B7}'),
    ("nbsp", '\u{00A0}'),
    ("ndash", '\u{2013}'),
    ("plusmn", '\u{00B1}'),
    ("pound", '\u{00A3}'),
    ("quot", '"'),
    ("raquo", '\u{00BB}'),
    ("rdquo", '\u{201D}'),
    ("reg", '\u{00AE}'),
    ("rsquo", '\u{2019}'),
    ("sect", '\u{00A7}'),
    ("times", '\u{00D7}'),
    ("trade", '\u{2122}'),
    ("yen", '\u{00A5}'),
];

fn lookup_named(name: &str) -> Option<char> {
    NAMED
        .binary_search_by(|(k, _)| k.cmp(&name))
        .ok()
        .map(|i| NAMED[i].1)
}

/// Decodes character references in `input`.
///
/// Handles named, decimal and hexadecimal references, with or without the
/// terminating semicolon for numeric forms. Invalid or unknown references
/// are left untouched.
///
/// # Examples
///
/// ```
/// assert_eq!(msite_html::entities::decode("a &amp; b &#65;&#x42;"), "a & b AB");
/// assert_eq!(msite_html::entities::decode("&bogus; stays"), "&bogus; stays");
/// ```
pub fn decode(input: &str) -> String {
    let bytes = input.as_bytes();
    // `&` is ASCII, so every occurrence is a char boundary: the spans
    // between occurrences bulk-copy without per-char inspection.
    let first = match swar::find_byte(bytes, b'&') {
        None => return input.to_string(),
        Some(i) => i,
    };
    let mut out = String::with_capacity(input.len());
    out.push_str(&input[..first]);
    let mut i = first;
    while i < bytes.len() {
        match parse_reference(&input[i..]) {
            Some((ch, consumed)) => {
                out.push(ch);
                i += consumed;
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
        match swar::find_byte(&bytes[i..], b'&') {
            Some(rel) => {
                out.push_str(&input[i..i + rel]);
                i += rel;
            }
            None => {
                out.push_str(&input[i..]);
                break;
            }
        }
    }
    out
}

/// Per-char reference twin of [`decode`], kept for the byte-identity
/// property gate (`crates/html/tests/swar_identity.rs`).
#[doc(hidden)]
pub fn decode_scalar(input: &str) -> String {
    if !input.contains('&') {
        return input.to_string();
    }
    let bytes = input.as_bytes();
    let mut out = String::with_capacity(input.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy the full UTF-8 scalar starting here.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        match parse_reference(&input[i..]) {
            Some((ch, consumed)) => {
                out.push(ch);
                i += consumed;
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
    }
    out
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b < 0xE0 => 2,
        b if b < 0xF0 => 3,
        _ => 4,
    }
}

/// Parses one reference at the start of `s` (which begins with `&`),
/// returning the decoded char and the number of bytes consumed.
fn parse_reference(s: &str) -> Option<(char, usize)> {
    let rest = &s[1..];
    if let Some(num) = rest.strip_prefix('#') {
        let (digits, radix): (String, u32) =
            if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X')) {
                (
                    hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect(),
                    16,
                )
            } else {
                (num.chars().take_while(|c| c.is_ascii_digit()).collect(), 10)
            };
        if digits.is_empty() {
            return None;
        }
        let code = u32::from_str_radix(&digits, radix).ok()?;
        let ch = char::from_u32(code)?;
        let mut consumed = 1 + 1 + digits.len(); // '&' '#' digits
        if radix == 16 {
            consumed += 1; // 'x'
        }
        if s.as_bytes().get(consumed) == Some(&b';') {
            consumed += 1;
        }
        return Some((ch, consumed));
    }
    // Named reference: letters/digits up to ';'.
    let name_len = rest
        .bytes()
        .take_while(|b| b.is_ascii_alphanumeric())
        .count();
    if name_len == 0 || rest.as_bytes().get(name_len) != Some(&b';') {
        return None;
    }
    let ch = lookup_named(&rest[..name_len])?;
    Some((ch, 1 + name_len + 1))
}

/// Bytes that force [`encode_text`] onto the escaping path: the three
/// markup-significant ASCII bytes plus `0xC2`, the UTF-8 lead byte of
/// U+00A0 (`&nbsp;`). `0xC2` also leads every other `U+0080..=U+00BF`
/// scalar — those false positives merely take the copying path, which
/// reproduces them verbatim.
const TEXT_TRIGGERS: ByteSet = ByteSet::new(&[b'&', b'<', b'>', 0xC2]);

/// [`encode_attr`]'s trigger set: [`TEXT_TRIGGERS`] plus `"`.
const ATTR_TRIGGERS: ByteSet = ByteSet::new(&[b'&', b'<', b'>', b'"', 0xC2]);

/// Escapes text content for safe inclusion between tags.
///
/// Input with no escapable byte — the overwhelmingly common case for
/// serializer output — is returned borrowed, with no allocation. The
/// pre-scan runs a word at a time.
///
/// # Examples
///
/// ```
/// assert_eq!(msite_html::entities::encode_text("a < b & c"), "a &lt; b &amp; c");
/// assert!(matches!(
///     msite_html::entities::encode_text("clean"),
///     std::borrow::Cow::Borrowed("clean")
/// ));
/// ```
pub fn encode_text(input: &str) -> Cow<'_, str> {
    match TEXT_TRIGGERS.find_in(input.as_bytes()) {
        None => Cow::Borrowed(input),
        // Every trigger byte starts a char (ASCII or a 2-byte lead),
        // so `at` is a valid boundary to bulk-copy up to.
        Some(at) => Cow::Owned(escape_from(input, at, false)),
    }
}

/// Escapes an attribute value for inclusion inside double quotes.
///
/// Clean input is returned borrowed, exactly as with [`encode_text`].
///
/// # Examples
///
/// ```
/// assert_eq!(msite_html::entities::encode_attr("say \"hi\""), "say &quot;hi&quot;");
/// ```
pub fn encode_attr(input: &str) -> Cow<'_, str> {
    match ATTR_TRIGGERS.find_in(input.as_bytes()) {
        None => Cow::Borrowed(input),
        Some(at) => Cow::Owned(escape_from(input, at, true)),
    }
}

/// The escaping path: copies the clean prefix wholesale, then runs the
/// per-char loop from the first trigger byte onward.
fn escape_from(input: &str, first: usize, attr: bool) -> String {
    let mut out = String::with_capacity(input.len() + 8);
    out.push_str(&input[..first]);
    push_escaped(&mut out, &input[first..], attr);
    out
}

fn push_escaped(out: &mut String, chunk: &str, attr: bool) {
    for ch in chunk.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            '\u{00A0}' => out.push_str("&nbsp;"),
            c => out.push(c),
        }
    }
}

/// The original always-allocating per-char [`encode_text`], kept as the
/// identity-gate reference.
#[doc(hidden)]
pub fn encode_text_scalar(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    push_escaped(&mut out, input, false);
    out
}

/// The original always-allocating per-char [`encode_attr`], kept as the
/// identity-gate reference.
#[doc(hidden)]
pub fn encode_attr_scalar(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    push_escaped(&mut out, input, true);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_table_is_sorted() {
        for pair in NAMED.windows(2) {
            assert!(pair[0].0 < pair[1].0, "{} >= {}", pair[0].0, pair[1].0);
        }
    }

    #[test]
    fn decodes_common_named() {
        assert_eq!(decode("&lt;b&gt;&amp;&quot;&apos;"), "<b>&\"'");
        assert_eq!(decode("&nbsp;"), "\u{00A0}");
        assert_eq!(decode("&copy;&trade;&reg;"), "\u{00A9}\u{2122}\u{00AE}");
    }

    #[test]
    fn decodes_numeric_forms() {
        assert_eq!(decode("&#65;"), "A");
        assert_eq!(decode("&#x41;"), "A");
        assert_eq!(decode("&#X41;"), "A");
        // Missing semicolon still decodes for numeric references.
        assert_eq!(decode("&#65 next"), "A next");
    }

    #[test]
    fn unknown_references_pass_through() {
        assert_eq!(decode("&unknown;"), "&unknown;");
        assert_eq!(decode("&; &"), "&; &");
        assert_eq!(decode("a&b"), "a&b");
        assert_eq!(decode("100% &up"), "100% &up");
    }

    #[test]
    fn named_without_semicolon_not_decoded() {
        assert_eq!(decode("Tom&amp Jerry"), "Tom&amp Jerry");
    }

    #[test]
    fn invalid_codepoint_passes_through() {
        assert_eq!(decode("&#x110000;"), "&#x110000;");
        assert_eq!(decode("&#xD800;"), "&#xD800;");
    }

    #[test]
    fn clean_input_is_zero_copy() {
        // ASCII-clean text must come back borrowed — no allocation.
        assert!(matches!(
            encode_text("plain ascii text with no escapes"),
            Cow::Borrowed(_)
        ));
        assert!(matches!(
            encode_attr("/m/forum/viewtopic.php?t=12"),
            Cow::Borrowed(_)
        ));
        // Non-ASCII without U+00A0's 0xC2 lead also stays borrowed.
        assert!(matches!(encode_text("héllo wörld ❤"), Cow::Borrowed(_)));
        // Escapable input still allocates and escapes.
        assert!(matches!(encode_text("a < b"), Cow::Owned(_)));
        assert!(matches!(encode_attr("say \"hi\""), Cow::Owned(_)));
        assert_eq!(encode_text("\u{00A0}"), "&nbsp;");
        assert_eq!(encode_attr("\u{00A0}"), "&nbsp;");
    }

    #[test]
    fn round_trip_text() {
        let original = "5 < 6 & 7 > 2 \"quoted\"";
        assert_eq!(decode(&encode_text(original)), original);
    }

    #[test]
    fn round_trip_attr() {
        let original = "a \"b\" <c> & d";
        assert_eq!(decode(&encode_attr(original)), original);
    }

    #[test]
    fn multibyte_input_copied_correctly() {
        assert_eq!(decode("héllo &amp; wörld ❤"), "héllo & wörld ❤");
    }
}
