//! Arena-based document object model.
//!
//! Nodes live in a flat `Vec` owned by [`Document`]; relationships are
//! expressed through [`NodeId`] indices. Detaching a node leaves it in the
//! arena (cheap, no reference counting) but removes it from the tree, so it
//! is no longer reachable from the root. The proxy pipeline copies, moves
//! and deletes page objects heavily, which this representation makes cheap
//! and borrow-checker friendly.

use std::fmt;

/// Handle to a node inside a [`Document`] arena.
///
/// A `NodeId` is only meaningful together with the document that created
/// it. Using it with a different document yields unspecified (but memory
/// safe) results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    #[inline]
    pub(crate) fn new(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Raw index of this node inside the document arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An element node: a lowercase tag name plus an ordered attribute list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    name: String,
    attrs: Vec<(String, String)>,
}

impl Element {
    /// Creates an element, lowercasing the tag name.
    pub fn new(name: &str) -> Self {
        Element {
            name: name.to_ascii_lowercase(),
            attrs: Vec::new(),
        }
    }

    /// Lowercase tag name, e.g. `"div"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the element (lowercased).
    pub fn set_name(&mut self, name: &str) {
        self.name = name.to_ascii_lowercase();
    }

    /// Value of the attribute `name` (case-insensitive), if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.attrs
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Sets (or replaces) an attribute. Attribute names are lowercased;
    /// the first occurrence wins on duplicates.
    pub fn set_attr(&mut self, name: &str, value: &str) {
        let name = name.to_ascii_lowercase();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| *k == name) {
            slot.1 = value.to_string();
        } else {
            self.attrs.push((name, value.to_string()));
        }
    }

    /// Removes an attribute, returning its previous value.
    pub fn remove_attr(&mut self, name: &str) -> Option<String> {
        let name = name.to_ascii_lowercase();
        let pos = self.attrs.iter().position(|(k, _)| *k == name)?;
        Some(self.attrs.remove(pos).1)
    }

    /// Ordered `(name, value)` attribute pairs.
    pub fn attrs(&self) -> &[(String, String)] {
        &self.attrs
    }

    /// True when the `class` attribute contains `class_name` as a
    /// whitespace-separated token.
    pub fn has_class(&self, class_name: &str) -> bool {
        self.attr("class")
            .map(|c| c.split_ascii_whitespace().any(|t| t == class_name))
            .unwrap_or(false)
    }

    /// Appends a class token if absent.
    pub fn add_class(&mut self, class_name: &str) {
        if self.has_class(class_name) {
            return;
        }
        let merged = match self.attr("class") {
            Some(existing) if !existing.is_empty() => format!("{existing} {class_name}"),
            _ => class_name.to_string(),
        };
        self.set_attr("class", &merged);
    }

    /// Removes a class token if present.
    pub fn remove_class(&mut self, class_name: &str) {
        if let Some(existing) = self.attr("class") {
            let remaining: Vec<&str> = existing
                .split_ascii_whitespace()
                .filter(|t| *t != class_name)
                .collect();
            self.set_attr("class", &remaining.join(" "));
        }
    }
}

/// The payload of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeData {
    /// The document root. Exactly one per document, always at index 0.
    Document,
    /// `<!DOCTYPE ...>`.
    Doctype {
        /// Root element name, typically `html`.
        name: String,
        /// PUBLIC identifier, empty when absent.
        public_id: String,
        /// SYSTEM identifier, empty when absent.
        system_id: String,
    },
    /// An element with tag name and attributes.
    Element(Element),
    /// A text node (already entity-decoded).
    Text(String),
    /// `<!-- ... -->`.
    Comment(String),
}

impl NodeData {
    /// The element payload, when this node is an element.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            NodeData::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Mutable element payload, when this node is an element.
    pub fn as_element_mut(&mut self) -> Option<&mut Element> {
        match self {
            NodeData::Element(e) => Some(e),
            _ => None,
        }
    }

    /// The text payload, when this node is a text node.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            NodeData::Text(t) => Some(t),
            _ => None,
        }
    }
}

/// A node in the arena: tree links plus payload.
#[derive(Debug, Clone)]
pub struct Node {
    parent: Option<NodeId>,
    prev_sibling: Option<NodeId>,
    next_sibling: Option<NodeId>,
    first_child: Option<NodeId>,
    last_child: Option<NodeId>,
    data: NodeData,
}

impl Node {
    fn new(data: NodeData) -> Self {
        Node {
            parent: None,
            prev_sibling: None,
            next_sibling: None,
            first_child: None,
            last_child: None,
            data,
        }
    }

    /// The node payload.
    pub fn data(&self) -> &NodeData {
        &self.data
    }

    /// Parent node, `None` for the root or detached nodes.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Next sibling in document order.
    pub fn next_sibling(&self) -> Option<NodeId> {
        self.next_sibling
    }

    /// Previous sibling in document order.
    pub fn prev_sibling(&self) -> Option<NodeId> {
        self.prev_sibling
    }

    /// First child.
    pub fn first_child(&self) -> Option<NodeId> {
        self.first_child
    }

    /// Last child.
    pub fn last_child(&self) -> Option<NodeId> {
        self.last_child
    }
}

/// An HTML document: an arena of [`Node`]s rooted at [`Document::root`].
///
/// # Examples
///
/// ```
/// use msite_html::Document;
///
/// let mut doc = Document::new();
/// let root = doc.root();
/// let div = doc.create_element("div");
/// doc.set_attr(div, "id", "box");
/// let text = doc.create_text("hello");
/// doc.append_child(div, text);
/// doc.append_child(root, div);
/// assert_eq!(doc.to_html(), "<div id=\"box\">hello</div>");
/// ```
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates an empty document containing only the root node.
    pub fn new() -> Self {
        Document {
            nodes: vec![Node::new(NodeData::Document)],
        }
    }

    /// The root node id (always valid).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes ever allocated (including detached ones).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this document.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    #[inline]
    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Payload of `id`.
    #[inline]
    pub fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()].data
    }

    /// Mutable payload of `id`.
    #[inline]
    pub fn data_mut(&mut self, id: NodeId) -> &mut NodeData {
        &mut self.nodes[id.index()].data
    }

    fn alloc(&mut self, data: NodeData) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(Node::new(data));
        id
    }

    /// Creates a detached element node.
    pub fn create_element(&mut self, name: &str) -> NodeId {
        self.alloc(NodeData::Element(Element::new(name)))
    }

    /// Creates a detached element with attributes applied in order.
    pub fn create_element_with_attrs(&mut self, name: &str, attrs: &[(&str, &str)]) -> NodeId {
        let mut element = Element::new(name);
        for (k, v) in attrs {
            element.set_attr(k, v);
        }
        self.alloc(NodeData::Element(element))
    }

    /// Creates a detached text node.
    pub fn create_text(&mut self, text: &str) -> NodeId {
        self.alloc(NodeData::Text(text.to_string()))
    }

    /// Creates a detached comment node.
    pub fn create_comment(&mut self, text: &str) -> NodeId {
        self.alloc(NodeData::Comment(text.to_string()))
    }

    /// Creates a detached doctype node.
    pub fn create_doctype(&mut self, name: &str, public_id: &str, system_id: &str) -> NodeId {
        self.alloc(NodeData::Doctype {
            name: name.to_string(),
            public_id: public_id.to_string(),
            system_id: system_id.to_string(),
        })
    }

    /// Appends `child` as the last child of `parent`, detaching it from any
    /// previous location first.
    ///
    /// # Panics
    ///
    /// Panics if `child` is the root, or if appending would create a cycle
    /// (i.e. `parent` is a descendant of `child`).
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        assert_ne!(child, self.root(), "cannot reparent the document root");
        assert!(
            !self.is_ancestor_of(child, parent) && parent != child,
            "appending {child} under {parent} would create a cycle"
        );
        self.detach(child);
        let old_last = self.node(parent).last_child;
        self.node_mut(child).parent = Some(parent);
        self.node_mut(child).prev_sibling = old_last;
        match old_last {
            Some(last) => self.node_mut(last).next_sibling = Some(child),
            None => self.node_mut(parent).first_child = Some(child),
        }
        self.node_mut(parent).last_child = Some(child);
    }

    /// Inserts `new` immediately before `reference` under the same parent.
    ///
    /// # Panics
    ///
    /// Panics if `reference` is detached or the root, or on cycles.
    pub fn insert_before(&mut self, new: NodeId, reference: NodeId) {
        let parent = self
            .node(reference)
            .parent
            .expect("insert_before reference node must be attached");
        assert!(
            !self.is_ancestor_of(new, parent) && parent != new,
            "inserting {new} before {reference} would create a cycle"
        );
        self.detach(new);
        let prev = self.node(reference).prev_sibling;
        self.node_mut(new).parent = Some(parent);
        self.node_mut(new).prev_sibling = prev;
        self.node_mut(new).next_sibling = Some(reference);
        self.node_mut(reference).prev_sibling = Some(new);
        match prev {
            Some(p) => self.node_mut(p).next_sibling = Some(new),
            None => self.node_mut(parent).first_child = Some(new),
        }
    }

    /// Inserts `new` immediately after `reference` under the same parent.
    ///
    /// # Panics
    ///
    /// Panics if `reference` is detached or the root, or on cycles.
    pub fn insert_after(&mut self, new: NodeId, reference: NodeId) {
        match self.node(reference).next_sibling {
            Some(next) => self.insert_before(new, next),
            None => {
                let parent = self
                    .node(reference)
                    .parent
                    .expect("insert_after reference node must be attached");
                self.append_child(parent, new);
            }
        }
    }

    /// Prepends `child` as the first child of `parent`.
    pub fn prepend_child(&mut self, parent: NodeId, child: NodeId) {
        match self.node(parent).first_child {
            Some(first) => self.insert_before(child, first),
            None => self.append_child(parent, child),
        }
    }

    /// Detaches `id` from its parent and siblings. The subtree below `id`
    /// stays intact; the node remains allocated in the arena.
    pub fn detach(&mut self, id: NodeId) {
        let (parent, prev, next) = {
            let n = self.node(id);
            (n.parent, n.prev_sibling, n.next_sibling)
        };
        if let Some(p) = prev {
            self.node_mut(p).next_sibling = next;
        }
        if let Some(n) = next {
            self.node_mut(n).prev_sibling = prev;
        }
        if let Some(par) = parent {
            if self.node(par).first_child == Some(id) {
                self.node_mut(par).first_child = next;
            }
            if self.node(par).last_child == Some(id) {
                self.node_mut(par).last_child = prev;
            }
        }
        let n = self.node_mut(id);
        n.parent = None;
        n.prev_sibling = None;
        n.next_sibling = None;
    }

    /// Replaces `old` with `new` in the tree. `old` is detached.
    ///
    /// # Panics
    ///
    /// Panics if `old` is detached or the root.
    pub fn replace(&mut self, old: NodeId, new: NodeId) {
        self.insert_before(new, old);
        self.detach(old);
    }

    /// True when `ancestor` is a strict ancestor of `node`.
    pub fn is_ancestor_of(&self, ancestor: NodeId, node: NodeId) -> bool {
        let mut cur = self.node(node).parent;
        while let Some(id) = cur {
            if id == ancestor {
                return true;
            }
            cur = self.node(id).parent;
        }
        false
    }

    /// True when the node is attached (reachable from the root).
    pub fn is_attached(&self, id: NodeId) -> bool {
        id == self.root() || {
            let mut cur = Some(id);
            loop {
                match cur {
                    Some(n) if n == self.root() => break true,
                    Some(n) => cur = self.node(n).parent,
                    None => break false,
                }
            }
        }
    }

    /// Iterator over the direct children of `id`.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.node(id).first_child,
        }
    }

    /// Iterator over all descendants of `id` in document order
    /// (excluding `id` itself).
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            scope: id,
            next: self.node(id).first_child,
        }
    }

    /// Iterator over ancestors of `id`, nearest first (excluding `id`).
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors {
            doc: self,
            next: self.node(id).parent,
        }
    }

    /// Tag name when `id` is an element.
    pub fn tag_name(&self, id: NodeId) -> Option<&str> {
        self.data(id).as_element().map(|e| e.name())
    }

    /// True when `id` is an element named `name` (case-insensitive).
    pub fn is_element_named(&self, id: NodeId, name: &str) -> bool {
        self.tag_name(id)
            .map(|n| n.eq_ignore_ascii_case(name))
            .unwrap_or(false)
    }

    /// Attribute `name` of element `id`.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        self.data(id).as_element().and_then(|e| e.attr(name))
    }

    /// Sets attribute `name` on element `id`. No-op on non-elements.
    pub fn set_attr(&mut self, id: NodeId, name: &str, value: &str) {
        if let Some(e) = self.data_mut(id).as_element_mut() {
            e.set_attr(name, value);
        }
    }

    /// Removes attribute `name` from element `id`, returning its value.
    pub fn remove_attr(&mut self, id: NodeId, name: &str) -> Option<String> {
        self.data_mut(id)
            .as_element_mut()
            .and_then(|e| e.remove_attr(name))
    }

    /// All descendant elements of `scope` with tag `name` (lowercase
    /// comparison), in document order.
    pub fn elements_by_tag(&self, scope: NodeId, name: &str) -> Vec<NodeId> {
        let name = name.to_ascii_lowercase();
        self.descendants(scope)
            .filter(|&id| self.tag_name(id) == Some(name.as_str()))
            .collect()
    }

    /// First descendant element with `id` attribute equal to `value`.
    pub fn element_by_id(&self, value: &str) -> Option<NodeId> {
        self.descendants(self.root())
            .find(|&id| self.attr(id, "id") == Some(value))
    }

    /// Concatenated text of all text nodes under `id` (including `id` when
    /// it is itself a text node), without any normalization.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        if let NodeData::Text(t) = self.data(id) {
            out.push_str(t);
        }
        for d in self.descendants(id) {
            if let NodeData::Text(t) = self.data(d) {
                out.push_str(t);
            }
        }
        out
    }

    /// Replaces the children of `id` with a single text node.
    pub fn set_text_content(&mut self, id: NodeId, text: &str) {
        let children: Vec<NodeId> = self.children(id).collect();
        for c in children {
            self.detach(c);
        }
        let t = self.create_text(text);
        self.append_child(id, t);
    }

    /// Deep-copies the subtree rooted at `id`, returning the detached copy.
    pub fn clone_subtree(&mut self, id: NodeId) -> NodeId {
        let copy = self.alloc(self.nodes[id.index()].data.clone());
        let children: Vec<NodeId> = self.children(id).collect();
        for child in children {
            let child_copy = self.clone_subtree(child);
            self.append_child(copy, child_copy);
        }
        copy
    }

    /// Imports the subtree rooted at `src_id` from `src` into this
    /// document, returning the detached imported root.
    pub fn import_subtree(&mut self, src: &Document, src_id: NodeId) -> NodeId {
        let copy = self.alloc(src.node(src_id).data.clone());
        for child in src.children(src_id) {
            let child_copy = self.import_subtree(src, child);
            self.append_child(copy, child_copy);
        }
        copy
    }

    /// Number of attached element nodes in the whole document. Used by the
    /// page-load cost model.
    pub fn element_count(&self) -> usize {
        self.descendants(self.root())
            .filter(|&id| self.data(id).as_element().is_some())
            .count()
    }

    /// 1-based position of `id` among its element siblings
    /// (for `:nth-child`). Returns `None` for detached nodes.
    pub fn element_sibling_index(&self, id: NodeId) -> Option<usize> {
        let parent = self.node(id).parent?;
        let mut index = 0;
        for sibling in self.children(parent) {
            if self.data(sibling).as_element().is_some() {
                index += 1;
            }
            if sibling == id {
                return Some(index);
            }
        }
        None
    }
}

/// Iterator over direct children. See [`Document::children`].
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl<'a> Iterator for Children<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.node(id).next_sibling;
        Some(id)
    }
}

/// Iterator over all descendants in document order. See
/// [`Document::descendants`].
pub struct Descendants<'a> {
    doc: &'a Document,
    scope: NodeId,
    next: Option<NodeId>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        // Pre-order traversal: descend, else advance, else climb.
        let node = self.doc.node(id);
        self.next = if let Some(child) = node.first_child {
            Some(child)
        } else {
            let mut cur = id;
            loop {
                if cur == self.scope {
                    break None;
                }
                let n = self.doc.node(cur);
                if let Some(sib) = n.next_sibling {
                    break Some(sib);
                }
                match n.parent {
                    Some(p) => cur = p,
                    None => break None,
                }
            }
        };
        Some(id)
    }
}

/// Iterator over ancestors, nearest first. See [`Document::ancestors`].
pub struct Ancestors<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl<'a> Iterator for Ancestors<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.next?;
        self.next = self.doc.node(id).parent;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut doc = Document::new();
        let root = doc.root();
        let a = doc.create_element("div");
        let b = doc.create_element("span");
        doc.append_child(root, a);
        doc.append_child(a, b);
        (doc, root, a, b)
    }

    #[test]
    fn append_builds_links() {
        let (doc, root, a, b) = sample();
        assert_eq!(doc.node(root).first_child(), Some(a));
        assert_eq!(doc.node(root).last_child(), Some(a));
        assert_eq!(doc.node(a).parent(), Some(root));
        assert_eq!(doc.node(b).parent(), Some(a));
    }

    #[test]
    fn detach_removes_from_tree() {
        let (mut doc, root, a, b) = sample();
        doc.detach(b);
        assert_eq!(doc.node(a).first_child(), None);
        assert_eq!(doc.node(b).parent(), None);
        assert!(doc.is_attached(a));
        assert!(!doc.is_attached(b));
        assert!(doc.is_attached(root));
    }

    #[test]
    fn insert_before_and_after_order() {
        let (mut doc, root, a, _) = sample();
        let x = doc.create_element("x");
        let y = doc.create_element("y");
        doc.insert_before(x, a);
        doc.insert_after(y, a);
        let kids: Vec<_> = doc
            .children(root)
            .map(|id| doc.tag_name(id).unwrap().to_string())
            .collect();
        assert_eq!(kids, ["x", "div", "y"]);
    }

    #[test]
    fn prepend_child_goes_first() {
        let (mut doc, _, a, _) = sample();
        let x = doc.create_element("x");
        doc.prepend_child(a, x);
        assert_eq!(doc.node(a).first_child(), Some(x));
    }

    #[test]
    fn replace_swaps_nodes() {
        let (mut doc, root, a, _) = sample();
        let x = doc.create_element("x");
        doc.replace(a, x);
        let kids: Vec<_> = doc.children(root).collect();
        assert_eq!(kids, [x]);
        assert!(!doc.is_attached(a));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn append_into_own_subtree_panics() {
        let (mut doc, _, a, b) = sample();
        doc.append_child(b, a);
    }

    #[test]
    fn descendants_in_document_order() {
        let mut doc = Document::new();
        let root = doc.root();
        let a = doc.create_element("a");
        let b = doc.create_element("b");
        let c = doc.create_element("c");
        let d = doc.create_element("d");
        doc.append_child(root, a);
        doc.append_child(a, b);
        doc.append_child(a, c);
        doc.append_child(root, d);
        let names: Vec<_> = doc
            .descendants(root)
            .filter_map(|id| doc.tag_name(id).map(str::to_string))
            .collect();
        assert_eq!(names, ["a", "b", "c", "d"]);
    }

    #[test]
    fn descendants_scoped_to_subtree() {
        let mut doc = Document::new();
        let root = doc.root();
        let a = doc.create_element("a");
        let b = doc.create_element("b");
        let d = doc.create_element("d");
        doc.append_child(root, a);
        doc.append_child(a, b);
        doc.append_child(root, d);
        let within_a: Vec<_> = doc.descendants(a).collect();
        assert_eq!(within_a, [b]);
    }

    #[test]
    fn text_content_concatenates() {
        let mut doc = Document::new();
        let root = doc.root();
        let p = doc.create_element("p");
        let t1 = doc.create_text("hello ");
        let b = doc.create_element("b");
        let t2 = doc.create_text("world");
        doc.append_child(root, p);
        doc.append_child(p, t1);
        doc.append_child(p, b);
        doc.append_child(b, t2);
        assert_eq!(doc.text_content(p), "hello world");
    }

    #[test]
    fn set_text_content_replaces_children() {
        let (mut doc, _, a, b) = sample();
        doc.set_text_content(a, "fresh");
        assert_eq!(doc.text_content(a), "fresh");
        assert!(!doc.is_attached(b));
    }

    #[test]
    fn attrs_case_insensitive_and_ordered() {
        let mut e = Element::new("DIV");
        assert_eq!(e.name(), "div");
        e.set_attr("ID", "x");
        e.set_attr("class", "a b");
        assert_eq!(e.attr("id"), Some("x"));
        assert_eq!(e.attr("Id"), Some("x"));
        e.set_attr("id", "y");
        assert_eq!(e.attr("id"), Some("y"));
        assert_eq!(e.attrs().len(), 2);
        assert!(e.has_class("a"));
        assert!(!e.has_class("ab"));
    }

    #[test]
    fn class_add_remove() {
        let mut e = Element::new("div");
        e.add_class("one");
        e.add_class("two");
        e.add_class("one");
        assert_eq!(e.attr("class"), Some("one two"));
        e.remove_class("one");
        assert_eq!(e.attr("class"), Some("two"));
    }

    #[test]
    fn clone_subtree_is_deep_and_detached() {
        let (mut doc, _, a, _) = sample();
        doc.set_attr(a, "id", "orig");
        let copy = doc.clone_subtree(a);
        assert!(!doc.is_attached(copy));
        assert_eq!(doc.attr(copy, "id"), Some("orig"));
        let copy_children: Vec<_> = doc.children(copy).collect();
        assert_eq!(copy_children.len(), 1);
        // Mutating the copy leaves the original untouched.
        doc.set_attr(copy, "id", "copy");
        assert_eq!(doc.attr(a, "id"), Some("orig"));
    }

    #[test]
    fn import_subtree_between_documents() {
        let (src, _, a, _) = sample();
        let mut dst = Document::new();
        let imported = dst.import_subtree(&src, a);
        let root = dst.root();
        dst.append_child(root, imported);
        assert_eq!(dst.elements_by_tag(root, "span").len(), 1);
    }

    #[test]
    fn element_by_id_lookup() {
        let (mut doc, _, _, b) = sample();
        doc.set_attr(b, "id", "needle");
        assert_eq!(doc.element_by_id("needle"), Some(b));
        assert_eq!(doc.element_by_id("missing"), None);
    }

    #[test]
    fn element_sibling_index_skips_text() {
        let mut doc = Document::new();
        let root = doc.root();
        let t = doc.create_text("x");
        let a = doc.create_element("a");
        let b = doc.create_element("b");
        doc.append_child(root, t);
        doc.append_child(root, a);
        doc.append_child(root, b);
        assert_eq!(doc.element_sibling_index(a), Some(1));
        assert_eq!(doc.element_sibling_index(b), Some(2));
    }
}
