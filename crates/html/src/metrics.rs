//! Per-subtree content metrics over the canonical serialization.
//!
//! [`measure`] computes, for **every** subtree in a document, the
//! structural quantities content-scoring heuristics need — serialized
//! byte length, visible text bytes, text bytes inside links, comment
//! bytes, element/link/paragraph counts — in the same single
//! serialization walk that [`fingerprint_map`](crate::fingerprint::
//! fingerprint_map) uses: a stack of running accumulators, one per open
//! ancestor, absorbs each emitted byte, so the cost is
//! O(depth · bytes) with no per-subtree re-serialization.
//!
//! [`fingerprint_and_measure`] piggybacks the metrics accumulation on
//! the fingerprint traversal so pipelines that want both (incremental
//! re-adaptation + content scoring) pay for one walk.
//!
//! The metrics are purely structural: the derived ratios
//! ([`SubtreeMetrics::link_density`], [`SubtreeMetrics::text_ratio`],
//! [`SubtreeMetrics::comment_density`]) are the classic
//! readability/boilerplate signals; the *policy* that turns them into
//! scores lives in the adaptation layer, not here.

use crate::dom::{Document, NodeId};
use crate::fingerprint::{walk_document, FingerprintMap};
use std::collections::HashMap;

/// Structural content metrics for one subtree, accumulated over the
/// subtree's canonical serialization. A subtree's metrics include the
/// subtree root itself (its `bytes` equal the length of
/// [`Document::outer_html`](crate::Document::outer_html) for that node).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubtreeMetrics {
    /// Serialized byte length of the subtree (its outer HTML).
    pub bytes: u32,
    /// Bytes of rendered (entity-encoded) text outside raw-text
    /// elements — script/style bodies do not count as content text.
    pub text_bytes: u32,
    /// The portion of `text_bytes` that sits inside an `<a>` element.
    pub link_text_bytes: u32,
    /// Bytes of HTML comment payloads.
    pub comment_bytes: u32,
    /// Elements in the subtree (including the subtree root when it is
    /// an element).
    pub elements: u32,
    /// `<a>` elements in the subtree.
    pub links: u32,
    /// `<p>` elements in the subtree.
    pub paragraphs: u32,
}

impl SubtreeMetrics {
    /// Fraction of content text that is link text, in `[0, 1]`. A
    /// navigation block is nearly all links; an article is nearly none.
    pub fn link_density(&self) -> f64 {
        if self.text_bytes == 0 {
            0.0
        } else {
            f64::from(self.link_text_bytes) / f64::from(self.text_bytes)
        }
    }

    /// Fraction of serialized bytes that are content text, in `[0, 1]`.
    /// Markup-heavy widgets score low; prose scores high.
    pub fn text_ratio(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            f64::from(self.text_bytes) / f64::from(self.bytes)
        }
    }

    /// Fraction of serialized bytes that are comment payloads.
    pub fn comment_density(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            f64::from(self.comment_bytes) / f64::from(self.bytes)
        }
    }
}

/// Per-subtree metrics for one document, keyed by [`NodeId`].
#[derive(Debug, Clone, Default)]
pub struct MetricsMap {
    pub(crate) map: HashMap<NodeId, SubtreeMetrics>,
    pub(crate) root: SubtreeMetrics,
}

impl MetricsMap {
    /// The metrics of the subtree rooted at `id`, when `id` was part of
    /// the measured document.
    pub fn of(&self, id: NodeId) -> Option<SubtreeMetrics> {
        self.map.get(&id).copied()
    }

    /// Whole-document metrics (over
    /// [`Document::to_html`](crate::Document::to_html) output).
    pub fn root(&self) -> SubtreeMetrics {
        self.root
    }

    /// Number of measured subtrees.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no subtrees were measured (empty document).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Computes content metrics for every subtree in `doc` in a single
/// serialization walk.
///
/// # Examples
///
/// ```
/// use msite_html::metrics::measure;
///
/// let doc = msite_html::parse_document(
///     "<div id=\"nav\"><a href=\"/\">home</a> <a href=\"/x\">x</a></div>");
/// let m = measure(&doc);
/// let nav = doc.element_by_id("nav").unwrap();
/// let nav_metrics = m.of(nav).unwrap();
/// assert_eq!(nav_metrics.links, 2);
/// assert!(nav_metrics.link_density() > 0.8);
/// assert_eq!(nav_metrics.bytes as usize, doc.outer_html(nav).len());
/// ```
pub fn measure(doc: &Document) -> MetricsMap {
    let (_, metrics) = walk_document(doc, false, true);
    metrics.expect("metrics requested")
}

/// Computes fingerprints *and* content metrics in one walk — what the
/// adaptation pipeline uses when a page needs both incremental
/// re-adaptation and content scoring.
pub fn fingerprint_and_measure(doc: &Document) -> (FingerprintMap, MetricsMap) {
    let (fp, metrics) = walk_document(doc, true, true);
    (fp, metrics.expect("metrics requested"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint_map;
    use crate::parse_document;

    const PAGE: &str = "<!DOCTYPE html><html><head><title>T</title>\
         <script>var links = '<a href=x>not text</a>';</script></head>\
         <body><!-- build 77 --><div id=\"nav\"><a href=\"/\">home</a> \
         <a href=\"/b\">boards</a></div>\
         <div id=\"article\"><p>The grain runs true along this board and \
         finish coats cure hard.</p><p>Clamps hold joints square until \
         glue sets overnight; see <a href=\"/ref\">the guide</a>.</p></div>\
         </body></html>";

    #[test]
    fn bytes_match_outer_html_for_every_node() {
        let doc = parse_document(PAGE);
        let m = measure(&doc);
        let mut stack: Vec<NodeId> = doc.children(doc.root()).collect();
        let mut visited = 0usize;
        while let Some(id) = stack.pop() {
            visited += 1;
            assert_eq!(
                m.of(id).expect("measured").bytes as usize,
                doc.outer_html(id).len(),
                "node {id:?} bytes must equal its outer html length"
            );
            stack.extend(doc.children(id));
        }
        assert_eq!(m.len(), visited);
        assert_eq!(m.root().bytes as usize, doc.to_html().len());
    }

    #[test]
    fn nav_scores_linky_and_article_scores_texty() {
        let doc = parse_document(PAGE);
        let m = measure(&doc);
        let nav = m.of(doc.element_by_id("nav").unwrap()).unwrap();
        let article = m.of(doc.element_by_id("article").unwrap()).unwrap();
        assert_eq!(nav.links, 2);
        assert!(nav.link_density() > 0.8, "nav {:?}", nav);
        assert_eq!(article.paragraphs, 2);
        assert!(article.link_density() < 0.2, "article {:?}", article);
        assert!(article.text_ratio() > nav.text_ratio());
    }

    #[test]
    fn script_text_is_not_content_text() {
        let doc = parse_document(PAGE);
        let m = measure(&doc);
        let script = doc
            .descendants(doc.root())
            .find(|&id| doc.is_element_named(id, "script"))
            .unwrap();
        let sm = m.of(script).unwrap();
        assert_eq!(sm.text_bytes, 0, "{sm:?}");
        assert_eq!(sm.links, 0);
        assert!(sm.bytes > 0);
    }

    #[test]
    fn comment_bytes_counted() {
        let doc = parse_document(PAGE);
        let m = measure(&doc);
        assert_eq!(m.root().comment_bytes as usize, " build 77 ".len());
        assert!(m.root().comment_density() > 0.0);
    }

    #[test]
    fn combined_walk_agrees_with_separate_walks() {
        let doc = parse_document(PAGE);
        let (fp, m) = fingerprint_and_measure(&doc);
        let fp_alone = fingerprint_map(&doc);
        let m_alone = measure(&doc);
        assert_eq!(fp.root(), fp_alone.root());
        assert_eq!(m.root(), m_alone.root());
        for id in doc.descendants(doc.root()) {
            assert_eq!(fp.of(id), fp_alone.of(id));
            assert_eq!(m.of(id), m_alone.of(id));
        }
    }

    #[test]
    fn round_trip_preserves_metrics() {
        let first = parse_document(PAGE);
        let second = parse_document(&first.to_html());
        let (ma, mb) = (measure(&first), measure(&second));
        assert_eq!(ma.root(), mb.root());
        let seq = |doc: &Document, m: &MetricsMap| -> Vec<SubtreeMetrics> {
            doc.descendants(doc.root())
                .map(|id| m.of(id).expect("measured"))
                .collect()
        };
        assert_eq!(seq(&first, &ma), seq(&second, &mb));
    }
}
