//! # msite-html
//!
//! HTML parsing substrate for the m.Site reproduction: a lenient
//! tokenizer, an HTML5-subset tree builder, an arena [`Document`] model,
//! HTML/XHTML serialization, and a Tidy-style normalizer.
//!
//! The m.Site paper's proxy manipulates pages both at the *source level*
//! (string filters) and at the *DOM level* (after an HTML Tidy pass makes
//! the markup parseable). This crate supplies the DOM half; it never
//! fails on malformed input, because origin servers cannot be trusted to
//! produce clean markup.
//!
//! ## Quick start
//!
//! ```
//! use msite_html::{parse_document, tidy};
//!
//! // Lenient parse of messy forum markup.
//! let doc = parse_document("<ul><li>First post<li>Second post</ul>");
//! assert_eq!(doc.elements_by_tag(doc.root(), "li").len(), 2);
//!
//! // Tidy to canonical XHTML for strict tooling.
//! let xhtml = tidy::to_xhtml_string("<p>a<br>b");
//! assert!(xhtml.contains("<br />"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dom;
pub mod entities;
pub mod fingerprint;
pub mod metrics;
pub mod parser;
pub mod serialize;
pub mod text;
pub mod tidy;
pub mod tokenizer;

pub use dom::{Document, Element, Node, NodeData, NodeId};
pub use metrics::{fingerprint_and_measure, measure, MetricsMap, SubtreeMetrics};
pub use parser::{is_void_element, parse_document, parse_fragment, parse_fragment_into};
pub use serialize::Dialect;
pub use tidy::{tidy, tidy_with_report, TidyReport};
