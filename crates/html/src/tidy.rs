//! HTML Tidy equivalent: normalize arbitrary markup into well-formed
//! XHTML with a canonical `html > head + body` structure.
//!
//! The m.Site proxy applies this at the filter phase so the rest of the
//! pipeline (XPath, CSS selectors, DOM attributes) can assume a sane tree,
//! mirroring the paper's use of Dave Raggett's HTML Tidy before the DOM
//! parse.

use crate::dom::{Document, NodeData, NodeId};
use crate::parser::parse_document;

/// Elements that belong in `<head>`.
const HEAD_ELEMENTS: &[&str] = &["title", "meta", "link", "base", "style"];

/// What [`tidy_with_report`] had to fix.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TidyReport {
    /// An `<html>` element had to be synthesized.
    pub created_html: bool,
    /// A `<head>` element had to be synthesized.
    pub created_head: bool,
    /// A `<body>` element had to be synthesized.
    pub created_body: bool,
    /// Number of nodes relocated into `<head>` or `<body>`.
    pub moved_nodes: usize,
    /// A doctype was added because none was present.
    pub added_doctype: bool,
}

impl TidyReport {
    /// True when the input was already canonical.
    pub fn is_clean(&self) -> bool {
        *self == TidyReport::default()
    }
}

/// Parses `input` leniently and normalizes it to a canonical structure.
///
/// Guarantees on the output document:
/// - the root has exactly one doctype followed by one `<html>` element;
/// - `<html>` has exactly two element children, `<head>` then `<body>`;
/// - metadata elements sit in `<head>`, content in `<body>`.
///
/// # Examples
///
/// ```
/// let (doc, report) = msite_html::tidy::tidy_with_report("<p>bare");
/// assert!(report.created_html && report.created_body);
/// assert!(doc.to_xhtml().contains("<body><p>bare</p></body>"));
/// ```
pub fn tidy_with_report(input: &str) -> (Document, TidyReport) {
    let mut doc = parse_document(input);
    let mut report = TidyReport::default();
    let root = doc.root();

    // Locate (or create) the singular html element.
    let html = match doc
        .children(root)
        .find(|&id| doc.is_element_named(id, "html"))
    {
        Some(h) => h,
        None => {
            report.created_html = true;
            doc.create_element("html")
        }
    };

    // Move every root child except the doctype (and html itself) under html.
    let doctype = doc
        .children(root)
        .find(|&id| matches!(doc.data(id), NodeData::Doctype { .. }));
    let strays: Vec<NodeId> = doc
        .children(root)
        .filter(|&id| id != html && Some(id) != doctype)
        .collect();
    for node in strays {
        if matches!(doc.data(node), NodeData::Doctype { .. }) {
            // Secondary doctypes are dropped.
            doc.detach(node);
            continue;
        }
        report.moved_nodes += 1;
        doc.append_child(html, node);
    }

    // Rebuild the root: doctype then html.
    if doctype.is_none() {
        report.added_doctype = true;
        let dt = doc.create_doctype("html", "", "");
        doc.prepend_child(root, dt);
    }
    if !doc.is_attached(html) {
        doc.append_child(root, html);
    }

    // Locate or create head and body.
    let head = match doc
        .children(html)
        .find(|&id| doc.is_element_named(id, "head"))
    {
        Some(h) => h,
        None => {
            report.created_head = true;
            let h = doc.create_element("head");
            doc.prepend_child(html, h);
            h
        }
    };
    let body = match doc
        .children(html)
        .find(|&id| doc.is_element_named(id, "body"))
    {
        Some(b) => b,
        None => {
            report.created_body = true;
            let b = doc.create_element("body");
            doc.append_child(html, b);
            b
        }
    };

    // Every direct child of html other than head/body gets sorted into the
    // right bucket: metadata to head, content to body.
    let to_sort: Vec<NodeId> = doc
        .children(html)
        .filter(|&id| id != head && id != body)
        .collect();
    for node in to_sort {
        let is_meta = doc
            .tag_name(node)
            .map(|n| HEAD_ELEMENTS.contains(&n))
            .unwrap_or(false);
        let is_blank_text = doc
            .data(node)
            .as_text()
            .map(|t| t.trim().is_empty())
            .unwrap_or(false);
        if is_blank_text {
            doc.detach(node);
            continue;
        }
        report.moved_nodes += 1;
        if is_meta {
            doc.append_child(head, node);
        } else {
            doc.append_child(body, node);
        }
    }
    // Keep head before body.
    let order: Vec<NodeId> = doc.children(html).collect();
    if order.first() != Some(&head) {
        doc.detach(head);
        doc.prepend_child(html, head);
    }

    (doc, report)
}

/// Like [`tidy_with_report`] but discards the report.
pub fn tidy(input: &str) -> Document {
    tidy_with_report(input).0
}

/// Convenience: tidy `input` and serialize it as XHTML in one step.
///
/// # Examples
///
/// ```
/// let xhtml = msite_html::tidy::to_xhtml_string("<p>a<br>b");
/// assert!(xhtml.contains("<br />"));
/// ```
pub fn to_xhtml_string(input: &str) -> String {
    tidy(input).to_xhtml()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_fragment_gets_full_structure() {
        let (doc, report) = tidy_with_report("<p>hello</p>");
        assert!(report.created_html);
        assert!(report.created_head);
        assert!(report.created_body);
        assert!(report.added_doctype);
        let html = doc.to_xhtml();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<html><head></head><body><p>hello</p></body></html>"));
    }

    #[test]
    fn canonical_document_untouched() {
        let src = "<!DOCTYPE html><html><head><title>T</title></head><body><p>x</p></body></html>";
        let (doc, report) = tidy_with_report(src);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(doc.to_html(), src);
    }

    #[test]
    fn metadata_moved_to_head() {
        let (doc, _) = tidy_with_report(
            "<html><title>T</title><meta charset=\"utf-8\"><div>content</div></html>",
        );
        let head = doc.elements_by_tag(doc.root(), "head")[0];
        assert_eq!(doc.elements_by_tag(head, "title").len(), 1);
        assert_eq!(doc.elements_by_tag(head, "meta").len(), 1);
        let body = doc.elements_by_tag(doc.root(), "body")[0];
        assert_eq!(doc.elements_by_tag(body, "div").len(), 1);
    }

    #[test]
    fn content_before_html_moved_inside() {
        let (doc, report) = tidy_with_report("stray text<html><body><p>x</p></body></html>");
        assert!(report.moved_nodes >= 1);
        let body = doc.elements_by_tag(doc.root(), "body")[0];
        assert!(doc.text_content(body).contains("stray text"));
    }

    #[test]
    fn duplicate_doctype_dropped() {
        let (doc, _) = tidy_with_report("<!DOCTYPE html><!DOCTYPE html><html><body></body></html>");
        let doctypes = doc
            .children(doc.root())
            .filter(|&id| matches!(doc.data(id), NodeData::Doctype { .. }))
            .count();
        assert_eq!(doctypes, 1);
    }

    #[test]
    fn head_stays_before_body() {
        let (doc, _) = tidy_with_report("<html><body><p>x</p></body><title>late</title></html>");
        let html = doc.elements_by_tag(doc.root(), "html")[0];
        let kids: Vec<String> = doc
            .children(html)
            .filter_map(|id| doc.tag_name(id).map(str::to_string))
            .collect();
        assert_eq!(kids, ["head", "body"]);
    }

    #[test]
    fn output_is_well_formed_xhtml() {
        // Every start tag in XHTML output must be matched or self-closed.
        let xhtml = to_xhtml_string("<ul><li>a<li>b<br><table><tr><td>1<td>2</table>");
        let reparsed = crate::parse_document(&xhtml);
        assert_eq!(
            crate::parse_document(&reparsed.to_xhtml()).to_xhtml(),
            xhtml
        );
        assert!(xhtml.contains("<br />"));
    }

    #[test]
    fn vbulletin_like_page_normalizes() {
        let messy = r#"<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.01 Transitional//EN">
<html><head><title>Forum</title>
<script type="text/javascript">var x = 1 < 2;</script>
<body>
<table border=0><tr><td class=alt1>Welcome
<td class=alt2><a href=member.php?u=1>admin</a></table>"#;
        let (doc, _) = tidy_with_report(messy);
        let body = doc.elements_by_tag(doc.root(), "body")[0];
        assert_eq!(doc.elements_by_tag(body, "td").len(), 2);
        let out = doc.to_xhtml();
        assert!(out.contains("</body></html>"));
    }
}
