//! Serialization of a [`Document`] back to HTML or XHTML text.
//!
//! HTML output leaves void elements unclosed (`<br>`); XHTML output
//! self-closes them (`<br />`) and is what the proxy's filter phase feeds
//! to strict XML tooling after a tidy pass.

use crate::dom::{Document, NodeData, NodeId};
use crate::entities;
use crate::parser::is_void_element;
use crate::tokenizer::RAW_TEXT_ELEMENTS;

/// Output dialects understood by [`Document::serialize_node_as`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dialect {
    /// Classic HTML: void elements unclosed, raw text verbatim.
    #[default]
    Html,
    /// XHTML: void elements self-closed, raw-text element content wrapped
    /// in nothing but still verbatim (scripts are assumed CDATA-safe).
    Xhtml,
}

impl Document {
    /// Serializes the whole document as HTML.
    ///
    /// # Examples
    ///
    /// ```
    /// let doc = msite_html::parse_document("<P CLASS=a>x");
    /// assert_eq!(doc.to_html(), "<p class=\"a\">x</p>");
    /// ```
    pub fn to_html(&self) -> String {
        let mut out = String::new();
        for child in self.children(self.root()) {
            self.write_node(&mut out, child, Dialect::Html);
        }
        out
    }

    /// Serializes the whole document as XHTML.
    pub fn to_xhtml(&self) -> String {
        let mut out = String::new();
        for child in self.children(self.root()) {
            self.write_node(&mut out, child, Dialect::Xhtml);
        }
        out
    }

    /// Serializes the subtree rooted at `id` (outer HTML).
    pub fn outer_html(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.write_node(&mut out, id, Dialect::Html);
        out
    }

    /// Serializes the children of `id` (inner HTML).
    pub fn inner_html(&self, id: NodeId) -> String {
        let mut out = String::new();
        for child in self.children(id) {
            self.write_node(&mut out, child, Dialect::Html);
        }
        out
    }

    /// Serializes the subtree rooted at `id` in the given dialect.
    pub fn serialize_node_as(&self, id: NodeId, dialect: Dialect) -> String {
        let mut out = String::new();
        self.write_node(&mut out, id, dialect);
        out
    }

    fn write_node(&self, out: &mut String, id: NodeId, dialect: Dialect) {
        match self.data(id) {
            NodeData::Document => {
                for child in self.children(id) {
                    self.write_node(out, child, dialect);
                }
            }
            NodeData::Doctype {
                name,
                public_id,
                system_id,
            } => {
                out.push_str("<!DOCTYPE ");
                out.push_str(name);
                if !public_id.is_empty() {
                    out.push_str(" PUBLIC \"");
                    out.push_str(public_id);
                    out.push('"');
                    if !system_id.is_empty() {
                        out.push_str(" \"");
                        out.push_str(system_id);
                        out.push('"');
                    }
                } else if !system_id.is_empty() {
                    out.push_str(" SYSTEM \"");
                    out.push_str(system_id);
                    out.push('"');
                }
                out.push('>');
            }
            NodeData::Comment(text) => {
                out.push_str("<!--");
                out.push_str(text);
                out.push_str("-->");
            }
            NodeData::Text(text) => {
                let parent_raw = self
                    .node(id)
                    .parent()
                    .and_then(|p| self.tag_name(p))
                    .map(|name| RAW_TEXT_ELEMENTS.contains(&name))
                    .unwrap_or(false);
                if parent_raw {
                    out.push_str(text);
                } else {
                    out.push_str(&entities::encode_text(text));
                }
            }
            NodeData::Element(element) => {
                out.push('<');
                out.push_str(element.name());
                for (k, v) in element.attrs() {
                    out.push(' ');
                    out.push_str(k);
                    out.push_str("=\"");
                    out.push_str(&entities::encode_attr(v));
                    out.push('"');
                }
                if is_void_element(element.name()) {
                    match dialect {
                        Dialect::Html => out.push('>'),
                        Dialect::Xhtml => out.push_str(" />"),
                    }
                    return;
                }
                out.push('>');
                for child in self.children(id) {
                    self.write_node(out, child, dialect);
                }
                out.push_str("</");
                out.push_str(self.tag_name(id).expect("element has a name"));
                out.push('>');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_document;

    #[test]
    fn round_trips_simple_document() {
        let src = "<!DOCTYPE html><html><head><title>T</title></head><body><p>x</p></body></html>";
        let doc = parse_document(src);
        assert_eq!(doc.to_html(), src);
    }

    #[test]
    fn attrs_quoted_and_escaped() {
        let doc = parse_document("<a href='x.php?a=1&amp;b=\"2\"'>link</a>");
        assert_eq!(
            doc.to_html(),
            "<a href=\"x.php?a=1&amp;b=&quot;2&quot;\">link</a>"
        );
    }

    #[test]
    fn text_escaped() {
        let doc = parse_document("<p>5 &lt; 6 &amp; 7</p>");
        assert_eq!(doc.to_html(), "<p>5 &lt; 6 &amp; 7</p>");
    }

    #[test]
    fn void_elements_html_vs_xhtml() {
        let doc = parse_document("<div><br><img src=\"x\"></div>");
        assert_eq!(doc.to_html(), "<div><br><img src=\"x\"></div>");
        assert_eq!(doc.to_xhtml(), "<div><br /><img src=\"x\" /></div>");
    }

    #[test]
    fn script_content_not_escaped() {
        let src = "<script>if (a < b && c > d) go(\"x\");</script>";
        let doc = parse_document(src);
        assert_eq!(doc.to_html(), src);
    }

    #[test]
    fn outer_and_inner_html() {
        let doc = parse_document("<div id=\"a\"><b>x</b>y</div>");
        let div = doc.element_by_id("a").unwrap();
        assert_eq!(doc.outer_html(div), "<div id=\"a\"><b>x</b>y</div>");
        assert_eq!(doc.inner_html(div), "<b>x</b>y");
    }

    #[test]
    fn doctype_variants() {
        let public = "<!DOCTYPE html PUBLIC \"-//W3C//DTD XHTML 1.0 Strict//EN\" \"http://www.w3.org/TR/xhtml1/DTD/xhtml1-strict.dtd\">";
        let doc = parse_document(public);
        assert_eq!(doc.to_html(), public);
        let simple = parse_document("<!DOCTYPE html>");
        assert_eq!(simple.to_html(), "<!DOCTYPE html>");
    }

    #[test]
    fn comment_round_trip() {
        let src = "<!-- keep me --><p>x</p>";
        let doc = parse_document(src);
        assert_eq!(doc.to_html(), src);
    }

    #[test]
    fn serialization_is_stable_under_reparse() {
        let messy = "<ul><li>a<li>b<p>c<div>d<br><table><tr><td>1<td>2</table>";
        let once = parse_document(messy).to_html();
        let twice = parse_document(&once).to_html();
        assert_eq!(once, twice);
    }

    #[test]
    fn nbsp_round_trips() {
        let doc = parse_document("<td>&nbsp;</td>");
        assert_eq!(doc.to_html(), "<td>&nbsp;</td>");
    }
}
