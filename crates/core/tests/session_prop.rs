//! Property + concurrency suite for the sharded [`SessionStore`]'s
//! eviction accounting and tenant isolation.
//!
//! Invariants checked, in the style of `subtree_prop.rs`:
//!
//! - **Conservation**: `live + destroyed + evicted == created` after
//!   any single-threaded interleaving of create/get/destroy across
//!   tenants — and after *concurrent* churn from many threads (the
//!   seed's `prune_to` check-then-act race would break both the bound
//!   and this identity under concurrency).
//! - **Bounds**: the global `max_sessions` cap and per-tenant quota are
//!   never exceeded at any observation point.
//! - **Quota isolation**: a tenant flooding the store cannot evict
//!   another tenant's sessions (the acceptance-criteria property).
//! - **Teardown**: an evicted or destroyed session's directory is
//!   always wiped — no orphans, no leaked bytes.

use msite::{SessionFs, SessionStore, SessionStoreConfig};
use msite_support::prop;
use std::collections::HashMap;
use std::sync::Arc;

fn store(config: SessionStoreConfig) -> (Arc<SessionFs>, SessionStore) {
    let fs = Arc::new(SessionFs::new());
    let st = SessionStore::new(config, Arc::clone(&fs));
    (fs, st)
}

/// Single-threaded reference-model churn: create/get/destroy across
/// random tenants, checking conservation, bounds, and LRU-victim
/// agreement with a naive model on every step.
#[test]
fn accounting_conserves_under_churn() {
    prop::check("live+destroyed+evicted == created", 60, 0x5E55, |g| {
        let max_sessions = g.range_usize(2, 24);
        let tenant_share = [0.34, 0.5, 0.75, 1.0][g.range_usize(0, 4)];
        let (fs, store) = store(SessionStoreConfig {
            max_sessions,
            session_ttl: None,
            tenant_share,
            ..SessionStoreConfig::default()
        });
        let tenants = ["a", "b", "c"];
        let quota = store.tenant_quota();
        // Model: id -> tenant for live sessions (order not modeled; the
        // store's own counters carry the eviction side).
        let mut model: HashMap<String, &str> = HashMap::new();
        let mut known: Vec<String> = Vec::new();
        let mut destroyed = 0u64;

        for step in 0..g.range_usize(10, 200) {
            let tenant = *g.pick(&tenants);
            match g.range_u32(0, 3) {
                0 => {
                    let id = store.create(tenant).lock().id.clone();
                    fs.write(
                        &SessionFs::user_path(&id, "s/x.html"),
                        vec![0u8; g.range_usize(0, 64)],
                    );
                    model.insert(id.clone(), tenant);
                    known.push(id);
                }
                1 if !known.is_empty() => {
                    let id = known[g.range_usize(0, known.len())].clone();
                    let hit = store.get(&id, tenant);
                    if hit.is_some() {
                        assert_eq!(
                            model.get(&id),
                            Some(&tenant),
                            "step {step}: hit for a session the model thinks is gone or \
                             belongs to another tenant"
                        );
                    }
                }
                _ if !known.is_empty() => {
                    let id = known[g.range_usize(0, known.len())].clone();
                    if store.destroy(&id) {
                        assert!(
                            model.remove(&id).is_some(),
                            "step {step}: destroyed a session the model never saw live"
                        );
                        destroyed += 1;
                    }
                }
                _ => {}
            }
            // The store may evict behind the model's back; drop model
            // entries the store no longer serves.
            model.retain(|id, tenant| store.get(id, tenant).is_some());

            let stats = store.stats();
            assert_eq!(
                stats.live + stats.destroyed + stats.evicted_total(),
                stats.created,
                "step {step}: conservation broken: {stats:?}"
            );
            assert_eq!(stats.destroyed, destroyed);
            assert!(
                stats.live as usize <= max_sessions,
                "step {step}: {} live > bound {max_sessions}",
                stats.live
            );
            for tenant in &tenants {
                assert!(
                    store.tenant_live(tenant) <= quota,
                    "step {step}: tenant {tenant} over quota {quota}"
                );
            }
            assert_eq!(store.len(), model.len(), "step {step}: live set diverged");
            // Teardown: only live sessions own directories.
            assert_eq!(
                fs.session_dirs(),
                model
                    .keys()
                    .filter(|id| fs.bytes_of(id) > 0
                        || fs.read(&SessionFs::user_path(id, "s/x.html")).is_some())
                    .count(),
                "step {step}: orphaned session directory"
            );
        }
    });
}

/// The acceptance-criteria property: pre-populate one tenant, then let
/// another flood the store far past every bound — the first tenant's
/// sessions must all survive, byte directories included.
#[test]
fn saturated_tenant_cannot_evict_others() {
    prop::check("quota isolation", 40, 0x1501_410e, |g| {
        let max_sessions = g.range_usize(6, 32);
        let (fs, store) = store(SessionStoreConfig {
            max_sessions,
            session_ttl: None,
            tenant_share: [0.25, 0.5, 0.6][g.range_usize(0, 3)],
            ..SessionStoreConfig::default()
        });
        let quota = store.tenant_quota();
        let protected = g.range_usize(1, quota.min(max_sessions.saturating_sub(quota)).max(2));
        let victims: Vec<String> = (0..protected)
            .map(|i| {
                let id = store.create("settled").lock().id.clone();
                fs.write(&SessionFs::user_path(&id, "s/p.html"), vec![1u8; 10 + i]);
                id
            })
            .collect();

        // Flood from a different tenant: several times the whole store.
        for _ in 0..g.range_usize(2, 5) * max_sessions {
            store.create("flood");
        }

        assert!(store.tenant_live("flood") <= quota, "flood capped at quota");
        assert_eq!(
            store.tenant_live("settled"),
            protected,
            "flood evicted a settled session"
        );
        for id in &victims {
            assert!(
                store.get(id, "settled").is_some(),
                "settled session lost to the flood"
            );
            assert!(
                fs.bytes_of(id) > 0,
                "settled session directory wiped by the flood"
            );
        }
        let stats = store.stats();
        assert_eq!(
            stats.live + stats.evicted_total(),
            stats.created,
            "conservation after flood: {stats:?}"
        );
    });
}

/// The seed's `prune_to` was a check-then-act race: a concurrent create
/// between the length check and the destroy left the store over bound.
/// Here many threads churn create/get/destroy simultaneously against a
/// small store; afterwards the bound held, accounting conserves, and no
/// orphan directories remain.
#[test]
fn concurrent_churn_holds_bounds_and_conserves() {
    let max_sessions = 32;
    let (fs, store) = store(SessionStoreConfig {
        max_sessions,
        session_ttl: None,
        tenant_share: 0.5,
        ..SessionStoreConfig::default()
    });
    let store = Arc::new(store);
    let tenants = ["a", "b", "c", "d"];
    let threads = 8;
    let per_thread = 300;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = Arc::clone(&store);
            let fs = Arc::clone(&fs);
            scope.spawn(move || {
                let mut recent: Vec<String> = Vec::new();
                for i in 0..per_thread {
                    let tenant = tenants[(t + i) % tenants.len()];
                    match i % 5 {
                        0..=2 => {
                            let id = store.create(tenant).lock().id.clone();
                            fs.write(&SessionFs::user_path(&id, "f"), vec![0u8; 16]);
                            recent.push(id);
                            if recent.len() > 8 {
                                recent.remove(0);
                            }
                        }
                        3 => {
                            if let Some(id) = recent.last() {
                                // May or may not still be live; both fine.
                                let _ = store.get(id, tenant);
                            }
                        }
                        _ => {
                            if let Some(id) = recent.pop() {
                                let _ = store.destroy(&id);
                            }
                        }
                    }
                    // The bound must hold at every observation point up
                    // to reservation slack: a creator counts itself
                    // live *before* evicting its victim, so the counter
                    // can transiently exceed the bound by at most the
                    // number of in-flight creates — never unboundedly,
                    // which is what the prune_to race allowed.
                    assert!(
                        store.len() <= max_sessions + threads,
                        "mid-churn bound violation: {} > {max_sessions}+{threads}",
                        store.len()
                    );
                }
            });
        }
    });

    let stats = store.stats();
    assert_eq!(
        stats.live + stats.destroyed + stats.evicted_total(),
        stats.created,
        "conservation after concurrent churn: {stats:?}"
    );
    assert_eq!(stats.created, (threads * per_thread * 3 / 5) as u64);
    assert!(store.len() <= max_sessions);
    let quota = store.tenant_quota();
    for tenant in &tenants {
        assert!(store.tenant_live(tenant) <= quota);
    }
    // Teardown races writes: a thread can write an artifact for a
    // session another thread just evicted, recreating its directory as
    // an orphan. The reconciling sweep claims exactly those; after it,
    // every remaining dir belongs to a live session.
    store.reclaim_orphan_dirs();
    assert!(
        fs.session_dirs() <= store.len(),
        "{} dirs for {} live sessions after reclaim",
        fs.session_dirs(),
        store.len()
    );
}

/// TTL + quota compose: expired sessions are reclaimed (cause
/// `expired`), and the occupancy a sweep reports matches the live
/// counter.
#[test]
fn expiry_sweep_agrees_with_counters() {
    prop::check("sweep vs counters", 40, 0x77_1e5, |g| {
        let (_fs, store) = store(SessionStoreConfig {
            max_sessions: 64,
            session_ttl: Some(std::time::Duration::from_secs(60)),
            ..SessionStoreConfig::default()
        });
        let early = g.range_usize(1, 20);
        let late = g.range_usize(1, 20);
        for _ in 0..early {
            store.create("t");
        }
        store.advance_clock(std::time::Duration::from_secs(40));
        let survivors: Vec<String> = (0..late)
            .map(|_| store.create("t").lock().id.clone())
            .collect();
        store.advance_clock(std::time::Duration::from_secs(30));
        // Now the early batch (age 70s) is past the 60s TTL; the late
        // batch (age 30s) is not.
        let swept = store.sweep_expired();
        assert_eq!(swept, early, "exactly the early batch expires");
        assert_eq!(store.len(), late);
        for id in &survivors {
            assert!(store.get(id, "t").is_some());
        }
        let stats = store.stats();
        assert_eq!(stats.evicted_expired, early as u64);
        assert_eq!(
            stats.live + stats.evicted_total(),
            stats.created,
            "{stats:?}"
        );
    });
}
