//! Durability end-to-end: a proxy with a persistent cache tier is
//! killed (no graceful shutdown) and restarted over the same disk; the
//! successor must serve the pre-restart working set from the persistent
//! tier without re-rendering. A second suite drives the tier through a
//! [`FlakyDisk`] (torn writes, bit flips, ENOSPC, slow fsync) and
//! proves corruption is quarantined — surfaced in metrics, never a
//! panic, never a wrong artifact.

use msite::attributes::{AdaptationSpec, Attribute, SnapshotSpec, Target};
use msite::persist::{DiskBackend, FlakyDisk, MemDisk};
use msite::proxy::{PersistConfig, ProxyConfig, ProxyServer};
use msite_net::{Origin, OriginRef, Request, Response};
use msite_support::sync::Mutex;
use std::sync::Arc;
use std::time::Duration;

fn origin_page(version: u64) -> Response {
    Response::html(format!(
        "<html><head><title>Durable</title></head><body>\
         <div id=\"a\">alpha v{version}</div><div id=\"b\">beta v{version}</div>\
         <div id=\"c\">gamma v{version}</div><div id=\"d\">delta v{version}</div>\
         </body></html>"
    ))
}

/// Snapshot (browser render) + TTL-cached pre-rendered regions: a
/// working set of several distinct cache keys, all persisted.
fn durable_spec() -> AdaptationSpec {
    let mut spec = AdaptationSpec::new("durable", "http://durable.test/");
    spec.snapshot = Some(SnapshotSpec::default());
    ["a", "b", "c", "d"].iter().fold(spec, |spec, id| {
        spec.rule(
            Target::Css(format!("#{id}")),
            vec![Attribute::PrerenderImage {
                scale: 0.5,
                quality: 60,
                cache_ttl_secs: Some(3_600),
            }],
        )
    })
}

fn persisted_config(backend: Arc<dyn DiskBackend>) -> ProxyConfig {
    ProxyConfig {
        persist: Some(PersistConfig::with_backend(backend, 4 * 1024 * 1024)),
        ..ProxyConfig::default()
    }
}

fn deploy(backend: Arc<dyn DiskBackend>) -> Arc<ProxyServer> {
    let origin: OriginRef = Arc::new(|_req: &Request| origin_page(0));
    Arc::new(ProxyServer::new(
        durable_spec(),
        origin,
        persisted_config(backend),
    ))
}

fn entry_request() -> Request {
    Request::get("http://p/m/durable/").unwrap()
}

#[test]
fn kill_and_restart_under_load_serves_working_set_from_disk() {
    let disk = MemDisk::new();

    // --- First life: build the working set under concurrent load. ---
    let proxy = deploy(Arc::new(disk.clone()));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let proxy = Arc::clone(&proxy);
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let entry = proxy.handle(&entry_request());
                    assert!(entry.status.is_success(), "{}", entry.status);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no thread panics");
    }
    let renders_before = proxy.stats().full_renders;
    assert!(renders_before >= 1, "warmup must have rendered");

    // The write-behind queue drains, then the process dies without any
    // graceful shutdown: `forget` skips Drop (no flush, no join), so
    // only what the journal already holds survives — the crash model.
    proxy.cache().flush_disk();
    let working_set: Vec<String> = proxy
        .cache()
        .disk()
        .expect("persistent tier attached")
        .hot_keys(64);
    assert!(
        working_set.len() >= 2,
        "working set too small to be meaningful: {working_set:?}"
    );
    std::mem::forget(proxy);

    // --- Second life: same disk, cold memory. ---
    let revived = deploy(Arc::new(disk.clone()));
    let warm = revived.cache().warm_loaded();
    let need = (working_set.len() * 9).div_ceil(10); // ceil(0.9 * n)
    assert!(
        warm as usize >= need,
        "warm start restored {warm}/{} keys (need >= {need})",
        working_set.len()
    );

    // Every surviving key is servable without touching the renderer.
    let mut recovered = 0usize;
    for key in &working_set {
        if revived.cache().get(key).is_some() {
            recovered += 1;
        }
    }
    assert!(
        recovered >= need,
        "only {recovered}/{} of the working set recovered",
        working_set.len()
    );

    // Serving the entry page costs zero browser renders after restart.
    let entry = revived.handle(&entry_request());
    assert!(entry.status.is_success());
    assert_eq!(
        revived.stats().full_renders,
        0,
        "restart must not re-render the working set"
    );

    // The scrape surface agrees: disk hits (warm load reads) and the
    // warm-loaded count are visible, and the browser-render counter
    // never moved.
    let scrape = revived.handle(&Request::get("http://p/metrics").unwrap());
    assert!(scrape.status.is_success());
    let m = &revived.telemetry().metrics;
    assert_eq!(m.counter_value("msite_proxy_full_renders_total", &[]), 0);
    assert!(m.counter_value("msite_disk_warm_loaded_total", &[]) >= need as u64);
    assert!(m.counter_value("msite_disk_hits_total", &[]) >= need as u64);
}

#[test]
fn restart_preserves_artifact_bytes_exactly() {
    let disk = MemDisk::new();
    let proxy = deploy(Arc::new(disk.clone()));
    let first = proxy.handle(&entry_request());
    assert!(first.status.is_success());
    let entry_bytes = proxy.cache().get("entry:html").expect("entry cached");
    proxy.cache().flush_disk();
    std::mem::forget(proxy);

    let revived = deploy(Arc::new(disk.clone()));
    let restored = revived
        .cache()
        .get("entry:html")
        .expect("entry survives restart");
    assert_eq!(
        entry_bytes.as_ref(),
        restored.as_ref(),
        "persisted artifact must be byte-identical"
    );
}

#[test]
fn disk_chaos_never_panics_and_quarantines_corruption() {
    let base = MemDisk::new();
    let flaky = Arc::new(
        FlakyDisk::new(Arc::new(base.clone()), 0xD15C)
            .with_torn_writes(0.35)
            .with_bit_flips(0.25)
            .with_enospc(0.15)
            .with_slow_sync(Duration::from_micros(200)),
    );

    // First life rides the faulty disk: every put may tear, flip, or
    // fail outright. Serving must be oblivious — the disk tier is an
    // optimization, never a correctness dependency.
    let version = Arc::new(Mutex::new(0u64));
    let origin_version = Arc::clone(&version);
    let origin: OriginRef = Arc::new(move |_req: &Request| origin_page(*origin_version.lock()));
    let proxy = Arc::new(ProxyServer::new(
        durable_spec(),
        origin,
        persisted_config(Arc::clone(&flaky) as Arc<dyn DiskBackend>),
    ));
    for round in 0..8u64 {
        *version.lock() = round;
        proxy.cache().invalidate("entry:html");
        let entry = proxy.handle(&entry_request());
        assert!(entry.status.is_success(), "round {round}: {}", entry.status);
    }
    proxy.cache().flush_disk();
    let faults = flaky.stats();
    assert!(
        faults.torn + faults.flipped + faults.enospc >= 3,
        "chaos run did not exercise the fault modes: {faults:?}"
    );
    std::mem::forget(proxy);

    // Second life replays the mangled journal on a now-healthy disk:
    // corrupt records are quarantined (counted, skipped), never fatal,
    // and the proxy still serves.
    let revived = deploy(Arc::new(base.clone()));
    let entry = revived.handle(&entry_request());
    assert!(entry.status.is_success(), "{}", entry.status);
    let scrape = revived.handle(&Request::get("http://p/metrics").unwrap());
    assert!(scrape.status.is_success());
    let disk_stats = revived.cache().disk_stats().expect("tier attached");
    let m = &revived.telemetry().metrics;
    assert_eq!(
        m.counter_value("msite_disk_quarantined_total", &[]),
        disk_stats.quarantined,
        "quarantine count must be surfaced in metrics"
    );
    // The seeded fault pattern tears at least one journal record.
    assert!(
        disk_stats.quarantined >= 1,
        "seeded torn writes must leave quarantined records: {disk_stats:?}"
    );
}

#[test]
fn every_flaky_disk_mode_alone_is_survivable() {
    // One mode at a time, cranked high: open + serve + restart under
    // each pure fault regime, proving no mode has a panic path.
    type ModeFn = fn(FlakyDisk) -> FlakyDisk;
    let modes: [(&str, ModeFn); 4] = [
        ("torn", |d| d.with_torn_writes(0.9)),
        ("flip", |d| d.with_bit_flips(0.9)),
        ("enospc", |d| d.with_enospc(0.9)),
        ("slow", |d| d.with_slow_sync(Duration::from_micros(500))),
    ];
    for (name, arm) in modes {
        let base = MemDisk::new();
        let flaky = Arc::new(arm(FlakyDisk::new(Arc::new(base.clone()), 0xFA17)));
        let proxy = deploy(Arc::clone(&flaky) as Arc<dyn DiskBackend>);
        for _ in 0..3 {
            let entry = proxy.handle(&entry_request());
            assert!(entry.status.is_success(), "mode {name}: {}", entry.status);
            proxy.cache().invalidate("entry:html");
        }
        proxy.cache().flush_disk();
        std::mem::forget(proxy);
        let revived = deploy(Arc::new(base.clone()));
        let entry = revived.handle(&entry_request());
        assert!(entry.status.is_success(), "mode {name} after restart");
    }
}
