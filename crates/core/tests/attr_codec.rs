//! JSON codec conformance for the attribute menu: every [`Attribute`]
//! variant round-trips through its externally-tagged encoding, and
//! malformed documents fail with the classified `unknown attribute` /
//! missing-field errors instead of mis-parsing.

use msite::attributes::{Attribute, Position};
use msite_net::BandwidthClass;
use msite_support::json::{FromJson, ToJson, Value};

/// One instance of every variant in the menu — the completeness gate:
/// adding a variant without extending this list fails the count below.
fn every_variant() -> Vec<Attribute> {
    vec![
        Attribute::Subpage {
            id: "login".into(),
            title: "Log in".into(),
            ajax: true,
            prerender: false,
        },
        Attribute::CopyTo {
            subpage: "nav".into(),
            position: Position::Top,
            set_attr: Some(("src".into(), "/m/logo.png".into())),
        },
        Attribute::CopyTo {
            subpage: "nav".into(),
            position: Position::Head,
            set_attr: None,
        },
        Attribute::MoveTo {
            subpage: "extras".into(),
            position: Position::Bottom,
        },
        Attribute::Remove,
        Attribute::Hide,
        Attribute::ReplaceWith {
            html: "<b>mobile ad</b>".into(),
        },
        Attribute::InsertBefore {
            html: "<hr>".into(),
        },
        Attribute::InsertAfter {
            html: "<br clear=\"all\">".into(),
        },
        Attribute::SetAttr {
            name: "src".into(),
            value: "/small.png".into(),
        },
        Attribute::LinksToColumns { columns: 2 },
        Attribute::InjectClientScript {
            code: "msiteLoad();".into(),
        },
        Attribute::PrerenderImage {
            scale: 0.5,
            quality: 40,
            cache_ttl_secs: Some(3_600),
        },
        Attribute::PrerenderImage {
            scale: 0.25,
            quality: 70,
            cache_ttl_secs: None,
        },
        Attribute::PartialCssPrerender { scale: 0.75 },
        Attribute::Searchable,
        Attribute::RichMediaThumbnail { scale: 0.33 },
        Attribute::ImageFidelity { quality: 30 },
        Attribute::AjaxRewrite,
        Attribute::LinksToAjax {
            target: "#pane".into(),
        },
        Attribute::Dependency {
            selector: "link[rel=stylesheet]".into(),
        },
        Attribute::HttpAuth,
        Attribute::ExtractMainContent,
        Attribute::StripBoilerplate { aggressiveness: 2 },
        Attribute::FidelityTier {
            tier: Some(BandwidthClass::TwoG),
        },
        Attribute::FidelityTier {
            tier: Some(BandwidthClass::ThreeG),
        },
        Attribute::FidelityTier {
            tier: Some(BandwidthClass::Wifi),
        },
        Attribute::FidelityTier { tier: None },
    ]
}

#[test]
fn every_variant_round_trips() {
    let all = every_variant();
    // One sample per enum variant (some appear twice to cover optional
    // payload states); bump this when the menu grows.
    assert_eq!(all.len(), 28, "keep the sample list exhaustive");
    for attribute in all {
        let encoded = attribute.to_json_value();
        let decoded = Attribute::from_json_value(&encoded)
            .unwrap_or_else(|e| panic!("{attribute:?} failed to decode: {e}"));
        assert_eq!(attribute, decoded);
        // And the encoding itself is stable under a re-encode.
        assert_eq!(encoded, decoded.to_json_value());
    }
}

#[test]
fn text_round_trip_through_the_wire_format() {
    for attribute in every_variant() {
        let text = attribute.to_json_value().to_compact();
        let reparsed = Value::parse(&text).expect("self-produced JSON parses");
        assert_eq!(Attribute::from_json_value(&reparsed).unwrap(), attribute);
    }
}

fn decode(text: &str) -> Result<Attribute, String> {
    let value = Value::parse(text).map_err(|e| e.to_string())?;
    Attribute::from_json_value(&value).map_err(|e| e.to_string())
}

#[test]
fn unknown_unit_attribute_is_classified() {
    let err = decode("\"vanish\"").unwrap_err();
    assert!(err.contains("unknown attribute"), "{err}");
    assert!(err.contains("vanish"), "{err}");
}

#[test]
fn unknown_tagged_attribute_is_classified() {
    let err = decode("{\"teleport\":{\"to\":\"moon\"}}").unwrap_err();
    assert!(err.contains("unknown attribute"), "{err}");
    assert!(err.contains("teleport"), "{err}");
}

#[test]
fn unknown_fidelity_tier_word_is_classified() {
    let err = decode("{\"fidelity_tier\":{\"tier\":\"5g\"}}").unwrap_err();
    assert!(err.contains("unknown fidelity tier"), "{err}");
    assert!(err.contains("5g"), "{err}");
    // Every alias the class parser accepts decodes.
    for (word, class) in [
        ("2g", BandwidthClass::TwoG),
        ("edge", BandwidthClass::TwoG),
        ("3g", BandwidthClass::ThreeG),
        ("wifi", BandwidthClass::Wifi),
        ("4g", BandwidthClass::Wifi),
    ] {
        let attr = decode(&format!("{{\"fidelity_tier\":{{\"tier\":\"{word}\"}}}}")).unwrap();
        assert_eq!(attr, Attribute::FidelityTier { tier: Some(class) });
    }
}

#[test]
fn missing_and_mistyped_fields_fail() {
    // Missing required field.
    assert!(decode("{\"strip_boilerplate\":{}}").is_err());
    assert!(decode("{\"subpage\":{\"id\":\"x\",\"title\":\"X\",\"ajax\":true}}").is_err());
    assert!(decode("{\"fidelity_tier\":{}}").is_err());
    // Wrong payload type.
    assert!(decode("{\"strip_boilerplate\":{\"aggressiveness\":\"high\"}}").is_err());
    assert!(decode("{\"fidelity_tier\":{\"tier\":2}}").is_err());
    assert!(decode("{\"links_to_columns\":{\"columns\":\"two\"}}").is_err());
    // set_attr must be a [name, value] pair or null.
    assert!(decode(
        "{\"copy_to\":{\"subpage\":\"s\",\"position\":\"top\",\"set_attr\":[\"only\"]}}"
    )
    .is_err());
    assert!(
        decode("{\"copy_to\":{\"subpage\":\"s\",\"position\":\"top\",\"set_attr\":\"src\"}}")
            .is_err()
    );
    // Structurally wrong documents.
    assert!(decode("42").is_err());
    assert!(decode("[\"remove\"]").is_err());
    assert!(decode("{}").is_err());
    assert!(decode("{\"remove\":{},\"hide\":{}}").is_err());
}
