//! Byte-identity gate for the filter stage's struct-of-arrays
//! `strip_tag` against its scalar twin.
//!
//! The batch classifier (one sweep + flag arrays) must reproduce the
//! scalar search-per-hit output exactly — including prefix confusions
//! (`<s` inside `<script>`), uppercase tags, unclosed opens, closers
//! hiding inside attribute values, and pages ending mid-tag.

use msite::pipeline::soa::{strip_tag, strip_tag_scalar};
use msite_support::prop::{self, Gen};

const TAGS: [&str; 7] = ["script", "style", "aside", "s", "h1", "SCRIPT", "b"];

fn arb_page(g: &mut Gen) -> String {
    let mut out = String::new();
    for _ in 0..g.range_usize(0, 14) {
        match g.range_u32(0, 12) {
            0 => {
                let t = *g.pick(&TAGS);
                out.push_str(&format!("<{t}>body</{t}>"));
            }
            1 => {
                let t = *g.pick(&TAGS);
                // Closer buried in an attribute value — the scalar
                // filter honors it textually, so the batch path must too.
                out.push_str(&format!("<{t} data-x=\"</{t}>\">tail</{t}>"));
            }
            2 => {
                let t = *g.pick(&TAGS);
                out.push_str(&format!("<{t} async"));
                if g.bool() {
                    out.push('>');
                }
            }
            // Prefix confusion: longer names sharing a short tag's prefix.
            3 => out.push_str("<scriptx><styleguide><side><h10>"),
            4 => out.push_str(&format!("</{}>", g.pick(&TAGS))),
            5 => out.push_str("< s <1 <<< <>"),
            6 => out.push_str(&g.ascii_string(40)),
            7 => out.push_str(&g.unicode_string(20)),
            8 => {
                let t = *g.pick(&TAGS);
                let ws = *g.pick(&[" ", "\t", "\n", "\r", "/"]);
                out.push_str(&format!("<{t}{ws}attr=1>x"));
            }
            9 => out.push_str(&"<b>bold</b> plain ".repeat(g.range_usize(1, 6))),
            10 => {
                // Page ending mid-tag.
                let t = *g.pick(&TAGS);
                out.push_str(&format!("text<{t}"));
            }
            _ => out.push_str(&g.ascii_ws_string(30)),
        }
    }
    out
}

#[test]
fn strip_tag_batch_and_scalar_agree() {
    prop::check("strip_tag soa/scalar identity", 500, 0x0B12_0001, |g| {
        let page = arb_page(g);
        let tag = *g.pick(&["script", "style", "s", "h1", "b", "SCRIPT", "aside"]);
        assert_eq!(
            strip_tag(&page, tag),
            strip_tag_scalar(&page, tag),
            "tag {tag} on {page:?}"
        );
    });
}

#[test]
fn long_and_odd_tags_take_the_scalar_fallback() {
    // Tags the packed-word compare cannot represent must still work
    // (they dispatch to the scalar path inside strip_tag).
    prop::check("strip_tag fallback identity", 200, 0x0B12_0002, |g| {
        let page = arb_page(g);
        let tag = *g.pick(&["blockquote", "figcaption", "x-custom", ""]);
        assert_eq!(strip_tag(&page, tag), strip_tag_scalar(&page, tag));
    });
}

#[test]
fn strip_tag_known_cases() {
    assert_eq!(strip_tag("<script>x</script>b", "script"), "b");
    assert_eq!(strip_tag("a<S>x</s>b", "s"), "ab");
    assert_eq!(strip_tag("a<span>x</span>b", "s"), "a<span>x</span>b");
    assert_eq!(strip_tag("a<s", "s"), "a<s");
    assert_eq!(strip_tag("a<s attr", "s"), "a");
    assert_eq!(strip_tag("a<s attr>rest", "s"), "arest");
}
