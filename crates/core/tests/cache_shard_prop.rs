//! Property suite for the render cache's lock striping: shard
//! capacities always sum to the configured total, eviction pressure in
//! one shard never reaches entries living in another, and each shard
//! keeps its own exact LRU order.

use msite::cache::RenderCache;
use msite_support::prop;
use std::time::Duration;

const SEC: Duration = Duration::from_secs(1);

/// The striping never loses or invents capacity: per-shard capacities
/// partition the configured total, and the live-entry count never
/// exceeds it no matter the insertion pattern.
#[test]
fn capacity_is_respected_as_sum_of_shards() {
    prop::check("capacity partitions across shards", 120, 0x5A4D, |g| {
        let capacity = g.range_usize(1, 64);
        let shards = g.range_usize(1, 12);
        let cache = RenderCache::with_shards(capacity, Duration::ZERO, shards);

        let total: usize = (0..cache.shard_count())
            .map(|i| cache.shard_capacity(i))
            .sum();
        assert_eq!(total, capacity, "shard capacities must partition the total");
        assert!(cache.shard_count() <= shards.min(capacity));

        for i in 0..g.range_usize(1, 200) {
            cache.put(&format!("key-{i}"), b"v".to_vec(), None, SEC);
            assert!(
                cache.len() <= capacity,
                "{} live entries in a capacity-{capacity} cache",
                cache.len()
            );
        }
        for i in 0..cache.shard_count() {
            assert!(cache.shard_len(i) <= cache.shard_capacity(i));
        }
    });
}

/// Overflowing one shard evicts only within that shard: keys resident
/// in every other shard survive untouched.
#[test]
fn eviction_never_crosses_shards() {
    prop::check("eviction stays within its shard", 60, 0xEB1C7, |g| {
        let cache = RenderCache::with_shards(16, Duration::ZERO, 4);
        let mut resident: Vec<Vec<String>> = vec![Vec::new(); cache.shard_count()];

        for i in 0..g.range_usize(20, 120) {
            let key = format!("k{}-{i}", g.range_usize(0, 1000));
            let shard = cache.shard_of(&key);
            cache.put(&key, b"v".to_vec(), None, SEC);

            // Every key recorded as resident in a *different* shard must
            // still be present: this put could only evict shard-locally.
            for (other, keys) in resident.iter().enumerate() {
                if other != shard {
                    for k in keys {
                        assert!(
                            cache.get(k).is_some(),
                            "put into shard {shard} evicted `{k}` from shard {other}"
                        );
                    }
                }
            }

            // Refresh the bookkeeping for the shard we touched: the put
            // may have evicted one of its LRU entries (and the probes
            // above refreshed recency everywhere else).
            resident[shard].push(key);
            resident[shard].retain(|k| cache.get(k).is_some());
        }
    });
}

/// Within a single shard the LRU order is exact: fill one shard, touch
/// everything except a chosen victim, overflow the shard, and the
/// victim — and only the victim — is evicted.
#[test]
fn lru_is_preserved_within_each_shard() {
    prop::check("per-shard LRU order", 60, 0x14B0, |g| {
        let cache = RenderCache::with_shards(32, Duration::ZERO, 4);
        let target = g.range_usize(0, cache.shard_count());
        let need = cache.shard_capacity(target) + 1;

        // Mine keys that hash into the target shard.
        let mut keys = Vec::new();
        let mut n = 0usize;
        while keys.len() < need {
            let key = format!("mined-{n}");
            if cache.shard_of(&key) == target {
                keys.push(key);
            }
            n += 1;
        }

        let (overflow, fill) = keys.split_last().unwrap();
        for key in fill {
            cache.put(key, b"v".to_vec(), None, SEC);
        }
        let victim = g.range_usize(0, fill.len());
        for (i, key) in fill.iter().enumerate() {
            if i != victim {
                assert!(cache.get(key).is_some(), "freshly inserted `{key}` missing");
            }
        }

        cache.put(overflow, b"v".to_vec(), None, SEC);
        assert!(
            cache.get(&fill[victim]).is_none(),
            "LRU victim `{}` survived the overflow",
            fill[victim]
        );
        for (i, key) in fill.iter().enumerate() {
            if i != victim {
                assert!(cache.get(key).is_some(), "non-victim `{key}` was evicted");
            }
        }
        assert!(cache.get(overflow).is_some());
    });
}
