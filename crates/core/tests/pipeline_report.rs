//! Integration checks for the staged pipeline's [`PipelineReport`]:
//! every executed stage must carry a nonzero timing entry, and stages
//! the spec's cost structure skips must have no entry at all.

use msite::attributes::{AdaptationSpec, Attribute, SnapshotSpec, SourceFilter, Target};
use msite::{adapt_with_report, PipelineContext, StageKind};
use std::time::Duration;

const PAGE: &str = r#"<!DOCTYPE html><html><head><title>Site</title></head><body>
<div id="nav"><a href="/a">Alpha</a> <a href="/b">Beta</a></div>
<div id="content"><p>Hello world</p></div>
</body></html>"#;

fn no_snapshot(mut spec: AdaptationSpec) -> AdaptationSpec {
    spec.snapshot = None;
    spec
}

#[test]
fn every_executed_stage_has_a_nonzero_timing_entry() {
    let spec = no_snapshot(AdaptationSpec::new("report", "http://origin/"))
        .filter(SourceFilter::SetTitle {
            title: "Mobile".into(),
        })
        .rule(Target::Css("#nav".into()), vec![Attribute::Remove]);
    let (bundle, report) = adapt_with_report(&spec, PAGE, &PipelineContext::default()).unwrap();
    assert!(bundle.stats.dom_parsed);
    for stage in &report.stages {
        assert!(
            stage.elapsed > Duration::ZERO,
            "stage {} reported a zero timing",
            stage.kind
        );
    }
    for kind in [
        StageKind::Fetch,
        StageKind::Filter,
        StageKind::Dom,
        StageKind::Attributes,
        StageKind::Emit,
    ] {
        assert!(report.executed(kind), "stage {kind} has no report entry");
    }
    assert!(
        !report.executed(StageKind::Render),
        "no browser work was requested, yet a render entry exists"
    );
}

#[test]
fn filter_only_spec_reports_no_render_or_dom_stages() {
    let spec = no_snapshot(AdaptationSpec::new("report", "http://origin/")).filter(
        SourceFilter::Replace {
            find: "Hello".into(),
            replace: "Hi".into(),
        },
    );
    let (bundle, report) = adapt_with_report(&spec, PAGE, &PipelineContext::default()).unwrap();
    assert!(!bundle.stats.dom_parsed);
    assert!(!bundle.stats.browser_used);
    // The cheap path executes exactly fetch -> filter -> emit.
    let kinds: Vec<StageKind> = report.stages.iter().map(|s| s.kind).collect();
    assert_eq!(
        kinds,
        vec![StageKind::Fetch, StageKind::Filter, StageKind::Emit]
    );
    for stage in &report.stages {
        assert!(stage.elapsed > Duration::ZERO, "{} zero timing", stage.kind);
    }
    assert!(report.stage(StageKind::Render).is_none());
}

#[test]
fn browser_specs_get_a_render_entry_with_browser_time() {
    let mut spec = AdaptationSpec::new("report", "http://origin/");
    spec.snapshot = Some(SnapshotSpec::default());
    let (bundle, report) = adapt_with_report(&spec, PAGE, &PipelineContext::default()).unwrap();
    assert!(bundle.stats.browser_used);
    let render = report.stage(StageKind::Render).expect("render entry");
    assert!(render.elapsed > Duration::ZERO);
    assert_eq!(render.artifacts, bundle.stats.images_rendered);
}
