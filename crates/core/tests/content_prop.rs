//! Property suite for the content-scoring subsystem: readability
//! scores are invariant under a parse → serialize → parse round trip,
//! boilerplate stripping never touches the top candidate or its
//! ancestors, stripped and kept bytes conserve the document length,
//! and aggressiveness 0 is the identity.

use msite::content::{content_score, strip_plan, top_candidate};
use msite_html::{measure, parse_document, Document, NodeId};
use msite_support::prop::{self, Gen};

const WORDS: [&str; 12] = [
    "grain", "finish", "clamp", "joint", "plane", "square", "board", "shellac", "sawdust",
    "mortise", "tenon", "bench",
];

const BOILER_CLASSES: [&str; 8] = [
    "ad-banner",
    "sponsor",
    "navbar",
    "menu",
    "footer",
    "sidebar",
    "widget",
    "comment",
];

const PLAIN_CLASSES: [&str; 5] = ["article-body", "post", "main-text", "entry", "column"];

fn words(g: &mut Gen, count: usize) -> String {
    let mut out = String::new();
    for i in 0..count {
        if i > 0 {
            out.push(' ');
        }
        let word = g.pick(&WORDS);
        out.push_str(word);
    }
    out
}

fn paragraph(g: &mut Gen) -> String {
    let count = g.range_usize(3, 40);
    format!("<p>{}</p>", words(g, count))
}

/// One block: a container element with a random (possibly boiler-shaped)
/// class, holding paragraphs, links, and sometimes a nested block.
fn block(g: &mut Gen, depth: usize, n: &mut u32) -> String {
    *n += 1;
    let tag = *g.pick(&["div", "section", "article", "nav", "aside", "footer"]);
    let class = if g.bool() {
        *g.pick(&BOILER_CLASSES)
    } else {
        *g.pick(&PLAIN_CLASSES)
    };
    let mut inner = String::new();
    for _ in 0..g.range_usize(0, 4) {
        match g.range_u32(0, 3) {
            0 => inner.push_str(&paragraph(g)),
            1 => inner.push_str(&format!("<a href=\"/l\">{}</a> ", words(g, 2))),
            _ if depth < 2 => inner.push_str(&block(g, depth + 1, n)),
            _ => inner.push_str(&words(g, 5)),
        }
    }
    format!("<{tag} id=\"b{n}\" class=\"{class}\">{inner}</{tag}>")
}

fn arb_page(g: &mut Gen) -> String {
    let mut body = String::new();
    let mut n = 0;
    for _ in 0..g.range_usize(1, 8) {
        body.push_str(&block(g, 0, &mut n));
    }
    format!("<html><head><title>t</title></head><body>{body}</body></html>")
}

fn ancestors(doc: &Document, mut id: NodeId) -> Vec<NodeId> {
    let mut out = vec![id];
    while let Some(parent) = doc.node(id).parent() {
        out.push(parent);
        id = parent;
    }
    out
}

#[test]
fn scores_survive_a_serialize_reparse_round_trip() {
    prop::check("score reparse invariance", 200, 0xC0_57E0, |g| {
        let page = arb_page(g);
        let doc = parse_document(&page);
        let metrics = measure(&doc);
        let before = top_candidate(&doc, doc.root(), &metrics);

        let reparsed = parse_document(&doc.to_html());
        let remetrics = measure(&reparsed);
        let after = top_candidate(&reparsed, reparsed.root(), &remetrics);

        match (before, after) {
            (None, None) => {}
            (Some((a, sa)), Some((b, sb))) => {
                assert!(
                    (sa - sb).abs() < 1e-9,
                    "top score moved across reparse: {sa} vs {sb}"
                );
                assert_eq!(
                    doc.attr(a, "id"),
                    reparsed.attr(b, "id"),
                    "a different candidate won after reparse"
                );
            }
            (a, b) => panic!("candidate existence changed across reparse: {a:?} vs {b:?}"),
        }
    });
}

#[test]
fn stripping_never_touches_the_top_candidate_or_its_ancestors() {
    prop::check("strip protects top candidate", 200, 0xC0_57E1, |g| {
        let page = arb_page(g);
        let doc = parse_document(&page);
        let metrics = measure(&doc);
        let aggressiveness = g.range_u32(1, 4) as u8;
        let plan = strip_plan(&doc, doc.root(), &metrics, aggressiveness);
        let Some((top, _)) = top_candidate(&doc, doc.root(), &metrics) else {
            return;
        };
        let protected = ancestors(&doc, top);
        for action in &plan {
            assert!(
                !protected.contains(&action.node),
                "plan strips the top candidate's spine ({:?}, kind {:?})",
                doc.tag_name(action.node),
                action.kind
            );
        }
    });
}

#[test]
fn stripped_and_kept_bytes_conserve_the_document() {
    prop::check("strip byte conservation", 200, 0xC0_57E2, |g| {
        let page = arb_page(g);
        let mut doc = parse_document(&page);
        let metrics = measure(&doc);
        let before = doc.to_html().len();
        let plan = strip_plan(&doc, doc.root(), &metrics, g.range_u32(1, 4) as u8);
        let mut stripped = 0usize;
        for action in &plan {
            stripped += doc.outer_html(action.node).len();
            doc.detach(action.node);
        }
        let after = doc.to_html().len();
        assert_eq!(
            before,
            after + stripped,
            "bytes lost or invented: {before} != {after} + {stripped}"
        );
    });
}

#[test]
fn aggressiveness_zero_is_the_identity() {
    prop::check("strip level 0 identity", 200, 0xC0_57E3, |g| {
        let page = arb_page(g);
        let doc = parse_document(&page);
        let metrics = measure(&doc);
        assert!(strip_plan(&doc, doc.root(), &metrics, 0).is_empty());
        // And the scores themselves are pure: recomputing moves nothing.
        for id in doc.descendants(doc.root()) {
            if let Some(m) = metrics.of(id) {
                assert_eq!(
                    content_score(&m, false).to_bits(),
                    content_score(&m, false).to_bits()
                );
            }
        }
    });
}
