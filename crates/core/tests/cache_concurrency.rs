//! Concurrency tests for the render cache: the LRU capacity bound, the
//! stats accounting, and TTL expiry must all hold under multi-threaded
//! hit/miss churn driven through `std::thread::scope`.

use msite::cache::RenderCache;
use std::time::Duration;

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 600;
const CAPACITY: usize = 32;
const KEY_SPACE: usize = 96; // 3x capacity, so eviction must happen

/// Eight writers/readers churn a 96-key working set through a 32-entry
/// cache. The LRU bound must hold at every observation point, every
/// get must land in hits or misses, and the churn must evict.
#[test]
fn lru_bound_and_accounting_hold_under_churn() {
    let cache = RenderCache::new(CAPACITY);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            scope.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    // Stride by a per-thread offset so threads collide on
                    // some keys and diverge on others.
                    let key = format!("k{}", (t * 37 + i) % KEY_SPACE);
                    if i % 3 == 0 {
                        cache.put(&key, vec![t as u8], None, Duration::from_millis(1));
                    } else {
                        let _ = cache.get(&key);
                    }
                    assert!(
                        cache.len() <= CAPACITY,
                        "LRU bound violated: {} entries in a {}-slot cache",
                        cache.len(),
                        CAPACITY
                    );
                }
            });
        }
    });

    let stats = cache.stats();
    // Every thread issues 400 gets (i % 3 != 0 for 400 of 600 ops).
    let total_gets = (THREADS * OPS_PER_THREAD * 2 / 3) as u64;
    assert_eq!(stats.hits + stats.misses, total_gets);
    // 96 keys through 32 slots cannot avoid eviction.
    assert!(stats.evictions > 0, "churn over 3x capacity never evicted");
    assert!(cache.len() <= CAPACITY);
    // The cache is still functional after the churn.
    cache.put("post", b"done".to_vec(), None, Duration::ZERO);
    assert_eq!(cache.get("post").as_deref(), Some(&b"done"[..]));
}

/// Entries put with a short TTL must be unreadable for every thread
/// after the deadline, each expired entry is counted exactly once no
/// matter how many threads race to touch it, and untimed entries
/// survive the same churn.
#[test]
fn ttl_expiry_is_observed_once_under_concurrent_readers() {
    const TTL_KEYS: usize = 16;
    let cache = RenderCache::new(64);
    for k in 0..TTL_KEYS {
        cache.put(
            &format!("ttl{k}"),
            vec![1u8],
            Some(Duration::from_millis(30)),
            Duration::ZERO,
        );
    }
    for k in 0..TTL_KEYS {
        cache.put(&format!("live{k}"), vec![2u8], None, Duration::ZERO);
    }

    std::thread::sleep(Duration::from_millis(60));
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let cache = &cache;
            scope.spawn(move || {
                for round in 0..3 {
                    for k in 0..TTL_KEYS {
                        assert!(
                            cache.get(&format!("ttl{k}")).is_none(),
                            "ttl{k} readable after expiry (round {round})"
                        );
                        assert!(
                            cache.get(&format!("live{k}")).is_some(),
                            "live{k} lost during churn (round {round})"
                        );
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    // The first toucher removes an expired entry under the lock; later
    // touchers see a plain miss. So expirations counts each TTL key
    // exactly once despite 4 threads x 3 rounds of racing reads.
    assert_eq!(stats.expirations, TTL_KEYS as u64);
    // 4 threads x 3 rounds x 16 expired-key gets are all misses.
    assert_eq!(stats.misses, (4 * 3 * TTL_KEYS) as u64);
    assert_eq!(stats.hits, (4 * 3 * TTL_KEYS) as u64);
    assert_eq!(cache.len(), TTL_KEYS);
}

/// `get_or_insert_with` under contention: every reader of a key gets a
/// coherent value that some thread produced, and the bound holds.
#[test]
fn get_or_insert_with_is_coherent_under_contention() {
    let cache = RenderCache::new(16);
    std::thread::scope(|scope| {
        for t in 0..6u8 {
            let cache = &cache;
            scope.spawn(move || {
                for i in 0..200usize {
                    let key = format!("shared{}", i % 8);
                    let got = cache.get_or_insert_with(&key, None, || {
                        (vec![t, (i % 8) as u8].into(), Duration::from_millis(2))
                    });
                    // Whatever thread won the insert, the stored value is
                    // one of the producers' outputs for this key slot.
                    assert_eq!(got.len(), 2);
                    assert_eq!(got[1], (i % 8) as u8, "value from a different key slot");
                    assert!(cache.len() <= 16);
                }
            });
        }
    });
    assert_eq!(cache.len(), 8);
    let stats = cache.stats();
    // 6 threads x 200 lookups, each counted as a hit or a miss.
    assert_eq!(stats.hits + stats.misses, 1200);
    assert_eq!(stats.evictions, 0);
}
