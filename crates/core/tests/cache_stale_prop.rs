//! Property tests for the render cache's serve-stale semantics, driven
//! through the deterministic `advance_clock` harness hook under pinned
//! seeds.
//!
//! Clock model: virtual time advances in whole seconds while the real
//! time spent inside a test case is far below one second, so every
//! boundary comparison below leaves at least a one-second guard band
//! and cannot flake on scheduler jitter.

use msite::cache::{Lookup, RenderCache};
use msite_support::prop;
use std::time::Duration;

const SEC: Duration = Duration::from_secs(1);

#[test]
fn stale_window_partitions_entry_lifetime() {
    prop::check("ttl/stale/purge partition", 150, 0x57A1E, |g| {
        let ttl_secs = g.range_u64(2, 30);
        let window_secs = g.range_u64(2, 60);
        let cache = RenderCache::with_stale_window(8, SEC * window_secs as u32);
        cache.put("k", "artifact", Some(SEC * ttl_secs as u32), SEC);

        let mut t = 0u64; // virtual seconds since the put
        let mut purged = false;
        for _ in 0..g.range_usize(1, 12) {
            let step = g.range_u64(1, 20);
            cache.advance_clock(SEC * step as u32);
            t += step;
            // Stay off the exact boundaries: real elapsed time inside
            // the case could push an exact boundary either way.
            if t == ttl_secs || t == ttl_secs + window_secs {
                cache.advance_clock(SEC);
                t += 1;
            }
            match cache.lookup("k") {
                Lookup::Fresh(value) => {
                    assert!(t < ttl_secs, "fresh at {t}s (ttl {ttl_secs}s)");
                    assert!(!purged, "fresh after purge");
                    assert_eq!(&value[..], b"artifact");
                    // get() agrees while fresh.
                    assert!(cache.get("k").is_some());
                }
                Lookup::Stale { value, age } => {
                    assert!(
                        t > ttl_secs && t <= ttl_secs + window_secs,
                        "stale at {t}s (ttl {ttl_secs}s window {window_secs}s)"
                    );
                    assert!(!purged, "stale after purge");
                    assert_eq!(&value[..], b"artifact");
                    // Reported age tracks virtual time past expiry.
                    let expect = t - ttl_secs;
                    assert!(
                        age >= SEC * (expect.saturating_sub(1)) as u32
                            && age <= SEC * (expect + 1) as u32,
                        "age {age:?} at {t}s, expected ~{expect}s"
                    );
                    assert!(age <= cache.stale_window() + SEC);
                    // get() hides stale entries without dropping them.
                    assert!(cache.get("k").is_none());
                    assert!(matches!(cache.lookup("k"), Lookup::Stale { .. }));
                }
                Lookup::Miss => {
                    assert!(t > ttl_secs + window_secs, "miss at {t}s too early");
                    purged = true;
                }
            }
            if purged {
                // Once beyond salvage the entry never comes back.
                assert!(matches!(cache.lookup("k"), Lookup::Miss));
                assert!(cache.get("k").is_none());
            }
        }
    });
}

#[test]
fn untimed_entries_never_go_stale() {
    prop::check("no ttl, no staleness", 60, 0xE7E4A1, |g| {
        let cache = RenderCache::with_stale_window(4, SEC * g.range_u64(0, 30) as u32);
        cache.put("pinned", "forever", None, SEC);
        for _ in 0..g.range_usize(1, 6) {
            cache.advance_clock(SEC * g.range_u64(1, 10_000) as u32);
            assert!(matches!(cache.lookup("pinned"), Lookup::Fresh(_)));
            assert!(cache.get("pinned").is_some());
        }
    });
}

#[test]
fn zero_window_reduces_to_plain_ttl_cache() {
    prop::check("zero stale window", 60, 0x0D0, |g| {
        let ttl = g.range_u64(1, 20);
        let cache = RenderCache::with_stale_window(4, Duration::ZERO);
        cache.put("k", "v", Some(SEC * ttl as u32), SEC);
        cache.advance_clock(SEC * (ttl + g.range_u64(1, 50)) as u32);
        // Past TTL with no stale window there is nothing to salvage.
        assert!(matches!(cache.lookup("k"), Lookup::Miss));
        assert!(cache.get("k").is_none());
        assert_eq!(cache.stats().expirations, 1);
    });
}

#[test]
fn stale_hit_counters_reconcile() {
    prop::check("stale counters", 80, 0xC0047, |g| {
        let ttl = g.range_u64(1, 10);
        let window = g.range_u64(2, 40);
        let cache = RenderCache::with_stale_window(4, SEC * window as u32);
        cache.put("k", "v", Some(SEC * ttl as u32), SEC);
        cache.advance_clock(SEC * (ttl + 1) as u32);
        let serves = g.range_u64(1, 8);
        for _ in 0..serves {
            assert!(matches!(cache.lookup("k"), Lookup::Stale { .. }));
        }
        let stats = cache.stats();
        assert_eq!(stats.stale_hits, serves);
        // Stale serves are not fresh hits and not misses.
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 0);
    });
}
