//! Stampede regression suite for the render cache's single-flight
//! layer: concurrent misses on one key must collapse to exactly one
//! `produce()`, waiters must share the leader's result, and bounded
//! waiters must fall back to the stale window (or time out) instead of
//! blocking forever. A final seeded schedule-exploration smoke varies
//! thread arrival order to shake out interleaving-dependent bugs.

use msite::cache::{Flight, RenderCache};
use msite_support::thread::{fan_out, staggered_fan_out};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

const SEC: Duration = Duration::from_secs(1);

/// The headline regression: N concurrent misses on the same key run
/// `produce()` exactly once, and every caller sees the same bytes.
#[test]
fn stampede_collapses_to_one_produce() {
    const N: usize = 16;
    let cache = RenderCache::new(64);
    let calls = AtomicUsize::new(0);
    let gate = Barrier::new(N);

    let results = fan_out(N, |_| {
        gate.wait();
        cache.get_or_insert_with("page", Some(SEC * 60), || {
            calls.fetch_add(1, Ordering::SeqCst);
            // A deliberately slow render so every other thread arrives
            // while the flight is still in progress.
            std::thread::sleep(Duration::from_millis(80));
            (b"rendered".to_vec().into(), Duration::from_millis(80))
        })
    });

    assert_eq!(
        calls.load(Ordering::SeqCst),
        1,
        "stampede: produce ran more than once"
    );
    for value in &results {
        assert_eq!(&value[..], b"rendered");
    }
    let stats = cache.stats();
    assert_eq!(stats.coalesced, (N - 1) as u64);
    assert_eq!(stats.misses, N as u64);
    assert_eq!(stats.hits, 0);
}

/// A waiter whose budget expires mid-flight is served the expired
/// entry from the stale window instead of blocking on the leader.
#[test]
fn expired_waiter_falls_back_to_stale() {
    let cache = RenderCache::with_stale_window(8, SEC * 60);
    cache.put("k", b"old".to_vec(), Some(SEC), SEC);
    cache.advance_clock(SEC * 10);

    std::thread::scope(|s| {
        let leader = s.spawn(|| {
            let out = cache.render_flight::<&'static str>("k", Some(SEC * 60), None, || {
                std::thread::sleep(Duration::from_millis(200));
                Ok((b"new".to_vec().into(), Duration::from_millis(200)))
            });
            assert!(matches!(out, Flight::Led { .. }));
        });
        let waiter = s.spawn(|| {
            // Arrive after the leader has registered the flight.
            while cache.in_flight() == 0 {
                std::thread::yield_now();
            }
            let start = Instant::now();
            let out = cache.render_flight::<&'static str>(
                "k",
                Some(SEC * 60),
                Some(Duration::from_millis(30)),
                || unreachable!("waiter must join the existing flight"),
            );
            assert!(
                start.elapsed() < Duration::from_millis(150),
                "waiter blocked past its budget"
            );
            match out {
                Flight::Stale { value, age } => {
                    assert_eq!(&value[..], b"old");
                    assert!(age >= SEC * 9, "stale age {age:?} lost the virtual clock");
                }
                other => panic!("expected stale fallback, got {other:?}"),
            }
        });
        leader.join().unwrap();
        waiter.join().unwrap();
    });
    assert!(cache.stats().stale_hits >= 1);
}

/// With nothing in the stale window, an expired wait budget reports
/// `TimedOut` rather than inventing output or blocking forever.
#[test]
fn expired_waiter_without_stale_entry_times_out() {
    let cache = RenderCache::new(8);
    std::thread::scope(|s| {
        let leader = s.spawn(|| {
            let out = cache.render_flight::<&'static str>("cold", Some(SEC * 60), None, || {
                std::thread::sleep(Duration::from_millis(200));
                Ok((b"v".to_vec().into(), Duration::from_millis(200)))
            });
            assert!(matches!(out, Flight::Led { .. }));
        });
        let waiter = s.spawn(|| {
            while cache.in_flight() == 0 {
                std::thread::yield_now();
            }
            let out = cache.render_flight::<&'static str>(
                "cold",
                Some(SEC * 60),
                Some(Duration::from_millis(30)),
                || unreachable!("waiter must join the existing flight"),
            );
            assert_eq!(out, Flight::TimedOut);
        });
        leader.join().unwrap();
        waiter.join().unwrap();
    });
}

/// A failed `produce()` caches nothing; the leader reports its own
/// error and every waiter receives a clone of it.
#[test]
fn leader_failure_propagates_to_waiters() {
    #[derive(Clone, Debug, PartialEq)]
    struct Boom;

    const N: usize = 4;
    let cache = RenderCache::new(8);
    let calls = AtomicUsize::new(0);
    let gate = Barrier::new(N);

    let results = fan_out(N, |_| {
        gate.wait();
        cache.render_flight::<Boom>("broken", Some(SEC * 60), None, || {
            calls.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(60));
            Err(Boom)
        })
    });

    assert_eq!(calls.load(Ordering::SeqCst), 1);
    for out in &results {
        assert_eq!(*out, Flight::Failed(Boom));
    }
    assert!(
        cache.get("broken").is_none(),
        "failed flight must cache nothing"
    );
    assert_eq!(
        cache.stats().coalesced,
        0,
        "failures are not shared successes"
    );
}

/// A leader that panics mid-produce must not strand its waiters: the
/// flight is torn down, one waiter is promoted to a fresh leader, and
/// the rest share the retry's result.
#[test]
fn abandoned_flight_recovers() {
    const N: usize = 4;
    let cache = RenderCache::new(8);
    let calls = AtomicUsize::new(0);
    let gate = Barrier::new(N);

    let results = fan_out(N, |_| {
        gate.wait();
        catch_unwind(AssertUnwindSafe(|| {
            cache.get_or_insert_with("flaky", Some(SEC * 60), || {
                let n = calls.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(40));
                if n == 0 {
                    panic!("simulated renderer crash");
                }
                (b"ok".to_vec().into(), Duration::from_millis(40))
            })
        }))
        .ok()
    });

    assert_eq!(
        calls.load(Ordering::SeqCst),
        2,
        "exactly one retry after the crash"
    );
    let crashed = results.iter().filter(|r| r.is_none()).count();
    assert_eq!(crashed, 1, "only the crashing leader propagates the panic");
    for value in results.iter().flatten() {
        assert_eq!(&value[..], b"ok");
    }
}

/// Seeded schedule exploration: replay the same two-key burst under
/// many staggered arrival orders. Whatever the interleaving, each key
/// renders at most once, every caller gets its key's bytes, and the
/// hit/miss ledger stays exact.
#[test]
fn schedule_exploration_smoke() {
    const WORKERS: usize = 8;
    for seed in 0..24u64 {
        let cache = RenderCache::new(64);
        let produced = AtomicUsize::new(0);
        let values = staggered_fan_out(WORKERS, seed, Duration::from_millis(2), |i| {
            let key = format!("k{}", i % 2);
            let want = format!("v{}", i % 2);
            let got = cache.get_or_insert_with(&key, Some(SEC * 60), || {
                produced.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
                (want.clone().into_bytes().into(), Duration::from_millis(5))
            });
            (want, got)
        });
        for (want, got) in &values {
            assert_eq!(
                &got[..],
                want.as_bytes(),
                "seed {seed}: wrong bytes for key"
            );
        }
        let renders = produced.load(Ordering::SeqCst);
        assert!(
            (1..=2).contains(&renders),
            "seed {seed}: {renders} renders for two keys"
        );
        let stats = cache.stats();
        assert_eq!(
            stats.hits + stats.misses,
            WORKERS as u64,
            "seed {seed}: ledger does not reconcile"
        );
    }
}
