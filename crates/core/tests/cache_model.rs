//! Model-based property test for the render cache: random op sequences
//! against a naive reference model must agree on contents, and the LRU
//! bound must never be exceeded.

use msite::cache::RenderCache;
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Get(u8),
    Invalidate(u8),
    Clear,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..12, any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
        4 => (0u8..12).prop_map(Op::Get),
        1 => (0u8..12).prop_map(Op::Invalidate),
        1 => Just(Op::Clear),
    ]
}

/// Reference model: a map plus recency list, same capacity semantics.
struct Model {
    capacity: usize,
    entries: HashMap<u8, u8>,
    recency: Vec<u8>, // least recent first
}

impl Model {
    fn touch(&mut self, key: u8) {
        self.recency.retain(|&k| k != key);
        self.recency.push(key);
    }

    fn put(&mut self, key: u8, value: u8) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(&oldest) = self.recency.first() {
                self.entries.remove(&oldest);
                self.recency.retain(|&k| k != oldest);
            }
        }
        self.entries.insert(key, value);
        self.touch(key);
    }

    fn get(&mut self, key: u8) -> Option<u8> {
        let value = self.entries.get(&key).copied();
        if value.is_some() {
            self.touch(key);
        }
        value
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_agrees_with_model(capacity in 1usize..8, ops in prop::collection::vec(arb_op(), 0..60)) {
        let cache = RenderCache::new(capacity);
        let mut model = Model {
            capacity,
            entries: HashMap::new(),
            recency: Vec::new(),
        };
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    cache.put(&k.to_string(), vec![v], None, Duration::ZERO);
                    model.put(k, v);
                }
                Op::Get(k) => {
                    let real = cache.get(&k.to_string()).map(|b| b[0]);
                    let expected = model.get(k);
                    prop_assert_eq!(real, expected, "get({}) diverged", k);
                }
                Op::Invalidate(k) => {
                    cache.invalidate(&k.to_string());
                    model.entries.remove(&k);
                    model.recency.retain(|&x| x != k);
                }
                Op::Clear => {
                    cache.clear();
                    model.entries.clear();
                    model.recency.clear();
                }
            }
            prop_assert!(cache.len() <= capacity, "cache exceeded capacity");
            prop_assert_eq!(cache.len(), model.entries.len());
        }
    }

    /// Hits + misses always equals the number of get() calls, and
    /// amortized savings equals hits x cost when all entries share one
    /// cost.
    #[test]
    fn stats_are_consistent(ops in prop::collection::vec(arb_op(), 0..40)) {
        let cache = RenderCache::new(64);
        let cost = Duration::from_millis(7);
        let mut gets = 0u64;
        for op in ops {
            match op {
                Op::Put(k, v) => cache.put(&k.to_string(), vec![v], None, cost),
                Op::Get(k) => {
                    gets += 1;
                    let _ = cache.get(&k.to_string());
                }
                Op::Invalidate(k) => cache.invalidate(&k.to_string()),
                Op::Clear => cache.clear(),
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, gets);
        prop_assert_eq!(cache.amortized_savings(), cost * stats.hits as u32);
    }
}
