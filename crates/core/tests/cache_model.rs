//! Model-based property test for the render cache: random op sequences
//! against a naive reference model must agree on contents, and the LRU
//! bound must never be exceeded.

use msite::cache::RenderCache;
use msite_support::prop::{self, Gen};
use std::collections::HashMap;
use std::time::Duration;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Get(u8),
    Invalidate(u8),
    Clear,
}

fn arb_op(g: &mut Gen) -> Op {
    // Weighted 4:4:1:1 like the original strategy.
    match g.range_u32(0, 10) {
        0..=3 => Op::Put(g.range_u8(0, 12), g.u8()),
        4..=7 => Op::Get(g.range_u8(0, 12)),
        8 => Op::Invalidate(g.range_u8(0, 12)),
        _ => Op::Clear,
    }
}

/// Reference model: a map plus recency list, same capacity semantics.
struct Model {
    capacity: usize,
    entries: HashMap<u8, u8>,
    recency: Vec<u8>, // least recent first
}

impl Model {
    fn touch(&mut self, key: u8) {
        self.recency.retain(|&k| k != key);
        self.recency.push(key);
    }

    fn put(&mut self, key: u8, value: u8) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(&oldest) = self.recency.first() {
                self.entries.remove(&oldest);
                self.recency.retain(|&k| k != oldest);
            }
        }
        self.entries.insert(key, value);
        self.touch(key);
    }

    fn get(&mut self, key: u8) -> Option<u8> {
        let value = self.entries.get(&key).copied();
        if value.is_some() {
            self.touch(key);
        }
        value
    }
}

#[test]
fn cache_agrees_with_model() {
    prop::check("cache agrees with model", 128, 0x00CA_C4E0, |g| {
        let capacity = g.range_usize(1, 8);
        let ops = g.vec(0, 60, arb_op);
        let cache = RenderCache::new(capacity);
        let mut model = Model {
            capacity,
            entries: HashMap::new(),
            recency: Vec::new(),
        };
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    cache.put(&k.to_string(), vec![v], None, Duration::ZERO);
                    model.put(k, v);
                }
                Op::Get(k) => {
                    let real = cache.get(&k.to_string()).map(|b| b[0]);
                    let expected = model.get(k);
                    assert_eq!(real, expected, "get({k}) diverged");
                }
                Op::Invalidate(k) => {
                    cache.invalidate(&k.to_string());
                    model.entries.remove(&k);
                    model.recency.retain(|&x| x != k);
                }
                Op::Clear => {
                    cache.clear();
                    model.entries.clear();
                    model.recency.clear();
                }
            }
            assert!(cache.len() <= capacity, "cache exceeded capacity");
            assert_eq!(cache.len(), model.entries.len());
        }
    });
}

/// Hits + misses always equals the number of get() calls, and amortized
/// savings equals hits x cost when all entries share one cost.
#[test]
fn stats_are_consistent() {
    prop::check("cache stats are consistent", 128, 0x00CA_C4E1, |g| {
        let ops = g.vec(0, 40, arb_op);
        let cache = RenderCache::new(64);
        let cost = Duration::from_millis(7);
        let mut gets = 0u64;
        for op in ops {
            match op {
                Op::Put(k, v) => cache.put(&k.to_string(), vec![v], None, cost),
                Op::Get(k) => {
                    gets += 1;
                    let _ = cache.get(&k.to_string());
                }
                Op::Invalidate(k) => cache.invalidate(&k.to_string()),
                Op::Clear => cache.clear(),
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, gets);
        assert_eq!(cache.amortized_savings(), cost * stats.hits as u32);
    });
}
