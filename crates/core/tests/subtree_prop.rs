//! Property suite for the fingerprint-keyed [`SubtreeCache`]'s
//! eviction accounting: under arbitrary capacity churn the eviction
//! counter equals distinct-key inserts minus live entries (no lost or
//! double-counted evictions), hits only ever return the exact artifact
//! stored under that fingerprint (fingerprints are self-invalidating,
//! so a stale artifact cannot be served), and evicted fingerprints
//! miss — forcing the pipeline to recompute them.

use msite::cache::SubtreeCache;
use msite::proxy::{ProxyConfig, ProxyServer};
use msite_support::prop;
use msite_support::sync::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Evictions never lose count: after any sequence of puts and gets,
/// `evictions == distinct-key inserts - live entries`. Replacing an
/// existing fingerprint is not an insert (the slot is reused), so the
/// model tracks presence at put time.
#[test]
fn eviction_counter_equals_inserts_minus_live() {
    prop::check("evictions = inserts - live", 120, 0x5B7EE, |g| {
        let capacity = g.range_usize(1, 24);
        let cache = SubtreeCache::new(capacity);
        let universe = g.range_u64(2, 64);
        // Exact reference model of the tier's LRU: value + last-used
        // tick per live fingerprint. Deterministic because the test is
        // single-threaded and the tick orders every operation totally.
        let mut model: HashMap<u64, (u64, u64)> = HashMap::new();
        let mut tick = 0u64;
        let mut inserts = 0u64;

        for step in 0..g.range_usize(10, 300) {
            let fingerprint = g.range_u64(0, universe);
            if g.bool() {
                tick += 1;
                if !model.contains_key(&fingerprint) {
                    inserts += 1;
                }
                cache.put(fingerprint, Arc::new(step as u64));
                model.insert(fingerprint, (step as u64, tick));
                while model.len() > capacity {
                    let oldest = *model.iter().min_by_key(|(_, (_, t))| *t).unwrap().0;
                    model.remove(&oldest);
                }
            } else {
                tick += 1;
                let hit = cache.get(fingerprint);
                match model.get_mut(&fingerprint) {
                    Some((value, last_used)) => {
                        *last_used = tick;
                        // A hit must carry the exact artifact last
                        // stored under this fingerprint — never stale.
                        let got = hit
                            .as_ref()
                            .expect("model says live, cache missed")
                            .downcast_ref::<u64>()
                            .copied()
                            .expect("u64 artifact");
                        assert_eq!(
                            got, *value,
                            "fingerprint {fingerprint} served a stale artifact"
                        );
                    }
                    None => assert!(
                        hit.is_none(),
                        "evicted fingerprint {fingerprint} must miss (recompute)"
                    ),
                }
            }

            let stats = cache.stats();
            assert_eq!(cache.len(), model.len(), "live set diverged from model");
            assert!(cache.len() <= capacity, "capacity bound violated");
            assert_eq!(
                stats.evictions,
                inserts - cache.len() as u64,
                "step {step}: {inserts} inserts, {} live",
                cache.len()
            );
        }
    });
}

/// Overflow by exactly one: the least-recently-used fingerprint is the
/// one that misses afterwards (recompute), every other stays a hit with
/// its own artifact.
#[test]
fn evicted_fingerprint_misses_and_survivors_hit() {
    prop::check("evicted fp recomputes", 80, 0xEF1C7, |g| {
        let capacity = g.range_usize(2, 16);
        let cache = SubtreeCache::new(capacity);
        for fp in 0..capacity as u64 {
            cache.put(fp, Arc::new(fp));
        }
        // Touch everything except one victim in a random order; the
        // untouched fingerprint becomes the LRU entry.
        let victim = g.range_u64(0, capacity as u64);
        let mut order: Vec<u64> = (0..capacity as u64).filter(|fp| *fp != victim).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, g.range_usize(0, i + 1));
        }
        for fp in &order {
            assert!(cache.get(*fp).is_some());
        }

        cache.put(capacity as u64, Arc::new(capacity as u64));
        assert!(
            cache.get(victim).is_none(),
            "victim {victim} must be evicted and recompute"
        );
        assert_eq!(cache.stats().evictions, 1);
        for fp in order.iter().chain([capacity as u64].iter()) {
            let value = cache.get(*fp).expect("survivor evicted");
            assert_eq!(*value.downcast_ref::<u64>().unwrap(), *fp);
        }
    });
}

/// Type-erased artifacts keep their identity through the tier: what
/// comes back is the same `Arc` that went in (no clone, no rebuild).
#[test]
fn artifacts_round_trip_by_identity() {
    let cache = SubtreeCache::new(4);
    let artifact: Arc<dyn Any + Send + Sync> = Arc::new(String::from("rendered"));
    cache.put(7, Arc::clone(&artifact));
    let back = cache.get(7).expect("hit");
    assert!(Arc::ptr_eq(&artifact, &back), "identity must be preserved");
}

/// End-to-end accounting: drive entry rebuilds through a proxy whose
/// origin mutates every fetch (every rebuild mints fresh fingerprints)
/// and whose subtree tier is tiny, then check the scraped
/// `msite_subtree_cache_evictions_total` equals inserts minus live
/// entries — and that recomputation (not stale artifacts) kept the
/// output correct: the entry always reflects the *current* origin body.
#[test]
fn proxy_metric_agrees_with_eviction_accounting() {
    use msite::attributes::{AdaptationSpec, Attribute, Target};
    use msite_net::{Origin, OriginRef, Request, Response};

    let version = Arc::new(Mutex::new(0u64));
    let origin_version = Arc::clone(&version);
    let origin: OriginRef = Arc::new(move |_req: &Request| {
        let v = *origin_version.lock();
        Response::html(format!(
            "<html><head><title>T</title></head><body>\
             <div id=\"a\">alpha v{v}</div><div id=\"b\">beta v{v}</div>\
             <div id=\"c\">gamma v{v}</div></body></html>"
        ))
    });
    let mut spec = AdaptationSpec::new("churn", "http://churn.test/");
    spec.snapshot = None;
    let spec = ["a", "b", "c"].iter().fold(spec, |spec, id| {
        spec.rule(
            Target::Css(format!("#{id}")),
            vec![Attribute::Subpage {
                id: (*id).to_string(),
                title: id.to_uppercase(),
                ajax: false,
                prerender: false,
            }],
        )
    });
    let config = ProxyConfig {
        incremental: true,
        subtree_cache_capacity: 2,
        ..ProxyConfig::default()
    };
    let proxy = ProxyServer::new(spec, origin, config);

    for round in 0..6u64 {
        *version.lock() = round;
        proxy.cache().invalidate("entry:html");
        let entry = proxy.handle(&Request::get("http://p/m/churn/").unwrap());
        assert!(entry.status.is_success(), "round {round}: {}", entry.status);
    }

    // Scrape so the registry folds the tier's counters in.
    let metrics = proxy.handle(&Request::get("http://p/metrics").unwrap());
    assert!(metrics.status.is_success());
    let stats = proxy.subtree_cache().stats();
    let scraped = proxy
        .telemetry()
        .metrics
        .counter_value("msite_subtree_cache_evictions_total", &[]);
    assert_eq!(scraped, stats.evictions, "scraped metric must agree");

    // Every rebuild minted 3 fresh fingerprints into a capacity-2 tier;
    // inserts - live is exactly the eviction count.
    let inserts = stats.misses; // each miss is followed by a recompute+insert
    assert_eq!(
        stats.evictions,
        inserts - proxy.subtree_cache().len() as u64,
        "evictions must equal inserts minus live entries"
    );
    assert!(stats.evictions > 0, "churn must actually evict");
}
