//! Determinism suite for the parallel emit/render fan-out: the bundle a
//! parallel pipeline run produces must be byte-identical to the serial
//! run, for every thread schedule. Schedules are explored with the
//! [`ScheduleStagger`] hook, which injects seeded per-task start delays
//! so different seeds drive different worker/task interleavings.

use msite::attributes::{AdaptationSpec, Attribute, SnapshotSpec, Target};
use msite::{adapt, adapt_streaming, AdaptedBundle, EmitUnit, PipelineContext, ScheduleStagger};
use std::time::Duration;

const SCHEDULES: u64 = 24;

/// A page with several independent sections, some pre-rendered: enough
/// fan-out tasks that scheduling can genuinely reorder completion.
fn page(sections: usize) -> String {
    let mut html =
        String::from("<!DOCTYPE html><html><head><title>Determinism</title></head><body>\n");
    for s in 0..sections {
        html.push_str(&format!(
            "<div id=\"sec{s}\"><h2>Section {s}</h2><p>{}</p>\
             <a href=\"/item.php?s={s}\">more</a></div>\n",
            "content ".repeat(20 + s)
        ));
    }
    html.push_str("</body></html>");
    html
}

/// Snapshot entry page + one subpage per section, alternating between
/// pre-rendered (image) and plain (HTML) subpages so both fan-out paths
/// are exercised.
fn spec(sections: usize) -> AdaptationSpec {
    let mut spec = AdaptationSpec::new("det", "http://det.example/");
    spec.snapshot = Some(SnapshotSpec {
        scale: 0.5,
        quality: 40,
        cache_ttl_secs: 60,
        viewport_width: 1_024,
    });
    for s in 0..sections {
        spec = spec.rule(
            Target::Css(format!("#sec{s}")),
            vec![Attribute::Subpage {
                id: format!("sec{s}"),
                title: format!("Section {s}"),
                ajax: false,
                prerender: s % 2 == 0,
            }],
        );
    }
    spec
}

fn run(parallelism: usize, stagger: Option<ScheduleStagger>) -> AdaptedBundle {
    let ctx = PipelineContext {
        base: "/m/det".into(),
        parallelism,
        schedule_stagger: stagger,
        ..PipelineContext::default()
    };
    adapt(&spec(8), &page(8), &ctx).expect("fixture adapts cleanly")
}

/// Asserts two bundles are byte-identical in every client-visible field.
/// (Degradation notes are diagnostics, not artifacts, and are excluded
/// by construction — this fixture renders cleanly.)
fn assert_identical(serial: &AdaptedBundle, parallel: &AdaptedBundle, schedule: u64) {
    assert_eq!(
        serial.entry_html, parallel.entry_html,
        "entry page diverged under schedule {schedule}"
    );
    assert_eq!(
        serial.subpages, parallel.subpages,
        "subpages diverged under schedule {schedule}"
    );
    assert_eq!(
        serial.images.len(),
        parallel.images.len(),
        "image count diverged under schedule {schedule}"
    );
    for (a, b) in serial.images.iter().zip(parallel.images.iter()) {
        assert_eq!(
            a.name, b.name,
            "image order diverged under schedule {schedule}"
        );
        assert_eq!(
            a.bytes, b.bytes,
            "{}: bytes diverged under schedule {schedule}",
            a.name
        );
        assert_eq!(
            (a.wire_size, a.width, a.height, a.cache_ttl),
            (b.wire_size, b.width, b.height, b.cache_ttl),
            "{}: metadata diverged under schedule {schedule}",
            a.name
        );
    }
    assert_eq!(
        serial.stats, parallel.stats,
        "pipeline stats diverged under schedule {schedule}"
    );
    assert_eq!(
        serial.search.is_some(),
        parallel.search.is_some(),
        "search index presence diverged under schedule {schedule}"
    );
    assert_eq!(
        serial.wants_cookie_clear, parallel.wants_cookie_clear,
        "cookie-clear flag diverged under schedule {schedule}"
    );
}

#[test]
fn parallel_output_is_byte_identical_across_24_schedules() {
    let serial = run(1, None);
    // Sanity: the fixture actually fans out (pre-rendered images + the
    // snapshot) so the schedules below exercise real parallel work.
    assert_eq!(serial.subpages.len(), 8);
    assert!(serial.stats.images_rendered > 4);

    for schedule in 0..SCHEDULES {
        let parallel = run(
            4,
            Some(ScheduleStagger {
                seed: 0xDE7E_0000 + schedule,
                max: Duration::from_micros(500),
            }),
        );
        assert_identical(&serial, &parallel, schedule);
    }
}

#[test]
fn width_two_matches_width_four() {
    let two = run(
        2,
        Some(ScheduleStagger {
            seed: 7,
            max: Duration::from_micros(300),
        }),
    );
    let four = run(
        4,
        Some(ScheduleStagger {
            seed: 11,
            max: Duration::from_micros(300),
        }),
    );
    assert_identical(&two, &four, u64::MAX);
}

/// Streaming emit must be a pure re-framing of the batch run: the
/// concatenated `Entry` chunks equal the batch entry page byte for
/// byte, every subpage/image unit matches its batch twin, and the final
/// bundle is identical — under every explored schedule.
#[test]
fn streaming_units_reassemble_to_the_batch_bundle() {
    let serial = run(1, None);
    let spec = spec(8);
    let page = page(8);

    for schedule in 0..SCHEDULES {
        let ctx = PipelineContext {
            base: "/m/det".into(),
            parallelism: 4,
            schedule_stagger: Some(ScheduleStagger {
                seed: 0x57EA_0000 + schedule,
                max: Duration::from_micros(500),
            }),
            ..PipelineContext::default()
        };
        let mut entry_chunks = String::new();
        let mut unit_files = Vec::new();
        let mut unit_images = Vec::new();
        let mut on_unit = |unit: EmitUnit| match unit {
            EmitUnit::Entry(html) => entry_chunks.push_str(&html),
            EmitUnit::Subpage(file) => unit_files.push(file),
            EmitUnit::Image(image) => unit_images.push(image),
        };
        let (bundle, _report) = adapt_streaming(&spec, &page, &ctx, &mut on_unit)
            .expect("fixture adapts cleanly in streaming mode");

        assert_identical(&serial, &bundle, schedule);
        assert_eq!(
            entry_chunks, serial.entry_html,
            "concatenated entry chunks diverged under schedule {schedule}"
        );
        // Units surface each artifact exactly once; completion order is
        // schedule-dependent, so compare by name.
        assert_eq!(unit_files.len(), serial.subpages.len());
        for file in &unit_files {
            let twin = serial
                .subpages
                .iter()
                .find(|f| f.name == file.name)
                .unwrap_or_else(|| panic!("{}: unit without batch twin", file.name));
            assert_eq!(
                file, twin,
                "{}: subpage unit diverged under schedule {schedule}",
                file.name
            );
        }
        assert_eq!(unit_images.len(), serial.images.len());
        for image in &unit_images {
            let twin = serial
                .images
                .iter()
                .find(|i| i.name == image.name)
                .unwrap_or_else(|| panic!("{}: unit without batch twin", image.name));
            assert_eq!(
                image.bytes, twin.bytes,
                "{}: image unit bytes diverged under schedule {schedule}",
                image.name
            );
        }
    }
}

#[test]
fn serial_run_ignores_stagger_hook() {
    let plain = run(1, None);
    let staggered = run(
        1,
        Some(ScheduleStagger {
            seed: 99,
            max: Duration::from_micros(300),
        }),
    );
    assert_identical(&plain, &staggered, 0);
}
