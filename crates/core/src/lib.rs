//! # msite
//!
//! A from-scratch reproduction of **m.Site** (Koehl & Wang, MIDDLEWARE
//! 2012): a productivity framework that adapts existing web sites for
//! mobile devices through a generated, multi-session, lightweight proxy —
//! calling on a full server-side browser only when graphical rendering is
//! unavoidable, and caching rendered artifacts across users.
//!
//! The crate mirrors the paper's architecture (its Figures 1–3):
//!
//! - [`admin`] — the visual tool's engine: load a page, enumerate
//!   selectable objects with geometry, accumulate attribute assignments;
//! - [`attributes`] — the attribute paradigm: subpage splitting, object
//!   copy/move/remove/replace, pre-rendering, partial CSS pre-rendering,
//!   image fidelity, search, caching, HTTP auth, AJAX rewriting;
//! - [`content`] — content-aware adaptation: readability scoring,
//!   boilerplate stripping, bandwidth-aware fidelity tiers;
//! - [`dsl`] — the generated proxy program (code generation + loader);
//! - [`pipeline`] — filter phase → tidy/DOM phase → attribute phase →
//!   subpage emission → rendering;
//! - [`proxy`] — the multi-session proxy server: session cookies, per-user
//!   cookie jars and session directories, shared snapshot cache, AJAX
//!   satisfaction, origin passthrough;
//! - [`cache`] — the TTL+LRU render cache that amortizes rendering;
//! - [`search`] — the searchable pre-rendered image index;
//! - [`snapshot`] — the snapshot + image-map entry page;
//! - [`baseline`] — the Highlight browser-per-client baseline of Figure 7.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use msite::attributes::{AdaptationSpec, Attribute, Target};
//! use msite::proxy::{ProxyConfig, ProxyServer};
//! use msite_net::{Origin, OriginRef, Request, Response};
//!
//! // An origin page to mobilize.
//! let origin: OriginRef = Arc::new(|_req: &Request| {
//!     Response::html("<html><head><title>T</title></head><body>\
//!                     <form id=\"login\"><input name=\"u\"></form></body></html>")
//! });
//!
//! // The admin tool's output: split the login form into a subpage.
//! let mut spec = AdaptationSpec::new("demo", "http://origin.test/index.php");
//! spec.snapshot = None;
//! let spec = spec.rule(
//!     Target::Css("#login".into()),
//!     vec![Attribute::Subpage { id: "login".into(), title: "Log in".into(),
//!                               ajax: false, prerender: false }],
//! );
//!
//! // The generated proxy, serving the adapted page.
//! let proxy = ProxyServer::new(spec, origin, ProxyConfig::default());
//! let entry = proxy.handle(&Request::get("http://proxy.test/m/demo/").unwrap());
//! assert!(entry.body_text().contains("/m/demo/s/login.html"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod ajax;
pub mod attributes;
pub mod baseline;
pub mod cache;
pub mod content;
pub mod dsl;
pub mod engine;
pub mod error;
pub mod persist;
pub mod pipeline;
pub mod proxy;
pub mod search;
pub mod session;
pub mod snapshot;

pub use attributes::{AdaptationSpec, Attribute, Rule, SnapshotSpec, SourceFilter, Target};
pub use baseline::{HighlightConfig, HighlightProxy, HighlightStats};
pub use cache::{
    CacheStats, ExternalFlight, Flight, Lookup, RenderCache, SubtreeCache, SubtreeCacheStats,
};
pub use content::{BoilerKind, ExtractOutcome};
pub use engine::{EngineRegistry, FallbackRender, RenderEngine, RenderError, RenderedArtifact};
pub use error::ProxyError;
pub use persist::{
    DiskBackend, DiskFaultStats, DiskFreshness, DiskRecord, DiskTier, DiskTierConfig,
    DiskTierStats, FlakyDisk, FsDisk, MemDisk,
};
pub use pipeline::{
    adapt, adapt_streaming, adapt_with_report, AdaptError, AdaptedBundle, EmitUnit,
    PipelineContext, PipelineReport, PipelineStats, ScheduleStagger, StageKind, StageReport,
};
pub use proxy::{ProxyConfig, ProxyServer, ProxyStats, STREAM_HEADER};
pub use search::SearchIndex;
pub use session::{
    EvictCause, Session, SessionFs, SessionStore, SessionStoreConfig, SessionStoreStats,
    DEFAULT_TENANT, SESSION_COOKIE,
};
