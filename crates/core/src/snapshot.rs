//! The snapshot entry page: a scaled pre-rendered image of the site
//! overlaid with a clickable image map (§3.2, §4.3).
//!
//! "The snapshot is overlayed using an image map with links to content
//! areas defined with the subpage attribute ... for each subpage
//! generated, the coordinates and extents of the original document
//! elements must be queried from the DOM ... since the snapshot is
//! scaled down, the m.Site framework implicitly translates the
//! coordinates as well."

use crate::ajax;
use msite_render::Rect;

/// One clickable region of the snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MapArea {
    /// Region in *snapshot* (already scaled) pixel coordinates. Zero-size
    /// rects are omitted from the `<map>` but kept in the fallback menu.
    pub rect: Rect,
    /// Subpage URL.
    pub href: String,
    /// Human-readable label.
    pub title: String,
    /// Load asynchronously into the entry page's container instead of
    /// navigating.
    pub ajax: bool,
}

/// Inputs to [`build_entry_page`].
#[derive(Debug, Clone)]
pub struct EntryPageInput {
    /// Proxy URL prefix, e.g. `/m/forum`.
    pub base: String,
    /// Page title (carried over from the origin page for branding).
    pub title: String,
    /// Snapshot image file name under `{base}/img/`.
    pub snapshot_name: String,
    /// Snapshot pixel width.
    pub snapshot_width: u32,
    /// Snapshot pixel height.
    pub snapshot_height: u32,
    /// Scale that was applied to the snapshot (recorded in a meta tag for
    /// diagnostics).
    pub scale: f32,
    /// Clickable regions.
    pub areas: Vec<MapArea>,
    /// Whether the AJAX helper script and hidden container are needed.
    pub has_ajax: bool,
    /// Search index payload, when the searchable attribute was applied.
    pub search_js: Option<String>,
}

/// Builds the mobile entry page HTML.
///
/// # Examples
///
/// ```
/// use msite::snapshot::{build_entry_page, EntryPageInput, MapArea};
/// use msite_render::Rect;
///
/// let html = build_entry_page(&EntryPageInput {
///     base: "/m/forum".into(),
///     title: "Forum".into(),
///     snapshot_name: "snapshot.png".into(),
///     snapshot_width: 512,
///     snapshot_height: 1400,
///     scale: 0.5,
///     areas: vec![MapArea {
///         rect: Rect::new(10.0, 20.0, 100.0, 30.0),
///         href: "/m/forum/s/login.html".into(),
///         title: "Log in".into(),
///         ajax: false,
///     }],
///     has_ajax: false,
///     search_js: None,
/// });
/// assert!(html.contains("usemap=\"#msitemap\""));
/// assert!(html.contains("coords=\"10,20,110,50\""));
/// ```
pub fn build_entry_page(input: &EntryPageInput) -> String {
    let mut html = String::with_capacity(2048);
    html.push_str("<!DOCTYPE html>\n<html><head>");
    html.push_str(&format!(
        "<title>{}</title>",
        msite_html::entities::encode_text(&input.title)
    ));
    html.push_str("<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">");
    html.push_str(&format!(
        "<meta name=\"msite-snapshot-scale\" content=\"{}\">",
        input.scale
    ));
    html.push_str("<style>body{margin:0;background:#fff} #msite-menu{font-family:sans-serif;font-size:13px} #msite-container{display:none;position:fixed;top:10%;left:4%;width:92%;background:#fff;border:2px solid #444;padding:4px;overflow:auto;max-height:80%}</style>");
    if input.has_ajax {
        html.push_str("<script>");
        html.push_str(ajax::client_helper_script());
        html.push_str(ENTRY_HELPERS);
        html.push_str("</script>");
    }
    if let Some(search_js) = &input.search_js {
        html.push_str("<script>");
        html.push_str(search_js);
        html.push_str("</script>");
    }
    html.push_str("</head><body>");
    html.push_str(&format!(
        "<img src=\"{}/img/{}\" width=\"{}\" height=\"{}\" usemap=\"#msitemap\" alt=\"{}\" style=\"border:0\">",
        input.base,
        input.snapshot_name,
        input.snapshot_width,
        input.snapshot_height,
        msite_html::entities::encode_attr(&input.title)
    ));
    html.push_str("<map name=\"msitemap\" id=\"msitemap\">");
    for area in &input.areas {
        if area.rect.w <= 0.0 || area.rect.h <= 0.0 {
            continue;
        }
        let coords = format!(
            "{},{},{},{}",
            area.rect.x.round() as i64,
            area.rect.y.round() as i64,
            area.rect.right().round() as i64,
            area.rect.bottom().round() as i64
        );
        if area.ajax {
            html.push_str(&format!(
                "<area shape=\"rect\" coords=\"{coords}\" href=\"{}\" \
                 onclick=\"return msiteOpen('{}')\" alt=\"{}\">",
                area.href,
                area.href,
                msite_html::entities::encode_attr(&area.title)
            ));
        } else {
            html.push_str(&format!(
                "<area shape=\"rect\" coords=\"{coords}\" href=\"{}\" alt=\"{}\">",
                area.href,
                msite_html::entities::encode_attr(&area.title)
            ));
        }
    }
    html.push_str("</map>");
    if input.has_ajax {
        html.push_str("<div id=\"msite-container\"></div>");
    }
    // Text fallback menu (also what non-imagemap browsers use).
    html.push_str("<ul id=\"msite-menu\">");
    for area in &input.areas {
        html.push_str(&format!(
            "<li><a href=\"{}\">{}</a></li>",
            area.href,
            msite_html::entities::encode_text(&area.title)
        ));
    }
    html.push_str("</ul>");
    html.push_str("</body></html>");
    html
}

/// Client helpers for the entry page: open a subpage fragment in the
/// hidden container ("it gives the appearance of being able to
/// 'activate' otherwise static portions of the pre-rendered snapshot,
/// all without reloading the page").
const ENTRY_HELPERS: &str = r#"function msiteOpen(url) {
  var xhr = new XMLHttpRequest();
  xhr.open('GET', url, true);
  xhr.onreadystatechange = function () {
    if (xhr.readyState === 4 && xhr.status === 200) {
      var el = document.getElementById('msite-container');
      el.innerHTML = xhr.responseText;
      el.style.display = 'block';
    }
  };
  xhr.send();
  return false;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input() -> EntryPageInput {
        EntryPageInput {
            base: "/m/forum".into(),
            title: "Sawmill & Creek".into(),
            snapshot_name: "snapshot.png".into(),
            snapshot_width: 512,
            snapshot_height: 1403,
            scale: 0.5,
            areas: vec![
                MapArea {
                    rect: Rect::new(10.0, 20.0, 100.0, 30.0),
                    href: "/m/forum/s/login.html".into(),
                    title: "Log in".into(),
                    ajax: false,
                },
                MapArea {
                    rect: Rect::new(0.0, 60.0, 512.0, 40.0),
                    href: "/m/forum/s/nav.html".into(),
                    title: "Navigate".into(),
                    ajax: true,
                },
                MapArea {
                    rect: Rect::new(0.0, 0.0, 0.0, 0.0),
                    href: "/m/forum/s/misc.html".into(),
                    title: "Misc".into(),
                    ajax: false,
                },
            ],
            has_ajax: true,
            search_js: None,
        }
    }

    #[test]
    fn areas_rendered_with_translated_coords() {
        let html = build_entry_page(&sample_input());
        assert!(html.contains("coords=\"10,20,110,50\""));
        assert!(html.contains("coords=\"0,60,512,100\""));
    }

    #[test]
    fn zero_size_area_only_in_menu() {
        let html = build_entry_page(&sample_input());
        // Not in the map...
        let map = &html[html.find("<map").unwrap()..html.find("</map>").unwrap()];
        assert!(!map.contains("misc.html"));
        // ...but in the fallback menu.
        let menu = &html[html.find("msite-menu").unwrap()..];
        assert!(menu.contains("misc.html"));
    }

    #[test]
    fn ajax_area_uses_container() {
        let html = build_entry_page(&sample_input());
        assert!(html.contains("msiteOpen('/m/forum/s/nav.html')"));
        assert!(html.contains("id=\"msite-container\""));
        assert!(html.contains("function msiteOpen"));
    }

    #[test]
    fn no_ajax_means_no_helper() {
        let mut input = sample_input();
        input.has_ajax = false;
        input.areas.retain(|a| !a.ajax);
        let html = build_entry_page(&input);
        assert!(!html.contains("msiteOpen"));
        assert!(!html.contains("id=\"msite-container\""));
    }

    #[test]
    fn title_escaped() {
        let html = build_entry_page(&sample_input());
        assert!(html.contains("<title>Sawmill &amp; Creek</title>"));
    }

    #[test]
    fn parses_as_valid_html() {
        let html = build_entry_page(&sample_input());
        let doc = msite_html::parse_document(&html);
        assert_eq!(doc.elements_by_tag(doc.root(), "map").len(), 1);
        assert_eq!(doc.elements_by_tag(doc.root(), "area").len(), 2);
        assert_eq!(doc.elements_by_tag(doc.root(), "img").len(), 1);
        let img = doc.elements_by_tag(doc.root(), "img")[0];
        assert_eq!(doc.attr(img, "usemap"), Some("#msitemap"));
    }

    #[test]
    fn search_js_included_when_present() {
        let mut input = sample_input();
        input.search_js = Some("var msiteIndex = [];".into());
        let html = build_entry_page(&input);
        assert!(html.contains("msiteIndex"));
    }
}
