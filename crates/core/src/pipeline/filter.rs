//! Filter stage: source-level rewrites with no DOM (§3.2 "filter
//! phase"). When the spec carries only filters the whole adaptation
//! completes here, "avoiding a DOM parse altogether".

use super::soa::strip_tag;
use super::stage::{PipelineState, Stage, StageKind, StageOutcome};
use super::AdaptError;
use crate::attributes::SourceFilter;

/// Applies the spec's source filters, in order, to the working buffer.
pub(crate) struct FilterStage;

impl Stage for FilterStage {
    fn kind(&self) -> StageKind {
        StageKind::Filter
    }

    fn run(&self, state: &mut PipelineState<'_>) -> Result<StageOutcome, AdaptError> {
        let mut out = std::mem::take(&mut state.source);
        for filter in &state.spec.filters {
            state.stats.filters_applied += 1;
            out = match filter {
                SourceFilter::Replace { find, replace } => out.replace(find.as_str(), replace),
                SourceFilter::SetDoctype { doctype } => set_doctype(&out, doctype),
                SourceFilter::SetTitle { title } => set_title(&out, title),
                SourceFilter::StripTag { tag } => strip_tag(&out, tag),
                SourceFilter::RewriteImagePrefix { from, to } => {
                    out.replace(&format!("src=\"{from}"), &format!("src=\"{to}"))
                }
            };
        }
        // Fingerprint the filtered source: the whole-page identity for
        // incremental re-adaptation. Computed here (not in the DOM
        // stage) so even filter-only adaptations carry one.
        state.source_fingerprint = msite_html::fingerprint::fnv1a(out.as_bytes());
        state.source = out;
        Ok(StageOutcome::serial(state.spec.filters.len()))
    }
}

fn set_doctype(html: &str, doctype: &str) -> String {
    let lower = html.to_ascii_lowercase();
    if let Some(start) = lower.find("<!doctype") {
        if let Some(end) = html[start..].find('>') {
            let mut out = String::with_capacity(html.len());
            out.push_str(&html[..start]);
            out.push_str(doctype);
            out.push_str(&html[start + end + 1..]);
            return out;
        }
    }
    format!("{doctype}\n{html}")
}

fn set_title(html: &str, title: &str) -> String {
    let lower = html.to_ascii_lowercase();
    if let (Some(open), Some(close)) = (lower.find("<title>"), lower.find("</title>")) {
        if close > open {
            let mut out = String::with_capacity(html.len());
            out.push_str(&html[..open + 7]);
            out.push_str(&msite_html::entities::encode_text(title));
            out.push_str(&html[close..]);
            return out;
        }
    }
    html.to_string()
}
